//! The reproduction harness: regenerates every figure and claim table.
//!
//! Usage: `cargo run -p tyche-bench --bin repro [-- <ids...>]`
//!
//! With no arguments, runs every experiment (F1–F4, C1–C12, E1–E5) plus
//! the verification suite (`verify`) and prints one table each;
//! `EXPERIMENTS.md` records these outputs next to the paper's claims.
//! `repro verify` runs the judiciary toolchain alone: the static TCB
//! audit and the bounded model check, exiting non-zero on any failure.
//!
//! `repro bench [--json] [--smoke]` runs the hot-path before/after
//! benchmarks (revocation, transitions, flush_policy, capability_ops)
//! introduced with the capability-indexing and effect-coalescing work;
//! `--json` writes `BENCH_hotpath.json` at the workspace root and
//! `--smoke` runs one tiny iteration for CI (which also exercises a
//! 2-thread SMP smoke pass). `repro bench --smp [--json] [--smoke]`
//! runs the SMP serving suite instead — concurrent hypercall throughput
//! through the sharded `ConcurrentMonitor` vs a mutex around the whole
//! monitor — and `--json` writes `BENCH_smp.json`. `repro bench
//! --scale [--json] [--smoke]` sweeps domain populations 1k → 1M
//! (create/attest/enter/revoke storms, deep derivation chains,
//! steady-state neighbor latency, bytes-per-domain) and `--json`
//! writes `BENCH_scale.json`; `--smoke` truncates the sweep at 100k.
//! `bench` is explicit-only: it is not part of the no-argument full
//! run.
//!
//! `repro trace [--json] [--smoke]` runs traced fuzz campaigns over the
//! trace seed corpus, drains each machine's event log, replays it
//! through every `tyche-verify::rv` temporal checker, re-runs each seed
//! to confirm the attested hash chain reproduces, and finishes with the
//! tracing-overhead gate (deterministic cycle metrics with the sink
//! recording must stay within 5% of the committed `BENCH_hotpath.json`
//! numbers). `--json` writes `TRACE.json` at the workspace root.

use std::path::PathBuf;
use std::time::Instant;
use tyche_bench::harness::{self, Family, MergedScenario};
use tyche_bench::histogram::Histogram;
use tyche_bench::json::{self, Json};
use tyche_bench::scenarios::{self, layout};
use tyche_bench::timing;
use tyche_bench::{boot, fuzz, spawn_sealed, Table};
use tyche_core::audit;
use tyche_core::metrics::Counter;
use tyche_core::prelude::*;
use tyche_core::trace::EventKind;
use tyche_fleet::{Fleet, FleetConfig};
use tyche_hw::faults::{FaultPlan, FaultSite};
use tyche_verify::rv;
use tyche_monitor::abi::MonitorCall;
use tyche_monitor::attest::Verifier;
use tyche_monitor::boot::{expected_monitor_pcr, MONITOR_VERSION};
use tyche_monitor::monitor::CallResult;
use tyche_monitor::{
    boot_riscv, boot_x86, BootConfig, ConcurrentMonitor, RingOutcome, SmpStats, Status,
};

fn main() {
    // Paths (after `--out`, or the operands of `report`) must survive
    // verbatim, so the raw argv is kept next to the lowercased view the
    // experiment ids match against.
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.first().map(String::as_str) == Some("harness-child") {
        // Child mode prints exactly one JSON line on stdout for the
        // orchestrating parent — no banner, no tables.
        harness_child(&raw[1..]);
        return;
    }
    let args: Vec<String> = raw.iter().map(|s| s.to_lowercase()).collect();
    let all = args.is_empty();
    let want = |id: &str| all || args.iter().any(|a| a == id);

    println!("Tyche reproduction harness — {MONITOR_VERSION}");
    if args.first().map(String::as_str) == Some("harness") {
        harness_main(&args, &raw);
        return;
    }
    if args.first().map(String::as_str) == Some("report") {
        report_main(&raw[1..]);
        return;
    }
    if args.iter().any(|a| a == "bench") {
        // Explicit-only: the benchmarks are not part of the default
        // all-run (they exist to regenerate BENCH_hotpath.json and
        // BENCH_smp.json).
        let json = args.iter().any(|a| a == "--json");
        let smoke = args.iter().any(|a| a == "--smoke");
        let out = flag_value(&raw, "--out");
        if args.iter().any(|a| a == "--scale") {
            bench_scale(json, smoke, out.as_deref());
        } else if args.iter().any(|a| a == "--smp") {
            bench_smp(json, smoke, out.as_deref());
        } else if args.iter().any(|a| a == "--fleet") {
            bench_fleet(json, smoke, out.as_deref());
        } else {
            bench_hotpath(json, smoke, out.as_deref());
            if smoke {
                // The CI smoke pass also exercises the SMP serving path
                // (2 threads, no artifact rewrite).
                bench_smp(false, true, None);
            }
        }
        return;
    }
    if args.iter().any(|a| a == "fuzz") {
        // Explicit-only, like `bench`: the adversarial hypercall fuzzer
        // over fixed seeds. Exits non-zero on any audit finding or
        // replay divergence; a panic anywhere in the TCB kills the
        // process, which the CI gate treats as failure.
        let json = args.iter().any(|a| a == "--json");
        let smoke = args.iter().any(|a| a == "--smoke");
        if !fuzz_campaign(json, smoke) {
            std::process::exit(1);
        }
        return;
    }
    if args.iter().any(|a| a == "trace") {
        // Explicit-only: traced fuzz campaigns replayed through the
        // runtime verifiers, plus the tracing-overhead gate. Exits
        // non-zero on any RV finding, chain divergence, or overhead
        // breach; `--json` writes `TRACE.json` at the workspace root.
        let json = args.iter().any(|a| a == "--json");
        let smoke = args.iter().any(|a| a == "--smoke");
        if !trace_campaign(json, smoke) {
            std::process::exit(1);
        }
        return;
    }
    if want("f1") {
        f1();
    }
    if want("f2") {
        f2();
    }
    if want("f3") {
        f3();
    }
    if want("f4") {
        f4();
    }
    if want("c1") {
        c1();
    }
    if want("c2") {
        c2();
    }
    if want("c3") {
        c3();
    }
    if want("c4") {
        c4();
    }
    if want("c5") {
        c5();
    }
    if want("c6") {
        c6();
    }
    if want("c7") {
        c7();
    }
    if want("c8") {
        c8();
    }
    if want("c9") {
        c9();
    }
    if want("c10") {
        c10();
    }
    if want("c11") {
        c11();
    }
    if want("c12") {
        c12();
    }
    if want("e1") {
        e1();
    }
    if want("e2") {
        e2();
    }
    if want("e3") {
        e3();
    }
    if want("e4") {
        e4();
    }
    if want("e5") {
        e5();
    }
    if want("verify") && !verify() {
        std::process::exit(1);
    }
}

/// The workspace root, anchored at compile time so every LOC/audit path
/// works from any working directory.
fn workspace_root() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("crates/bench has a workspace root")
        .to_path_buf()
}

// ----------------------------------------------------------------------
// `repro harness` / `repro harness-child` / `repro report`
// ----------------------------------------------------------------------

/// The value following `flag` in `args`, if any (flag matched
/// case-insensitively, value returned verbatim).
fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a.eq_ignore_ascii_case(flag))
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Where a bench artifact lands: `--out` verbatim when given, the
/// committed workspace-root artifact for full runs, and a target/
/// scratch path for smoke runs — smoke output never lands on a
/// committed artifact path by default.
fn resolve_bench_out(family: Family, smoke: bool, out: Option<&str>) -> PathBuf {
    match out {
        Some(p) => PathBuf::from(p),
        None if smoke => workspace_root()
            .join("target")
            .join(family.artifact_name().replace(".json", ".smoke.json")),
        None => workspace_root().join(family.artifact_name()),
    }
}

/// `repro harness [--suite hotpath|smp|scale|fleet|all] [--smoke] [--out P]`:
/// orchestrates the selected suites through child processes of this
/// same binary and writes one artifact per suite.
fn harness_main(args: &[String], raw: &[String]) {
    let smoke = args.iter().any(|a| a == "--smoke");
    let suite = flag_value(raw, "--suite").unwrap_or_else(|| "all".into()).to_lowercase();
    let out = flag_value(raw, "--out");
    let families: Vec<Family> = if suite == "all" {
        vec![Family::Hotpath, Family::Smp, Family::Scale, Family::Fleet]
    } else {
        match Family::parse(&suite) {
            Some(f) => vec![f],
            None => {
                eprintln!("harness: unknown suite {suite:?} (hotpath|smp|scale|fleet|all)");
                std::process::exit(2);
            }
        }
    };
    if out.is_some() && families.len() != 1 {
        eprintln!("harness: --out needs a single --suite");
        std::process::exit(2);
    }
    let exe = std::env::current_exe().expect("current exe");
    for family in families {
        let path = resolve_bench_out(family, smoke, out.as_deref());
        if smoke {
            // Preflight before any child spawns: a smoke run pointed at
            // a committed full artifact must die instantly, not after
            // the benches ran.
            if let Err(e) = harness::refuse_smoke_clobber(&path) {
                eprintln!("harness: {e}");
                std::process::exit(1);
            }
        }
        let run = harness::orchestrate(&exe, family, smoke).unwrap_or_else(|e| {
            eprintln!("harness: {e}");
            std::process::exit(1);
        });
        let doc = harness::assemble_artifact(&run, MONITOR_VERSION, &workspace_root(), "harness");
        if let Err(e) = harness::write_artifact(&path, &doc, smoke) {
            eprintln!("harness: {e}");
            std::process::exit(1);
        }
        println!("wrote {}", path.display());
    }
}

/// `repro report old.json new.json [--threshold PCT]` diffs two bench
/// artifacts and exits non-zero on any regression beyond the threshold;
/// `repro report --check <artifact>...` validates committed artifacts
/// (schema, mode, manifest, row invariants) and exits non-zero on any
/// failure.
fn report_main(args: &[String]) {
    if args.first().map(String::as_str) == Some("--check") {
        let files = &args[1..];
        if files.is_empty() {
            eprintln!("usage: repro report --check <artifact.json>...");
            std::process::exit(2);
        }
        let mut pass = true;
        for file in files {
            let doc = match std::fs::read_to_string(file).map_err(|e| e.to_string()).and_then(|s| json::parse(&s)) {
                Ok(d) => d,
                Err(e) => {
                    println!("CHECK {file}: unreadable ({e})");
                    pass = false;
                    continue;
                }
            };
            let failures = harness::check_artifact(&doc);
            if failures.is_empty() {
                let schema = doc.get("schema").and_then(Json::as_str).unwrap_or("?");
                println!("CHECK {file}: ok ({schema})");
            } else {
                pass = false;
                for f in &failures {
                    println!("CHECK {file}: FAIL — {f}");
                }
            }
        }
        if !pass {
            std::process::exit(1);
        }
        return;
    }
    let threshold = flag_value(args, "--threshold")
        .map(|t| t.parse::<f64>().unwrap_or_else(|_| {
            eprintln!("report: bad --threshold {t:?}");
            std::process::exit(2);
        }))
        .unwrap_or(10.0);
    let positional: Vec<&String> = {
        let mut skip_next = false;
        args.iter()
            .filter(|a| {
                if skip_next {
                    skip_next = false;
                    return false;
                }
                if a.eq_ignore_ascii_case("--threshold") {
                    skip_next = true;
                    return false;
                }
                !a.starts_with("--")
            })
            .collect()
    };
    let [old_path, new_path] = positional.as_slice() else {
        eprintln!("usage: repro report <old.json> <new.json> [--threshold PCT]");
        std::process::exit(2);
    };
    let load = |p: &str| -> Json {
        std::fs::read_to_string(p)
            .map_err(|e| e.to_string())
            .and_then(|s| json::parse(&s))
            .unwrap_or_else(|e| {
                eprintln!("report: cannot load {p}: {e}");
                std::process::exit(2);
            })
    };
    let outcome = harness::report_diff(&load(old_path), &load(new_path), threshold)
        .unwrap_or_else(|e| {
            eprintln!("report: {e}");
            std::process::exit(2);
        });
    if !outcome.regressions.is_empty() {
        println!("report: REGRESSIONS beyond {threshold}%:");
        for r in &outcome.regressions {
            println!("  {r}");
        }
        std::process::exit(1);
    }
}

/// `repro harness-child <scenario> --id <id> key=value...` — runs one
/// scenario in this process and prints the single child line the
/// orchestrator consumes. Any panic or failed timing conversion kills
/// the process, which the parent reports as a failed child.
fn harness_child(args: &[String]) {
    let scenario = args.first().map(String::as_str).unwrap_or_else(|| {
        eprintln!("harness-child: missing scenario");
        std::process::exit(2);
    });
    let id = flag_value(args, "--id").unwrap_or_else(|| scenario.to_string());
    let params: Vec<(String, String)> = {
        let mut out = Vec::new();
        let mut rest = args.iter().skip(1); // first token is the scenario
        while let Some(a) = rest.next() {
            if a == "--id" {
                rest.next(); // the id value may itself contain '='
                continue;
            }
            if let Some((k, v)) = a.split_once('=') {
                out.push((k.to_string(), v.to_string()));
            }
        }
        out
    };
    let p = |key: &str, default: usize| -> usize {
        harness::param(&params, key)
            .map(|v| v.parse().unwrap_or_else(|_| panic!("bad {key}={v}")))
            .unwrap_or(default)
    };
    let seed = harness::param(&params, "seed")
        .map(|v| v.parse::<u64>().unwrap_or_else(|_| panic!("bad seed={v}")))
        .unwrap_or(1);

    let (row, det, hists) = match scenario {
        "revocation" => {
            let (e, hist) = measure_revocation(p("fanout", 16), p("storms", 5));
            let det = vec![
                ("before_cycles".to_string(), e.before),
                ("after_cycles".to_string(), e.after),
            ];
            (hotpath_row(&e), det, vec![("op".to_string(), hist)])
        }
        "capability_ops" => {
            let (e, hist) = bench_capability_ops(p("fanout", 16), p("iters", 2000));
            (hotpath_row(&e), Vec::new(), vec![("op".to_string(), hist)])
        }
        "transitions" => {
            let (e, hist) = bench_transitions(p("iters", 2000), false);
            let det = vec![
                ("mediated_cycles".to_string(), e.detail[1].1),
                ("fast_cycles".to_string(), e.detail[2].1),
            ];
            (hotpath_row(&e), det, vec![("op".to_string(), hist)])
        }
        "flush_policy" => {
            let (e, hist) = bench_flush_policy(p("iters", 2000), false);
            let det = vec![
                ("obfuscate_cycles".to_string(), e.before),
                ("none_cycles".to_string(), e.after),
                ("zero_cycles".to_string(), e.detail[0].1),
            ];
            (hotpath_row(&e), det, vec![("op".to_string(), hist)])
        }
        "mutations" => {
            let workload = harness::param(&params, "workload").expect("workload param");
            let mode = match workload {
                w if w.starts_with("hypercalls_distinct") => SmpMode::Distinct,
                "hypercalls_contended" => SmpMode::Contended,
                w if w.starts_with("hypercalls_contended_ring") => SmpMode::ContendedRing,
                other => panic!("unknown workload {other:?}"),
            };
            // The workload name must outlive the entry; the known names
            // are interned here rather than leaked.
            let name: &'static str = match workload {
                "hypercalls_distinct" => "hypercalls_distinct",
                "hypercalls_contended" => "hypercalls_contended",
                "hypercalls_contended_ring" => "hypercalls_contended_ring",
                "hypercalls_distinct_shards" => "hypercalls_distinct_shards",
                "hypercalls_contended_ringdepth" => "hypercalls_contended_ringdepth",
                other => panic!("unknown workload {other:?}"),
            };
            let (e, hist) = smp_run_mutations(
                name,
                p("threads", 2),
                p("pairs", 64),
                mode,
                p("shards", tyche_core::shared::SHARDS),
                p("ring_depth", ConcurrentMonitor::DEFAULT_RING_DEPTH),
            );
            let det = smp_det(&e);
            (smp_row(&e), det, vec![("call".to_string(), hist)])
        }
        "smp_transitions" => {
            let (e, hist) = smp_run_transitions(p("threads", 2), p("roundtrips", 256));
            let det = smp_det(&e);
            (smp_row(&e), det, vec![("call".to_string(), hist)])
        }
        "population" => {
            let (e, hists) = scale_population(p("population", 1_000), p("neighbors", 64), p("depth", 1024));
            (scale_row(&e), Vec::new(), hists)
        }
        "fleet" => fleet_bench(
            p("machines", 2),
            p("requests", 512),
            p("byzantine", 0) != 0,
            p("faulted", 0) != 0,
            seed,
        ),
        other => {
            eprintln!("harness-child: unknown scenario {other:?}");
            std::process::exit(2);
        }
    };
    let line = harness::ChildLine { id, seed, det, row, hists };
    println!("{}", line.emit());
}

/// Deterministic fields of an SMP entry: exact op counts and the
/// submission totals that do not depend on thread interleaving. Timing
/// counters (shard waits, IPI batches, makespans) stay out — they are
/// measurements, not invariants.
fn smp_det(e: &SmpEntry) -> Vec<(String, u64)> {
    let mut det = vec![("ops".to_string(), e.ops)];
    for (k, v) in &e.detail {
        if matches!(*k, "shootdowns_requested" | "ring_submitted" | "fast_transitions") {
            det.push((k.to_string(), *v));
        }
    }
    det
}

fn hotpath_row(e: &HotpathEntry) -> Json {
    json::parse(e.to_json().trim()).expect("hotpath row is valid JSON")
}

fn smp_row(e: &SmpEntry) -> Json {
    json::parse(e.to_json().trim()).expect("smp row is valid JSON")
}

fn scale_row(e: &ScaleEntry) -> Json {
    json::parse(e.to_json().trim()).expect("scale row is valid JSON")
}

/// Wraps in-process bench results in a [`SuiteRun`] and writes the
/// artifact with generator `"inprocess"` — readable by `repro report`
/// for local diffs, but rejected by `report --check`, so an in-process
/// run can never masquerade as a committed harness artifact.
fn write_inprocess_artifact(
    family: Family,
    smoke: bool,
    out: Option<&str>,
    rows: Vec<MergedScenario>,
) {
    let ids: Vec<String> = rows.iter().map(|r| r.id.clone()).collect();
    let run = harness::SuiteRun {
        family,
        smoke,
        rows,
        seeds: vec![1],
        config: format!(
            "suite={} smoke={smoke} inprocess; {}",
            family.name(),
            ids.join("; ")
        ),
        invocations: 1,
    };
    let doc = harness::assemble_artifact(&run, MONITOR_VERSION, &workspace_root(), "inprocess");
    let path = resolve_bench_out(family, smoke, out);
    if let Err(e) = harness::write_artifact(&path, &doc, smoke) {
        eprintln!("bench: {e}");
        std::process::exit(1);
    }
    println!("wrote {}", path.display());
}

/// `repro verify` — the judiciary toolchain: static TCB audit + bounded
/// model check, summarized in one table. Returns false on any failure.
fn verify() -> bool {
    let root = workspace_root();
    let config = tyche_verify::static_audit::AuditConfig::tyche_defaults(&root);
    let report = match tyche_verify::static_audit::run(&config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("verify: static audit failed to run: {e}");
            return false;
        }
    };
    let static_config = tyche_verify::static_lints::StaticConfig::tyche_defaults(&root);
    let deep = match tyche_verify::static_lints::run(&static_config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("verify: deep static lints failed to run: {e}");
            return false;
        }
    };
    let bmc_config = tyche_verify::bmc::BmcConfig::default();
    let result = tyche_verify::bmc::run(&bmc_config);

    let mut t = Table::new(
        "VERIFY — judiciary toolchain (static TCB audit + deep lints + bounded model check)",
        &["check", "scope", "result"],
    );
    t.row(&[
        "no unsafe / forbid(unsafe_code)".into(),
        config.tcb_crates.join(", "),
        pass_fail(!report.findings.iter().any(|f| {
            matches!(
                f.check,
                tyche_verify::static_audit::Check::ForbidUnsafe
                    | tyche_verify::static_audit::Check::UnsafeToken
            )
        })),
    ]);
    t.row(&[
        "panic-construct allowlist".into(),
        format!("{} files", report.files_scanned),
        pass_fail(!report.findings.iter().any(|f| {
            matches!(
                f.check,
                tyche_verify::static_audit::Check::PanicConstruct
                    | tyche_verify::static_audit::Check::StaleAllowlist
            )
        })),
    ]);
    t.row(&[
        "C1 LOC budget".into(),
        format!("{} / {} lines", report.tcb_loc, report.loc_budget),
        pass_fail(!report
            .findings
            .iter()
            .any(|f| f.check == tyche_verify::static_audit::Check::LocBudget)),
    ]);
    t.row(&[
        "dependency closure (workspace-only)".into(),
        "TCB manifests".into(),
        pass_fail(!report
            .findings
            .iter()
            .any(|f| f.check == tyche_verify::static_audit::Check::Dependency)),
    ]);
    let lint_rows: &[(&str, tyche_verify::static_lints::Lint, String)] = &[
        (
            "lock-order hierarchy",
            tyche_verify::static_lints::Lint::LockOrder,
            format!("{} acquisition sites", deep.lock_sites),
        ),
        (
            "panic-reachability from hypercall entry",
            tyche_verify::static_lints::Lint::PanicReach,
            format!("{} leaves + {} tiers", deep.leaves.len(), deep.tiers.len()),
        ),
        (
            "atomics-ordering discipline",
            tyche_verify::static_lints::Lint::AtomicOrder,
            format!(
                "{} atomic ops, {}/{} relaxed-ok",
                deep.atomic_sites, deep.relaxed_ok_used, deep.relaxed_ok_budget
            ),
        ),
        (
            "trace completeness (mutating engine ops)",
            tyche_verify::static_lints::Lint::TraceComplete,
            format!("{} ops proven to emit", deep.traced_ops),
        ),
    ];
    for (name, lint, scope) in lint_rows {
        t.row(&[
            (*name).into(),
            scope.clone(),
            pass_fail(!deep.findings.iter().any(|f| f.lint == *lint)),
        ]);
    }
    t.row(&[
        "bounded model check".into(),
        format!(
            "{} states, depth {}, exhaustive: {}",
            result.states, result.max_depth_reached, result.exhaustive
        ),
        pass_fail(result.violations.is_empty() && result.exhaustive),
    ]);
    t.print();

    for finding in &report.findings {
        println!("  finding: {finding}");
    }
    for finding in &deep.findings {
        println!("  static-lint finding: {finding}");
    }
    for violation in result.violations.iter().take(5) {
        println!("  bmc violation: {} (trace: {:?})", violation.message, violation.trace);
    }

    let doc = deep.to_json();
    let path = workspace_root().join("STATIC.json");
    std::fs::write(&path, doc).expect("write STATIC.json");
    println!("  wrote {}", path.display());

    report.passed() && deep.passed() && result.violations.is_empty() && result.exhaustive
}

fn pass_fail(ok: bool) -> String {
    if ok { "PASS".into() } else { "FAIL".into() }
}

/// F1 — the separation of powers: legislative (domain defines policy),
/// executive (monitor enforces), judiciary (root of trust verifies).
fn f1() {
    let mut t = Table::new(
        "F1 — separation of powers (Fig. 1)",
        &["power", "actor", "artifact", "verified"],
    );
    let mut m = boot();
    // Legislative: the OS domain defines a policy (an exclusive enclave).
    let (enclave, _gate) = spawn_sealed(&mut m, 0, 0x10_0000, 0x1000, &[0], SealPolicy::strict());
    t.row(&[
        "legislative".into(),
        "any domain (the OS here)".into(),
        format!("policy: {enclave} owns [0x100000,0x101000) exclusively"),
        "-".into(),
    ]);
    // Executive: the monitor enforced it in hardware.
    let denied = m.dom_read(0, 0x10_0000, &mut [0u8; 1]).is_err();
    t.row(&[
        "executive".into(),
        "isolation monitor".into(),
        "EPT denies the OS access to enclave memory".into(),
        format!("{denied}"),
    ]);
    // Judiciary: the TPM-rooted chain verifies monitor + domain.
    let verifier = Verifier {
        tpm_key: m.machine.tpm.attestation_key(),
        expected_monitor_pcr: expected_monitor_pcr(MONITOR_VERSION),
        monitor_key: m.report_key(),
    };
    let qn = [3u8; 32];
    let quote = m.machine_quote(qn).expect("quote");
    let rn = [4u8; 32];
    let report = m.attest_domain(enclave, rn).expect("report");
    let ok = verifier.verify(&quote, &qn, &report, &rn, None).is_ok();
    t.row(&[
        "judiciary".into(),
        "root of trust + remote verifier".into(),
        "TPM quote -> monitor key -> signed domain report".into(),
        format!("{ok}"),
    ]);
    t.print();
}

/// F2 — the confidential SaaS pipeline.
fn f2() {
    let mut t = Table::new(
        "F2 — confidential SaaS processing (Fig. 2)",
        &["step", "outcome"],
    );
    let start = Instant::now();
    let mut f = scenarios::fig2();
    let cycles0 = f.monitor.machine.cycles.now();
    let verified = scenarios::fig2_customer_verifies(&mut f);
    t.row(&[
        "customer attests app+crypto+topology".into(),
        format!("accepted={verified}"),
    ]);
    let data = *b"customer sensitive data 32 byte!";
    let key = 0x1234_5678_9abc_def0u64;
    let ct = scenarios::fig2_run_pipeline(&mut f, key, &data);
    let correct = ct == scenarios::fig2_expected(key, &data);
    t.row(&[
        "pipeline: app -> GPU -> crypto -> net".into(),
        format!("ciphertext correct={correct}"),
    ]);
    let leak = f
        .monitor
        .dom_read(0, layout::CRYPTO.0 + 0x2000, &mut [0u8; 8])
        .is_ok();
    t.row(&[
        "provider tries to read the key".into(),
        format!("leaked={leak}"),
    ]);
    t.row(&[
        "cost".into(),
        format!(
            "{} simulated cycles, {:?} host",
            f.monitor.machine.cycles.now() - cycles0,
            start.elapsed()
        ),
    ]);
    t.print();
}

/// F3 — deployment on the monitor: domains orthogonal to VMs/processes.
fn f3() {
    let mut t = Table::new(
        "F3 — trust domains cut across system abstractions (Fig. 3)",
        &["abstraction", "domain", "provider sees its memory?"],
    );
    let mut m = boot();
    // A confidential VM (the SaaS VM box of Fig. 3).
    m.dom_write(0, 0x40_0000, b"guest kernel")
        .expect("stage guest");
    let vm =
        libtyche::ConfidentialVm::launch(&mut m, 0, (0x40_0000, 0x60_0000), &[1], 0x40_0000, &[])
            .expect("launch cVM");
    let vm_hidden = m.dom_read(0, 0x40_0000, &mut [0u8; 1]).is_err();
    t.row(&[
        "SaaS VM (cVM)".into(),
        format!("{}", vm.domain),
        format!("{}", !vm_hidden),
    ]);
    // A driver compartment inside the provider's OS.
    let sb = libtyche::Sandbox::create(&mut m, 0, (0x10_0000, 0x10_4000), None).expect("sandbox");
    let drv_hidden = m.dom_read(0, 0x10_0000, &mut [0u8; 1]).is_err();
    t.row(&[
        "kernel driver sandbox".into(),
        format!("{}", sb.domain),
        format!("{}", !drv_hidden),
    ]);
    // An enclave inside the VM's RAM (nested inside a traditional box).
    vm.enter(&mut m, 1).expect("enter vm");
    let mut client = libtyche::TycheClient::new(&mut m, 1);
    let (inner, _t) = client.create_domain().expect("inner");
    let page = client.carve(0x50_0000, 0x50_1000).expect("carve");
    client
        .grant(page, inner, Rights::RW, RevocationPolicy::ZERO)
        .expect("grant");
    libtyche::ConfidentialVm::exit(&mut m, 1).expect("exit vm");
    let enc_hidden = m.dom_read(0, 0x50_0000, &mut [0u8; 1]).is_err();
    t.row(&[
        "enclave nested in the VM".into(),
        format!("{inner}"),
        format!("{}", !enc_hidden),
    ]);
    t.print();
}

/// F4 — the memory view with reference counts.
fn f4() {
    let f = scenarios::fig2();
    let rows = scenarios::fig4_view(
        &f.monitor,
        &[
            layout::CRYPTO,
            layout::APP,
            layout::APP_CRYPTO,
            layout::APP_GPU,
            layout::NET,
        ],
    );
    let names = [
        "crypto confidential",
        "app confidential",
        "app<->crypto",
        "app<->gpu",
        "net (untrusted)",
    ];
    let mut t = Table::new(
        "F4 — domain-to-region mappings with reference counts (Fig. 4)",
        &["region", "range", "domains", "refcount"],
    );
    for (row, name) in rows.iter().zip(names.iter()) {
        t.row(&[
            (*name).into(),
            format!("[{:#x},{:#x})", row.region.0, row.region.1),
            format!("{:?}", row.domains),
            row.refcount.to_string(),
        ]);
    }
    t.print();
}

/// C1 — monitor TCB size (<10K LOC claim).
fn c1() {
    let mut t = Table::new(
        "C1 — TCB size (paper: monitor is 'minimal (<10K LOC)')",
        &["component", "in TCB?", "LOC"],
    );
    // The count comes from tyche-verify's shared counter — the same one
    // `tcb-audit` gates on, so this table and CI can never disagree.
    let root = workspace_root();
    let count = move |dirs: &[&str]| -> usize {
        dirs.iter()
            .map(|d| {
                tyche_verify::loc::count_crate(&root.join("crates").join(d))
                    .expect("count crate LOC")
                    .code
            })
            .sum()
    };
    let core = count(&["core"]);
    let monitor = count(&["monitor"]);
    let crypto = count(&["crypto"]);
    let hw = count(&["hw"]);
    let guest = count(&["guest", "libtyche", "elf"]);
    t.row(&[
        "capability engine (tyche-core)".into(),
        "yes".into(),
        core.to_string(),
    ]);
    t.row(&[
        "monitor + backends (tyche-monitor)".into(),
        "yes".into(),
        monitor.to_string(),
    ]);
    t.row(&[
        "crypto (tyche-crypto)".into(),
        "yes".into(),
        crypto.to_string(),
    ]);
    t.row(&[
        "monitor TCB total".into(),
        "yes".into(),
        (core + monitor + crypto).to_string(),
    ]);
    t.row(&[
        "simulated hardware (not in TCB: is the 'silicon')".into(),
        "no".into(),
        hw.to_string(),
    ]);
    t.row(&[
        "guest OS + libtyche + elf (untrusted domains)".into(),
        "no".into(),
        guest.to_string(),
    ]);
    t.row(&[
        "paper claim".into(),
        "-".into(),
        format!("<10000 -> measured {}", core + monitor + crypto),
    ]);
    t.print();
}

/// C2 — transition latency: mediated (VMCALL) vs fast (VMFUNC).
fn c2() {
    let mut t = Table::new(
        "C2 — domain transition latency (paper: 'fast (100 cycles) ... using VMFUNC')",
        &["path", "simulated cycles/one-way", "host ns/roundtrip"],
    );
    let mut m = boot();
    let (_d, gate) = spawn_sealed(&mut m, 0, 0x10_0000, 0x1000, &[0], SealPolicy::strict());
    const N: u64 = 10_000;

    let c0 = m.machine.cycles.now();
    let h0 = Instant::now();
    for _ in 0..N {
        m.call(0, MonitorCall::Enter { cap: gate }).expect("enter");
        m.call(0, MonitorCall::Return).expect("return");
    }
    let mediated_cycles = (m.machine.cycles.now() - c0) / (2 * N);
    let mediated_ns = timing::per_op_ns(h0.elapsed(), N as usize)
        .unwrap_or_else(|err| panic!("c2 mediated timing: {err}"));
    t.row(&[
        "mediated (VMCALL)".into(),
        mediated_cycles.to_string(),
        mediated_ns.to_string(),
    ]);

    let c0 = m.machine.cycles.now();
    let h0 = Instant::now();
    for _ in 0..N {
        m.enter_fast(0, gate).expect("enter fast");
        m.ret_fast(0).expect("ret fast");
    }
    let fast_cycles = (m.machine.cycles.now() - c0) / (2 * N);
    let fast_ns = timing::per_op_ns(h0.elapsed(), N as usize)
        .unwrap_or_else(|err| panic!("c2 fast timing: {err}"));
    t.row(&[
        "fast (VMFUNC)".into(),
        fast_cycles.to_string(),
        fast_ns.to_string(),
    ]);
    t.row(&[
        "speedup".into(),
        format!("{:.1}x", mediated_cycles as f64 / fast_cycles as f64),
        format!("{:.1}x", mediated_ns as f64 / fast_ns.max(1) as f64),
    ]);
    t.print();
}

/// C3 — flush-on-transition side-channel mitigation.
fn c3() {
    let mut t = Table::new(
        "C3 — cache-flush transition policy (side-channel mitigation, §4.1)",
        &[
            "policy",
            "victim lines visible after exit",
            "cycles/transition",
        ],
    );
    for flush in [false, true] {
        let mut m = boot();
        let os = m.engine.root().expect("root");
        let (victim, _) = spawn_sealed(&mut m, 0, 0x10_0000, 0x4000, &[0], SealPolicy::strict());
        let policy = if flush {
            RevocationPolicy::OBFUSCATE
        } else {
            RevocationPolicy::NONE
        };
        let gate = m.engine.make_transition(os, victim, policy).expect("gate");
        m.sync_effects().expect("sync");

        m.call(0, MonitorCall::Enter { cap: gate }).expect("enter");
        // Victim touches its secret-dependent lines.
        for i in 0..16u64 {
            m.dom_write(0, 0x10_0000 + i * 64, &[i as u8])
                .expect("touch");
        }
        let c0 = m.machine.cycles.now();
        m.call(0, MonitorCall::Return).expect("return");
        let cost = m.machine.cycles.now() - c0;
        // Attacker (the OS) probes the cache model for victim residue.
        let tag = m
            .x86_backend()
            .and_then(|b| b.ept_root(victim))
            .expect("tag")
            .as_u64();
        let resident = m.machine.cache.resident_lines_of(tag);
        t.row(&[
            if flush {
                "flush cache+TLB".into()
            } else {
                "no flush".to_string()
            },
            resident.to_string(),
            cost.to_string(),
        ]);
    }
    t.print();
}

/// C4 — cascading revocation under chains and circular sharing.
fn c4() {
    let mut t = Table::new(
        "C4 — cascading revocation (terminates under circular sharing, §4.1)",
        &[
            "topology",
            "domains",
            "revoked caps",
            "host us",
            "refcount after",
        ],
    );
    for &depth in &[4usize, 16, 64, 256] {
        let mut m = boot();
        let first = tyche_bench::fixtures::share_chain(&mut m, (0x20_0000, 0x20_1000), depth);
        let caps_before = m.engine.caps().count();
        let h0 = Instant::now();
        m.engine
            .revoke(m.engine.root().expect("root"), first)
            .expect("revoke");
        m.sync_effects().expect("sync");
        let us = h0.elapsed().as_micros();
        let revoked = caps_before - m.engine.caps().count();
        let rc = m.engine.refcount_mem(MemRegion::new(0x20_0000, 0x20_1000));
        t.row(&[
            format!("chain-{depth}"),
            depth.to_string(),
            revoked.to_string(),
            us.to_string(),
            rc.to_string(),
        ]);
    }
    // Circular sharing: A -> B -> A -> B ... over one page.
    let mut m = boot();
    let os = m.engine.root().expect("root");
    let (a, _) = m.engine.create_domain(os).expect("a");
    let (b, _) = m.engine.create_domain(os).expect("b");
    let cap = {
        let mut client = libtyche::TycheClient::new(&mut m, 0);
        client.carve(0x20_0000, 0x20_1000).expect("carve")
    };
    let first = m
        .engine
        .share(os, cap, a, None, Rights::RW, RevocationPolicy::NONE)
        .expect("s");
    let mut cur = first;
    let mut who = (b, a);
    for _ in 0..64 {
        cur = m
            .engine
            .share(who.1, cur, who.0, None, Rights::RW, RevocationPolicy::NONE)
            .expect("s");
        who = (who.1, who.0);
    }
    m.sync_effects().expect("sync");
    let caps_before = m.engine.caps().count();
    m.engine.revoke(os, first).expect("revoke cycle");
    m.sync_effects().expect("sync");
    let revoked = caps_before - m.engine.caps().count();
    let rc = m.engine.refcount_mem(MemRegion::new(0x20_0000, 0x20_1000));
    t.row(&[
        "circular A<->B x64".into(),
        "2".into(),
        revoked.to_string(),
        "-".into(),
        rc.to_string(),
    ]);
    assert!(audit::audit(&m.engine).is_empty());
    t.print();
}

/// C5 — Tyche enclaves vs the SGX model.
fn c5() {
    use tyche_baselines::sgx::{HostPid, SgxMachine};
    let mut t = Table::new(
        "C5 — Tyche-enclaves vs SGX (the three §4.2 improvements)",
        &["property", "SGX model", "Tyche"],
    );
    // (a) implicit host-memory access.
    let mut sgx = SgxMachine::new(10_000);
    let e = sgx
        .ecreate(HostPid(1), (0x10_0000, 0x20_0000), 16, false)
        .expect("ecreate");
    let sgx_reads_host = sgx.enclave_can_read_host(e, 0xdead_0000).expect("query");
    let mut m = boot();
    m.dom_write(0, 0x50_0000, b"host secret").expect("w");
    let (_enc, gate) = spawn_sealed(&mut m, 0, 0x10_0000, 0x1000, &[0], SealPolicy::strict());
    m.call(0, MonitorCall::Enter { cap: gate }).expect("enter");
    let tyche_reads_host = m.dom_read(0, 0x50_0000, &mut [0u8; 1]).is_ok();
    m.call(0, MonitorCall::Return).expect("ret");
    t.row(&[
        "enclave reads untrusted host memory".into(),
        format!("{sgx_reads_host} (implicit, leak-prone)"),
        format!("{tyche_reads_host} (explicit sharing only)"),
    ]);
    // (b) address/layout reuse.
    let mut sgx = SgxMachine::new(10_000);
    sgx.ecreate(HostPid(1), (0x10_0000, 0x20_0000), 16, false)
        .expect("e1");
    let sgx_overlap = sgx
        .ecreate(HostPid(1), (0x10_0000, 0x20_0000), 16, false)
        .is_ok();
    let mut m = boot();
    let mut tyche_count = 0;
    for i in 0..8u64 {
        let base = 0x10_0000 + i * 0x10_000;
        let _ = spawn_sealed(&mut m, 0, base, 0x1000, &[0], SealPolicy::strict());
        tyche_count += 1;
    }
    t.row(&[
        "same layout twice / many enclaves".into(),
        format!("{sgx_overlap} (ELRANGE exclusive)"),
        format!("true ({tyche_count} coexisting)"),
    ]);
    // (c) nesting.
    let mut sgx = SgxMachine::new(10_000);
    let sgx_nests = sgx
        .ecreate(HostPid(1), (0x30_0000, 0x40_0000), 16, true)
        .is_ok();
    let mut m = boot();
    let (_outer, gate) = spawn_sealed(&mut m, 0, 0x10_0000, 0x40_000, &[0], SealPolicy::nestable());
    m.call(0, MonitorCall::Enter { cap: gate }).expect("enter");
    let mut client = libtyche::TycheClient::new(&mut m, 0);
    let nested = client.create_domain().is_ok();
    t.row(&[
        "enclave spawns nested enclave".into(),
        format!("{sgx_nests} (ECREATE is host-only)"),
        format!("{nested}"),
    ]);
    t.print();
}

/// C6 — in-process compartments vs process isolation.
fn c6() {
    use tyche_baselines::process::{ProcessCosts, ProcessSim};
    let mut t = Table::new(
        "C6 — isolating an untrusted library (compartment vs process, §2.2)",
        &[
            "mechanism",
            "create (cycles)",
            "per-call (cycles)",
            "teardown (cycles)",
        ],
    );
    // Tyche compartment.
    let mut m = boot();
    let c0 = m.machine.cycles.now();
    let sb = libtyche::Sandbox::create(
        &mut m,
        0,
        (0x20_0000, 0x20_4000),
        Some((0x30_0000, 0x30_1000)),
    )
    .expect("sandbox");
    let create = m.machine.cycles.now() - c0;
    let c0 = m.machine.cycles.now();
    const CALLS: u64 = 100;
    for _ in 0..CALLS {
        sb.run(&mut m, 0, |ctx| ctx.write(0x20_0000, b"x"))
            .expect("run");
    }
    let per_call = (m.machine.cycles.now() - c0) / CALLS;
    let c0 = m.machine.cycles.now();
    sb.destroy(&mut m, 0).expect("destroy");
    let teardown = m.machine.cycles.now() - c0;
    t.row(&[
        "Tyche compartment".into(),
        create.to_string(),
        per_call.to_string(),
        teardown.to_string(),
    ]);
    // Process baseline.
    let costs = ProcessCosts::default();
    let mut p = ProcessSim::create(costs, 0x4000);
    let pc_create = p.cycles;
    let before = p.cycles;
    for _ in 0..CALLS {
        p.call(b"x", |mem| mem[0] ^= 1);
    }
    let pc_call = (p.cycles - before) / CALLS;
    let total = p.destroy();
    let pc_teardown = total - before - pc_call * CALLS;
    t.row(&[
        "separate process + IPC".into(),
        pc_create.to_string(),
        pc_call.to_string(),
        pc_teardown.to_string(),
    ]);
    t.row(&[
        "process/compartment ratio".into(),
        format!("{:.1}x", pc_create as f64 / create as f64),
        format!("{:.2}x", pc_call as f64 / per_call as f64),
        "-".into(),
    ]);
    t.print();
}

/// C7 — PMP fixed-segment pressure vs EPT.
fn c7() {
    let mut t = Table::new(
        "C7 — PMP layout validation (fixed segments, §4) vs EPT",
        &[
            "fragments",
            "PMP entries needed",
            "PMP accepts",
            "EPT accepts",
        ],
    );
    for &frags in &[1usize, 7, 14, 15, 20] {
        // RISC-V.
        let mut m = boot_riscv(BootConfig::default());
        let os = m.engine.root().expect("root");
        let (child, _) = m.engine.create_domain(os).expect("child");
        m.sync_effects().expect("sync");
        let ram = m
            .engine
            .caps_of(os)
            .iter()
            .find(|c| c.active && c.is_memory())
            .map(|c| c.id)
            .expect("ram");
        let mut pmp_ok = true;
        for i in 0..frags {
            let s = 0x10_0000 + (i as u64) * 0x4000;
            let r = m.call(
                0,
                MonitorCall::Share {
                    cap: ram,
                    target: child,
                    sub: Some((s, s + 0x1000)),
                    rights: Rights::RO,
                    policy: RevocationPolicy::NONE,
                },
            );
            if r == Err(Status::BackendFailure) {
                pmp_ok = false;
            }
        }
        // x86 with identical fragmentation.
        let mut mx = boot();
        let osx = mx.engine.root().expect("root");
        let (childx, _) = mx.engine.create_domain(osx).expect("child");
        mx.sync_effects().expect("sync");
        let ramx = mx
            .engine
            .caps_of(osx)
            .iter()
            .find(|c| c.active && c.is_memory())
            .map(|c| c.id)
            .expect("ram");
        let mut ept_ok = true;
        for i in 0..frags {
            let s = 0x10_0000 + (i as u64) * 0x4000;
            let r = mx.call(
                0,
                MonitorCall::Share {
                    cap: ramx,
                    target: childx,
                    sub: Some((s, s + 0x1000)),
                    rights: Rights::RO,
                    policy: RevocationPolicy::NONE,
                },
            );
            if r.is_err() {
                ept_ok = false;
            }
        }
        t.row(&[
            frags.to_string(),
            frags.to_string(), // each 1-page fragment is one NAPOT entry
            pmp_ok.to_string(),
            ept_ok.to_string(),
        ]);
    }
    t.print();
}

/// C8 — two-tier attestation: tamper matrix + cost.
fn c8() {
    let mut t = Table::new(
        "C8 — two-tier attestation (§3.4): tamper matrix",
        &["attack", "verifier outcome"],
    );
    let mut m = boot();
    let (enclave, _) = spawn_sealed(&mut m, 0, 0x10_0000, 0x1000, &[0], SealPolicy::strict());
    let verifier = Verifier {
        tpm_key: m.machine.tpm.attestation_key(),
        expected_monitor_pcr: expected_monitor_pcr(MONITOR_VERSION),
        monitor_key: m.report_key(),
    };
    let qn = [1u8; 32];
    let rn = [2u8; 32];
    let quote = m.machine_quote(qn).expect("quote");
    let signed = m.attest_domain(enclave, rn).expect("report");
    let check = |q, qn2: &[u8; 32], s, rn2: &[u8; 32]| match verifier.verify(q, qn2, s, rn2, None) {
        Ok(_) => "ACCEPTED".to_string(),
        Err(e) => format!("rejected ({e})"),
    };
    t.row(&["honest chain".into(), check(&quote, &qn, &signed, &rn)]);
    t.row(&[
        "stale quote (replay)".into(),
        check(&quote, &[9u8; 32], &signed, &rn),
    ]);
    t.row(&[
        "stale report (replay)".into(),
        check(&quote, &qn, &signed, &[9u8; 32]),
    ]);
    let mut forged = signed.clone();
    forged.report.measurement = tyche_crypto::hash(b"evil");
    t.row(&[
        "tampered measurement".into(),
        check(&quote, &qn, &forged, &rn),
    ]);
    let mut inflated = signed.clone();
    for r in &mut inflated.report.resources {
        r.refcount = tyche_core::refcount::RefCount { max: 1, min: 1 };
    }
    inflated.report.entry ^= 1; // ensure byte difference
    t.row(&[
        "tampered refcounts".into(),
        check(&quote, &qn, &inflated, &rn),
    ]);
    // Wrong-monitor machine.
    let mut evil = tyche_monitor::boot_x86(BootConfig {
        version: "evil-monitor v6.6.6",
        ..Default::default()
    });
    let (evil_dom, _) = spawn_sealed(&mut evil, 0, 0x10_0000, 0x1000, &[0], SealPolicy::strict());
    let evil_verifier = Verifier {
        tpm_key: evil.machine.tpm.attestation_key(),
        expected_monitor_pcr: expected_monitor_pcr(MONITOR_VERSION),
        monitor_key: evil.report_key(),
    };
    let eq = evil.machine_quote(qn).expect("quote");
    let es = evil.attest_domain(evil_dom, rn).expect("report");
    t.row(&[
        "machine running a different monitor".into(),
        match evil_verifier.verify(&eq, &qn, &es, &rn, None) {
            Ok(_) => "ACCEPTED".into(),
            Err(e) => format!("rejected ({e})"),
        },
    ]);
    // Cost vs domain size.
    let mut t2 = Table::new(
        "C8b — attestation cost vs domain resources",
        &["resources", "report bytes", "host us/attest+verify"],
    );
    for &n in &[1usize, 8, 32, 128] {
        let mut m = boot();
        let os = m.engine.root().expect("root");
        let (d, _) = m.engine.create_domain(os).expect("d");
        let mut client = libtyche::TycheClient::new(&mut m, 0);
        for i in 0..n as u64 {
            let s = 0x10_0000 + i * 0x2000;
            let cap = client.carve(s, s + 0x1000).expect("carve");
            client
                .share(cap, d, None, Rights::RO, RevocationPolicy::NONE)
                .expect("share");
        }
        m.engine.set_entry(os, d, 0x10_0000).expect("entry");
        m.engine.seal(os, d, SealPolicy::strict()).expect("seal");
        m.sync_effects().expect("sync");
        let h0 = Instant::now();
        const REPS: u32 = 50;
        let mut bytes = 0usize;
        for i in 0..REPS {
            let mut rn = [0u8; 32];
            rn[0] = i as u8;
            let signed = m.attest_domain(d, rn).expect("report");
            bytes = signed.report.canonical_bytes().len();
            let verifier = Verifier {
                tpm_key: m.machine.tpm.attestation_key(),
                expected_monitor_pcr: expected_monitor_pcr(MONITOR_VERSION),
                monitor_key: m.report_key(),
            };
            let quote = m.machine_quote(rn).expect("quote");
            verifier
                .verify(&quote, &rn, &signed, &rn, None)
                .expect("verify");
        }
        t2.row(&[
            n.to_string(),
            bytes.to_string(),
            (h0.elapsed().as_micros() as u64 / REPS as u64).to_string(),
        ]);
    }
    t.print();
    t2.print();
}

/// C9 — TCB growth: hierarchical VMs vs flat domains.
fn c9() {
    use tyche_baselines::vmstack::VmStack;
    let mut t = Table::new(
        "C9 — TCB on the trust path vs nesting depth (§2.2)",
        &[
            "depth",
            "VM-stack TCB (LOC)",
            "components",
            "monitor TCB (LOC)",
            "ratio",
        ],
    );
    for depth in 1..=6 {
        let stack = VmStack::typical(depth);
        let vm = stack.tcb_loc();
        let mon = VmStack::monitor_tcb_loc(depth);
        t.row(&[
            depth.to_string(),
            vm.to_string(),
            stack.trusted_components().to_string(),
            mon.to_string(),
            format!("{}x", vm / mon),
        ]);
    }
    t.print();
}

/// C10 — mediation: the negative-path matrix.
fn c10() {
    let mut t = Table::new(
        "C10 — the monitor mediates everything (§3.1): refusal matrix",
        &["violation attempt", "outcome"],
    );
    let mut m = boot();
    let (enclave, gate) = spawn_sealed(&mut m, 0, 0x10_0000, 0x1000, &[0], SealPolicy::strict());
    let os = m.engine.root().expect("root");
    t.row(&[
        "enter on a core the domain does not own".into(),
        format!(
            "{:?}",
            m.call(1, MonitorCall::Enter { cap: gate })
                .expect_err("denied")
        ),
    ]);
    t.row(&[
        "return with empty call stack".into(),
        format!("{:?}", m.call(0, MonitorCall::Return).expect_err("denied")),
    ]);
    t.row(&[
        "touch revoked/unshared memory".into(),
        format!(
            "fault={:?}",
            m.dom_read(0, 0x10_0000, &mut [0u8; 1]).is_err()
        ),
    ]);
    t.row(&[
        "extend a sealed domain".into(),
        format!("{:?}", {
            let mut client = libtyche::TycheClient::new(&mut m, 0);
            let cap = client.carve(0x40_0000, 0x40_1000).expect("carve");
            client
                .share(cap, enclave, None, Rights::RO, RevocationPolicy::NONE)
                .expect_err("denied")
        }),
    ]);
    t.row(&[
        "re-seal / reconfigure a sealed domain".into(),
        format!(
            "{:?}",
            m.call(
                0,
                MonitorCall::SetEntry {
                    domain: enclave,
                    entry: 0
                }
            )
            .expect_err("denied")
        ),
    ]);
    m.call(0, MonitorCall::Enter { cap: gate }).expect("enter");
    t.row(&[
        "enclave revokes the OS's capabilities".into(),
        format!("{:?}", {
            let os_cap = m
                .engine
                .caps_of(os)
                .iter()
                .find(|c| c.active && c.is_memory())
                .expect("cap")
                .id;
            m.call(0, MonitorCall::Revoke { cap: os_cap })
                .expect_err("denied")
        }),
    ]);
    t.row(&[
        "enclave kills its manager".into(),
        format!(
            "{:?}",
            m.call(0, MonitorCall::Kill { domain: os })
                .expect_err("denied")
        ),
    ]);
    t.print();
}

/// C11 — driver sandboxing in the kernel.
fn c11() {
    use tyche_guest::driver::{BuggyDriver, DriverHost, DriverRequest, XorBlockDriver};
    let mut t = Table::new(
        "C11 — kernel driver isolation (§4.2): blast radius + cost",
        &[
            "mode",
            "buggy driver outcome",
            "kernel state",
            "cycles/request",
        ],
    );
    for sandboxed in [false, true] {
        let mut m = boot();
        m.dom_write(0, 0x8_0000, b"kernel struct").expect("w");
        m.dom_write(0, 0x30_0000, b"abcd").expect("w");
        let host = if sandboxed {
            DriverHost::sandboxed(&mut m, 0, (0x31_0000, 0x31_4000), (0x30_0000, 0x30_1000))
                .expect("host")
        } else {
            DriverHost::Direct
        };
        // Cost with the well-behaved driver.
        let mut good = XorBlockDriver { key: 0x5a };
        let c0 = m.machine.cycles.now();
        const REQS: u64 = 100;
        for _ in 0..REQS {
            host.dispatch(
                &mut m,
                0,
                &mut good,
                DriverRequest {
                    op: 1,
                    addr: 0x30_0000,
                    len: 4,
                },
            )
            .expect("dispatch");
        }
        let per_req = (m.machine.cycles.now() - c0) / REQS;
        // Blast radius with the buggy driver.
        let mut buggy = BuggyDriver {
            wild_target: 0x8_0000,
        };
        let resp = host
            .dispatch(
                &mut m,
                0,
                &mut buggy,
                DriverRequest {
                    op: 666,
                    addr: 0x30_0000,
                    len: 4,
                },
            )
            .expect("dispatch");
        let mut state = [0u8; 13];
        m.dom_read(0, 0x8_0000, &mut state).expect("read");
        t.row(&[
            if sandboxed {
                "sandboxed (Tyche kernel compartment)".into()
            } else {
                "direct (in-kernel)".to_string()
            },
            format!("{resp:?}"),
            if &state == b"kernel struct" {
                "intact".into()
            } else {
                "CORRUPTED".to_string()
            },
            per_req.to_string(),
        ]);
    }
    t.print();
}

/// C12 — confidential VMs.
fn c12() {
    let mut t = Table::new(
        "C12 — confidential VMs on a Tyche backend (§4.2)",
        &["step", "outcome"],
    );
    let mut m = boot();
    m.dom_write(0, 0x40_0000, b"guest kernel image")
        .expect("stage");
    let c0 = m.machine.cycles.now();
    let vm = libtyche::ConfidentialVm::launch(
        &mut m,
        0,
        (0x40_0000, 0x80_0000),
        &[0, 1],
        0x40_0000,
        &[(0x40_0000, 0x40_1000)],
    )
    .expect("launch");
    t.row(&[
        "launch 4 MiB cVM (2 vCPUs)".into(),
        format!("{} cycles", m.machine.cycles.now() - c0),
    ]);
    t.row(&[
        "hypervisor reads guest RAM".into(),
        format!("fault={}", m.dom_read(0, 0x40_0000, &mut [0u8; 1]).is_err()),
    ]);
    let report = vm.attest(&mut m, 0, 7).expect("attest");
    t.row(&[
        "launch measurement attested".into(),
        format!(
            "exclusive={} contents={}",
            report.report.check_sharing(&[]),
            report.report.content_measurements.len()
        ),
    ]);
    // Guest boots its OS and runs processes.
    vm.enter(&mut m, 0).expect("enter");
    let mut guest = tyche_guest::GuestOs::new((0x40_0000, 0x80_0000), 0, 0x10_0000);
    let pid = guest.spawn(0x10_0000).expect("spawn");
    let addr = match guest.syscall(&mut m, pid, tyche_guest::Syscall::Alloc { len: 64 }) {
        tyche_guest::SysResult::Addr(a) => a,
        other => panic!("{other:?}"),
    };
    let wrote = guest.syscall(
        &mut m,
        pid,
        tyche_guest::Syscall::Write {
            addr,
            data: b"in-guest process".to_vec(),
        },
    );
    libtyche::ConfidentialVm::exit(&mut m, 0).expect("exit");
    t.row(&[
        "guest OS runs a process inside".into(),
        format!("{wrote:?}"),
    ]);
    let c0 = m.machine.cycles.now();
    vm.destroy(&mut m, 0).expect("destroy");
    t.row(&[
        "teardown (zero+flush 4 MiB)".into(),
        format!("{} cycles", m.machine.cycles.now() - c0),
    ]);
    let mut buf = [0u8; 18];
    m.dom_read(0, 0x40_0000, &mut buf).expect("read");
    t.row(&[
        "guest RAM after teardown".into(),
        format!("zeroed={}", buf == [0u8; 18]),
    ]);
    t.print();
}

/// E1 — SR-IOV device multiplexing among TEEs (§4.2 extension).
fn e1() {
    use tyche_hw::addr::GuestPhysAddr;
    use tyche_hw::iommu::DeviceId;
    use tyche_hw::sriov::{SriovNic, VfIndex, VfRing};
    let mut t = Table::new(
        "E1 — SR-IOV: one NIC, per-TEE virtual functions (§4.2)",
        &["check", "outcome"],
    );
    const PF: u16 = 0x100;
    let mut m = tyche_monitor::boot_x86(BootConfig {
        devices: vec![PF + 1, PF + 2],
        ..Default::default()
    });
    // Two TEEs, each granted one VF.
    let mut tees = Vec::new();
    for (i, mem) in [
        (0u16, (0x10_0000u64, 0x10_4000u64)),
        (1, (0x20_0000, 0x20_4000)),
    ] {
        let mut client = libtyche::TycheClient::new(&mut m, 0);
        let (d, _gate) = client.create_domain().expect("domain");
        let cap = client.carve(mem.0, mem.1).expect("carve");
        client
            .grant(cap, d, Rights::RW, RevocationPolicy::OBFUSCATE)
            .expect("grant");
        let dev = {
            let me = client.whoami();
            client
                .monitor
                .engine
                .caps_of(me)
                .iter()
                .find(|c| c.active && matches!(c.resource, Resource::Device(x) if x == PF + 1 + i))
                .map(|c| c.id)
        }
        .expect("vf cap");
        client
            .grant(dev, d, Rights::USE, RevocationPolicy::NONE)
            .expect("grant vf");
        client.set_entry(d, mem.0).expect("entry");
        client.seal(d, SealPolicy::strict()).expect("seal");
        tees.push((d, mem));
    }
    let mut nic = SriovNic::new(DeviceId(PF), 2);
    for (i, (_, mem)) in tees.iter().enumerate() {
        nic.configure_ring(
            VfIndex(i as u16),
            VfRing {
                rx_base: GuestPhysAddr::new(mem.0 + 0x2000),
                rx_slots: 4,
                slot_bytes: 256,
            },
        );
    }
    m.machine
        .mem
        .write(tyche_hw::PhysAddr::new(tees[0].1 .0), b"pkt")
        .expect("stage");
    let ok = nic
        .send(
            &mut m.machine.iommu,
            &mut m.machine.mem,
            VfIndex(0),
            VfIndex(1),
            GuestPhysAddr::new(tees[0].1 .0),
            3,
        )
        .is_ok();
    t.row(&[
        "TEE A sends to TEE B through its own VF".into(),
        format!("delivered={ok}"),
    ]);
    let escape = nic
        .send(
            &mut m.machine.iommu,
            &mut m.machine.mem,
            VfIndex(0),
            VfIndex(1),
            GuestPhysAddr::new(tees[1].1 .0),
            3,
        )
        .is_err();
    t.row(&[
        "TEE A transmits TEE B's memory via its VF".into(),
        format!("blocked={escape}"),
    ]);
    t.row(&[
        "VF ownership (engine)".into(),
        format!(
            "A owns VF0={} B owns VF1={} cross={}",
            m.engine.owns_device(tees[0].0, PF + 1),
            m.engine.owns_device(tees[1].0, PF + 2),
            m.engine.owns_device(tees[0].0, PF + 2)
        ),
    ]);
    t.print();
}

/// E2 — multi-domain topology attestation (§4.2 extension).
fn e2() {
    use tyche_monitor::attest::{TopologySpec, Verifier};
    let mut t = Table::new(
        "E2 — multi-domain topology attestation (§4.2): all paths attested",
        &["deployment", "verifier outcome"],
    );
    let mut f = tyche_bench::scenarios::fig2_without_net();
    let verifier = Verifier {
        tpm_key: f.monitor.machine.tpm.attestation_key(),
        expected_monitor_pcr: expected_monitor_pcr(MONITOR_VERSION),
        monitor_key: f.monitor.report_key(),
    };
    let qn = [1u8; 32];
    let rn = [2u8; 32];
    let quote = f.monitor.machine_quote(qn).expect("quote");
    let reports = vec![
        f.monitor.attest_domain(f.crypto, rn).expect("crypto"),
        f.monitor.attest_domain(f.app, rn).expect("app"),
        f.monitor.attest_domain(f.gpu_domain, rn).expect("gpu"),
    ];
    use tyche_bench::scenarios::layout;
    let spec = TopologySpec {
        member_measurements: vec![None, None, None],
        channels: vec![
            (layout::APP_CRYPTO.0, layout::APP_CRYPTO.1, vec![0, 1]),
            (layout::APP_GPU.0, layout::APP_GPU.1, vec![1, 2]),
        ],
    };
    let ok = verifier
        .verify_topology(&quote, &qn, &reports, &rn, &spec)
        .is_ok();
    t.row(&[
        "crypto+app+gpu, channels exactly declared".into(),
        format!("accepted={ok}"),
    ]);
    let sneaky_spec = TopologySpec {
        member_measurements: vec![None, None, None],
        channels: vec![(layout::APP_CRYPTO.0, layout::APP_CRYPTO.1, vec![0, 1])],
    };
    let caught = verifier
        .verify_topology(&quote, &qn, &reports, &rn, &sneaky_spec)
        .unwrap_err();
    t.row(&[
        "same deployment, GPU channel undeclared".into(),
        format!("rejected ({caught})"),
    ]);
    t.print();
}

/// E3 — multi-key memory encryption (§4.2 extension).
fn e3() {
    let mut t = Table::new(
        "E3 — MKTME physical-attack resistance (§4.2)",
        &["view", "guest image bytes visible?"],
    );
    let mut m = boot();
    m.dom_write(0, 0x40_0000, b"guest kernel image")
        .expect("stage");
    let vm = libtyche::ConfidentialVm::launch_encrypted(
        &mut m,
        0,
        (0x40_0000, 0x42_0000),
        &[0],
        0x40_0000,
        &[],
    )
    .expect("launch");
    vm.enter(&mut m, 0).expect("enter");
    let mut through = [0u8; 18];
    m.dom_read(0, 0x40_0000, &mut through).expect("guest read");
    libtyche::ConfidentialVm::exit(&mut m, 0).expect("exit");
    t.row(&[
        "guest, through the memory controller".into(),
        format!("{}", &through == b"guest kernel image"),
    ]);
    let mut raw = [0u8; 18];
    m.machine
        .mem
        .read(tyche_hw::PhysAddr::new(0x40_0000), &mut raw)
        .expect("raw");
    t.row(&[
        "physical attacker (cold-boot DRAM dump)".into(),
        format!("{}", &raw == b"guest kernel image"),
    ]);
    t.row(&[
        "protected pages".into(),
        m.machine.mktme.protected_pages().to_string(),
    ]);
    t.print();
}

/// E4 — interrupt-routing capabilities (§4.1 extension).
fn e4() {
    let mut t = Table::new(
        "E4 — cross-domain interrupt routing via remapping (§4.1)",
        &["event", "outcome"],
    );
    let mut m = boot();
    let mut client = libtyche::TycheClient::new(&mut m, 0);
    let (driver, gate) = client.create_domain().expect("domain");
    let page = client.carve(0x10_0000, 0x10_1000).expect("carve");
    client
        .grant(page, driver, Rights::RW, RevocationPolicy::ZERO)
        .expect("grant");
    let (core0, irq) = {
        let me = client.whoami();
        let caps = client.monitor.engine.caps_of(me);
        (
            caps.iter()
                .find(|c| c.active && matches!(c.resource, Resource::CpuCore(0)))
                .map(|c| c.id)
                .expect("core"),
            caps.iter()
                .find(|c| c.active && matches!(c.resource, Resource::Interrupt(33)))
                .map(|c| c.id)
                .expect("irq"),
        )
    };
    client
        .share(core0, driver, None, Rights::USE, RevocationPolicy::NONE)
        .expect("share core");
    let granted = client
        .grant(irq, driver, Rights::USE, RevocationPolicy::NONE)
        .expect("grant irq");
    client.set_entry(driver, 0x10_0000).expect("entry");
    client.seal(driver, SealPolicy::strict()).expect("seal");

    m.machine.irq.raise(33);
    t.row(&[
        "device raises vector 33".into(),
        format!("OS pending={:?}", m.pending_interrupts(0)),
    ]);
    m.call(0, MonitorCall::Enter { cap: gate }).expect("enter");
    t.row(&[
        "driver domain entered".into(),
        format!("driver pending={:?}", m.pending_interrupts(0)),
    ]);
    m.call(0, MonitorCall::Return).expect("ret");
    m.call(0, MonitorCall::Revoke { cap: granted })
        .expect("revoke");
    m.machine.irq.raise(33);
    t.row(&[
        "vector revoked; device raises again".into(),
        format!(
            "OS pending={:?} spurious={}",
            m.pending_interrupts(0),
            m.machine.metrics.get(Counter::IrqSpurious)
        ),
    ]);
    t.print();
}

/// E5 — RDMA between TEEs on separate machines (§4.2 extension).
fn e5() {
    use libtyche::rdma::{RdmaConnection, RdmaNic, Wire};
    use tyche_monitor::attest::Verifier;
    let mut t = Table::new(
        "E5 — attested RDMA between TEEs on two machines (§4.2)",
        &["step", "outcome"],
    );
    let mk = |base: u64| -> (tyche_monitor::Monitor, DomainId, CapId) {
        let mut m = boot();
        let (d, g) = spawn_sealed(&mut m, 0, base, 0x4000, &[0], SealPolicy::strict());
        (m, d, g)
    };
    let (mut ma, da, ga) = mk(0x10_0000);
    let (mut mb, db, gb) = mk(0x10_0000);
    let qn = [1u8; 32];
    let rn = [2u8; 32];
    let quote_b = mb.machine_quote(qn).expect("quote");
    let report_b = mb.attest_domain(db, rn).expect("report b");
    let report_a = ma.attest_domain(da, rn).expect("report a");
    let verifier = Verifier {
        tpm_key: mb.machine.tpm.attestation_key(),
        expected_monitor_pcr: expected_monitor_pcr(MONITOR_VERSION),
        monitor_key: mb.report_key(),
    };
    let mut conn =
        RdmaConnection::establish(&verifier, &quote_b, &qn, &report_b, &rn, &report_a, None)
            .expect("establish");
    t.row(&[
        "mutual attestation + channel key".into(),
        "established".into(),
    ]);
    let mut nic_b = RdmaNic::new();
    let mut client = libtyche::TycheClient::new(&mut mb, 0);
    client.enter(gb).expect("enter b");
    let rkey = nic_b
        .register_mr(&mut mb, 0, 0x10_1000, 0x10_2000, true)
        .expect("register");
    libtyche::TycheClient::new(&mut mb, 0).ret().expect("ret b");
    t.row(&[
        "TEE B registers an exclusive MR".into(),
        format!("{rkey:?}"),
    ]);
    let mut wire = Wire::new();
    let mut client = libtyche::TycheClient::new(&mut ma, 0);
    client.enter(ga).expect("enter a");
    client
        .write(0x10_0100, b"cross-machine secret")
        .expect("stage");
    conn.rdma_write(
        &mut ma, 0, 0x10_0100, 20, &mut wire, &mut mb, &nic_b, rkey, 0,
    )
    .expect("rdma write");
    libtyche::TycheClient::new(&mut ma, 0).ret().expect("ret a");
    let mut got = [0u8; 20];
    m_enter_read(&mut mb, gb, 0x10_1000, &mut got);
    t.row(&[
        "one-sided write A->B".into(),
        format!("delivered={}", &got == b"cross-machine secret"),
    ]);
    t.row(&[
        "eavesdropper greps the wire".into(),
        format!("plaintext leaked={}", wire.leaks(b"cross-machine secret")),
    ]);
    t.row(&[
        "machine B's host reads the MR".into(),
        format!(
            "fault={}",
            mb.dom_read(0, 0x10_1000, &mut [0u8; 1]).is_err()
        ),
    ]);
    t.print();
}

/// Enters `gate` on core 0, reads `addr`, returns.
fn m_enter_read(m: &mut tyche_monitor::Monitor, gate: CapId, addr: u64, out: &mut [u8]) {
    let mut client = libtyche::TycheClient::new(m, 0);
    client.enter(gate).expect("enter");
    client.read(addr, out).expect("read");
    libtyche::TycheClient::new(m, 0).ret().expect("ret");
}

// ----------------------------------------------------------------------
// `repro bench` — hot-path before/after benchmarks (BENCH_hotpath.json)
// ----------------------------------------------------------------------

/// One measured bench entry destined for `BENCH_hotpath.json`.
struct HotpathEntry {
    name: &'static str,
    fanout: usize,
    metric: &'static str,
    before: u64,
    after: u64,
    detail: Vec<(&'static str, u64)>,
}

impl HotpathEntry {
    fn improvement(&self) -> f64 {
        self.before as f64 / (self.after.max(1)) as f64
    }

    fn to_json(&self) -> String {
        let detail = self
            .detail
            .iter()
            .map(|(k, v)| format!("\"{k}\": {v}"))
            .collect::<Vec<_>>()
            .join(", ");
        format!(
            "    {{\"name\": \"{}\", \"fanout\": {}, \"metric\": \"{}\", \
             \"before\": {}, \"after\": {}, \"improvement\": {:.2}, \
             \"detail\": {{{}}}}}",
            self.name,
            self.fanout,
            self.metric,
            self.before,
            self.after,
            self.improvement(),
            detail
        )
    }
}

/// Runs the four hot-path benchmarks and (with `json`) writes a
/// `tyche-bench-hotpath/v2` artifact (committed path for full runs,
/// `target/BENCH_hotpath.smoke.json` or `--out` for smoke). `smoke`
/// shrinks fan-outs and iteration counts to a single fast CI-sized
/// pass.
fn bench_hotpath(json: bool, smoke: bool, out: Option<&str>) {
    if json && smoke {
        // Preflight before any measurement: refuse instantly if a smoke
        // run is pointed at a committed full-run artifact.
        if let Err(e) = harness::refuse_smoke_clobber(&resolve_bench_out(Family::Hotpath, smoke, out)) {
            eprintln!("bench: {e}");
            std::process::exit(1);
        }
    }
    let fanouts: &[usize] = if smoke { &[8] } else { &[16, 64, 256, 1024] };
    let iters: usize = if smoke { 2 } else { 2000 };
    let storms: usize = if smoke { 2 } else { 5 };
    let mut rows = Vec::new();

    let mut t = Table::new(
        "BENCH — revocation storm: per-effect sync (before) vs coalesced sync (after)",
        &[
            "fan-out",
            "before (cycles)",
            "after (cycles)",
            "improvement",
        ],
    );
    for &n in fanouts {
        let (e, hist) = measure_revocation(n, storms);
        t.row(&[
            n.to_string(),
            e.before.to_string(),
            e.after.to_string(),
            format!("{:.1}x", e.improvement()),
        ]);
        rows.push(MergedScenario::from_single(
            format!("hotpath/revocation/fanout={n}"),
            hotpath_row(&e),
            vec![("op".to_string(), hist)],
        ));
    }
    t.print();

    let mut t = Table::new(
        "BENCH — capability ops: full scan (before) vs secondary indexes (after)",
        &[
            "fan-out",
            "caps_of scan (ns)",
            "caps_of indexed (ns)",
            "improvement",
        ],
    );
    for &n in fanouts {
        let (e, hist) = bench_capability_ops(n, iters);
        t.row(&[
            n.to_string(),
            e.before.to_string(),
            e.after.to_string(),
            format!("{:.1}x", e.improvement()),
        ]);
        rows.push(MergedScenario::from_single(
            format!("hotpath/capability_ops/fanout={n}"),
            hotpath_row(&e),
            vec![("op".to_string(), hist)],
        ));
    }
    t.print();

    let (e, hist) = bench_transitions(iters, false);
    let mut t = Table::new(
        "BENCH — transition latency: uncached fast path (before) vs validated cache (after)",
        &["variant", "wall ns/roundtrip", "simulated cycles/roundtrip"],
    );
    t.row(&[
        "mediated (VMCALL)".into(),
        e.detail[0].1.to_string(),
        e.detail[1].1.to_string(),
    ]);
    t.row(&[
        "fast, uncached".into(),
        e.before.to_string(),
        e.detail[2].1.to_string(),
    ]);
    t.row(&[
        "fast, cached".into(),
        e.after.to_string(),
        e.detail[2].1.to_string(),
    ]);
    t.print();
    rows.push(MergedScenario::from_single(
        "hotpath/transitions".to_string(),
        hotpath_row(&e),
        vec![("op".to_string(), hist)],
    ));

    let (e, hist) = bench_flush_policy(iters, false);
    let mut t = Table::new(
        "BENCH — flush-policy cost per mediated roundtrip (simulated cycles)",
        &["policy", "cycles/roundtrip"],
    );
    t.row(&["NONE".into(), e.after.to_string()]);
    t.row(&["ZERO".into(), e.detail[0].1.to_string()]);
    t.row(&["OBFUSCATE".into(), e.before.to_string()]);
    t.print();
    rows.push(MergedScenario::from_single(
        "hotpath/flush_policy".to_string(),
        hotpath_row(&e),
        vec![("op".to_string(), hist)],
    ));

    if json {
        write_inprocess_artifact(Family::Hotpath, smoke, out, rows);
    }
}

/// Runs `storms` before/after revocation-storm pairs at one fan-out.
/// The row's before/after cycles come from the first pair and are
/// asserted identical across all storms (the cycle model is
/// deterministic); the histogram collects per-capability wall latency
/// of every coalesced (after) storm.
fn measure_revocation(fanout: usize, storms: usize) -> (HotpathEntry, Histogram) {
    let mut hist = Histogram::new();
    let mut entry: Option<HotpathEntry> = None;
    for _ in 0..storms.max(1) {
        let (before_cycles, before_wall) = bench_revocation(fanout, false);
        let (after_cycles, after_wall) = bench_revocation(fanout, true);
        let per_cap = timing::per_op_ns(after_wall, fanout)
            .unwrap_or_else(|e| panic!("revocation storm timing: {e}"));
        hist.record_n(per_cap, fanout as u64);
        match &entry {
            None => {
                entry = Some(HotpathEntry {
                    name: "revocation",
                    fanout,
                    metric: "simulated_cycles",
                    before: before_cycles,
                    after: after_cycles,
                    detail: vec![
                        (
                            "wall_ns_before",
                            timing::total_ns(before_wall)
                                .unwrap_or_else(|e| panic!("revocation timing: {e}")),
                        ),
                        (
                            "wall_ns_after",
                            timing::total_ns(after_wall)
                                .unwrap_or_else(|e| panic!("revocation timing: {e}")),
                        ),
                    ],
                });
            }
            Some(first) => {
                assert_eq!(
                    (first.before, first.after),
                    (before_cycles, after_cycles),
                    "revocation cycle metrics drifted between storms"
                );
            }
        }
    }
    (entry.expect("at least one storm"), hist)
}

/// Shares `fanout` page windows from the root RAM cap to one child
/// (zero-on-revoke policy, the clean-up contract every fixture uses),
/// then revokes them all and syncs — uncoalesced (`before`) or coalesced
/// (`after`). Each revocation emits an `UnmapMem` plus a policy
/// `FlushTlb`; uncoalesced application resyncs and flushes per effect,
/// coalesced application folds them into one terminal sync + flush.
/// Returns (simulated cycles, wall duration) for the revoke+sync.
fn bench_revocation(fanout: usize, coalesced: bool) -> (u64, std::time::Duration) {
    let mut m = boot();
    let os = m.engine.root().expect("root");
    let ram = m
        .engine
        .caps_of(os)
        .iter()
        .find(|c| c.active && c.is_memory())
        .map(|c| c.id)
        .expect("root RAM cap");
    let (child, _t) = m.engine.create_domain(os).expect("child");
    let shares: Vec<CapId> = (0..fanout)
        .map(|i| {
            let base = 0x10_0000 + (i as u64) * 0x1000;
            m.engine
                .share(
                    os,
                    ram,
                    child,
                    Some(MemRegion::new(base, base + 0x1000)),
                    Rights::RW,
                    RevocationPolicy::ZERO,
                )
                .expect("share window")
        })
        .collect();
    m.sync_effects().expect("realize grants");
    let c0 = m.machine.cycles.now();
    let t0 = Instant::now();
    for cap in shares {
        m.engine.revoke(os, cap).expect("revoke");
    }
    if coalesced {
        m.sync_effects().expect("sync");
    } else {
        m.sync_effects_uncoalesced().expect("sync");
    }
    (m.machine.cycles.now() - c0, t0.elapsed())
}

/// Builds an engine with `fanout` domains (one shared window each) and
/// times the indexed queries against their linear-scan twins on one
/// small domain. Wall-time only: the queries charge no simulated
/// cycles. The histogram samples the indexed `caps_of` query (the row's
/// `after` op) in batches, so per-sample clock reads stay out of the
/// distribution.
fn bench_capability_ops(fanout: usize, iters: usize) -> (HotpathEntry, Histogram) {
    use std::hint::black_box;
    let mut e = CapEngine::new();
    let root = e.create_root_domain();
    let ram = e
        .endow(
            root,
            Resource::Memory(MemRegion::new(0, (fanout as u64 + 16) * 0x1000)),
            Rights::RWX,
        )
        .expect("endow");
    let mut first = None;
    for i in 0..fanout {
        let (d, _t) = e.create_domain(root).expect("create");
        let base = (i as u64) * 0x1000;
        e.share(
            root,
            ram,
            d,
            Some(MemRegion::new(base, base + 0x1000)),
            Rights::RW,
            RevocationPolicy::NONE,
        )
        .expect("share");
        if first.is_none() {
            first = Some(d);
        }
    }
    e.drain_effects();
    let d0 = first.expect("fanout >= 1");
    let window = MemRegion::new(0, 0x1000);
    let time = |f: &mut dyn FnMut() -> usize| {
        let t0 = Instant::now();
        let mut sink = 0usize;
        for _ in 0..iters {
            sink = sink.wrapping_add(f());
        }
        black_box(sink);
        timing::per_op_ns(t0.elapsed(), iters)
            .unwrap_or_else(|err| panic!("capability_ops timing: {err}"))
    };
    let caps_scan = time(&mut || e.caps_of_scan(d0).len());
    let caps_idx = time(&mut || e.caps_of(d0).len());
    let rc_scan = time(&mut || e.refcount_mem_full_scan(window).max);
    let rc_idx = time(&mut || e.refcount_mem_full(window).max);
    let enum_scan = time(&mut || e.enumerate_scan(d0).expect("enumerate").len());
    let enum_idx = time(&mut || e.enumerate(d0).expect("enumerate").len());
    let mut hist = Histogram::new();
    let batch = iters.clamp(1, 64);
    for _ in 0..(iters / batch).max(1) {
        let t0 = Instant::now();
        let mut sink = 0usize;
        for _ in 0..batch {
            sink = sink.wrapping_add(e.caps_of(d0).len());
        }
        black_box(sink);
        let per = timing::per_op_ns(t0.elapsed(), batch)
            .unwrap_or_else(|err| panic!("capability_ops sampling: {err}"));
        hist.record_n(per, batch as u64);
    }
    (
        HotpathEntry {
            name: "capability_ops",
            fanout,
            metric: "wall_ns_per_op",
            before: caps_scan,
            after: caps_idx,
            detail: vec![
                ("refcount_scan_ns", rc_scan),
                ("refcount_indexed_ns", rc_idx),
                ("enumerate_scan_ns", enum_scan),
                ("enumerate_indexed_ns", enum_idx),
            ],
        },
        hist,
    )
}

/// Times one-way-symmetric roundtrips: mediated VMCALL, fast VMFUNC with
/// the validated cache bypassed, and fast VMFUNC with the cache warm.
/// With `traced` the sink records every event — the overhead gate runs
/// this variant and holds the cycle metrics to the untraced baseline.
/// The histogram samples cached fast roundtrips (the row's `after` op)
/// in batches of up to 16.
fn bench_transitions(iters: usize, traced: bool) -> (HotpathEntry, Histogram) {
    let mut m = boot();
    if traced {
        m.machine.trace.enable(m.machine.cores);
    }
    let (_d, gate) = spawn_sealed(&mut m, 0, 0x10_0000, 0x1000, &[0], SealPolicy::strict());
    let roundtrip = |m: &mut tyche_monitor::Monitor,
                     enter: &mut dyn FnMut(&mut tyche_monitor::Monitor)| {
        // Warm one roundtrip so cache-fill cost is not in the timing.
        enter(m);
        m.ret_fast(0).or_else(|_| {
            m.call(0, MonitorCall::Return)
                .map(|_| m.engine.root().expect("root"))
        })
        .expect("warm return");
        let c0 = m.machine.cycles.now();
        let t0 = Instant::now();
        for _ in 0..iters {
            enter(m);
            m.ret_fast(0).or_else(|_| {
                m.call(0, MonitorCall::Return)
                    .map(|_| m.engine.root().expect("root"))
            })
            .expect("return");
        }
        let ns = timing::per_op_ns(t0.elapsed(), iters)
            .unwrap_or_else(|e| panic!("transition timing: {e}"));
        let cycles = (m.machine.cycles.now() - c0) / iters as u64;
        (ns, cycles)
    };
    let (med_ns, med_cycles) = roundtrip(&mut m, &mut |m| {
        m.call(0, MonitorCall::Enter { cap: gate }).map(|_| ()).expect("enter");
    });
    let (unc_ns, fast_cycles) = roundtrip(&mut m, &mut |m| {
        m.enter_fast_uncached(0, gate).map(|_| ()).expect("enter");
    });
    let (cached_ns, _) = roundtrip(&mut m, &mut |m| {
        m.enter_fast(0, gate).map(|_| ()).expect("enter");
    });
    // Latency sampling pass over the cached fast path, batched so the
    // per-batch clock reads stay out of each sample.
    let mut hist = Histogram::new();
    let batch = iters.clamp(1, 16);
    for _ in 0..(iters / batch).max(1) {
        let t0 = Instant::now();
        for _ in 0..batch {
            m.enter_fast(0, gate).expect("enter");
            m.ret_fast(0).or_else(|_| {
                m.call(0, MonitorCall::Return)
                    .map(|_| m.engine.root().expect("root"))
            })
            .expect("return");
        }
        let per = timing::per_op_ns(t0.elapsed(), batch)
            .unwrap_or_else(|e| panic!("transition sampling: {e}"));
        hist.record_n(per, batch as u64);
    }
    (
        HotpathEntry {
            name: "transitions",
            fanout: 1,
            metric: "wall_ns_per_roundtrip",
            before: unc_ns,
            after: cached_ns,
            detail: vec![
                ("mediated_wall_ns", med_ns),
                ("mediated_cycles", med_cycles),
                ("fast_cycles", fast_cycles),
            ],
        },
        hist,
    )
}

/// Simulated cycle cost of a mediated roundtrip under each revocation
/// policy; the flush charges are deterministic, so this entry is stable
/// across machines. `traced` turns the sink on, as in
/// [`bench_transitions`]. The histogram samples NONE-policy mediated
/// roundtrip wall latency (the row's `after` op) in batches of up
/// to 16; the cycle metrics are computed over the same loop and are
/// untouched by the clock reads between batches.
fn bench_flush_policy(iters: usize, traced: bool) -> (HotpathEntry, Histogram) {
    let per_policy = |policy: RevocationPolicy, mut hist: Option<&mut Histogram>| {
        let mut m = boot();
        if traced {
            m.machine.trace.enable(m.machine.cores);
        }
        let (d, _g) = spawn_sealed(&mut m, 0, 0x10_0000, 0x1000, &[0], SealPolicy::strict());
        let os = m.engine.root().expect("root");
        let gate = m.engine.make_transition(os, d, policy).expect("gate");
        m.sync_effects().expect("sync");
        let batch = iters.clamp(1, 16);
        let rounds = (iters / batch).max(1);
        let c0 = m.machine.cycles.now();
        for _ in 0..rounds {
            let t0 = Instant::now();
            for _ in 0..batch {
                m.call(0, MonitorCall::Enter { cap: gate }).expect("enter");
                m.dom_write(0, 0x10_0000, &[1]).expect("dirty a line");
                m.call(0, MonitorCall::Return).expect("return");
            }
            if let Some(h) = hist.as_deref_mut() {
                let per = timing::per_op_ns(t0.elapsed(), batch)
                    .unwrap_or_else(|e| panic!("flush-policy sampling: {e}"));
                h.record_n(per, batch as u64);
            }
        }
        (m.machine.cycles.now() - c0) / (rounds * batch) as u64
    };
    let mut hist = Histogram::new();
    let none = per_policy(RevocationPolicy::NONE, Some(&mut hist));
    let zero = per_policy(RevocationPolicy::ZERO, None);
    let obfuscate = per_policy(RevocationPolicy::OBFUSCATE, None);
    (
        HotpathEntry {
            name: "flush_policy",
            fanout: 1,
            metric: "simulated_cycles_per_roundtrip",
            before: obfuscate,
            after: none,
            detail: vec![("zero_cycles", zero)],
        },
        hist,
    )
}

// ----------------------------------------------------------------------
// `repro bench --scale` — population sweep 1k → 1M (BENCH_scale.json)
// ----------------------------------------------------------------------

/// Measured figures for one population size in the scale sweep. All
/// latencies are wall ns per operation; the engine-level queries charge
/// no simulated cycles.
struct ScaleEntry {
    population: usize,
    create_ns: u64,
    share_ns: u64,
    attest_ns: u64,
    enter_ns: u64,
    caps_of_ns: u64,
    enumerate_ns: u64,
    refcount_ns: u64,
    chain_depth: usize,
    chain_build_ns: u64,
    chain_revoke_ns: u64,
    revoke_storm_ns: u64,
    bytes_per_domain: u64,
    revoked_recorded: usize,
    revoked_dropped: u64,
}

impl ScaleEntry {
    fn to_json(&self) -> String {
        format!(
            "    {{\"population\": {}, \"create_ns_per_op\": {}, \
             \"share_ns_per_op\": {}, \"attest_ns_per_op\": {}, \
             \"enter_ns_per_op\": {}, \
             \"neighbor\": {{\"caps_of_ns\": {}, \"enumerate_ns\": {}, \
             \"refcount_ns\": {}}}, \
             \"deep_chain\": {{\"depth\": {}, \"build_ns_per_link\": {}, \
             \"cascade_revoke_ns_per_link\": {}}}, \
             \"revoke_storm_ns_per_op\": {}, \"bytes_per_domain\": {}, \
             \"revoked_log\": {{\"recorded\": {}, \"dropped\": {}}}}}",
            self.population,
            self.create_ns,
            self.share_ns,
            self.attest_ns,
            self.enter_ns,
            self.caps_of_ns,
            self.enumerate_ns,
            self.refcount_ns,
            self.chain_depth,
            self.chain_build_ns,
            self.chain_revoke_ns,
            self.revoke_storm_ns,
            self.bytes_per_domain,
            self.revoked_recorded,
            self.revoked_dropped,
        )
    }
}

/// Records one batched sample (a timed pass of `ops` operations) into
/// `hist` and returns the per-op figure. Zero-op windows are a hard
/// error — a storm that never ran must not report a latency.
fn scale_sample(hist: &mut Histogram, elapsed: std::time::Duration, ops: usize) -> u64 {
    let per = timing::per_op_ns(elapsed, ops)
        .unwrap_or_else(|e| panic!("scale timing over {ops} ops: {e}"));
    hist.record_n(per, ops as u64);
    per
}

/// One population point of the sweep: grows `n` tenant domains (one
/// 4 KiB window each), storms create/attest/enter, measures steady-state
/// neighbor latency on a fixed sample while the full population is
/// resident, builds and cascade-revokes a `depth`-deep derivation
/// chain, then kills the whole population (the revoke storm that has to
/// stay within a small constant of the 1k per-op cost). Effects are
/// drained every 4096 mutations inside the storms at every population,
/// so the comparison across sizes stays fair.
///
/// Every storm and steady-state sweep feeds a named latency histogram;
/// per-op means are the histogram means (pure op latency — the periodic
/// drains run but are not folded into per-op figures), and the returned
/// histograms carry the tails into the artifact's `percentiles` map.
/// Expensive ops (create/share/attest/kill) are timed individually;
/// sub-µs sweeps (enter, caps_of, enumerate, refcount) are timed one
/// whole pass per sample so clock reads stay out of the distribution.
fn scale_population(
    n: usize,
    neighbors: usize,
    depth: usize,
) -> (ScaleEntry, Vec<(String, Histogram)>) {
    use std::hint::black_box;
    use tyche_core::attest::DomainReport;
    const LANE: u64 = 0x2000;
    const DRAIN_EVERY: usize = 4096;
    let k = neighbors.min(n);
    let mut e = CapEngine::new();
    let root = e.create_root_domain();
    let chain_base = n as u64 * LANE;
    let ram = e
        .endow(root, Resource::mem(0, chain_base + 0x10_0000), Rights::RWX)
        .expect("endow ram");
    let core_caps: Vec<(usize, CapId)> = (0..k)
        .map(|core| {
            let cap = e
                .endow(root, Resource::CpuCore(core), Rights::USE)
                .expect("endow core");
            (core, cap)
        })
        .collect();

    // Create storm.
    let mut h_create = Histogram::new();
    let mut domains = Vec::with_capacity(n);
    for i in 0..n {
        let s0 = Instant::now();
        let (d, _gate) = e.create_domain(root).expect("create");
        scale_sample(&mut h_create, s0.elapsed(), 1);
        domains.push(d);
        if (i + 1) % DRAIN_EVERY == 0 {
            let _ = e.drain_effects();
        }
    }
    let create_ns = h_create.mean_ns();
    let _ = e.drain_effects();

    // Share storm: every tenant gets one page of its private lane, so
    // the interval index holds `n` disjoint active regions.
    let mut h_share = Histogram::new();
    for (i, &d) in domains.iter().enumerate() {
        let base = i as u64 * LANE;
        let s0 = Instant::now();
        e.share(
            root,
            ram,
            d,
            Some(MemRegion::new(base, base + 0x1000)),
            Rights::RW,
            RevocationPolicy::NONE,
        )
        .expect("share lane");
        scale_sample(&mut h_share, s0.elapsed(), 1);
        if (i + 1) % DRAIN_EVERY == 0 {
            let _ = e.drain_effects();
        }
    }
    let share_ns = h_share.mean_ns();
    let _ = e.drain_effects();

    // The steady-state neighbors: an evenly-strided sample that gets a
    // core each, an entry point, and a seal — the long-lived tenants
    // whose latency must not degrade as the population around them
    // grows.
    let stride = (n / k).max(1);
    let sampled: Vec<(usize, DomainId)> =
        (0..k).map(|i| (i * stride, domains[i * stride])).collect();
    for (j, &(idx, d)) in sampled.iter().enumerate() {
        e.share(
            root,
            core_caps[j].1,
            d,
            None,
            Rights::USE,
            RevocationPolicy::NONE,
        )
        .expect("share core");
        e.set_entry(root, d, idx as u64 * LANE).expect("set entry");
        e.seal(root, d, SealPolicy::nestable()).expect("seal");
    }
    let _ = e.drain_effects();

    // Attest storm over the sealed sample.
    let iters = 8usize;
    let mut h_attest = Histogram::new();
    let mut sink = 0usize;
    for _ in 0..iters {
        for &(_, d) in &sampled {
            let s0 = Instant::now();
            sink = sink.wrapping_add(DomainReport::build(&e, d).expect("attest").resources.len());
            scale_sample(&mut h_attest, s0.elapsed(), 1);
        }
    }
    black_box(sink);
    let attest_ns = h_attest.mean_ns();

    // Enter storm: a transition gate per sampled neighbor, validated on
    // the distinct core that neighbor owns.
    let gates: Vec<(usize, CapId)> = sampled
        .iter()
        .enumerate()
        .map(|(j, &(_, d))| {
            (
                core_caps[j].0,
                e.make_transition(root, d, RevocationPolicy::NONE).expect("gate"),
            )
        })
        .collect();
    let _ = e.drain_effects();
    let iters = 32usize;
    let mut h_enter = Histogram::new();
    let mut sink = 0u64;
    for _ in 0..iters {
        let t0 = Instant::now();
        for &(core, gate) in &gates {
            let (target, entry, _) = e.can_enter(root, gate, core).expect("enter");
            sink = sink.wrapping_add(target.0 ^ entry);
        }
        scale_sample(&mut h_enter, t0.elapsed(), k);
    }
    black_box(sink);
    let enter_ns = h_enter.mean_ns();

    // Steady-state neighbor queries vs population: these curves must
    // stay flat or logarithmic as `n` grows.
    let mut h_caps_of = Histogram::new();
    let mut sink = 0usize;
    for _ in 0..iters {
        let t0 = Instant::now();
        for &(_, d) in &sampled {
            sink = sink.wrapping_add(e.caps_of(d).len());
        }
        scale_sample(&mut h_caps_of, t0.elapsed(), k);
    }
    black_box(sink);
    let caps_of_ns = h_caps_of.mean_ns();
    let mut h_enumerate = Histogram::new();
    let mut sink = 0usize;
    for _ in 0..iters {
        let t0 = Instant::now();
        for &(_, d) in &sampled {
            sink = sink.wrapping_add(e.enumerate(d).expect("enumerate").len());
        }
        scale_sample(&mut h_enumerate, t0.elapsed(), k);
    }
    black_box(sink);
    let enumerate_ns = h_enumerate.mean_ns();
    let mut h_refcount = Histogram::new();
    let mut sink = 0usize;
    for _ in 0..iters {
        let t0 = Instant::now();
        for &(idx, _) in &sampled {
            let base = idx as u64 * LANE;
            sink = sink.wrapping_add(e.refcount_mem_full(MemRegion::new(base, base + 0x1000)).max);
        }
        scale_sample(&mut h_refcount, t0.elapsed(), k);
    }
    black_box(sink);
    let refcount_ns = h_refcount.mean_ns();

    // Peak-resident footprint, before anything is torn down.
    let bytes_per_domain = (e.storage_bytes() / n.max(1)) as u64;

    // Deep derivation chain: two relay domains alternately re-share one
    // window `depth` times, then one revocation at the head cascades
    // through every link.
    let (relay_a, _) = e.create_domain(root).expect("relay a");
    let (relay_b, _) = e.create_domain(root).expect("relay b");
    let head = e
        .share(
            root,
            ram,
            relay_a,
            Some(MemRegion::new(chain_base, chain_base + 0x1000)),
            Rights::RW,
            RevocationPolicy::NONE,
        )
        .expect("chain head");
    let t0 = Instant::now();
    let mut cur = head;
    let mut owner = relay_a;
    for i in 0..depth {
        let target = if i % 2 == 0 { relay_b } else { relay_a };
        cur = e
            .share(owner, cur, target, None, Rights::RW, RevocationPolicy::NONE)
            .expect("chain link");
        owner = target;
    }
    black_box(cur);
    let chain_build_ns = timing::per_op_ns(t0.elapsed(), depth)
        .unwrap_or_else(|err| panic!("chain build timing over {depth} links: {err}"));
    let _ = e.drain_effects();
    let t0 = Instant::now();
    e.revoke(root, head).expect("cascade revoke");
    let chain_revoke_ns = timing::per_op_ns(t0.elapsed(), depth + 1)
        .unwrap_or_else(|err| panic!("chain revoke timing over {} links: {err}", depth + 1));
    let _ = e.drain_effects();

    // Revoke storm: kill the entire population. Sealed or not, every
    // tenant goes through the same lineage teardown, and the slab
    // freelists must absorb all of it without growing the arenas.
    // Periodic drains run between samples, so the histogram holds pure
    // kill latency while the mean keeps the teardown storm honest.
    let mut h_revoke = Histogram::new();
    for (i, &d) in domains.iter().enumerate() {
        let s0 = Instant::now();
        e.kill(root, d).expect("kill");
        scale_sample(&mut h_revoke, s0.elapsed(), 1);
        if (i + 1) % DRAIN_EVERY == 0 {
            let _ = e.drain_effects();
        }
    }
    let revoke_storm_ns = h_revoke.mean_ns();
    let _ = e.drain_effects();

    let entry = ScaleEntry {
        population: n,
        create_ns,
        share_ns,
        attest_ns,
        enter_ns,
        caps_of_ns,
        enumerate_ns,
        refcount_ns,
        chain_depth: depth,
        chain_build_ns,
        chain_revoke_ns,
        revoke_storm_ns,
        bytes_per_domain,
        revoked_recorded: e.revoked_log().len(),
        revoked_dropped: e.revoked_log().dropped(),
    };
    let hists = vec![
        ("attest".to_string(), h_attest),
        ("caps_of".to_string(), h_caps_of),
        ("create".to_string(), h_create),
        ("enter".to_string(), h_enter),
        ("enumerate".to_string(), h_enumerate),
        ("refcount".to_string(), h_refcount),
        ("revoke_storm".to_string(), h_revoke),
        ("share".to_string(), h_share),
    ];
    (entry, hists)
}

/// Runs the population sweep and (with `json`) writes an `"inprocess"`
/// scale artifact. `smoke` truncates the sweep at 10k domains and
/// shortens the derivation chain for CI.
fn bench_scale(json: bool, smoke: bool, out: Option<&str>) {
    if json && smoke {
        let path = resolve_bench_out(Family::Scale, smoke, out);
        if let Err(e) = harness::refuse_smoke_clobber(&path) {
            eprintln!("bench: {e}");
            std::process::exit(1);
        }
    }
    let populations: &[usize] = if smoke {
        &[1_000, 10_000]
    } else {
        &[1_000, 10_000, 100_000, 1_000_000]
    };
    let depth = if smoke { 256 } else { 1024 };
    let neighbors = 64;

    let mut t = Table::new(
        "BENCH — population sweep: storms and steady-state neighbor latency (wall ns/op)",
        &[
            "population",
            "create",
            "enter",
            "enumerate",
            "refcount",
            "revoke storm",
            "bytes/domain",
        ],
    );
    let mut entries = Vec::new();
    let mut rows = Vec::new();
    for &n in populations {
        let (e, hists) = scale_population(n, neighbors, depth);
        t.row(&[
            n.to_string(),
            e.create_ns.to_string(),
            e.enter_ns.to_string(),
            e.enumerate_ns.to_string(),
            e.refcount_ns.to_string(),
            e.revoke_storm_ns.to_string(),
            e.bytes_per_domain.to_string(),
        ]);
        rows.push(MergedScenario::from_single(
            format!("scale/population={n}"),
            scale_row(&e),
            hists,
        ));
        entries.push(e);
    }
    t.print();

    if let (Some(first), Some(last)) = (entries.first(), entries.last()) {
        let ratio = last.revoke_storm_ns as f64 / first.revoke_storm_ns.max(1) as f64;
        println!(
            "revoke-storm per-op cost at {} domains is {:.2}x the {}-domain cost",
            last.population, ratio, first.population
        );
    }

    if json {
        write_inprocess_artifact(Family::Scale, smoke, out, rows);
    }
}

// ----------------------------------------------------------------------
// `repro bench --fleet` — multi-machine attested channels (BENCH_fleet.json)
// ----------------------------------------------------------------------

/// A fleet child row: the deterministic JSON row, the det fields the
/// merge step cross-checks across invocations, and the named
/// histograms.
type FleetRow = (Json, Vec<(String, u64)>, Vec<(String, Histogram)>);

/// One fleet scenario: boots `machines` independent machines, mutually
/// attests every pair into MAC-keyed channels, then times `requests`
/// attested request deliveries round-robin over the ordered healthy
/// pairs (both directions, so every machine both sends and receives).
///
/// `byzantine` makes the last machine boot the evil monitor build — it
/// never gets a channel and sprays unauthenticated frames at every
/// honest machine, once after establishment and again mid-run.
/// `faulted` arms one NIC fault on each of three receiving machines
/// (drop, corrupt, duplicate — the NIC model consults the destination's
/// fault plan), each surfacing as a channel violation and teardown.
///
/// The deterministic fields are all schedule-derived (counts and
/// simulated cycles), so they must agree across invocation seeds; the
/// wall-clock request latencies feed the `request` histogram.
fn fleet_bench(
    machines: usize,
    requests: usize,
    byzantine: bool,
    faulted: bool,
    seed: u64,
) -> FleetRow {
    let byz = byzantine.then(|| machines - 1);
    let mut fleet = Fleet::new(&FleetConfig {
        machines,
        seed,
        byzantine: byz,
        ..FleetConfig::default()
    })
    .expect("fleet boots");
    if faulted {
        // One countdown-armed fault per receiving machine: a dropped
        // frame surfaces as a sequence gap (reorder) on the next frame,
        // a corrupted one as a bad MAC, a duplicated one as a replay.
        for (m, site, skip) in [
            (1usize, FaultSite::NicDrop, 3),
            (2, FaultSite::NicCorrupt, 5),
            (3, FaultSite::NicDup, 7),
        ] {
            if m < machines {
                fleet
                    .machine_mut(m)
                    .expect("faulted machine exists")
                    .monitor
                    .machine
                    .faults
                    .arm(FaultPlan::after(site, skip, 1));
            }
        }
    }
    let channels = fleet.establish_all() as u64;

    let honest: Vec<usize> = (0..machines).filter(|&m| Some(m) != byz).collect();
    let pairs: Vec<(usize, usize)> = honest
        .iter()
        .flat_map(|&a| honest.iter().filter(move |&&b| b != a).map(move |&b| (a, b)))
        .collect();
    let spray = |fleet: &mut Fleet| {
        if let Some(evil) = byz {
            for &h in &honest {
                let _ = fleet.send_raw(evil, h, 0, vec![0x5a; 64]);
                let _ = fleet.pump(h, 0);
            }
        }
    };
    spray(&mut fleet);

    let payload = [0x42u8; 64];
    let mut hist = Histogram::new();
    let mut refused = 0u64;
    for r in 0..requests {
        if byzantine && r == requests / 2 {
            spray(&mut fleet);
        }
        let (a, b) = pairs[r % pairs.len()];
        let t0 = Instant::now();
        if fleet.send(a, b, 0, &payload).is_err() {
            refused += 1;
            continue;
        }
        // Drain `b` until the request lands: garbage and post-teardown
        // frames from earlier in the schedule are violations the pump
        // steps over; a fault-dropped frame leaves the queue empty.
        loop {
            match fleet.deliver(b, 0) {
                Ok(Some(d)) if d.from == a as u64 => {
                    hist.record(t0.elapsed().as_nanos() as u64);
                    break;
                }
                Ok(Some(_)) | Err(_) => continue,
                Ok(None) => break,
            }
        }
    }

    let mut accepted = 0u64;
    let mut violations = 0u64;
    let mut quarantined = 0u64;
    let mut sim_cycles = 0u64;
    for m in 0..machines {
        let machine = fleet.machine(m).expect("machine exists");
        let s = machine.stats();
        accepted += s.accepted;
        violations += s.violations;
        quarantined += s.quarantined;
        sim_cycles = sim_cycles.max(machine.monitor.machine.core_clocks.max_now());
    }

    let row = json::parse(&format!(
        "{{\"machines\": {machines}, \"requests\": {requests}, \"byzantine\": {}, \"faulted\": {}, \
         \"channels\": {channels}, \"accepted\": {accepted}, \"violations\": {violations}, \
         \"quarantined\": {quarantined}, \"refused\": {refused}}}",
        u64::from(byzantine),
        u64::from(faulted),
    ))
    .expect("fleet row is valid JSON");
    let det = vec![
        ("machines".to_string(), machines as u64),
        ("requests".to_string(), requests as u64),
        ("channels".to_string(), channels),
        ("accepted".to_string(), accepted),
        ("violations".to_string(), violations),
        ("quarantined".to_string(), quarantined),
        ("sim_cycles".to_string(), sim_cycles),
    ];
    (row, det, vec![("request".to_string(), hist)])
}

/// Runs the fleet matrix in-process and (with `json`) writes an
/// `"inprocess"` fleet artifact — the committed `BENCH_fleet.json` comes
/// from `repro harness --suite fleet`, which runs the same matrix
/// through child processes.
fn bench_fleet(json: bool, smoke: bool, out: Option<&str>) {
    if json && smoke {
        let path = resolve_bench_out(Family::Fleet, smoke, out);
        if let Err(e) = harness::refuse_smoke_clobber(&path) {
            eprintln!("bench: {e}");
            std::process::exit(1);
        }
    }
    let mut t = Table::new(
        "BENCH — fleet: attested requests over MAC-keyed channels (wall ns/request)",
        &[
            "scenario",
            "machines",
            "channels",
            "accepted",
            "violations",
            "quarantined",
            "p50",
            "p99",
        ],
    );
    let mut rows = Vec::new();
    for spec in harness::suite_specs(Family::Fleet, smoke) {
        let p = |key: &str, default: usize| -> usize {
            harness::param(&spec.params, key)
                .and_then(|v| v.parse().ok())
                .unwrap_or(default)
        };
        let (row, _det, hists) = fleet_bench(
            p("machines", 2),
            p("requests", 512),
            p("byzantine", 0) != 0,
            p("faulted", 0) != 0,
            1,
        );
        let h = &hists.first().expect("request histogram").1;
        t.row(&[
            spec.id.clone(),
            row.get("machines").and_then(Json::as_u64).unwrap_or(0).to_string(),
            row.get("channels").and_then(Json::as_u64).unwrap_or(0).to_string(),
            row.get("accepted").and_then(Json::as_u64).unwrap_or(0).to_string(),
            row.get("violations").and_then(Json::as_u64).unwrap_or(0).to_string(),
            row.get("quarantined").and_then(Json::as_u64).unwrap_or(0).to_string(),
            h.percentile(0.50).to_string(),
            h.percentile(0.99).to_string(),
        ]);
        rows.push(MergedScenario::from_single(spec.id, row, hists));
    }
    t.print();
    if json {
        write_inprocess_artifact(Family::Fleet, smoke, out, rows);
    }
}

// ----------------------------------------------------------------------
// `repro bench --smp` — SMP serving benchmarks (BENCH_smp.json)
// ----------------------------------------------------------------------

/// One SMP bench entry: the same workload pushed through a mutex around
/// the whole monitor (one global simulated clock — `baseline`) and the
/// sharded [`ConcurrentMonitor`] (per-core clocks — `smp`). Throughput
/// is hypercalls per million simulated cycles; both sides charge the
/// identical per-operation cost, so the ratio isolates serialization.
struct SmpEntry {
    workload: &'static str,
    threads: usize,
    /// Capability shard count the concurrent front-end was built with.
    shards: usize,
    /// Submission-ring auto-drain depth (meaningful for ring workloads;
    /// recorded for every row so sweeps stay self-describing).
    ring_depth: usize,
    ops: u64,
    /// Simulated cycles to drain the workload on the single global clock.
    baseline_cycles: u64,
    /// Simulated makespan (max over per-core clocks) on the sharded path.
    smp_cycles: u64,
    detail: Vec<(&'static str, u64)>,
}

impl SmpEntry {
    fn baseline_tput(&self) -> f64 {
        self.ops as f64 * 1e6 / self.baseline_cycles.max(1) as f64
    }

    fn smp_tput(&self) -> f64 {
        self.ops as f64 * 1e6 / self.smp_cycles.max(1) as f64
    }

    fn speedup(&self) -> f64 {
        self.smp_tput() / self.baseline_tput().max(f64::MIN_POSITIVE)
    }

    fn to_json(&self) -> String {
        let detail = self
            .detail
            .iter()
            .map(|(k, v)| format!("\"{k}\": {v}"))
            .collect::<Vec<_>>()
            .join(", ");
        format!(
            "    {{\"workload\": \"{}\", \"threads\": {}, \
             \"shards\": {}, \"ring_depth\": {}, \
             \"metric\": \"ops_per_mcycle\", \"ops\": {}, \
             \"baseline_cycles\": {}, \"smp_cycles\": {}, \
             \"baseline_tput\": {:.2}, \"smp_tput\": {:.2}, \
             \"speedup\": {:.2}, \"detail\": {{{}}}}}",
            self.workload,
            self.threads,
            self.shards,
            self.ring_depth,
            self.ops,
            self.baseline_cycles,
            self.smp_cycles,
            self.baseline_tput(),
            self.smp_tput(),
            self.speedup(),
            detail
        )
    }
}

/// Per-core SMP bench setup: the sealed tenant pinned to the core, the
/// transition capability into it, and its private memory window.
#[derive(Clone, Copy)]
struct SmpLane {
    tenant: DomainId,
    gate: CapId,
    window: CapId,
}

/// Base address of core `c`'s private 64 KiB window.
fn lane_base(core: usize) -> u64 {
    0x40_0000 + (core as u64) * 0x10_000
}

/// The booted SMP bench machine: one worker lane per thread plus the
/// shared victim tenant running on its own extra core, and (for the
/// contended workloads) a pre-created pool of revocable victim-owned
/// capabilities, one column per worker.
struct SmpFixture {
    m: tyche_monitor::Monitor,
    lanes: Vec<SmpLane>,
    victim: DomainId,
    victim_gate: CapId,
    victim_core: usize,
    pool: Vec<Vec<CapId>>,
}

/// Finds root's capability for CPU core `core`.
fn find_core_cap(m: &tyche_monitor::Monitor, os: DomainId, core: usize) -> CapId {
    m.engine
        .caps_of(os)
        .iter()
        .find(|c| c.active && matches!(c.resource, Resource::CpuCore(n) if n == core))
        .map(|c| c.id)
        .expect("core cap")
}

/// Boots an x86 machine with `threads + 1` cores; worker core `c` gets a
/// sealed (nestable, so it can still share outward) tenant owning that
/// core plus a private window. The extra core hosts the *victim*: a
/// sealed, enterable tenant every contended worker mutates. Running the
/// victim on a core of its own is what makes contended revocations
/// produce real cross-core IPIs — a queued shootdown only turns into an
/// IPI if some remote core is executing an affected domain.
///
/// Tenant `c` is steered onto capability shard `c % nshards`: the
/// distinct workload measures per-shard parallelism, and an *unplanned*
/// collision would re-serialize it (at `threads > nshards` the fold-over
/// is the point — that is the shard-sweep knee). Domain and capability
/// ids come from one sequential allocator, so burning filler ids (root
/// self-transition caps) until the next id lands on the wanted residue
/// places each tenant deterministically; the assert fails loudly if the
/// allocator ever stops cooperating.
///
/// `pool_depth > 0` pre-creates, per worker, that many victim-owned
/// sub-shares of the victim's window (self-shares are legal while
/// sealed). Revoking one strips the running victim, so each contended
/// iteration has a fresh capability whose revocation must shoot down
/// the victim core.
fn smp_fixture(threads: usize, nshards: usize, pool_depth: usize) -> SmpFixture {
    use tyche_core::shared::SharedEngine;

    let mut cfg = BootConfig::default();
    cfg.machine.cores = threads + 1;
    let mut m = boot_x86(cfg);
    let os = m.engine.root().expect("root");
    let hi = lane_base(threads + 1);
    let ram = m
        .engine
        .caps_of(os)
        .iter()
        .find(|c| {
            c.active
                && matches!(c.resource, Resource::Memory(r)
                    if r.start <= lane_base(0) && hi <= r.end)
        })
        .map(|c| c.id)
        .expect("root RAM cap");

    // The victim lane: window + core + entry, sealed nestable so it can
    // still self-share (the revocation pool) after sealing.
    let victim_core = threads;
    let (victim, victim_gate) = m.engine.create_domain(os).expect("victim");
    let vbase = lane_base(victim_core);
    let vwindow = m
        .engine
        .share(
            os,
            ram,
            victim,
            Some(MemRegion::new(vbase, vbase + 0x10_000)),
            Rights::RWX,
            RevocationPolicy::NONE,
        )
        .expect("victim window");
    let vcore_cap = find_core_cap(&m, os, victim_core);
    m.engine
        .share(os, vcore_cap, victim, None, Rights::USE, RevocationPolicy::NONE)
        .expect("share victim core");
    m.engine.set_entry(os, victim, vbase).expect("victim entry");
    m.engine
        .seal(os, victim, SealPolicy::nestable())
        .expect("seal victim");

    let mut next_id = m
        .engine
        .make_transition(os, os, RevocationPolicy::NONE)
        .expect("probe")
        .0
        + 1;
    let lanes: Vec<SmpLane> = (0..threads)
        .map(|core| {
            let want = (core % nshards) as u64;
            while next_id % nshards as u64 != want {
                next_id = m
                    .engine
                    .make_transition(os, os, RevocationPolicy::NONE)
                    .expect("filler")
                    .0
                    + 1;
            }
            let base = lane_base(core);
            let (tenant, gate) = m.engine.create_domain(os).expect("tenant");
            assert_eq!(
                SharedEngine::shard_of_n(tenant, nshards),
                core % nshards,
                "tenant off its shard"
            );
            let window = m
                .engine
                .share(
                    os,
                    ram,
                    tenant,
                    Some(MemRegion::new(base, base + 0x10_000)),
                    Rights::RWX,
                    RevocationPolicy::NONE,
                )
                .expect("window");
            let core_cap = find_core_cap(&m, os, core);
            let core_share = m
                .engine
                .share(os, core_cap, tenant, None, Rights::USE, RevocationPolicy::NONE)
                .expect("share core");
            m.engine.set_entry(os, tenant, base).expect("entry");
            m.engine
                .seal(os, tenant, SealPolicy::nestable())
                .expect("seal tenant");
            next_id = core_share.0 + 1;
            SmpLane { tenant, gate, window }
        })
        .collect();

    // The revocation pool comes after the lanes so its allocations
    // cannot disturb the id steering above.
    let pool: Vec<Vec<CapId>> = (0..threads)
        .map(|_| {
            (0..pool_depth)
                .map(|i| {
                    let page = vbase + ((i % 16) as u64) * 0x1000;
                    m.engine
                        .share(
                            victim,
                            vwindow,
                            victim,
                            Some(MemRegion::new(page, page + 0x1000)),
                            Rights::RW,
                            RevocationPolicy::NONE,
                        )
                        .expect("pool cap")
                })
                .collect()
        })
        .collect();
    m.sync_effects().expect("sync fixture");
    SmpFixture {
        m,
        lanes,
        victim,
        victim_gate,
        victim_core,
        pool,
    }
}

/// The self-share a distinct-mode worker issues on iteration `i`: the
/// core's tenant sub-shares a page of its own window with itself (one
/// domain, one shard — sealing permits self-shares).
fn smp_distinct_share(core: usize, i: usize, lane: SmpLane) -> MonitorCall {
    let base = lane_base(core) + ((i % 16) as u64) * 0x1000;
    MonitorCall::Share {
        cap: lane.window,
        target: lane.tenant,
        sub: Some((base, base + 0x1000)),
        rights: Rights::RW,
        policy: RevocationPolicy::NONE,
    }
}

/// How the mutation workload reaches the monitor.
#[derive(Clone, Copy, PartialEq, Eq)]
enum SmpMode {
    /// Per-core tenants mutate their own domains (no cross-core losers).
    Distinct,
    /// Every worker mutates the shared victim through `serve`, one trap
    /// per call, draining shootdowns every iteration.
    Contended,
    /// Same contended calls, but enqueued into the per-core submission
    /// ring (`submit` + doorbell auto-drain) so trap crossings and
    /// shootdown rounds amortize over whole batches.
    ContendedRing,
}

/// Enters the actors the mode needs: distinct workers run as their
/// core's tenant; contended modes put the victim on its own core so
/// revocations have a remote core to shoot down.
fn smp_enter_actors(m: &mut tyche_monitor::Monitor, fx_lanes: &[SmpLane], mode: SmpMode, victim_core: usize, victim_gate: CapId) {
    if mode == SmpMode::Distinct {
        for (core, lane) in fx_lanes.iter().enumerate() {
            m.call(core, MonitorCall::Enter { cap: lane.gate }).expect("enter tenant");
        }
    } else {
        m.call(victim_core, MonitorCall::Enter { cap: victim_gate })
            .expect("enter victim");
    }
}

/// Runs the mutation workload (`pairs` two-call iterations per worker,
/// one worker per core) through both serving models and returns the
/// measured entry plus a wall-clock latency histogram over the SMP
/// path's call pairs (each pair contributes two per-call samples).
/// Distinct mode pairs a tenant self-share with its revocation;
/// contended modes pair a `MakeTransition` into the victim with the
/// revocation of one pre-created victim-owned pool capability, so every
/// iteration both contends on the victim's shard and strips the
/// *running* victim (a real IPI, not just a queued shootdown). For the
/// per-call modes the sample includes the shootdown drain (it is part
/// of serving that call); for the ring mode it covers the two submits
/// only — the doorbell flush amortizes over the batch and is left out.
fn smp_run_mutations(
    workload: &'static str,
    threads: usize,
    pairs: usize,
    mode: SmpMode,
    nshards: usize,
    ring_depth: usize,
) -> (SmpEntry, Histogram) {
    use std::sync::{Arc, Mutex};

    let pool_depth = if mode == SmpMode::Distinct { 0 } else { pairs };

    // Baseline: a mutex around the whole monitor; every call serializes
    // on the machine's single global cycle counter.
    let fx = smp_fixture(threads, nshards, pool_depth);
    let (mut m, lanes, victim, pool) = (fx.m, fx.lanes, fx.victim, fx.pool);
    smp_enter_actors(&mut m, &lanes, mode, fx.victim_core, fx.victim_gate);
    let c0 = m.machine.cycles.now();
    let shared = Arc::new(Mutex::new(m));
    let t0 = Instant::now();
    let workers: Vec<_> = (0..threads)
        .map(|core| {
            let shared = Arc::clone(&shared);
            let lane = lanes[core];
            let pool_caps = pool.get(core).cloned().unwrap_or_default();
            std::thread::spawn(move || {
                if mode == SmpMode::Distinct {
                    for i in 0..pairs {
                        let call = smp_distinct_share(core, i, lane);
                        let cap = match shared.lock().expect("monitor lock").call(core, call) {
                            Ok(CallResult::Cap(c)) => c,
                            other => panic!("baseline share failed: {other:?}"),
                        };
                        shared
                            .lock()
                            .expect("monitor lock")
                            .call(core, MonitorCall::Revoke { cap })
                            .expect("baseline revoke");
                    }
                } else {
                    for &cap in pool_caps.iter().take(pairs) {
                        let make = MonitorCall::MakeTransition {
                            target: victim,
                            policy: RevocationPolicy::NONE,
                        };
                        match shared.lock().expect("monitor lock").call(core, make) {
                            Ok(CallResult::Cap(_)) => {}
                            other => panic!("baseline make_transition failed: {other:?}"),
                        }
                        shared
                            .lock()
                            .expect("monitor lock")
                            .call(core, MonitorCall::Revoke { cap })
                            .expect("baseline revoke");
                    }
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("baseline worker");
    }
    let wall_base = timing::total_ns(t0.elapsed())
        .unwrap_or_else(|err| panic!("smp baseline wall clock: {err}"));
    let baseline_cycles = shared.lock().expect("monitor lock").machine.cycles.now() - c0;

    // Sharded front-end: same fixture, same ops, served concurrently.
    // Each worker samples its own call pairs into a private histogram;
    // the merge after join keeps clock reads out of other threads' way.
    let fx = smp_fixture(threads, nshards, pool_depth);
    let (mut m, lanes, victim, pool) = (fx.m, fx.lanes, fx.victim, fx.pool);
    smp_enter_actors(&mut m, &lanes, mode, fx.victim_core, fx.victim_gate);
    let cm = Arc::new(ConcurrentMonitor::with_config(m, nshards, ring_depth));
    let t0 = Instant::now();
    let workers: Vec<_> = (0..threads)
        .map(|core| {
            let cm = Arc::clone(&cm);
            let lane = lanes[core];
            let pool_caps = pool.get(core).cloned().unwrap_or_default();
            std::thread::spawn(move || {
                let mut hist = Histogram::new();
                let pair_sample = |hist: &mut Histogram, d: std::time::Duration| {
                    let per = timing::per_op_ns(d, 2)
                        .unwrap_or_else(|err| panic!("smp pair timing: {err}"));
                    hist.record_n(per, 2);
                };
                match mode {
                    SmpMode::Distinct => {
                        for i in 0..pairs {
                            let call = smp_distinct_share(core, i, lane);
                            let s0 = Instant::now();
                            let cap = match cm.serve(core, call) {
                                Ok(CallResult::Cap(c)) => c,
                                other => panic!("smp share failed: {other:?}"),
                            };
                            cm.serve(core, MonitorCall::Revoke { cap }).expect("smp revoke");
                            // Per-iteration drain. Distinct losers run on the
                            // requesting core itself, so the drain finds no
                            // remote core to interrupt: shootdowns_requested
                            // counts up while ipis_sent stays 0 — by design.
                            cm.sync_shootdowns(core);
                            pair_sample(&mut hist, s0.elapsed());
                        }
                    }
                    SmpMode::Contended => {
                        for &cap in pool_caps.iter().take(pairs) {
                            let make = MonitorCall::MakeTransition {
                                target: victim,
                                policy: RevocationPolicy::NONE,
                            };
                            let s0 = Instant::now();
                            match cm.serve(core, make) {
                                Ok(CallResult::Cap(_)) => {}
                                other => panic!("smp make_transition failed: {other:?}"),
                            }
                            cm.serve(core, MonitorCall::Revoke { cap }).expect("smp revoke");
                            // Per-iteration drain: the victim runs on its own
                            // core, so every revocation's queued invalidation
                            // becomes a real IPI here.
                            cm.sync_shootdowns(core);
                            pair_sample(&mut hist, s0.elapsed());
                        }
                    }
                    SmpMode::ContendedRing => {
                        let check = |outcome: RingOutcome| match outcome {
                            RingOutcome::Queued(_) => {}
                            RingOutcome::Completed(r) => {
                                r.expect("ring inline");
                            }
                            RingOutcome::Drained(results) => {
                                for r in results {
                                    r.expect("ring drain");
                                }
                            }
                        };
                        for &cap in pool_caps.iter().take(pairs) {
                            let s0 = Instant::now();
                            check(cm.submit(
                                core,
                                MonitorCall::MakeTransition {
                                    target: victim,
                                    policy: RevocationPolicy::NONE,
                                },
                            ));
                            check(cm.submit(core, MonitorCall::Revoke { cap }));
                            pair_sample(&mut hist, s0.elapsed());
                        }
                        // Ring drains are themselves flush boundaries (one
                        // coalesced shootdown round per batch); flush the tail.
                        for r in cm.ring_doorbell(core) {
                            r.expect("ring flush");
                        }
                    }
                }
                hist
            })
        })
        .collect();
    let mut call_hist = Histogram::new();
    for w in workers {
        call_hist.merge_from(&w.join().expect("smp worker"));
    }
    let wall_smp =
        timing::total_ns(t0.elapsed()).unwrap_or_else(|err| panic!("smp wall clock: {err}"));
    let smp_cycles = cm.makespan();
    let shard_waits = SmpStats::get(&cm.stats.shard_waits);
    let shootdowns = SmpStats::get(&cm.stats.shootdowns_requested);
    let ipis = SmpStats::get(&cm.stats.ipis_sent);
    let ring_submitted = SmpStats::get(&cm.stats.ring_submitted);
    let ring_batches = SmpStats::get(&cm.stats.ring_batches);
    let monitor = Arc::try_unwrap(cm).ok().expect("workers joined").finish();
    assert!(
        audit::audit(&monitor.engine).is_empty(),
        "smp bench left the engine unauditable"
    );
    if mode != SmpMode::Distinct {
        assert!(ipis > 0, "contended workload must deliver real IPIs");
    }

    let entry = SmpEntry {
        workload,
        threads,
        shards: nshards,
        ring_depth,
        ops: (2 * pairs * threads) as u64,
        baseline_cycles,
        smp_cycles,
        detail: vec![
            ("wall_ns_baseline", wall_base),
            ("wall_ns_smp", wall_smp),
            ("shard_waits", shard_waits),
            ("shootdowns_requested", shootdowns),
            ("ipis_sent", ipis),
            ("ring_submitted", ring_submitted),
            ("ring_batches", ring_batches),
        ],
    };
    (entry, call_hist)
}

/// Runs the transition workload: each core does `roundtrips` fast
/// Enter+Return roundtrips into its own sealed tenant. The baseline
/// still takes the whole-monitor mutex per one-way switch; the SMP path
/// serves them from per-core state with no shared lock at all. The
/// returned histogram samples the SMP path per one-way switch (each
/// timed roundtrip contributes two samples).
fn smp_run_transitions(threads: usize, roundtrips: usize) -> (SmpEntry, Histogram) {
    use std::sync::{Arc, Mutex};
    use tyche_core::shared::SHARDS;

    let fx = smp_fixture(threads, SHARDS, 0);
    let (m, lanes) = (fx.m, fx.lanes);
    let c0 = m.machine.cycles.now();
    let shared = Arc::new(Mutex::new(m));
    let t0 = Instant::now();
    let workers: Vec<_> = (0..threads)
        .map(|core| {
            let shared = Arc::clone(&shared);
            let lane = lanes[core];
            std::thread::spawn(move || {
                for _ in 0..roundtrips {
                    shared
                        .lock()
                        .expect("monitor lock")
                        .enter_fast(core, lane.gate)
                        .expect("baseline enter");
                    shared
                        .lock()
                        .expect("monitor lock")
                        .ret_fast(core)
                        .expect("baseline return");
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("baseline worker");
    }
    let wall_base = timing::total_ns(t0.elapsed())
        .unwrap_or_else(|err| panic!("smp baseline wall clock: {err}"));
    let baseline_cycles = shared.lock().expect("monitor lock").machine.cycles.now() - c0;

    let fx = smp_fixture(threads, SHARDS, 0);
    let (m, lanes) = (fx.m, fx.lanes);
    let cm = Arc::new(ConcurrentMonitor::new(m));
    let t0 = Instant::now();
    let workers: Vec<_> = (0..threads)
        .map(|core| {
            let cm = Arc::clone(&cm);
            let lane = lanes[core];
            std::thread::spawn(move || {
                let mut hist = Histogram::new();
                for _ in 0..roundtrips {
                    let s0 = Instant::now();
                    match cm.serve(core, MonitorCall::Enter { cap: lane.gate }) {
                        Ok(CallResult::Entered { .. }) => {}
                        other => panic!("smp enter failed: {other:?}"),
                    }
                    match cm.serve(core, MonitorCall::Return) {
                        Ok(CallResult::Returned { .. }) => {}
                        other => panic!("smp return failed: {other:?}"),
                    }
                    let per = timing::per_op_ns(s0.elapsed(), 2)
                        .unwrap_or_else(|err| panic!("smp roundtrip timing: {err}"));
                    hist.record_n(per, 2);
                }
                hist
            })
        })
        .collect();
    let mut call_hist = Histogram::new();
    for w in workers {
        call_hist.merge_from(&w.join().expect("smp worker"));
    }
    let wall_smp =
        timing::total_ns(t0.elapsed()).unwrap_or_else(|err| panic!("smp wall clock: {err}"));
    let smp_cycles = cm.makespan();
    let fast = SmpStats::get(&cm.stats.fast_transitions);
    let mutations = SmpStats::get(&cm.stats.mutations);

    let entry = SmpEntry {
        workload: "transitions_distinct",
        threads,
        shards: SHARDS,
        ring_depth: ConcurrentMonitor::DEFAULT_RING_DEPTH,
        ops: (2 * roundtrips * threads) as u64,
        baseline_cycles,
        smp_cycles,
        detail: vec![
            ("wall_ns_baseline", wall_base),
            ("wall_ns_smp", wall_smp),
            ("fast_transitions", fast),
            ("mediated_fallbacks", mutations),
        ],
    };
    (entry, call_hist)
}

/// Runs the SMP serving suite at 1–32 worker threads (one per modeled
/// core) and (with `json`) writes an `"inprocess"` SMP artifact. Full
/// runs append two sweeps at fixed thread counts: shard count at the
/// widest fan-out (locating the shard-collision knee) and ring depth on
/// the contended path (the batching amortization curve). `smoke`
/// shrinks everything to a single 2-thread pass per workload for CI.
/// Cycle numbers are simulated, so they are independent of the host
/// machine, and IPI charges are per-requester batches (TLB-gather
/// discipline), so they do not depend on thread interleaving either.
/// Wall-clock appears only in `detail` and the call-latency histogram.
fn bench_smp(json: bool, smoke: bool, out: Option<&str>) {
    use tyche_core::shared::SHARDS;

    if json && smoke {
        let path = resolve_bench_out(Family::Smp, smoke, out);
        if let Err(e) = harness::refuse_smoke_clobber(&path) {
            eprintln!("bench: {e}");
            std::process::exit(1);
        }
    }
    let threads: &[usize] = if smoke { &[2] } else { &[1, 2, 4, 8, 16, 32] };
    let pairs: usize = if smoke { 8 } else { 64 };
    let roundtrips: usize = if smoke { 16 } else { 256 };
    let depth = ConcurrentMonitor::DEFAULT_RING_DEPTH;
    let mut entries: Vec<SmpEntry> = Vec::new();
    let mut rows: Vec<MergedScenario> = Vec::new();

    type Workload<'a> = (&'a str, Box<dyn Fn(usize) -> (SmpEntry, Histogram)>);
    let workloads: [Workload; 4] = [
        (
            "hypercalls_distinct: per-core tenants mutate their own domains",
            Box::new(move |t| {
                smp_run_mutations("hypercalls_distinct", t, pairs, SmpMode::Distinct, SHARDS, depth)
            }),
        ),
        (
            "hypercalls_contended: every core mutates one shared running domain",
            Box::new(move |t| {
                smp_run_mutations("hypercalls_contended", t, pairs, SmpMode::Contended, SHARDS, depth)
            }),
        ),
        (
            "hypercalls_contended_ring: same contention through per-core submission rings",
            Box::new(move |t| {
                smp_run_mutations(
                    "hypercalls_contended_ring",
                    t,
                    pairs,
                    SmpMode::ContendedRing,
                    SHARDS,
                    depth,
                )
            }),
        ),
        (
            "transitions_distinct: per-core fast enter/return roundtrips",
            Box::new(move |t| smp_run_transitions(t, roundtrips)),
        ),
    ];
    for (title, run) in &workloads {
        let mut t = Table::new(
            &format!("BENCH SMP — {title}"),
            &[
                "threads",
                "baseline (ops/Mcycle)",
                "smp (ops/Mcycle)",
                "speedup",
            ],
        );
        for &n in threads {
            let (e, h) = run(n);
            t.row(&[
                n.to_string(),
                format!("{:.1}", e.baseline_tput()),
                format!("{:.1}", e.smp_tput()),
                format!("{:.2}x", e.speedup()),
            ]);
            rows.push(MergedScenario::from_single(
                format!("smp/{}/threads={n}", e.workload),
                smp_row(&e),
                vec![("call".to_string(), h)],
            ));
            entries.push(e);
        }
        t.print();
    }

    if !smoke {
        // Shard-count sweep at the widest fan-out: below 32 shards some
        // tenants fold onto one shard and re-serialize — the knee.
        let wide = *threads.last().expect("thread list");
        let mut t = Table::new(
            &format!("BENCH SMP — hypercalls_distinct_shards: shard sweep at {wide} threads"),
            &["shards", "baseline (ops/Mcycle)", "smp (ops/Mcycle)", "speedup"],
        );
        for &ns in &[8usize, 16, 32, 64] {
            let (e, h) = smp_run_mutations(
                "hypercalls_distinct_shards",
                wide,
                pairs,
                SmpMode::Distinct,
                ns,
                depth,
            );
            t.row(&[
                ns.to_string(),
                format!("{:.1}", e.baseline_tput()),
                format!("{:.1}", e.smp_tput()),
                format!("{:.2}x", e.speedup()),
            ]);
            rows.push(MergedScenario::from_single(
                format!("smp/hypercalls_distinct_shards/shards={ns}"),
                smp_row(&e),
                vec![("call".to_string(), h)],
            ));
            entries.push(e);
        }
        t.print();

        // Ring-depth sweep: how much batching is needed before the
        // per-batch trap and shootdown round stop dominating.
        let mut t = Table::new(
            "BENCH SMP — hypercalls_contended_ringdepth: ring-depth sweep at 8 threads",
            &["ring_depth", "baseline (ops/Mcycle)", "smp (ops/Mcycle)", "speedup"],
        );
        for &d in &[4usize, 8, 16, 32] {
            let (e, h) = smp_run_mutations(
                "hypercalls_contended_ringdepth",
                8,
                pairs,
                SmpMode::ContendedRing,
                SHARDS,
                d,
            );
            t.row(&[
                d.to_string(),
                format!("{:.1}", e.baseline_tput()),
                format!("{:.1}", e.smp_tput()),
                format!("{:.2}x", e.speedup()),
            ]);
            rows.push(MergedScenario::from_single(
                format!("smp/hypercalls_contended_ringdepth/ring_depth={d}"),
                smp_row(&e),
                vec![("call".to_string(), h)],
            ));
            entries.push(e);
        }
        t.print();
    }

    // Headline criteria: distinct-domain throughput must scale from the
    // lowest to the highest thread count and beat the whole-monitor
    // mutex there, and the ring-batched contended path must beat the
    // mutex on the workload where per-call serving plateaus.
    let distinct: Vec<&SmpEntry> = entries
        .iter()
        .filter(|e| e.workload == "hypercalls_distinct")
        .collect();
    let first = distinct.first().expect("distinct entries");
    let last = distinct.last().expect("distinct entries");
    let scaling = last.smp_tput() / first.smp_tput().max(f64::MIN_POSITIVE);
    let vs_baseline = last.speedup();
    println!(
        "SMP scaling (hypercalls_distinct): {:.2}x from {} to {} threads; \
         {vs_baseline:.2}x vs whole-monitor mutex at {} threads",
        scaling, first.threads, last.threads, last.threads
    );
    let contended_last = entries
        .iter()
        .rfind(|e| e.workload == "hypercalls_contended")
        .expect("contended entries");
    let ring_last = entries
        .iter()
        .rfind(|e| e.workload == "hypercalls_contended_ring")
        .expect("ring entries");
    let ring_vs_baseline = ring_last.speedup();
    println!(
        "SMP contended path at {} threads: {:.2}x serve-per-call, \
         {ring_vs_baseline:.2}x ring-batched vs whole-monitor mutex",
        ring_last.threads,
        contended_last.speedup()
    );

    if json {
        write_inprocess_artifact(Family::Smp, smoke, out, rows);
    }
}

// ---------------------------------------------------------------------
// `repro fuzz` — adversarial hypercall fuzzing over fixed seeds
// ---------------------------------------------------------------------

/// The fixed seed corpus (documented in EXPERIMENTS.md § Fuzz
/// methodology). Full runs take all eight; `--smoke` takes the first
/// four with a smaller call budget for CI.
const FUZZ_SEEDS: [u64; 8] = [1, 2, 3, 5, 8, 13, 21, 34];

/// Runs the adversarial fuzzer over the fixed seed corpus, replaying
/// each seed to check trace determinism. Returns false on any audit
/// finding or replay divergence.
fn fuzz_campaign(json: bool, smoke: bool) -> bool {
    let seeds: &[u64] = if smoke { &FUZZ_SEEDS[..4] } else { &FUZZ_SEEDS };
    let calls: u64 = if smoke { 1_500 } else { 10_000 };
    let mut t = Table::new(
        "FUZZ — adversarial hypercalls under deterministic fault injection",
        &[
            "seed", "calls", "ok", "refused", "malformed", "accesses", "faults", "quar",
            "replay", "trace",
        ],
    );
    let mut pass = true;
    let mut reports = Vec::new();
    let started = Instant::now();
    for &seed in seeds {
        let config = fuzz::FuzzConfig {
            seed,
            calls,
            faults: true,
        };
        let r = fuzz::run(config);
        let replayed = fuzz::run(config).trace == r.trace;
        if !r.clean() {
            pass = false;
            for f in &r.audit_failures {
                println!("AUDIT FAILURE: {f}");
            }
        }
        if !replayed {
            pass = false;
            println!("REPLAY DIVERGENCE: seed {seed} produced two different traces");
        }
        t.row(&[
            seed.to_string(),
            r.calls.to_string(),
            r.ok.to_string(),
            r.refused.to_string(),
            r.malformed.to_string(),
            r.accesses.to_string(),
            r.faults_fired.to_string(),
            r.quarantines.to_string(),
            if replayed { "=".into() } else { "DIVERGED".into() },
            r.trace.to_hex()[..16].to_string(),
        ]);
        reports.push((r, replayed));
    }
    t.print();
    println!(
        "fuzz: {} seeds x {} calls in {:.1}s — {}",
        seeds.len(),
        calls,
        started.elapsed().as_secs_f64(),
        if pass {
            "no panics, no audit findings, all traces replay"
        } else {
            "FAILURES above"
        }
    );
    if json {
        let body = reports
            .iter()
            .map(|(r, replayed)| {
                format!(
                    "    {{\"seed\": {}, \"calls\": {}, \"ok\": {}, \"refused\": {}, \
                     \"malformed\": {}, \"accesses\": {}, \"faults_fired\": {}, \
                     \"quarantines\": {}, \"audit_failures\": {}, \"replayed\": {}, \
                     \"trace\": \"{}\"}}",
                    r.seed,
                    r.calls,
                    r.ok,
                    r.refused,
                    r.malformed,
                    r.accesses,
                    r.faults_fired,
                    r.quarantines,
                    r.audit_failures.len(),
                    replayed,
                    r.trace.to_hex()
                )
            })
            .collect::<Vec<_>>()
            .join(",\n");
        let doc = format!(
            "{{\n  \"schema\": \"tyche-fuzz/v1\",\n  \"mode\": \"{}\",\n  \
             \"monitor_version\": \"{}\",\n  \"pass\": {},\n  \"seeds\": [\n{}\n  ]\n}}\n",
            if smoke { "smoke" } else { "full" },
            MONITOR_VERSION,
            pass,
            body
        );
        let path = workspace_root().join("FUZZ.json");
        std::fs::write(&path, doc).expect("write FUZZ.json");
        println!("wrote {}", path.display());
    }
    pass
}

// ---------------------------------------------------------------------
// `repro trace` — attested trace replay + runtime verification
// ---------------------------------------------------------------------

/// The trace seed corpus (a subset of [`FUZZ_SEEDS`], documented in
/// EXPERIMENTS.md § Trace/RV methodology): seed 1 is the plain witness;
/// seed 13 quarantines a domain under fault injection, so the
/// sticky-quarantine and shootdown checkers replay a non-vacuous
/// history.
const TRACE_SEEDS: [u64; 2] = [1, 13];

/// Runs traced fuzz campaigns over [`TRACE_SEEDS`], drains each
/// machine's event log, replays it through every `tyche-verify::rv`
/// temporal checker, re-runs each seed to confirm the attested hash
/// chain reproduces bit-for-bit, and finishes with
/// [`tracing_overhead_gate`]. Returns false on any RV finding, audit
/// failure, chain divergence, or overhead breach.
fn trace_campaign(json: bool, smoke: bool) -> bool {
    let calls: u64 = if smoke { 1_500 } else { 10_000 };
    let mut t = Table::new(
        "TRACE — drained event logs replayed through the RV checkers",
        &[
            "seed", "machine", "events", "hyper", "enters", "ipis", "findings", "replay", "chain",
        ],
    );
    let mut pass = true;
    let mut per_checker = std::collections::BTreeMap::new();
    for name in rv::CHECKERS {
        per_checker.insert(name, 0usize);
    }
    let mut seeds_json = Vec::new();
    let started = Instant::now();
    for &seed in &TRACE_SEEDS {
        let config = fuzz::FuzzConfig {
            seed,
            calls,
            faults: true,
        };
        let out = fuzz::run_traced(config);
        let again = fuzz::run_traced(config);
        if !out.report.clean() {
            pass = false;
            for f in &out.report.audit_failures {
                println!("AUDIT FAILURE: {f}");
            }
        }
        let mut machines_json = Vec::new();
        for (phase, replay) in out.phases.iter().zip(again.phases.iter()) {
            let replayed = phase.chain == replay.chain;
            if !replayed {
                pass = false;
                println!(
                    "CHAIN DIVERGENCE: seed {seed} {} chained differently on replay",
                    phase.name
                );
            }
            for f in &phase.findings {
                pass = false;
                println!("RV FINDING: seed {seed} {}: {f}", phase.name);
                if let Some(n) = per_checker.get_mut(f.checker) {
                    *n += 1;
                }
            }
            let count = |pred: fn(&EventKind) -> bool| {
                phase
                    .log
                    .events()
                    .iter()
                    .filter(|e| pred(&e.kind))
                    .count()
            };
            let hyper = count(|k| matches!(k, EventKind::HyperEnter { .. }));
            let enters = count(|k| matches!(k, EventKind::Enter { .. }));
            let ipis = count(|k| matches!(k, EventKind::Ipi { .. }));
            t.row(&[
                seed.to_string(),
                phase.name.into(),
                phase.log.len().to_string(),
                hyper.to_string(),
                enters.to_string(),
                ipis.to_string(),
                phase.findings.len().to_string(),
                if replayed { "=".into() } else { "DIVERGED".into() },
                phase.chain.to_hex()[..16].to_string(),
            ]);
            machines_json.push(format!(
                "        {{\"name\": \"{}\", \"events\": {}, \"findings\": {}, \
                 \"replayed\": {}, \"chain\": \"{}\"}}",
                phase.name,
                phase.log.len(),
                phase.findings.len(),
                replayed,
                phase.chain.to_hex()
            ));
        }
        seeds_json.push(format!(
            "    {{\"seed\": {}, \"calls\": {}, \"machines\": [\n{}\n    ]}}",
            seed,
            calls,
            machines_json.join(",\n")
        ));
    }
    t.print();

    let mut t = Table::new(
        "TRACE — runtime-verification verdicts (all seeds, all machines)",
        &["checker", "findings", "verdict"],
    );
    for name in rv::CHECKERS {
        let n = per_checker.get(name).copied().unwrap_or(0);
        t.row(&[
            name.to_string(),
            n.to_string(),
            if n == 0 { "ok".into() } else { "VIOLATED".into() },
        ]);
    }
    t.print();

    let overhead_ok = tracing_overhead_gate();
    pass = pass && overhead_ok;
    println!(
        "trace: {} seeds x {} calls in {:.1}s — {}",
        TRACE_SEEDS.len(),
        calls,
        started.elapsed().as_secs_f64(),
        if pass {
            "all RV checkers clean, chains reproduce, overhead within gate"
        } else {
            "FAILURES above"
        }
    );
    if json {
        let doc = format!(
            "{{\n  \"schema\": \"tyche-trace/v1\",\n  \"mode\": \"{}\",\n  \
             \"monitor_version\": \"{}\",\n  \"pass\": {},\n  \
             \"checkers\": [{}],\n  \"overhead_gate\": {},\n  \
             \"seeds\": [\n{}\n  ]\n}}\n",
            if smoke { "smoke" } else { "full" },
            MONITOR_VERSION,
            pass,
            rv::CHECKERS
                .iter()
                .map(|c| format!("\"{c}\""))
                .collect::<Vec<_>>()
                .join(", "),
            overhead_ok,
            seeds_json.join(",\n")
        );
        let path = workspace_root().join("TRACE.json");
        std::fs::write(&path, doc).expect("write TRACE.json");
        println!("wrote {}", path.display());
    }
    pass
}

/// The tracing-overhead gate: recomputes the deterministic
/// simulated-cycle hot-path metrics with the trace sink recording and
/// holds each within 5% of the committed `BENCH_hotpath.json` value.
/// Wall-clock metrics are excluded — they gate nothing on shared CI
/// hardware; the cycle model is what the paper-facing claims rest on,
/// and tracing must not move it.
fn tracing_overhead_gate() -> bool {
    let path = workspace_root().join("BENCH_hotpath.json");
    let doc = match std::fs::read_to_string(&path) {
        Ok(d) => d,
        Err(e) => {
            println!("overhead gate: cannot read {}: {e}", path.display());
            return false;
        }
    };
    let doc = match json::parse(&doc) {
        Ok(d) => d,
        Err(e) => {
            println!("overhead gate: cannot parse {}: {e}", path.display());
            return false;
        }
    };
    let committed_row = |name: &str| -> Option<Json> {
        doc.get("benches")
            .and_then(Json::as_arr)?
            .iter()
            .find(|row| row.get("name").and_then(Json::as_str) == Some(name))
            .cloned()
    };
    let committed_field = |name: &str, field: &str| -> Option<u64> {
        committed_row(name)?.path(field).and_then(Json::as_u64)
    };
    let (trans, _) = bench_transitions(16, true);
    let (flush, _) = bench_flush_policy(16, true);
    let detail = |e: &HotpathEntry, key: &str| {
        e.detail
            .iter()
            .find(|(k, _)| *k == key)
            .map(|&(_, v)| v)
    };
    let rows: [(&str, Option<u64>, Option<u64>); 5] = [
        (
            "transitions.mediated_cycles",
            committed_field("transitions", "detail.mediated_cycles"),
            detail(&trans, "mediated_cycles"),
        ),
        (
            "transitions.fast_cycles",
            committed_field("transitions", "detail.fast_cycles"),
            detail(&trans, "fast_cycles"),
        ),
        (
            "flush_policy.obfuscate_cycles",
            committed_field("flush_policy", "before"),
            Some(flush.before),
        ),
        (
            "flush_policy.none_cycles",
            committed_field("flush_policy", "after"),
            Some(flush.after),
        ),
        (
            "flush_policy.zero_cycles",
            committed_field("flush_policy", "detail.zero_cycles"),
            detail(&flush, "zero_cycles"),
        ),
    ];
    let mut t = Table::new(
        "TRACE — tracing-overhead gate: traced cycle metrics vs committed BENCH_hotpath.json",
        &["metric", "committed", "traced", "delta", "verdict"],
    );
    let mut pass = true;
    for (label, committed, traced) in rows {
        let (Some(committed), Some(traced)) = (committed, traced) else {
            pass = false;
            t.row(&[label.to_string(), "?".into(), "?".into(), "?".into(), "MISSING".into()]);
            continue;
        };
        let delta = (traced.abs_diff(committed) as f64) * 100.0 / (committed.max(1) as f64);
        let ok = delta <= 5.0;
        pass = pass && ok;
        t.row(&[
            label.to_string(),
            committed.to_string(),
            traced.to_string(),
            format!("{delta:.2}%"),
            if ok { "ok".into() } else { "OVER BUDGET".into() },
        ]);
    }
    t.print();
    pass
}
