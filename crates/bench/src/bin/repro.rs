//! The reproduction harness: regenerates every figure and claim table.
//!
//! Usage: `cargo run -p tyche-bench --bin repro [-- <ids...>]`
//!
//! With no arguments, runs every experiment (F1–F4, C1–C12, E1–E5) plus
//! the verification suite (`verify`) and prints one table each;
//! `EXPERIMENTS.md` records these outputs next to the paper's claims.
//! `repro verify` runs the judiciary toolchain alone: the static TCB
//! audit and the bounded model check, exiting non-zero on any failure.
//!
//! `repro bench [--json] [--smoke]` runs the hot-path before/after
//! benchmarks (revocation, transitions, flush_policy, capability_ops)
//! introduced with the capability-indexing and effect-coalescing work;
//! `--json` writes `BENCH_hotpath.json` at the workspace root and
//! `--smoke` runs one tiny iteration for CI (which also exercises a
//! 2-thread SMP smoke pass). `repro bench --smp [--json] [--smoke]`
//! runs the SMP serving suite instead — concurrent hypercall throughput
//! through the sharded `ConcurrentMonitor` vs a mutex around the whole
//! monitor — and `--json` writes `BENCH_smp.json`. `repro bench
//! --scale [--json] [--smoke]` sweeps domain populations 1k → 1M
//! (create/attest/enter/revoke storms, deep derivation chains,
//! steady-state neighbor latency, bytes-per-domain) and `--json`
//! writes `BENCH_scale.json`; `--smoke` truncates the sweep at 100k.
//! `bench` is explicit-only: it is not part of the no-argument full
//! run.
//!
//! `repro trace [--json] [--smoke]` runs traced fuzz campaigns over the
//! trace seed corpus, drains each machine's event log, replays it
//! through every `tyche-verify::rv` temporal checker, re-runs each seed
//! to confirm the attested hash chain reproduces, and finishes with the
//! tracing-overhead gate (deterministic cycle metrics with the sink
//! recording must stay within 5% of the committed `BENCH_hotpath.json`
//! numbers). `--json` writes `TRACE.json` at the workspace root.

use std::time::Instant;
use tyche_bench::scenarios::{self, layout};
use tyche_bench::{boot, fuzz, spawn_sealed, Table};
use tyche_core::audit;
use tyche_core::metrics::Counter;
use tyche_core::prelude::*;
use tyche_core::trace::EventKind;
use tyche_verify::rv;
use tyche_monitor::abi::MonitorCall;
use tyche_monitor::attest::Verifier;
use tyche_monitor::boot::{expected_monitor_pcr, MONITOR_VERSION};
use tyche_monitor::monitor::CallResult;
use tyche_monitor::{
    boot_riscv, boot_x86, BootConfig, ConcurrentMonitor, RingOutcome, SmpStats, Status,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).map(|s| s.to_lowercase()).collect();
    let all = args.is_empty();
    let want = |id: &str| all || args.iter().any(|a| a == id);

    println!("Tyche reproduction harness — {MONITOR_VERSION}");
    if args.iter().any(|a| a == "bench") {
        // Explicit-only: the benchmarks are not part of the default
        // all-run (they exist to regenerate BENCH_hotpath.json and
        // BENCH_smp.json).
        let json = args.iter().any(|a| a == "--json");
        let smoke = args.iter().any(|a| a == "--smoke");
        if args.iter().any(|a| a == "--scale") {
            bench_scale(json, smoke);
        } else if args.iter().any(|a| a == "--smp") {
            bench_smp(json, smoke);
        } else {
            bench_hotpath(json, smoke);
            if smoke {
                // The CI smoke pass also exercises the SMP serving path
                // (2 threads, no artifact rewrite).
                bench_smp(false, true);
            }
        }
        return;
    }
    if args.iter().any(|a| a == "fuzz") {
        // Explicit-only, like `bench`: the adversarial hypercall fuzzer
        // over fixed seeds. Exits non-zero on any audit finding or
        // replay divergence; a panic anywhere in the TCB kills the
        // process, which the CI gate treats as failure.
        let json = args.iter().any(|a| a == "--json");
        let smoke = args.iter().any(|a| a == "--smoke");
        if !fuzz_campaign(json, smoke) {
            std::process::exit(1);
        }
        return;
    }
    if args.iter().any(|a| a == "trace") {
        // Explicit-only: traced fuzz campaigns replayed through the
        // runtime verifiers, plus the tracing-overhead gate. Exits
        // non-zero on any RV finding, chain divergence, or overhead
        // breach; `--json` writes `TRACE.json` at the workspace root.
        let json = args.iter().any(|a| a == "--json");
        let smoke = args.iter().any(|a| a == "--smoke");
        if !trace_campaign(json, smoke) {
            std::process::exit(1);
        }
        return;
    }
    if want("f1") {
        f1();
    }
    if want("f2") {
        f2();
    }
    if want("f3") {
        f3();
    }
    if want("f4") {
        f4();
    }
    if want("c1") {
        c1();
    }
    if want("c2") {
        c2();
    }
    if want("c3") {
        c3();
    }
    if want("c4") {
        c4();
    }
    if want("c5") {
        c5();
    }
    if want("c6") {
        c6();
    }
    if want("c7") {
        c7();
    }
    if want("c8") {
        c8();
    }
    if want("c9") {
        c9();
    }
    if want("c10") {
        c10();
    }
    if want("c11") {
        c11();
    }
    if want("c12") {
        c12();
    }
    if want("e1") {
        e1();
    }
    if want("e2") {
        e2();
    }
    if want("e3") {
        e3();
    }
    if want("e4") {
        e4();
    }
    if want("e5") {
        e5();
    }
    if want("verify") && !verify() {
        std::process::exit(1);
    }
}

/// The workspace root, anchored at compile time so every LOC/audit path
/// works from any working directory.
fn workspace_root() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("crates/bench has a workspace root")
        .to_path_buf()
}

/// `repro verify` — the judiciary toolchain: static TCB audit + bounded
/// model check, summarized in one table. Returns false on any failure.
fn verify() -> bool {
    let root = workspace_root();
    let config = tyche_verify::static_audit::AuditConfig::tyche_defaults(&root);
    let report = match tyche_verify::static_audit::run(&config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("verify: static audit failed to run: {e}");
            return false;
        }
    };
    let static_config = tyche_verify::static_lints::StaticConfig::tyche_defaults(&root);
    let deep = match tyche_verify::static_lints::run(&static_config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("verify: deep static lints failed to run: {e}");
            return false;
        }
    };
    let bmc_config = tyche_verify::bmc::BmcConfig::default();
    let result = tyche_verify::bmc::run(&bmc_config);

    let mut t = Table::new(
        "VERIFY — judiciary toolchain (static TCB audit + deep lints + bounded model check)",
        &["check", "scope", "result"],
    );
    t.row(&[
        "no unsafe / forbid(unsafe_code)".into(),
        config.tcb_crates.join(", "),
        pass_fail(!report.findings.iter().any(|f| {
            matches!(
                f.check,
                tyche_verify::static_audit::Check::ForbidUnsafe
                    | tyche_verify::static_audit::Check::UnsafeToken
            )
        })),
    ]);
    t.row(&[
        "panic-construct allowlist".into(),
        format!("{} files", report.files_scanned),
        pass_fail(!report.findings.iter().any(|f| {
            matches!(
                f.check,
                tyche_verify::static_audit::Check::PanicConstruct
                    | tyche_verify::static_audit::Check::StaleAllowlist
            )
        })),
    ]);
    t.row(&[
        "C1 LOC budget".into(),
        format!("{} / {} lines", report.tcb_loc, report.loc_budget),
        pass_fail(!report
            .findings
            .iter()
            .any(|f| f.check == tyche_verify::static_audit::Check::LocBudget)),
    ]);
    t.row(&[
        "dependency closure (workspace-only)".into(),
        "TCB manifests".into(),
        pass_fail(!report
            .findings
            .iter()
            .any(|f| f.check == tyche_verify::static_audit::Check::Dependency)),
    ]);
    let lint_rows: &[(&str, tyche_verify::static_lints::Lint, String)] = &[
        (
            "lock-order hierarchy",
            tyche_verify::static_lints::Lint::LockOrder,
            format!("{} acquisition sites", deep.lock_sites),
        ),
        (
            "panic-reachability from hypercall entry",
            tyche_verify::static_lints::Lint::PanicReach,
            format!("{} leaves + {} tiers", deep.leaves.len(), deep.tiers.len()),
        ),
        (
            "atomics-ordering discipline",
            tyche_verify::static_lints::Lint::AtomicOrder,
            format!(
                "{} atomic ops, {}/{} relaxed-ok",
                deep.atomic_sites, deep.relaxed_ok_used, deep.relaxed_ok_budget
            ),
        ),
        (
            "trace completeness (mutating engine ops)",
            tyche_verify::static_lints::Lint::TraceComplete,
            format!("{} ops proven to emit", deep.traced_ops),
        ),
    ];
    for (name, lint, scope) in lint_rows {
        t.row(&[
            (*name).into(),
            scope.clone(),
            pass_fail(!deep.findings.iter().any(|f| f.lint == *lint)),
        ]);
    }
    t.row(&[
        "bounded model check".into(),
        format!(
            "{} states, depth {}, exhaustive: {}",
            result.states, result.max_depth_reached, result.exhaustive
        ),
        pass_fail(result.violations.is_empty() && result.exhaustive),
    ]);
    t.print();

    for finding in &report.findings {
        println!("  finding: {finding}");
    }
    for finding in &deep.findings {
        println!("  static-lint finding: {finding}");
    }
    for violation in result.violations.iter().take(5) {
        println!("  bmc violation: {} (trace: {:?})", violation.message, violation.trace);
    }

    let doc = deep.to_json();
    let path = workspace_root().join("STATIC.json");
    std::fs::write(&path, doc).expect("write STATIC.json");
    println!("  wrote {}", path.display());

    report.passed() && deep.passed() && result.violations.is_empty() && result.exhaustive
}

fn pass_fail(ok: bool) -> String {
    if ok { "PASS".into() } else { "FAIL".into() }
}

/// F1 — the separation of powers: legislative (domain defines policy),
/// executive (monitor enforces), judiciary (root of trust verifies).
fn f1() {
    let mut t = Table::new(
        "F1 — separation of powers (Fig. 1)",
        &["power", "actor", "artifact", "verified"],
    );
    let mut m = boot();
    // Legislative: the OS domain defines a policy (an exclusive enclave).
    let (enclave, _gate) = spawn_sealed(&mut m, 0, 0x10_0000, 0x1000, &[0], SealPolicy::strict());
    t.row(&[
        "legislative".into(),
        "any domain (the OS here)".into(),
        format!("policy: {enclave} owns [0x100000,0x101000) exclusively"),
        "-".into(),
    ]);
    // Executive: the monitor enforced it in hardware.
    let denied = m.dom_read(0, 0x10_0000, &mut [0u8; 1]).is_err();
    t.row(&[
        "executive".into(),
        "isolation monitor".into(),
        "EPT denies the OS access to enclave memory".into(),
        format!("{denied}"),
    ]);
    // Judiciary: the TPM-rooted chain verifies monitor + domain.
    let verifier = Verifier {
        tpm_key: m.machine.tpm.attestation_key(),
        expected_monitor_pcr: expected_monitor_pcr(MONITOR_VERSION),
        monitor_key: m.report_key(),
    };
    let qn = [3u8; 32];
    let quote = m.machine_quote(qn).expect("quote");
    let rn = [4u8; 32];
    let report = m.attest_domain(enclave, rn).expect("report");
    let ok = verifier.verify(&quote, &qn, &report, &rn, None).is_ok();
    t.row(&[
        "judiciary".into(),
        "root of trust + remote verifier".into(),
        "TPM quote -> monitor key -> signed domain report".into(),
        format!("{ok}"),
    ]);
    t.print();
}

/// F2 — the confidential SaaS pipeline.
fn f2() {
    let mut t = Table::new(
        "F2 — confidential SaaS processing (Fig. 2)",
        &["step", "outcome"],
    );
    let start = Instant::now();
    let mut f = scenarios::fig2();
    let cycles0 = f.monitor.machine.cycles.now();
    let verified = scenarios::fig2_customer_verifies(&mut f);
    t.row(&[
        "customer attests app+crypto+topology".into(),
        format!("accepted={verified}"),
    ]);
    let data = *b"customer sensitive data 32 byte!";
    let key = 0x1234_5678_9abc_def0u64;
    let ct = scenarios::fig2_run_pipeline(&mut f, key, &data);
    let correct = ct == scenarios::fig2_expected(key, &data);
    t.row(&[
        "pipeline: app -> GPU -> crypto -> net".into(),
        format!("ciphertext correct={correct}"),
    ]);
    let leak = f
        .monitor
        .dom_read(0, layout::CRYPTO.0 + 0x2000, &mut [0u8; 8])
        .is_ok();
    t.row(&[
        "provider tries to read the key".into(),
        format!("leaked={leak}"),
    ]);
    t.row(&[
        "cost".into(),
        format!(
            "{} simulated cycles, {:?} host",
            f.monitor.machine.cycles.now() - cycles0,
            start.elapsed()
        ),
    ]);
    t.print();
}

/// F3 — deployment on the monitor: domains orthogonal to VMs/processes.
fn f3() {
    let mut t = Table::new(
        "F3 — trust domains cut across system abstractions (Fig. 3)",
        &["abstraction", "domain", "provider sees its memory?"],
    );
    let mut m = boot();
    // A confidential VM (the SaaS VM box of Fig. 3).
    m.dom_write(0, 0x40_0000, b"guest kernel")
        .expect("stage guest");
    let vm =
        libtyche::ConfidentialVm::launch(&mut m, 0, (0x40_0000, 0x60_0000), &[1], 0x40_0000, &[])
            .expect("launch cVM");
    let vm_hidden = m.dom_read(0, 0x40_0000, &mut [0u8; 1]).is_err();
    t.row(&[
        "SaaS VM (cVM)".into(),
        format!("{}", vm.domain),
        format!("{}", !vm_hidden),
    ]);
    // A driver compartment inside the provider's OS.
    let sb = libtyche::Sandbox::create(&mut m, 0, (0x10_0000, 0x10_4000), None).expect("sandbox");
    let drv_hidden = m.dom_read(0, 0x10_0000, &mut [0u8; 1]).is_err();
    t.row(&[
        "kernel driver sandbox".into(),
        format!("{}", sb.domain),
        format!("{}", !drv_hidden),
    ]);
    // An enclave inside the VM's RAM (nested inside a traditional box).
    vm.enter(&mut m, 1).expect("enter vm");
    let mut client = libtyche::TycheClient::new(&mut m, 1);
    let (inner, _t) = client.create_domain().expect("inner");
    let page = client.carve(0x50_0000, 0x50_1000).expect("carve");
    client
        .grant(page, inner, Rights::RW, RevocationPolicy::ZERO)
        .expect("grant");
    libtyche::ConfidentialVm::exit(&mut m, 1).expect("exit vm");
    let enc_hidden = m.dom_read(0, 0x50_0000, &mut [0u8; 1]).is_err();
    t.row(&[
        "enclave nested in the VM".into(),
        format!("{inner}"),
        format!("{}", !enc_hidden),
    ]);
    t.print();
}

/// F4 — the memory view with reference counts.
fn f4() {
    let f = scenarios::fig2();
    let rows = scenarios::fig4_view(
        &f.monitor,
        &[
            layout::CRYPTO,
            layout::APP,
            layout::APP_CRYPTO,
            layout::APP_GPU,
            layout::NET,
        ],
    );
    let names = [
        "crypto confidential",
        "app confidential",
        "app<->crypto",
        "app<->gpu",
        "net (untrusted)",
    ];
    let mut t = Table::new(
        "F4 — domain-to-region mappings with reference counts (Fig. 4)",
        &["region", "range", "domains", "refcount"],
    );
    for (row, name) in rows.iter().zip(names.iter()) {
        t.row(&[
            (*name).into(),
            format!("[{:#x},{:#x})", row.region.0, row.region.1),
            format!("{:?}", row.domains),
            row.refcount.to_string(),
        ]);
    }
    t.print();
}

/// C1 — monitor TCB size (<10K LOC claim).
fn c1() {
    let mut t = Table::new(
        "C1 — TCB size (paper: monitor is 'minimal (<10K LOC)')",
        &["component", "in TCB?", "LOC"],
    );
    // The count comes from tyche-verify's shared counter — the same one
    // `tcb-audit` gates on, so this table and CI can never disagree.
    let root = workspace_root();
    let count = move |dirs: &[&str]| -> usize {
        dirs.iter()
            .map(|d| {
                tyche_verify::loc::count_crate(&root.join("crates").join(d))
                    .expect("count crate LOC")
                    .code
            })
            .sum()
    };
    let core = count(&["core"]);
    let monitor = count(&["monitor"]);
    let crypto = count(&["crypto"]);
    let hw = count(&["hw"]);
    let guest = count(&["guest", "libtyche", "elf"]);
    t.row(&[
        "capability engine (tyche-core)".into(),
        "yes".into(),
        core.to_string(),
    ]);
    t.row(&[
        "monitor + backends (tyche-monitor)".into(),
        "yes".into(),
        monitor.to_string(),
    ]);
    t.row(&[
        "crypto (tyche-crypto)".into(),
        "yes".into(),
        crypto.to_string(),
    ]);
    t.row(&[
        "monitor TCB total".into(),
        "yes".into(),
        (core + monitor + crypto).to_string(),
    ]);
    t.row(&[
        "simulated hardware (not in TCB: is the 'silicon')".into(),
        "no".into(),
        hw.to_string(),
    ]);
    t.row(&[
        "guest OS + libtyche + elf (untrusted domains)".into(),
        "no".into(),
        guest.to_string(),
    ]);
    t.row(&[
        "paper claim".into(),
        "-".into(),
        format!("<10000 -> measured {}", core + monitor + crypto),
    ]);
    t.print();
}

/// C2 — transition latency: mediated (VMCALL) vs fast (VMFUNC).
fn c2() {
    let mut t = Table::new(
        "C2 — domain transition latency (paper: 'fast (100 cycles) ... using VMFUNC')",
        &["path", "simulated cycles/one-way", "host ns/roundtrip"],
    );
    let mut m = boot();
    let (_d, gate) = spawn_sealed(&mut m, 0, 0x10_0000, 0x1000, &[0], SealPolicy::strict());
    const N: u64 = 10_000;

    let c0 = m.machine.cycles.now();
    let h0 = Instant::now();
    for _ in 0..N {
        m.call(0, MonitorCall::Enter { cap: gate }).expect("enter");
        m.call(0, MonitorCall::Return).expect("return");
    }
    let mediated_cycles = (m.machine.cycles.now() - c0) / (2 * N);
    let mediated_ns = h0.elapsed().as_nanos() as u64 / N;
    t.row(&[
        "mediated (VMCALL)".into(),
        mediated_cycles.to_string(),
        mediated_ns.to_string(),
    ]);

    let c0 = m.machine.cycles.now();
    let h0 = Instant::now();
    for _ in 0..N {
        m.enter_fast(0, gate).expect("enter fast");
        m.ret_fast(0).expect("ret fast");
    }
    let fast_cycles = (m.machine.cycles.now() - c0) / (2 * N);
    let fast_ns = h0.elapsed().as_nanos() as u64 / N;
    t.row(&[
        "fast (VMFUNC)".into(),
        fast_cycles.to_string(),
        fast_ns.to_string(),
    ]);
    t.row(&[
        "speedup".into(),
        format!("{:.1}x", mediated_cycles as f64 / fast_cycles as f64),
        format!("{:.1}x", mediated_ns as f64 / fast_ns.max(1) as f64),
    ]);
    t.print();
}

/// C3 — flush-on-transition side-channel mitigation.
fn c3() {
    let mut t = Table::new(
        "C3 — cache-flush transition policy (side-channel mitigation, §4.1)",
        &[
            "policy",
            "victim lines visible after exit",
            "cycles/transition",
        ],
    );
    for flush in [false, true] {
        let mut m = boot();
        let os = m.engine.root().expect("root");
        let (victim, _) = spawn_sealed(&mut m, 0, 0x10_0000, 0x4000, &[0], SealPolicy::strict());
        let policy = if flush {
            RevocationPolicy::OBFUSCATE
        } else {
            RevocationPolicy::NONE
        };
        let gate = m.engine.make_transition(os, victim, policy).expect("gate");
        m.sync_effects().expect("sync");

        m.call(0, MonitorCall::Enter { cap: gate }).expect("enter");
        // Victim touches its secret-dependent lines.
        for i in 0..16u64 {
            m.dom_write(0, 0x10_0000 + i * 64, &[i as u8])
                .expect("touch");
        }
        let c0 = m.machine.cycles.now();
        m.call(0, MonitorCall::Return).expect("return");
        let cost = m.machine.cycles.now() - c0;
        // Attacker (the OS) probes the cache model for victim residue.
        let tag = m
            .x86_backend()
            .and_then(|b| b.ept_root(victim))
            .expect("tag")
            .as_u64();
        let resident = m.machine.cache.resident_lines_of(tag);
        t.row(&[
            if flush {
                "flush cache+TLB".into()
            } else {
                "no flush".to_string()
            },
            resident.to_string(),
            cost.to_string(),
        ]);
    }
    t.print();
}

/// C4 — cascading revocation under chains and circular sharing.
fn c4() {
    let mut t = Table::new(
        "C4 — cascading revocation (terminates under circular sharing, §4.1)",
        &[
            "topology",
            "domains",
            "revoked caps",
            "host us",
            "refcount after",
        ],
    );
    for &depth in &[4usize, 16, 64, 256] {
        let mut m = boot();
        let first = tyche_bench::fixtures::share_chain(&mut m, (0x20_0000, 0x20_1000), depth);
        let caps_before = m.engine.caps().count();
        let h0 = Instant::now();
        m.engine
            .revoke(m.engine.root().expect("root"), first)
            .expect("revoke");
        m.sync_effects().expect("sync");
        let us = h0.elapsed().as_micros();
        let revoked = caps_before - m.engine.caps().count();
        let rc = m.engine.refcount_mem(MemRegion::new(0x20_0000, 0x20_1000));
        t.row(&[
            format!("chain-{depth}"),
            depth.to_string(),
            revoked.to_string(),
            us.to_string(),
            rc.to_string(),
        ]);
    }
    // Circular sharing: A -> B -> A -> B ... over one page.
    let mut m = boot();
    let os = m.engine.root().expect("root");
    let (a, _) = m.engine.create_domain(os).expect("a");
    let (b, _) = m.engine.create_domain(os).expect("b");
    let cap = {
        let mut client = libtyche::TycheClient::new(&mut m, 0);
        client.carve(0x20_0000, 0x20_1000).expect("carve")
    };
    let first = m
        .engine
        .share(os, cap, a, None, Rights::RW, RevocationPolicy::NONE)
        .expect("s");
    let mut cur = first;
    let mut who = (b, a);
    for _ in 0..64 {
        cur = m
            .engine
            .share(who.1, cur, who.0, None, Rights::RW, RevocationPolicy::NONE)
            .expect("s");
        who = (who.1, who.0);
    }
    m.sync_effects().expect("sync");
    let caps_before = m.engine.caps().count();
    m.engine.revoke(os, first).expect("revoke cycle");
    m.sync_effects().expect("sync");
    let revoked = caps_before - m.engine.caps().count();
    let rc = m.engine.refcount_mem(MemRegion::new(0x20_0000, 0x20_1000));
    t.row(&[
        "circular A<->B x64".into(),
        "2".into(),
        revoked.to_string(),
        "-".into(),
        rc.to_string(),
    ]);
    assert!(audit::audit(&m.engine).is_empty());
    t.print();
}

/// C5 — Tyche enclaves vs the SGX model.
fn c5() {
    use tyche_baselines::sgx::{HostPid, SgxMachine};
    let mut t = Table::new(
        "C5 — Tyche-enclaves vs SGX (the three §4.2 improvements)",
        &["property", "SGX model", "Tyche"],
    );
    // (a) implicit host-memory access.
    let mut sgx = SgxMachine::new(10_000);
    let e = sgx
        .ecreate(HostPid(1), (0x10_0000, 0x20_0000), 16, false)
        .expect("ecreate");
    let sgx_reads_host = sgx.enclave_can_read_host(e, 0xdead_0000).expect("query");
    let mut m = boot();
    m.dom_write(0, 0x50_0000, b"host secret").expect("w");
    let (_enc, gate) = spawn_sealed(&mut m, 0, 0x10_0000, 0x1000, &[0], SealPolicy::strict());
    m.call(0, MonitorCall::Enter { cap: gate }).expect("enter");
    let tyche_reads_host = m.dom_read(0, 0x50_0000, &mut [0u8; 1]).is_ok();
    m.call(0, MonitorCall::Return).expect("ret");
    t.row(&[
        "enclave reads untrusted host memory".into(),
        format!("{sgx_reads_host} (implicit, leak-prone)"),
        format!("{tyche_reads_host} (explicit sharing only)"),
    ]);
    // (b) address/layout reuse.
    let mut sgx = SgxMachine::new(10_000);
    sgx.ecreate(HostPid(1), (0x10_0000, 0x20_0000), 16, false)
        .expect("e1");
    let sgx_overlap = sgx
        .ecreate(HostPid(1), (0x10_0000, 0x20_0000), 16, false)
        .is_ok();
    let mut m = boot();
    let mut tyche_count = 0;
    for i in 0..8u64 {
        let base = 0x10_0000 + i * 0x10_000;
        let _ = spawn_sealed(&mut m, 0, base, 0x1000, &[0], SealPolicy::strict());
        tyche_count += 1;
    }
    t.row(&[
        "same layout twice / many enclaves".into(),
        format!("{sgx_overlap} (ELRANGE exclusive)"),
        format!("true ({tyche_count} coexisting)"),
    ]);
    // (c) nesting.
    let mut sgx = SgxMachine::new(10_000);
    let sgx_nests = sgx
        .ecreate(HostPid(1), (0x30_0000, 0x40_0000), 16, true)
        .is_ok();
    let mut m = boot();
    let (_outer, gate) = spawn_sealed(&mut m, 0, 0x10_0000, 0x40_000, &[0], SealPolicy::nestable());
    m.call(0, MonitorCall::Enter { cap: gate }).expect("enter");
    let mut client = libtyche::TycheClient::new(&mut m, 0);
    let nested = client.create_domain().is_ok();
    t.row(&[
        "enclave spawns nested enclave".into(),
        format!("{sgx_nests} (ECREATE is host-only)"),
        format!("{nested}"),
    ]);
    t.print();
}

/// C6 — in-process compartments vs process isolation.
fn c6() {
    use tyche_baselines::process::{ProcessCosts, ProcessSim};
    let mut t = Table::new(
        "C6 — isolating an untrusted library (compartment vs process, §2.2)",
        &[
            "mechanism",
            "create (cycles)",
            "per-call (cycles)",
            "teardown (cycles)",
        ],
    );
    // Tyche compartment.
    let mut m = boot();
    let c0 = m.machine.cycles.now();
    let sb = libtyche::Sandbox::create(
        &mut m,
        0,
        (0x20_0000, 0x20_4000),
        Some((0x30_0000, 0x30_1000)),
    )
    .expect("sandbox");
    let create = m.machine.cycles.now() - c0;
    let c0 = m.machine.cycles.now();
    const CALLS: u64 = 100;
    for _ in 0..CALLS {
        sb.run(&mut m, 0, |ctx| ctx.write(0x20_0000, b"x"))
            .expect("run");
    }
    let per_call = (m.machine.cycles.now() - c0) / CALLS;
    let c0 = m.machine.cycles.now();
    sb.destroy(&mut m, 0).expect("destroy");
    let teardown = m.machine.cycles.now() - c0;
    t.row(&[
        "Tyche compartment".into(),
        create.to_string(),
        per_call.to_string(),
        teardown.to_string(),
    ]);
    // Process baseline.
    let costs = ProcessCosts::default();
    let mut p = ProcessSim::create(costs, 0x4000);
    let pc_create = p.cycles;
    let before = p.cycles;
    for _ in 0..CALLS {
        p.call(b"x", |mem| mem[0] ^= 1);
    }
    let pc_call = (p.cycles - before) / CALLS;
    let total = p.destroy();
    let pc_teardown = total - before - pc_call * CALLS;
    t.row(&[
        "separate process + IPC".into(),
        pc_create.to_string(),
        pc_call.to_string(),
        pc_teardown.to_string(),
    ]);
    t.row(&[
        "process/compartment ratio".into(),
        format!("{:.1}x", pc_create as f64 / create as f64),
        format!("{:.2}x", pc_call as f64 / per_call as f64),
        "-".into(),
    ]);
    t.print();
}

/// C7 — PMP fixed-segment pressure vs EPT.
fn c7() {
    let mut t = Table::new(
        "C7 — PMP layout validation (fixed segments, §4) vs EPT",
        &[
            "fragments",
            "PMP entries needed",
            "PMP accepts",
            "EPT accepts",
        ],
    );
    for &frags in &[1usize, 7, 14, 15, 20] {
        // RISC-V.
        let mut m = boot_riscv(BootConfig::default());
        let os = m.engine.root().expect("root");
        let (child, _) = m.engine.create_domain(os).expect("child");
        m.sync_effects().expect("sync");
        let ram = m
            .engine
            .caps_of(os)
            .iter()
            .find(|c| c.active && c.is_memory())
            .map(|c| c.id)
            .expect("ram");
        let mut pmp_ok = true;
        for i in 0..frags {
            let s = 0x10_0000 + (i as u64) * 0x4000;
            let r = m.call(
                0,
                MonitorCall::Share {
                    cap: ram,
                    target: child,
                    sub: Some((s, s + 0x1000)),
                    rights: Rights::RO,
                    policy: RevocationPolicy::NONE,
                },
            );
            if r == Err(Status::BackendFailure) {
                pmp_ok = false;
            }
        }
        // x86 with identical fragmentation.
        let mut mx = boot();
        let osx = mx.engine.root().expect("root");
        let (childx, _) = mx.engine.create_domain(osx).expect("child");
        mx.sync_effects().expect("sync");
        let ramx = mx
            .engine
            .caps_of(osx)
            .iter()
            .find(|c| c.active && c.is_memory())
            .map(|c| c.id)
            .expect("ram");
        let mut ept_ok = true;
        for i in 0..frags {
            let s = 0x10_0000 + (i as u64) * 0x4000;
            let r = mx.call(
                0,
                MonitorCall::Share {
                    cap: ramx,
                    target: childx,
                    sub: Some((s, s + 0x1000)),
                    rights: Rights::RO,
                    policy: RevocationPolicy::NONE,
                },
            );
            if r.is_err() {
                ept_ok = false;
            }
        }
        t.row(&[
            frags.to_string(),
            frags.to_string(), // each 1-page fragment is one NAPOT entry
            pmp_ok.to_string(),
            ept_ok.to_string(),
        ]);
    }
    t.print();
}

/// C8 — two-tier attestation: tamper matrix + cost.
fn c8() {
    let mut t = Table::new(
        "C8 — two-tier attestation (§3.4): tamper matrix",
        &["attack", "verifier outcome"],
    );
    let mut m = boot();
    let (enclave, _) = spawn_sealed(&mut m, 0, 0x10_0000, 0x1000, &[0], SealPolicy::strict());
    let verifier = Verifier {
        tpm_key: m.machine.tpm.attestation_key(),
        expected_monitor_pcr: expected_monitor_pcr(MONITOR_VERSION),
        monitor_key: m.report_key(),
    };
    let qn = [1u8; 32];
    let rn = [2u8; 32];
    let quote = m.machine_quote(qn).expect("quote");
    let signed = m.attest_domain(enclave, rn).expect("report");
    let check = |q, qn2: &[u8; 32], s, rn2: &[u8; 32]| match verifier.verify(q, qn2, s, rn2, None) {
        Ok(_) => "ACCEPTED".to_string(),
        Err(e) => format!("rejected ({e})"),
    };
    t.row(&["honest chain".into(), check(&quote, &qn, &signed, &rn)]);
    t.row(&[
        "stale quote (replay)".into(),
        check(&quote, &[9u8; 32], &signed, &rn),
    ]);
    t.row(&[
        "stale report (replay)".into(),
        check(&quote, &qn, &signed, &[9u8; 32]),
    ]);
    let mut forged = signed.clone();
    forged.report.measurement = tyche_crypto::hash(b"evil");
    t.row(&[
        "tampered measurement".into(),
        check(&quote, &qn, &forged, &rn),
    ]);
    let mut inflated = signed.clone();
    for r in &mut inflated.report.resources {
        r.refcount = tyche_core::refcount::RefCount { max: 1, min: 1 };
    }
    inflated.report.entry ^= 1; // ensure byte difference
    t.row(&[
        "tampered refcounts".into(),
        check(&quote, &qn, &inflated, &rn),
    ]);
    // Wrong-monitor machine.
    let mut evil = tyche_monitor::boot_x86(BootConfig {
        version: "evil-monitor v6.6.6",
        ..Default::default()
    });
    let (evil_dom, _) = spawn_sealed(&mut evil, 0, 0x10_0000, 0x1000, &[0], SealPolicy::strict());
    let evil_verifier = Verifier {
        tpm_key: evil.machine.tpm.attestation_key(),
        expected_monitor_pcr: expected_monitor_pcr(MONITOR_VERSION),
        monitor_key: evil.report_key(),
    };
    let eq = evil.machine_quote(qn).expect("quote");
    let es = evil.attest_domain(evil_dom, rn).expect("report");
    t.row(&[
        "machine running a different monitor".into(),
        match evil_verifier.verify(&eq, &qn, &es, &rn, None) {
            Ok(_) => "ACCEPTED".into(),
            Err(e) => format!("rejected ({e})"),
        },
    ]);
    // Cost vs domain size.
    let mut t2 = Table::new(
        "C8b — attestation cost vs domain resources",
        &["resources", "report bytes", "host us/attest+verify"],
    );
    for &n in &[1usize, 8, 32, 128] {
        let mut m = boot();
        let os = m.engine.root().expect("root");
        let (d, _) = m.engine.create_domain(os).expect("d");
        let mut client = libtyche::TycheClient::new(&mut m, 0);
        for i in 0..n as u64 {
            let s = 0x10_0000 + i * 0x2000;
            let cap = client.carve(s, s + 0x1000).expect("carve");
            client
                .share(cap, d, None, Rights::RO, RevocationPolicy::NONE)
                .expect("share");
        }
        m.engine.set_entry(os, d, 0x10_0000).expect("entry");
        m.engine.seal(os, d, SealPolicy::strict()).expect("seal");
        m.sync_effects().expect("sync");
        let h0 = Instant::now();
        const REPS: u32 = 50;
        let mut bytes = 0usize;
        for i in 0..REPS {
            let mut rn = [0u8; 32];
            rn[0] = i as u8;
            let signed = m.attest_domain(d, rn).expect("report");
            bytes = signed.report.canonical_bytes().len();
            let verifier = Verifier {
                tpm_key: m.machine.tpm.attestation_key(),
                expected_monitor_pcr: expected_monitor_pcr(MONITOR_VERSION),
                monitor_key: m.report_key(),
            };
            let quote = m.machine_quote(rn).expect("quote");
            verifier
                .verify(&quote, &rn, &signed, &rn, None)
                .expect("verify");
        }
        t2.row(&[
            n.to_string(),
            bytes.to_string(),
            (h0.elapsed().as_micros() as u64 / REPS as u64).to_string(),
        ]);
    }
    t.print();
    t2.print();
}

/// C9 — TCB growth: hierarchical VMs vs flat domains.
fn c9() {
    use tyche_baselines::vmstack::VmStack;
    let mut t = Table::new(
        "C9 — TCB on the trust path vs nesting depth (§2.2)",
        &[
            "depth",
            "VM-stack TCB (LOC)",
            "components",
            "monitor TCB (LOC)",
            "ratio",
        ],
    );
    for depth in 1..=6 {
        let stack = VmStack::typical(depth);
        let vm = stack.tcb_loc();
        let mon = VmStack::monitor_tcb_loc(depth);
        t.row(&[
            depth.to_string(),
            vm.to_string(),
            stack.trusted_components().to_string(),
            mon.to_string(),
            format!("{}x", vm / mon),
        ]);
    }
    t.print();
}

/// C10 — mediation: the negative-path matrix.
fn c10() {
    let mut t = Table::new(
        "C10 — the monitor mediates everything (§3.1): refusal matrix",
        &["violation attempt", "outcome"],
    );
    let mut m = boot();
    let (enclave, gate) = spawn_sealed(&mut m, 0, 0x10_0000, 0x1000, &[0], SealPolicy::strict());
    let os = m.engine.root().expect("root");
    t.row(&[
        "enter on a core the domain does not own".into(),
        format!(
            "{:?}",
            m.call(1, MonitorCall::Enter { cap: gate })
                .expect_err("denied")
        ),
    ]);
    t.row(&[
        "return with empty call stack".into(),
        format!("{:?}", m.call(0, MonitorCall::Return).expect_err("denied")),
    ]);
    t.row(&[
        "touch revoked/unshared memory".into(),
        format!(
            "fault={:?}",
            m.dom_read(0, 0x10_0000, &mut [0u8; 1]).is_err()
        ),
    ]);
    t.row(&[
        "extend a sealed domain".into(),
        format!("{:?}", {
            let mut client = libtyche::TycheClient::new(&mut m, 0);
            let cap = client.carve(0x40_0000, 0x40_1000).expect("carve");
            client
                .share(cap, enclave, None, Rights::RO, RevocationPolicy::NONE)
                .expect_err("denied")
        }),
    ]);
    t.row(&[
        "re-seal / reconfigure a sealed domain".into(),
        format!(
            "{:?}",
            m.call(
                0,
                MonitorCall::SetEntry {
                    domain: enclave,
                    entry: 0
                }
            )
            .expect_err("denied")
        ),
    ]);
    m.call(0, MonitorCall::Enter { cap: gate }).expect("enter");
    t.row(&[
        "enclave revokes the OS's capabilities".into(),
        format!("{:?}", {
            let os_cap = m
                .engine
                .caps_of(os)
                .iter()
                .find(|c| c.active && c.is_memory())
                .expect("cap")
                .id;
            m.call(0, MonitorCall::Revoke { cap: os_cap })
                .expect_err("denied")
        }),
    ]);
    t.row(&[
        "enclave kills its manager".into(),
        format!(
            "{:?}",
            m.call(0, MonitorCall::Kill { domain: os })
                .expect_err("denied")
        ),
    ]);
    t.print();
}

/// C11 — driver sandboxing in the kernel.
fn c11() {
    use tyche_guest::driver::{BuggyDriver, DriverHost, DriverRequest, XorBlockDriver};
    let mut t = Table::new(
        "C11 — kernel driver isolation (§4.2): blast radius + cost",
        &[
            "mode",
            "buggy driver outcome",
            "kernel state",
            "cycles/request",
        ],
    );
    for sandboxed in [false, true] {
        let mut m = boot();
        m.dom_write(0, 0x8_0000, b"kernel struct").expect("w");
        m.dom_write(0, 0x30_0000, b"abcd").expect("w");
        let host = if sandboxed {
            DriverHost::sandboxed(&mut m, 0, (0x31_0000, 0x31_4000), (0x30_0000, 0x30_1000))
                .expect("host")
        } else {
            DriverHost::Direct
        };
        // Cost with the well-behaved driver.
        let mut good = XorBlockDriver { key: 0x5a };
        let c0 = m.machine.cycles.now();
        const REQS: u64 = 100;
        for _ in 0..REQS {
            host.dispatch(
                &mut m,
                0,
                &mut good,
                DriverRequest {
                    op: 1,
                    addr: 0x30_0000,
                    len: 4,
                },
            )
            .expect("dispatch");
        }
        let per_req = (m.machine.cycles.now() - c0) / REQS;
        // Blast radius with the buggy driver.
        let mut buggy = BuggyDriver {
            wild_target: 0x8_0000,
        };
        let resp = host
            .dispatch(
                &mut m,
                0,
                &mut buggy,
                DriverRequest {
                    op: 666,
                    addr: 0x30_0000,
                    len: 4,
                },
            )
            .expect("dispatch");
        let mut state = [0u8; 13];
        m.dom_read(0, 0x8_0000, &mut state).expect("read");
        t.row(&[
            if sandboxed {
                "sandboxed (Tyche kernel compartment)".into()
            } else {
                "direct (in-kernel)".to_string()
            },
            format!("{resp:?}"),
            if &state == b"kernel struct" {
                "intact".into()
            } else {
                "CORRUPTED".to_string()
            },
            per_req.to_string(),
        ]);
    }
    t.print();
}

/// C12 — confidential VMs.
fn c12() {
    let mut t = Table::new(
        "C12 — confidential VMs on a Tyche backend (§4.2)",
        &["step", "outcome"],
    );
    let mut m = boot();
    m.dom_write(0, 0x40_0000, b"guest kernel image")
        .expect("stage");
    let c0 = m.machine.cycles.now();
    let vm = libtyche::ConfidentialVm::launch(
        &mut m,
        0,
        (0x40_0000, 0x80_0000),
        &[0, 1],
        0x40_0000,
        &[(0x40_0000, 0x40_1000)],
    )
    .expect("launch");
    t.row(&[
        "launch 4 MiB cVM (2 vCPUs)".into(),
        format!("{} cycles", m.machine.cycles.now() - c0),
    ]);
    t.row(&[
        "hypervisor reads guest RAM".into(),
        format!("fault={}", m.dom_read(0, 0x40_0000, &mut [0u8; 1]).is_err()),
    ]);
    let report = vm.attest(&mut m, 0, 7).expect("attest");
    t.row(&[
        "launch measurement attested".into(),
        format!(
            "exclusive={} contents={}",
            report.report.check_sharing(&[]),
            report.report.content_measurements.len()
        ),
    ]);
    // Guest boots its OS and runs processes.
    vm.enter(&mut m, 0).expect("enter");
    let mut guest = tyche_guest::GuestOs::new((0x40_0000, 0x80_0000), 0, 0x10_0000);
    let pid = guest.spawn(0x10_0000).expect("spawn");
    let addr = match guest.syscall(&mut m, pid, tyche_guest::Syscall::Alloc { len: 64 }) {
        tyche_guest::SysResult::Addr(a) => a,
        other => panic!("{other:?}"),
    };
    let wrote = guest.syscall(
        &mut m,
        pid,
        tyche_guest::Syscall::Write {
            addr,
            data: b"in-guest process".to_vec(),
        },
    );
    libtyche::ConfidentialVm::exit(&mut m, 0).expect("exit");
    t.row(&[
        "guest OS runs a process inside".into(),
        format!("{wrote:?}"),
    ]);
    let c0 = m.machine.cycles.now();
    vm.destroy(&mut m, 0).expect("destroy");
    t.row(&[
        "teardown (zero+flush 4 MiB)".into(),
        format!("{} cycles", m.machine.cycles.now() - c0),
    ]);
    let mut buf = [0u8; 18];
    m.dom_read(0, 0x40_0000, &mut buf).expect("read");
    t.row(&[
        "guest RAM after teardown".into(),
        format!("zeroed={}", buf == [0u8; 18]),
    ]);
    t.print();
}

/// E1 — SR-IOV device multiplexing among TEEs (§4.2 extension).
fn e1() {
    use tyche_hw::addr::GuestPhysAddr;
    use tyche_hw::iommu::DeviceId;
    use tyche_hw::sriov::{SriovNic, VfIndex, VfRing};
    let mut t = Table::new(
        "E1 — SR-IOV: one NIC, per-TEE virtual functions (§4.2)",
        &["check", "outcome"],
    );
    const PF: u16 = 0x100;
    let mut m = tyche_monitor::boot_x86(BootConfig {
        devices: vec![PF + 1, PF + 2],
        ..Default::default()
    });
    // Two TEEs, each granted one VF.
    let mut tees = Vec::new();
    for (i, mem) in [
        (0u16, (0x10_0000u64, 0x10_4000u64)),
        (1, (0x20_0000, 0x20_4000)),
    ] {
        let mut client = libtyche::TycheClient::new(&mut m, 0);
        let (d, _gate) = client.create_domain().expect("domain");
        let cap = client.carve(mem.0, mem.1).expect("carve");
        client
            .grant(cap, d, Rights::RW, RevocationPolicy::OBFUSCATE)
            .expect("grant");
        let dev = {
            let me = client.whoami();
            client
                .monitor
                .engine
                .caps_of(me)
                .iter()
                .find(|c| c.active && matches!(c.resource, Resource::Device(x) if x == PF + 1 + i))
                .map(|c| c.id)
        }
        .expect("vf cap");
        client
            .grant(dev, d, Rights::USE, RevocationPolicy::NONE)
            .expect("grant vf");
        client.set_entry(d, mem.0).expect("entry");
        client.seal(d, SealPolicy::strict()).expect("seal");
        tees.push((d, mem));
    }
    let mut nic = SriovNic::new(DeviceId(PF), 2);
    for (i, (_, mem)) in tees.iter().enumerate() {
        nic.configure_ring(
            VfIndex(i as u16),
            VfRing {
                rx_base: GuestPhysAddr::new(mem.0 + 0x2000),
                rx_slots: 4,
                slot_bytes: 256,
            },
        );
    }
    m.machine
        .mem
        .write(tyche_hw::PhysAddr::new(tees[0].1 .0), b"pkt")
        .expect("stage");
    let ok = nic
        .send(
            &mut m.machine.iommu,
            &mut m.machine.mem,
            VfIndex(0),
            VfIndex(1),
            GuestPhysAddr::new(tees[0].1 .0),
            3,
        )
        .is_ok();
    t.row(&[
        "TEE A sends to TEE B through its own VF".into(),
        format!("delivered={ok}"),
    ]);
    let escape = nic
        .send(
            &mut m.machine.iommu,
            &mut m.machine.mem,
            VfIndex(0),
            VfIndex(1),
            GuestPhysAddr::new(tees[1].1 .0),
            3,
        )
        .is_err();
    t.row(&[
        "TEE A transmits TEE B's memory via its VF".into(),
        format!("blocked={escape}"),
    ]);
    t.row(&[
        "VF ownership (engine)".into(),
        format!(
            "A owns VF0={} B owns VF1={} cross={}",
            m.engine.owns_device(tees[0].0, PF + 1),
            m.engine.owns_device(tees[1].0, PF + 2),
            m.engine.owns_device(tees[0].0, PF + 2)
        ),
    ]);
    t.print();
}

/// E2 — multi-domain topology attestation (§4.2 extension).
fn e2() {
    use tyche_monitor::attest::{TopologySpec, Verifier};
    let mut t = Table::new(
        "E2 — multi-domain topology attestation (§4.2): all paths attested",
        &["deployment", "verifier outcome"],
    );
    let mut f = tyche_bench::scenarios::fig2_without_net();
    let verifier = Verifier {
        tpm_key: f.monitor.machine.tpm.attestation_key(),
        expected_monitor_pcr: expected_monitor_pcr(MONITOR_VERSION),
        monitor_key: f.monitor.report_key(),
    };
    let qn = [1u8; 32];
    let rn = [2u8; 32];
    let quote = f.monitor.machine_quote(qn).expect("quote");
    let reports = vec![
        f.monitor.attest_domain(f.crypto, rn).expect("crypto"),
        f.monitor.attest_domain(f.app, rn).expect("app"),
        f.monitor.attest_domain(f.gpu_domain, rn).expect("gpu"),
    ];
    use tyche_bench::scenarios::layout;
    let spec = TopologySpec {
        member_measurements: vec![None, None, None],
        channels: vec![
            (layout::APP_CRYPTO.0, layout::APP_CRYPTO.1, vec![0, 1]),
            (layout::APP_GPU.0, layout::APP_GPU.1, vec![1, 2]),
        ],
    };
    let ok = verifier
        .verify_topology(&quote, &qn, &reports, &rn, &spec)
        .is_ok();
    t.row(&[
        "crypto+app+gpu, channels exactly declared".into(),
        format!("accepted={ok}"),
    ]);
    let sneaky_spec = TopologySpec {
        member_measurements: vec![None, None, None],
        channels: vec![(layout::APP_CRYPTO.0, layout::APP_CRYPTO.1, vec![0, 1])],
    };
    let caught = verifier
        .verify_topology(&quote, &qn, &reports, &rn, &sneaky_spec)
        .unwrap_err();
    t.row(&[
        "same deployment, GPU channel undeclared".into(),
        format!("rejected ({caught})"),
    ]);
    t.print();
}

/// E3 — multi-key memory encryption (§4.2 extension).
fn e3() {
    let mut t = Table::new(
        "E3 — MKTME physical-attack resistance (§4.2)",
        &["view", "guest image bytes visible?"],
    );
    let mut m = boot();
    m.dom_write(0, 0x40_0000, b"guest kernel image")
        .expect("stage");
    let vm = libtyche::ConfidentialVm::launch_encrypted(
        &mut m,
        0,
        (0x40_0000, 0x42_0000),
        &[0],
        0x40_0000,
        &[],
    )
    .expect("launch");
    vm.enter(&mut m, 0).expect("enter");
    let mut through = [0u8; 18];
    m.dom_read(0, 0x40_0000, &mut through).expect("guest read");
    libtyche::ConfidentialVm::exit(&mut m, 0).expect("exit");
    t.row(&[
        "guest, through the memory controller".into(),
        format!("{}", &through == b"guest kernel image"),
    ]);
    let mut raw = [0u8; 18];
    m.machine
        .mem
        .read(tyche_hw::PhysAddr::new(0x40_0000), &mut raw)
        .expect("raw");
    t.row(&[
        "physical attacker (cold-boot DRAM dump)".into(),
        format!("{}", &raw == b"guest kernel image"),
    ]);
    t.row(&[
        "protected pages".into(),
        m.machine.mktme.protected_pages().to_string(),
    ]);
    t.print();
}

/// E4 — interrupt-routing capabilities (§4.1 extension).
fn e4() {
    let mut t = Table::new(
        "E4 — cross-domain interrupt routing via remapping (§4.1)",
        &["event", "outcome"],
    );
    let mut m = boot();
    let mut client = libtyche::TycheClient::new(&mut m, 0);
    let (driver, gate) = client.create_domain().expect("domain");
    let page = client.carve(0x10_0000, 0x10_1000).expect("carve");
    client
        .grant(page, driver, Rights::RW, RevocationPolicy::ZERO)
        .expect("grant");
    let (core0, irq) = {
        let me = client.whoami();
        let caps = client.monitor.engine.caps_of(me);
        (
            caps.iter()
                .find(|c| c.active && matches!(c.resource, Resource::CpuCore(0)))
                .map(|c| c.id)
                .expect("core"),
            caps.iter()
                .find(|c| c.active && matches!(c.resource, Resource::Interrupt(33)))
                .map(|c| c.id)
                .expect("irq"),
        )
    };
    client
        .share(core0, driver, None, Rights::USE, RevocationPolicy::NONE)
        .expect("share core");
    let granted = client
        .grant(irq, driver, Rights::USE, RevocationPolicy::NONE)
        .expect("grant irq");
    client.set_entry(driver, 0x10_0000).expect("entry");
    client.seal(driver, SealPolicy::strict()).expect("seal");

    m.machine.irq.raise(33);
    t.row(&[
        "device raises vector 33".into(),
        format!("OS pending={:?}", m.pending_interrupts(0)),
    ]);
    m.call(0, MonitorCall::Enter { cap: gate }).expect("enter");
    t.row(&[
        "driver domain entered".into(),
        format!("driver pending={:?}", m.pending_interrupts(0)),
    ]);
    m.call(0, MonitorCall::Return).expect("ret");
    m.call(0, MonitorCall::Revoke { cap: granted })
        .expect("revoke");
    m.machine.irq.raise(33);
    t.row(&[
        "vector revoked; device raises again".into(),
        format!(
            "OS pending={:?} spurious={}",
            m.pending_interrupts(0),
            m.machine.metrics.get(Counter::IrqSpurious)
        ),
    ]);
    t.print();
}

/// E5 — RDMA between TEEs on separate machines (§4.2 extension).
fn e5() {
    use libtyche::rdma::{RdmaConnection, RdmaNic, Wire};
    use tyche_monitor::attest::Verifier;
    let mut t = Table::new(
        "E5 — attested RDMA between TEEs on two machines (§4.2)",
        &["step", "outcome"],
    );
    let mk = |base: u64| -> (tyche_monitor::Monitor, DomainId, CapId) {
        let mut m = boot();
        let (d, g) = spawn_sealed(&mut m, 0, base, 0x4000, &[0], SealPolicy::strict());
        (m, d, g)
    };
    let (mut ma, da, ga) = mk(0x10_0000);
    let (mut mb, db, gb) = mk(0x10_0000);
    let qn = [1u8; 32];
    let rn = [2u8; 32];
    let quote_b = mb.machine_quote(qn).expect("quote");
    let report_b = mb.attest_domain(db, rn).expect("report b");
    let report_a = ma.attest_domain(da, rn).expect("report a");
    let verifier = Verifier {
        tpm_key: mb.machine.tpm.attestation_key(),
        expected_monitor_pcr: expected_monitor_pcr(MONITOR_VERSION),
        monitor_key: mb.report_key(),
    };
    let mut conn =
        RdmaConnection::establish(&verifier, &quote_b, &qn, &report_b, &rn, &report_a, None)
            .expect("establish");
    t.row(&[
        "mutual attestation + channel key".into(),
        "established".into(),
    ]);
    let mut nic_b = RdmaNic::new();
    let mut client = libtyche::TycheClient::new(&mut mb, 0);
    client.enter(gb).expect("enter b");
    let rkey = nic_b
        .register_mr(&mut mb, 0, 0x10_1000, 0x10_2000, true)
        .expect("register");
    libtyche::TycheClient::new(&mut mb, 0).ret().expect("ret b");
    t.row(&[
        "TEE B registers an exclusive MR".into(),
        format!("{rkey:?}"),
    ]);
    let mut wire = Wire::new();
    let mut client = libtyche::TycheClient::new(&mut ma, 0);
    client.enter(ga).expect("enter a");
    client
        .write(0x10_0100, b"cross-machine secret")
        .expect("stage");
    conn.rdma_write(
        &mut ma, 0, 0x10_0100, 20, &mut wire, &mut mb, &nic_b, rkey, 0,
    )
    .expect("rdma write");
    libtyche::TycheClient::new(&mut ma, 0).ret().expect("ret a");
    let mut got = [0u8; 20];
    m_enter_read(&mut mb, gb, 0x10_1000, &mut got);
    t.row(&[
        "one-sided write A->B".into(),
        format!("delivered={}", &got == b"cross-machine secret"),
    ]);
    t.row(&[
        "eavesdropper greps the wire".into(),
        format!("plaintext leaked={}", wire.leaks(b"cross-machine secret")),
    ]);
    t.row(&[
        "machine B's host reads the MR".into(),
        format!(
            "fault={}",
            mb.dom_read(0, 0x10_1000, &mut [0u8; 1]).is_err()
        ),
    ]);
    t.print();
}

/// Enters `gate` on core 0, reads `addr`, returns.
fn m_enter_read(m: &mut tyche_monitor::Monitor, gate: CapId, addr: u64, out: &mut [u8]) {
    let mut client = libtyche::TycheClient::new(m, 0);
    client.enter(gate).expect("enter");
    client.read(addr, out).expect("read");
    libtyche::TycheClient::new(m, 0).ret().expect("ret");
}

// ----------------------------------------------------------------------
// `repro bench` — hot-path before/after benchmarks (BENCH_hotpath.json)
// ----------------------------------------------------------------------

/// One measured bench entry destined for `BENCH_hotpath.json`.
struct HotpathEntry {
    name: &'static str,
    fanout: usize,
    metric: &'static str,
    before: u64,
    after: u64,
    detail: Vec<(&'static str, u64)>,
}

impl HotpathEntry {
    fn improvement(&self) -> f64 {
        self.before as f64 / (self.after.max(1)) as f64
    }

    fn to_json(&self) -> String {
        let detail = self
            .detail
            .iter()
            .map(|(k, v)| format!("\"{k}\": {v}"))
            .collect::<Vec<_>>()
            .join(", ");
        format!(
            "    {{\"name\": \"{}\", \"fanout\": {}, \"metric\": \"{}\", \
             \"before\": {}, \"after\": {}, \"improvement\": {:.2}, \
             \"detail\": {{{}}}}}",
            self.name,
            self.fanout,
            self.metric,
            self.before,
            self.after,
            self.improvement(),
            detail
        )
    }
}

/// Runs the four hot-path benchmarks and (with `json`) rewrites
/// `BENCH_hotpath.json` at the workspace root. `smoke` shrinks fan-outs
/// and iteration counts to a single fast CI-sized pass.
fn bench_hotpath(json: bool, smoke: bool) {
    let fanouts: &[usize] = if smoke { &[8] } else { &[16, 64, 256, 1024] };
    let iters: usize = if smoke { 2 } else { 2000 };
    let mut entries = Vec::new();

    let mut t = Table::new(
        "BENCH — revocation storm: per-effect sync (before) vs coalesced sync (after)",
        &[
            "fan-out",
            "before (cycles)",
            "after (cycles)",
            "improvement",
        ],
    );
    for &n in fanouts {
        let (before_cycles, before_ns) = bench_revocation(n, false);
        let (after_cycles, after_ns) = bench_revocation(n, true);
        let e = HotpathEntry {
            name: "revocation",
            fanout: n,
            metric: "simulated_cycles",
            before: before_cycles,
            after: after_cycles,
            detail: vec![("wall_ns_before", before_ns), ("wall_ns_after", after_ns)],
        };
        t.row(&[
            n.to_string(),
            before_cycles.to_string(),
            after_cycles.to_string(),
            format!("{:.1}x", e.improvement()),
        ]);
        entries.push(e);
    }
    t.print();

    let mut t = Table::new(
        "BENCH — capability ops: full scan (before) vs secondary indexes (after)",
        &[
            "fan-out",
            "caps_of scan (ns)",
            "caps_of indexed (ns)",
            "improvement",
        ],
    );
    for &n in fanouts {
        let e = bench_capability_ops(n, iters);
        t.row(&[
            n.to_string(),
            e.before.to_string(),
            e.after.to_string(),
            format!("{:.1}x", e.improvement()),
        ]);
        entries.push(e);
    }
    t.print();

    let e = bench_transitions(iters, false);
    let mut t = Table::new(
        "BENCH — transition latency: uncached fast path (before) vs validated cache (after)",
        &["variant", "wall ns/roundtrip", "simulated cycles/roundtrip"],
    );
    t.row(&[
        "mediated (VMCALL)".into(),
        e.detail[0].1.to_string(),
        e.detail[1].1.to_string(),
    ]);
    t.row(&[
        "fast, uncached".into(),
        e.before.to_string(),
        e.detail[2].1.to_string(),
    ]);
    t.row(&[
        "fast, cached".into(),
        e.after.to_string(),
        e.detail[2].1.to_string(),
    ]);
    t.print();
    entries.push(e);

    let e = bench_flush_policy(iters, false);
    let mut t = Table::new(
        "BENCH — flush-policy cost per mediated roundtrip (simulated cycles)",
        &["policy", "cycles/roundtrip"],
    );
    t.row(&["NONE".into(), e.after.to_string()]);
    t.row(&["ZERO".into(), e.detail[0].1.to_string()]);
    t.row(&["OBFUSCATE".into(), e.before.to_string()]);
    t.print();
    entries.push(e);

    if json {
        let body = entries
            .iter()
            .map(HotpathEntry::to_json)
            .collect::<Vec<_>>()
            .join(",\n");
        let doc = format!(
            "{{\n  \"schema\": \"tyche-bench-hotpath/v1\",\n  \
             \"mode\": \"{}\",\n  \"monitor_version\": \"{}\",\n  \
             \"benches\": [\n{}\n  ]\n}}\n",
            if smoke { "smoke" } else { "full" },
            MONITOR_VERSION,
            body
        );
        let path = workspace_root().join("BENCH_hotpath.json");
        std::fs::write(&path, doc).expect("write BENCH_hotpath.json");
        println!("wrote {}", path.display());
    }
}

/// Shares `fanout` page windows from the root RAM cap to one child
/// (zero-on-revoke policy, the clean-up contract every fixture uses),
/// then revokes them all and syncs — uncoalesced (`before`) or coalesced
/// (`after`). Each revocation emits an `UnmapMem` plus a policy
/// `FlushTlb`; uncoalesced application resyncs and flushes per effect,
/// coalesced application folds them into one terminal sync + flush.
/// Returns (simulated cycles, wall ns) for the revoke+sync.
fn bench_revocation(fanout: usize, coalesced: bool) -> (u64, u64) {
    let mut m = boot();
    let os = m.engine.root().expect("root");
    let ram = m
        .engine
        .caps_of(os)
        .iter()
        .find(|c| c.active && c.is_memory())
        .map(|c| c.id)
        .expect("root RAM cap");
    let (child, _t) = m.engine.create_domain(os).expect("child");
    let shares: Vec<CapId> = (0..fanout)
        .map(|i| {
            let base = 0x10_0000 + (i as u64) * 0x1000;
            m.engine
                .share(
                    os,
                    ram,
                    child,
                    Some(MemRegion::new(base, base + 0x1000)),
                    Rights::RW,
                    RevocationPolicy::ZERO,
                )
                .expect("share window")
        })
        .collect();
    m.sync_effects().expect("realize grants");
    let c0 = m.machine.cycles.now();
    let t0 = Instant::now();
    for cap in shares {
        m.engine.revoke(os, cap).expect("revoke");
    }
    if coalesced {
        m.sync_effects().expect("sync");
    } else {
        m.sync_effects_uncoalesced().expect("sync");
    }
    (
        m.machine.cycles.now() - c0,
        u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX),
    )
}

/// Builds an engine with `fanout` domains (one shared window each) and
/// times the indexed queries against their linear-scan twins on one
/// small domain. Wall-time only: the queries charge no simulated cycles.
fn bench_capability_ops(fanout: usize, iters: usize) -> HotpathEntry {
    use std::hint::black_box;
    let mut e = CapEngine::new();
    let root = e.create_root_domain();
    let ram = e
        .endow(
            root,
            Resource::Memory(MemRegion::new(0, (fanout as u64 + 16) * 0x1000)),
            Rights::RWX,
        )
        .expect("endow");
    let mut first = None;
    for i in 0..fanout {
        let (d, _t) = e.create_domain(root).expect("create");
        let base = (i as u64) * 0x1000;
        e.share(
            root,
            ram,
            d,
            Some(MemRegion::new(base, base + 0x1000)),
            Rights::RW,
            RevocationPolicy::NONE,
        )
        .expect("share");
        if first.is_none() {
            first = Some(d);
        }
    }
    e.drain_effects();
    let d0 = first.expect("fanout >= 1");
    let window = MemRegion::new(0, 0x1000);
    let per_op = |total_ns: u128| u64::try_from(total_ns / iters as u128).unwrap_or(u64::MAX);
    let time = |f: &mut dyn FnMut() -> usize| {
        let t0 = Instant::now();
        let mut sink = 0usize;
        for _ in 0..iters {
            sink = sink.wrapping_add(f());
        }
        black_box(sink);
        per_op(t0.elapsed().as_nanos())
    };
    let caps_scan = time(&mut || e.caps_of_scan(d0).len());
    let caps_idx = time(&mut || e.caps_of(d0).len());
    let rc_scan = time(&mut || e.refcount_mem_full_scan(window).max);
    let rc_idx = time(&mut || e.refcount_mem_full(window).max);
    let enum_scan = time(&mut || e.enumerate_scan(d0).expect("enumerate").len());
    let enum_idx = time(&mut || e.enumerate(d0).expect("enumerate").len());
    HotpathEntry {
        name: "capability_ops",
        fanout,
        metric: "wall_ns_per_op",
        before: caps_scan,
        after: caps_idx,
        detail: vec![
            ("refcount_scan_ns", rc_scan),
            ("refcount_indexed_ns", rc_idx),
            ("enumerate_scan_ns", enum_scan),
            ("enumerate_indexed_ns", enum_idx),
        ],
    }
}

/// Times one-way-symmetric roundtrips: mediated VMCALL, fast VMFUNC with
/// the validated cache bypassed, and fast VMFUNC with the cache warm.
/// With `traced` the sink records every event — the overhead gate runs
/// this variant and holds the cycle metrics to the untraced baseline.
fn bench_transitions(iters: usize, traced: bool) -> HotpathEntry {
    let mut m = boot();
    if traced {
        m.machine.trace.enable(m.machine.cores);
    }
    let (_d, gate) = spawn_sealed(&mut m, 0, 0x10_0000, 0x1000, &[0], SealPolicy::strict());
    let roundtrip = |m: &mut tyche_monitor::Monitor,
                     enter: &mut dyn FnMut(&mut tyche_monitor::Monitor)| {
        // Warm one roundtrip so cache-fill cost is not in the timing.
        enter(m);
        m.ret_fast(0).or_else(|_| {
            m.call(0, MonitorCall::Return)
                .map(|_| m.engine.root().expect("root"))
        })
        .expect("warm return");
        let c0 = m.machine.cycles.now();
        let t0 = Instant::now();
        for _ in 0..iters {
            enter(m);
            m.ret_fast(0).or_else(|_| {
                m.call(0, MonitorCall::Return)
                    .map(|_| m.engine.root().expect("root"))
            })
            .expect("return");
        }
        let ns = u64::try_from(t0.elapsed().as_nanos() / iters as u128).unwrap_or(u64::MAX);
        let cycles = (m.machine.cycles.now() - c0) / iters as u64;
        (ns, cycles)
    };
    let (med_ns, med_cycles) = roundtrip(&mut m, &mut |m| {
        m.call(0, MonitorCall::Enter { cap: gate }).map(|_| ()).expect("enter");
    });
    let (unc_ns, fast_cycles) = roundtrip(&mut m, &mut |m| {
        m.enter_fast_uncached(0, gate).map(|_| ()).expect("enter");
    });
    let (cached_ns, _) = roundtrip(&mut m, &mut |m| {
        m.enter_fast(0, gate).map(|_| ()).expect("enter");
    });
    HotpathEntry {
        name: "transitions",
        fanout: 1,
        metric: "wall_ns_per_roundtrip",
        before: unc_ns,
        after: cached_ns,
        detail: vec![
            ("mediated_wall_ns", med_ns),
            ("mediated_cycles", med_cycles),
            ("fast_cycles", fast_cycles),
        ],
    }
}

/// Simulated cycle cost of a mediated roundtrip under each revocation
/// policy; the flush charges are deterministic, so this entry is stable
/// across machines. `traced` turns the sink on, as in
/// [`bench_transitions`].
fn bench_flush_policy(iters: usize, traced: bool) -> HotpathEntry {
    let per_policy = |policy: RevocationPolicy| {
        let mut m = boot();
        if traced {
            m.machine.trace.enable(m.machine.cores);
        }
        let (d, _g) = spawn_sealed(&mut m, 0, 0x10_0000, 0x1000, &[0], SealPolicy::strict());
        let os = m.engine.root().expect("root");
        let gate = m.engine.make_transition(os, d, policy).expect("gate");
        m.sync_effects().expect("sync");
        let c0 = m.machine.cycles.now();
        for _ in 0..iters {
            m.call(0, MonitorCall::Enter { cap: gate }).expect("enter");
            m.dom_write(0, 0x10_0000, &[1]).expect("dirty a line");
            m.call(0, MonitorCall::Return).expect("return");
        }
        (m.machine.cycles.now() - c0) / iters as u64
    };
    let none = per_policy(RevocationPolicy::NONE);
    let zero = per_policy(RevocationPolicy::ZERO);
    let obfuscate = per_policy(RevocationPolicy::OBFUSCATE);
    HotpathEntry {
        name: "flush_policy",
        fanout: 1,
        metric: "simulated_cycles_per_roundtrip",
        before: obfuscate,
        after: none,
        detail: vec![("zero_cycles", zero)],
    }
}

// ----------------------------------------------------------------------
// `repro bench --scale` — population sweep 1k → 1M (BENCH_scale.json)
// ----------------------------------------------------------------------

/// Measured figures for one population size in the scale sweep. All
/// latencies are wall ns per operation; the engine-level queries charge
/// no simulated cycles.
struct ScaleEntry {
    population: usize,
    create_ns: u64,
    share_ns: u64,
    attest_ns: u64,
    enter_ns: u64,
    caps_of_ns: u64,
    enumerate_ns: u64,
    refcount_ns: u64,
    chain_depth: usize,
    chain_build_ns: u64,
    chain_revoke_ns: u64,
    revoke_storm_ns: u64,
    bytes_per_domain: u64,
    revoked_recorded: usize,
    revoked_dropped: u64,
}

impl ScaleEntry {
    fn to_json(&self) -> String {
        format!(
            "    {{\"population\": {}, \"create_ns_per_op\": {}, \
             \"share_ns_per_op\": {}, \"attest_ns_per_op\": {}, \
             \"enter_ns_per_op\": {}, \
             \"neighbor\": {{\"caps_of_ns\": {}, \"enumerate_ns\": {}, \
             \"refcount_ns\": {}}}, \
             \"deep_chain\": {{\"depth\": {}, \"build_ns_per_link\": {}, \
             \"cascade_revoke_ns_per_link\": {}}}, \
             \"revoke_storm_ns_per_op\": {}, \"bytes_per_domain\": {}, \
             \"revoked_log\": {{\"recorded\": {}, \"dropped\": {}}}}}",
            self.population,
            self.create_ns,
            self.share_ns,
            self.attest_ns,
            self.enter_ns,
            self.caps_of_ns,
            self.enumerate_ns,
            self.refcount_ns,
            self.chain_depth,
            self.chain_build_ns,
            self.chain_revoke_ns,
            self.revoke_storm_ns,
            self.bytes_per_domain,
            self.revoked_recorded,
            self.revoked_dropped,
        )
    }
}

/// Wall ns per operation since `t0` over `ops` operations.
fn scale_per_op(t0: Instant, ops: usize) -> u64 {
    u64::try_from(t0.elapsed().as_nanos() / ops.max(1) as u128).unwrap_or(u64::MAX)
}

/// One population point of the sweep: grows `n` tenant domains (one
/// 4 KiB window each), storms create/attest/enter, measures steady-state
/// neighbor latency on a fixed sample while the full population is
/// resident, builds and cascade-revokes a `depth`-deep derivation
/// chain, then kills the whole population (the revoke storm that has to
/// stay within a small constant of the 1k per-op cost). Effects are
/// drained every 4096 mutations inside the timed loops — the amortized
/// drain is part of the realistic storm cost at every population, so
/// the comparison across sizes stays fair.
fn scale_population(n: usize, neighbors: usize, depth: usize) -> ScaleEntry {
    use std::hint::black_box;
    use tyche_core::attest::DomainReport;
    const LANE: u64 = 0x2000;
    const DRAIN_EVERY: usize = 4096;
    let k = neighbors.min(n);
    let mut e = CapEngine::new();
    let root = e.create_root_domain();
    let chain_base = n as u64 * LANE;
    let ram = e
        .endow(root, Resource::mem(0, chain_base + 0x10_0000), Rights::RWX)
        .expect("endow ram");
    let core_caps: Vec<(usize, CapId)> = (0..k)
        .map(|core| {
            let cap = e
                .endow(root, Resource::CpuCore(core), Rights::USE)
                .expect("endow core");
            (core, cap)
        })
        .collect();

    // Create storm.
    let t0 = Instant::now();
    let mut domains = Vec::with_capacity(n);
    for i in 0..n {
        let (d, _gate) = e.create_domain(root).expect("create");
        domains.push(d);
        if (i + 1) % DRAIN_EVERY == 0 {
            let _ = e.drain_effects();
        }
    }
    let create_ns = scale_per_op(t0, n);
    let _ = e.drain_effects();

    // Share storm: every tenant gets one page of its private lane, so
    // the interval index holds `n` disjoint active regions.
    let t0 = Instant::now();
    for (i, &d) in domains.iter().enumerate() {
        let base = i as u64 * LANE;
        e.share(
            root,
            ram,
            d,
            Some(MemRegion::new(base, base + 0x1000)),
            Rights::RW,
            RevocationPolicy::NONE,
        )
        .expect("share lane");
        if (i + 1) % DRAIN_EVERY == 0 {
            let _ = e.drain_effects();
        }
    }
    let share_ns = scale_per_op(t0, n);
    let _ = e.drain_effects();

    // The steady-state neighbors: an evenly-strided sample that gets a
    // core each, an entry point, and a seal — the long-lived tenants
    // whose latency must not degrade as the population around them
    // grows.
    let stride = (n / k).max(1);
    let sampled: Vec<(usize, DomainId)> =
        (0..k).map(|i| (i * stride, domains[i * stride])).collect();
    for (j, &(idx, d)) in sampled.iter().enumerate() {
        e.share(
            root,
            core_caps[j].1,
            d,
            None,
            Rights::USE,
            RevocationPolicy::NONE,
        )
        .expect("share core");
        e.set_entry(root, d, idx as u64 * LANE).expect("set entry");
        e.seal(root, d, SealPolicy::nestable()).expect("seal");
    }
    let _ = e.drain_effects();

    // Attest storm over the sealed sample.
    let iters = 8usize;
    let t0 = Instant::now();
    let mut sink = 0usize;
    for _ in 0..iters {
        for &(_, d) in &sampled {
            sink = sink.wrapping_add(DomainReport::build(&e, d).expect("attest").resources.len());
        }
    }
    black_box(sink);
    let attest_ns = scale_per_op(t0, k * iters);

    // Enter storm: a transition gate per sampled neighbor, validated on
    // the distinct core that neighbor owns.
    let gates: Vec<(usize, CapId)> = sampled
        .iter()
        .enumerate()
        .map(|(j, &(_, d))| {
            (
                core_caps[j].0,
                e.make_transition(root, d, RevocationPolicy::NONE).expect("gate"),
            )
        })
        .collect();
    let _ = e.drain_effects();
    let iters = 32usize;
    let t0 = Instant::now();
    let mut sink = 0u64;
    for _ in 0..iters {
        for &(core, gate) in &gates {
            let (target, entry, _) = e.can_enter(root, gate, core).expect("enter");
            sink = sink.wrapping_add(target.0 ^ entry);
        }
    }
    black_box(sink);
    let enter_ns = scale_per_op(t0, k * iters);

    // Steady-state neighbor queries vs population: these curves must
    // stay flat or logarithmic as `n` grows.
    let t0 = Instant::now();
    let mut sink = 0usize;
    for _ in 0..iters {
        for &(_, d) in &sampled {
            sink = sink.wrapping_add(e.caps_of(d).len());
        }
    }
    black_box(sink);
    let caps_of_ns = scale_per_op(t0, k * iters);
    let t0 = Instant::now();
    let mut sink = 0usize;
    for _ in 0..iters {
        for &(_, d) in &sampled {
            sink = sink.wrapping_add(e.enumerate(d).expect("enumerate").len());
        }
    }
    black_box(sink);
    let enumerate_ns = scale_per_op(t0, k * iters);
    let t0 = Instant::now();
    let mut sink = 0usize;
    for _ in 0..iters {
        for &(idx, _) in &sampled {
            let base = idx as u64 * LANE;
            sink = sink.wrapping_add(e.refcount_mem_full(MemRegion::new(base, base + 0x1000)).max);
        }
    }
    black_box(sink);
    let refcount_ns = scale_per_op(t0, k * iters);

    // Peak-resident footprint, before anything is torn down.
    let bytes_per_domain = (e.storage_bytes() / n.max(1)) as u64;

    // Deep derivation chain: two relay domains alternately re-share one
    // window `depth` times, then one revocation at the head cascades
    // through every link.
    let (relay_a, _) = e.create_domain(root).expect("relay a");
    let (relay_b, _) = e.create_domain(root).expect("relay b");
    let head = e
        .share(
            root,
            ram,
            relay_a,
            Some(MemRegion::new(chain_base, chain_base + 0x1000)),
            Rights::RW,
            RevocationPolicy::NONE,
        )
        .expect("chain head");
    let t0 = Instant::now();
    let mut cur = head;
    let mut owner = relay_a;
    for i in 0..depth {
        let target = if i % 2 == 0 { relay_b } else { relay_a };
        cur = e
            .share(owner, cur, target, None, Rights::RW, RevocationPolicy::NONE)
            .expect("chain link");
        owner = target;
    }
    black_box(cur);
    let chain_build_ns = scale_per_op(t0, depth);
    let _ = e.drain_effects();
    let t0 = Instant::now();
    e.revoke(root, head).expect("cascade revoke");
    let chain_revoke_ns = scale_per_op(t0, depth + 1);
    let _ = e.drain_effects();

    // Revoke storm: kill the entire population. Sealed or not, every
    // tenant goes through the same lineage teardown, and the slab
    // freelists must absorb all of it without growing the arenas.
    let t0 = Instant::now();
    for (i, &d) in domains.iter().enumerate() {
        e.kill(root, d).expect("kill");
        if (i + 1) % DRAIN_EVERY == 0 {
            let _ = e.drain_effects();
        }
    }
    let revoke_storm_ns = scale_per_op(t0, n);
    let _ = e.drain_effects();

    ScaleEntry {
        population: n,
        create_ns,
        share_ns,
        attest_ns,
        enter_ns,
        caps_of_ns,
        enumerate_ns,
        refcount_ns,
        chain_depth: depth,
        chain_build_ns,
        chain_revoke_ns,
        revoke_storm_ns,
        bytes_per_domain,
        revoked_recorded: e.revoked_log().len(),
        revoked_dropped: e.revoked_log().dropped(),
    }
}

/// Runs the population sweep and (with `json`) rewrites
/// `BENCH_scale.json` at the workspace root. `smoke` truncates the
/// sweep at 100k domains and shortens the derivation chain for CI.
fn bench_scale(json: bool, smoke: bool) {
    let populations: &[usize] = if smoke {
        &[1_000, 10_000, 100_000]
    } else {
        &[1_000, 10_000, 100_000, 1_000_000]
    };
    let depth = if smoke { 256 } else { 1024 };
    let neighbors = 64;

    let mut t = Table::new(
        "BENCH — population sweep: storms and steady-state neighbor latency (wall ns/op)",
        &[
            "population",
            "create",
            "enter",
            "enumerate",
            "refcount",
            "revoke storm",
            "bytes/domain",
        ],
    );
    let mut entries = Vec::new();
    for &n in populations {
        let e = scale_population(n, neighbors, depth);
        t.row(&[
            n.to_string(),
            e.create_ns.to_string(),
            e.enter_ns.to_string(),
            e.enumerate_ns.to_string(),
            e.refcount_ns.to_string(),
            e.revoke_storm_ns.to_string(),
            e.bytes_per_domain.to_string(),
        ]);
        entries.push(e);
    }
    t.print();

    if let (Some(first), Some(last)) = (entries.first(), entries.last()) {
        let ratio = last.revoke_storm_ns as f64 / first.revoke_storm_ns.max(1) as f64;
        println!(
            "revoke-storm per-op cost at {} domains is {:.2}x the {}-domain cost",
            last.population, ratio, first.population
        );
    }

    if json {
        let body = entries
            .iter()
            .map(ScaleEntry::to_json)
            .collect::<Vec<_>>()
            .join(",\n");
        let doc = format!(
            "{{\n  \"schema\": \"tyche-bench-scale/v1\",\n  \
             \"mode\": \"{}\",\n  \"monitor_version\": \"{}\",\n  \
             \"neighbors\": {},\n  \"populations\": [\n{}\n  ]\n}}\n",
            if smoke { "smoke" } else { "full" },
            MONITOR_VERSION,
            neighbors,
            body
        );
        let path = workspace_root().join("BENCH_scale.json");
        std::fs::write(&path, doc).expect("write BENCH_scale.json");
        println!("wrote {}", path.display());
    }
}

// ----------------------------------------------------------------------
// `repro bench --smp` — SMP serving benchmarks (BENCH_smp.json)
// ----------------------------------------------------------------------

/// One SMP bench entry: the same workload pushed through a mutex around
/// the whole monitor (one global simulated clock — `baseline`) and the
/// sharded [`ConcurrentMonitor`] (per-core clocks — `smp`). Throughput
/// is hypercalls per million simulated cycles; both sides charge the
/// identical per-operation cost, so the ratio isolates serialization.
struct SmpEntry {
    workload: &'static str,
    threads: usize,
    /// Capability shard count the concurrent front-end was built with.
    shards: usize,
    /// Submission-ring auto-drain depth (meaningful for ring workloads;
    /// recorded for every row so sweeps stay self-describing).
    ring_depth: usize,
    ops: u64,
    /// Simulated cycles to drain the workload on the single global clock.
    baseline_cycles: u64,
    /// Simulated makespan (max over per-core clocks) on the sharded path.
    smp_cycles: u64,
    detail: Vec<(&'static str, u64)>,
}

impl SmpEntry {
    fn baseline_tput(&self) -> f64 {
        self.ops as f64 * 1e6 / self.baseline_cycles.max(1) as f64
    }

    fn smp_tput(&self) -> f64 {
        self.ops as f64 * 1e6 / self.smp_cycles.max(1) as f64
    }

    fn speedup(&self) -> f64 {
        self.smp_tput() / self.baseline_tput().max(f64::MIN_POSITIVE)
    }

    fn to_json(&self) -> String {
        let detail = self
            .detail
            .iter()
            .map(|(k, v)| format!("\"{k}\": {v}"))
            .collect::<Vec<_>>()
            .join(", ");
        format!(
            "    {{\"workload\": \"{}\", \"threads\": {}, \
             \"shards\": {}, \"ring_depth\": {}, \
             \"metric\": \"ops_per_mcycle\", \"ops\": {}, \
             \"baseline_cycles\": {}, \"smp_cycles\": {}, \
             \"baseline_tput\": {:.2}, \"smp_tput\": {:.2}, \
             \"speedup\": {:.2}, \"detail\": {{{}}}}}",
            self.workload,
            self.threads,
            self.shards,
            self.ring_depth,
            self.ops,
            self.baseline_cycles,
            self.smp_cycles,
            self.baseline_tput(),
            self.smp_tput(),
            self.speedup(),
            detail
        )
    }
}

/// Per-core SMP bench setup: the sealed tenant pinned to the core, the
/// transition capability into it, and its private memory window.
#[derive(Clone, Copy)]
struct SmpLane {
    tenant: DomainId,
    gate: CapId,
    window: CapId,
}

/// Base address of core `c`'s private 64 KiB window.
fn lane_base(core: usize) -> u64 {
    0x40_0000 + (core as u64) * 0x10_000
}

/// The booted SMP bench machine: one worker lane per thread plus the
/// shared victim tenant running on its own extra core, and (for the
/// contended workloads) a pre-created pool of revocable victim-owned
/// capabilities, one column per worker.
struct SmpFixture {
    m: tyche_monitor::Monitor,
    lanes: Vec<SmpLane>,
    victim: DomainId,
    victim_gate: CapId,
    victim_core: usize,
    pool: Vec<Vec<CapId>>,
}

/// Finds root's capability for CPU core `core`.
fn find_core_cap(m: &tyche_monitor::Monitor, os: DomainId, core: usize) -> CapId {
    m.engine
        .caps_of(os)
        .iter()
        .find(|c| c.active && matches!(c.resource, Resource::CpuCore(n) if n == core))
        .map(|c| c.id)
        .expect("core cap")
}

/// Boots an x86 machine with `threads + 1` cores; worker core `c` gets a
/// sealed (nestable, so it can still share outward) tenant owning that
/// core plus a private window. The extra core hosts the *victim*: a
/// sealed, enterable tenant every contended worker mutates. Running the
/// victim on a core of its own is what makes contended revocations
/// produce real cross-core IPIs — a queued shootdown only turns into an
/// IPI if some remote core is executing an affected domain.
///
/// Tenant `c` is steered onto capability shard `c % nshards`: the
/// distinct workload measures per-shard parallelism, and an *unplanned*
/// collision would re-serialize it (at `threads > nshards` the fold-over
/// is the point — that is the shard-sweep knee). Domain and capability
/// ids come from one sequential allocator, so burning filler ids (root
/// self-transition caps) until the next id lands on the wanted residue
/// places each tenant deterministically; the assert fails loudly if the
/// allocator ever stops cooperating.
///
/// `pool_depth > 0` pre-creates, per worker, that many victim-owned
/// sub-shares of the victim's window (self-shares are legal while
/// sealed). Revoking one strips the running victim, so each contended
/// iteration has a fresh capability whose revocation must shoot down
/// the victim core.
fn smp_fixture(threads: usize, nshards: usize, pool_depth: usize) -> SmpFixture {
    use tyche_core::shared::SharedEngine;

    let mut cfg = BootConfig::default();
    cfg.machine.cores = threads + 1;
    let mut m = boot_x86(cfg);
    let os = m.engine.root().expect("root");
    let hi = lane_base(threads + 1);
    let ram = m
        .engine
        .caps_of(os)
        .iter()
        .find(|c| {
            c.active
                && matches!(c.resource, Resource::Memory(r)
                    if r.start <= lane_base(0) && hi <= r.end)
        })
        .map(|c| c.id)
        .expect("root RAM cap");

    // The victim lane: window + core + entry, sealed nestable so it can
    // still self-share (the revocation pool) after sealing.
    let victim_core = threads;
    let (victim, victim_gate) = m.engine.create_domain(os).expect("victim");
    let vbase = lane_base(victim_core);
    let vwindow = m
        .engine
        .share(
            os,
            ram,
            victim,
            Some(MemRegion::new(vbase, vbase + 0x10_000)),
            Rights::RWX,
            RevocationPolicy::NONE,
        )
        .expect("victim window");
    let vcore_cap = find_core_cap(&m, os, victim_core);
    m.engine
        .share(os, vcore_cap, victim, None, Rights::USE, RevocationPolicy::NONE)
        .expect("share victim core");
    m.engine.set_entry(os, victim, vbase).expect("victim entry");
    m.engine
        .seal(os, victim, SealPolicy::nestable())
        .expect("seal victim");

    let mut next_id = m
        .engine
        .make_transition(os, os, RevocationPolicy::NONE)
        .expect("probe")
        .0
        + 1;
    let lanes: Vec<SmpLane> = (0..threads)
        .map(|core| {
            let want = (core % nshards) as u64;
            while next_id % nshards as u64 != want {
                next_id = m
                    .engine
                    .make_transition(os, os, RevocationPolicy::NONE)
                    .expect("filler")
                    .0
                    + 1;
            }
            let base = lane_base(core);
            let (tenant, gate) = m.engine.create_domain(os).expect("tenant");
            assert_eq!(
                SharedEngine::shard_of_n(tenant, nshards),
                core % nshards,
                "tenant off its shard"
            );
            let window = m
                .engine
                .share(
                    os,
                    ram,
                    tenant,
                    Some(MemRegion::new(base, base + 0x10_000)),
                    Rights::RWX,
                    RevocationPolicy::NONE,
                )
                .expect("window");
            let core_cap = find_core_cap(&m, os, core);
            let core_share = m
                .engine
                .share(os, core_cap, tenant, None, Rights::USE, RevocationPolicy::NONE)
                .expect("share core");
            m.engine.set_entry(os, tenant, base).expect("entry");
            m.engine
                .seal(os, tenant, SealPolicy::nestable())
                .expect("seal tenant");
            next_id = core_share.0 + 1;
            SmpLane { tenant, gate, window }
        })
        .collect();

    // The revocation pool comes after the lanes so its allocations
    // cannot disturb the id steering above.
    let pool: Vec<Vec<CapId>> = (0..threads)
        .map(|_| {
            (0..pool_depth)
                .map(|i| {
                    let page = vbase + ((i % 16) as u64) * 0x1000;
                    m.engine
                        .share(
                            victim,
                            vwindow,
                            victim,
                            Some(MemRegion::new(page, page + 0x1000)),
                            Rights::RW,
                            RevocationPolicy::NONE,
                        )
                        .expect("pool cap")
                })
                .collect()
        })
        .collect();
    m.sync_effects().expect("sync fixture");
    SmpFixture {
        m,
        lanes,
        victim,
        victim_gate,
        victim_core,
        pool,
    }
}

/// The self-share a distinct-mode worker issues on iteration `i`: the
/// core's tenant sub-shares a page of its own window with itself (one
/// domain, one shard — sealing permits self-shares).
fn smp_distinct_share(core: usize, i: usize, lane: SmpLane) -> MonitorCall {
    let base = lane_base(core) + ((i % 16) as u64) * 0x1000;
    MonitorCall::Share {
        cap: lane.window,
        target: lane.tenant,
        sub: Some((base, base + 0x1000)),
        rights: Rights::RW,
        policy: RevocationPolicy::NONE,
    }
}

/// How the mutation workload reaches the monitor.
#[derive(Clone, Copy, PartialEq, Eq)]
enum SmpMode {
    /// Per-core tenants mutate their own domains (no cross-core losers).
    Distinct,
    /// Every worker mutates the shared victim through `serve`, one trap
    /// per call, draining shootdowns every iteration.
    Contended,
    /// Same contended calls, but enqueued into the per-core submission
    /// ring (`submit` + doorbell auto-drain) so trap crossings and
    /// shootdown rounds amortize over whole batches.
    ContendedRing,
}

/// Enters the actors the mode needs: distinct workers run as their
/// core's tenant; contended modes put the victim on its own core so
/// revocations have a remote core to shoot down.
fn smp_enter_actors(m: &mut tyche_monitor::Monitor, fx_lanes: &[SmpLane], mode: SmpMode, victim_core: usize, victim_gate: CapId) {
    if mode == SmpMode::Distinct {
        for (core, lane) in fx_lanes.iter().enumerate() {
            m.call(core, MonitorCall::Enter { cap: lane.gate }).expect("enter tenant");
        }
    } else {
        m.call(victim_core, MonitorCall::Enter { cap: victim_gate })
            .expect("enter victim");
    }
}

/// Runs the mutation workload (`pairs` two-call iterations per worker,
/// one worker per core) through both serving models and returns the
/// measured entry. Distinct mode pairs a tenant self-share with its
/// revocation; contended modes pair a `MakeTransition` into the victim
/// with the revocation of one pre-created victim-owned pool capability,
/// so every iteration both contends on the victim's shard and strips
/// the *running* victim (a real IPI, not just a queued shootdown).
fn smp_run_mutations(
    workload: &'static str,
    threads: usize,
    pairs: usize,
    mode: SmpMode,
    nshards: usize,
    ring_depth: usize,
) -> SmpEntry {
    use std::sync::{Arc, Mutex};

    let pool_depth = if mode == SmpMode::Distinct { 0 } else { pairs };

    // Baseline: a mutex around the whole monitor; every call serializes
    // on the machine's single global cycle counter.
    let fx = smp_fixture(threads, nshards, pool_depth);
    let (mut m, lanes, victim, pool) = (fx.m, fx.lanes, fx.victim, fx.pool);
    smp_enter_actors(&mut m, &lanes, mode, fx.victim_core, fx.victim_gate);
    let c0 = m.machine.cycles.now();
    let shared = Arc::new(Mutex::new(m));
    let t0 = Instant::now();
    let workers: Vec<_> = (0..threads)
        .map(|core| {
            let shared = Arc::clone(&shared);
            let lane = lanes[core];
            let pool_caps = pool.get(core).cloned().unwrap_or_default();
            std::thread::spawn(move || {
                if mode == SmpMode::Distinct {
                    for i in 0..pairs {
                        let call = smp_distinct_share(core, i, lane);
                        let cap = match shared.lock().expect("monitor lock").call(core, call) {
                            Ok(CallResult::Cap(c)) => c,
                            other => panic!("baseline share failed: {other:?}"),
                        };
                        shared
                            .lock()
                            .expect("monitor lock")
                            .call(core, MonitorCall::Revoke { cap })
                            .expect("baseline revoke");
                    }
                } else {
                    for &cap in pool_caps.iter().take(pairs) {
                        let make = MonitorCall::MakeTransition {
                            target: victim,
                            policy: RevocationPolicy::NONE,
                        };
                        match shared.lock().expect("monitor lock").call(core, make) {
                            Ok(CallResult::Cap(_)) => {}
                            other => panic!("baseline make_transition failed: {other:?}"),
                        }
                        shared
                            .lock()
                            .expect("monitor lock")
                            .call(core, MonitorCall::Revoke { cap })
                            .expect("baseline revoke");
                    }
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("baseline worker");
    }
    let wall_base = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
    let baseline_cycles = shared.lock().expect("monitor lock").machine.cycles.now() - c0;

    // Sharded front-end: same fixture, same ops, served concurrently.
    let fx = smp_fixture(threads, nshards, pool_depth);
    let (mut m, lanes, victim, pool) = (fx.m, fx.lanes, fx.victim, fx.pool);
    smp_enter_actors(&mut m, &lanes, mode, fx.victim_core, fx.victim_gate);
    let cm = Arc::new(ConcurrentMonitor::with_config(m, nshards, ring_depth));
    let t0 = Instant::now();
    let workers: Vec<_> = (0..threads)
        .map(|core| {
            let cm = Arc::clone(&cm);
            let lane = lanes[core];
            let pool_caps = pool.get(core).cloned().unwrap_or_default();
            std::thread::spawn(move || match mode {
                SmpMode::Distinct => {
                    for i in 0..pairs {
                        let call = smp_distinct_share(core, i, lane);
                        let cap = match cm.serve(core, call) {
                            Ok(CallResult::Cap(c)) => c,
                            other => panic!("smp share failed: {other:?}"),
                        };
                        cm.serve(core, MonitorCall::Revoke { cap }).expect("smp revoke");
                        // Per-iteration drain. Distinct losers run on the
                        // requesting core itself, so the drain finds no
                        // remote core to interrupt: shootdowns_requested
                        // counts up while ipis_sent stays 0 — by design.
                        cm.sync_shootdowns(core);
                    }
                }
                SmpMode::Contended => {
                    for &cap in pool_caps.iter().take(pairs) {
                        let make = MonitorCall::MakeTransition {
                            target: victim,
                            policy: RevocationPolicy::NONE,
                        };
                        match cm.serve(core, make) {
                            Ok(CallResult::Cap(_)) => {}
                            other => panic!("smp make_transition failed: {other:?}"),
                        }
                        cm.serve(core, MonitorCall::Revoke { cap }).expect("smp revoke");
                        // Per-iteration drain: the victim runs on its own
                        // core, so every revocation's queued invalidation
                        // becomes a real IPI here.
                        cm.sync_shootdowns(core);
                    }
                }
                SmpMode::ContendedRing => {
                    let check = |outcome: RingOutcome| match outcome {
                        RingOutcome::Queued(_) => {}
                        RingOutcome::Completed(r) => {
                            r.expect("ring inline");
                        }
                        RingOutcome::Drained(results) => {
                            for r in results {
                                r.expect("ring drain");
                            }
                        }
                    };
                    for &cap in pool_caps.iter().take(pairs) {
                        check(cm.submit(
                            core,
                            MonitorCall::MakeTransition {
                                target: victim,
                                policy: RevocationPolicy::NONE,
                            },
                        ));
                        check(cm.submit(core, MonitorCall::Revoke { cap }));
                    }
                    // Ring drains are themselves flush boundaries (one
                    // coalesced shootdown round per batch); flush the tail.
                    for r in cm.ring_doorbell(core) {
                        r.expect("ring flush");
                    }
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("smp worker");
    }
    let wall_smp = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
    let smp_cycles = cm.makespan();
    let shard_waits = SmpStats::get(&cm.stats.shard_waits);
    let shootdowns = SmpStats::get(&cm.stats.shootdowns_requested);
    let ipis = SmpStats::get(&cm.stats.ipis_sent);
    let ring_submitted = SmpStats::get(&cm.stats.ring_submitted);
    let ring_batches = SmpStats::get(&cm.stats.ring_batches);
    let monitor = Arc::try_unwrap(cm).ok().expect("workers joined").finish();
    assert!(
        audit::audit(&monitor.engine).is_empty(),
        "smp bench left the engine unauditable"
    );
    if mode != SmpMode::Distinct {
        assert!(ipis > 0, "contended workload must deliver real IPIs");
    }

    SmpEntry {
        workload,
        threads,
        shards: nshards,
        ring_depth,
        ops: (2 * pairs * threads) as u64,
        baseline_cycles,
        smp_cycles,
        detail: vec![
            ("wall_ns_baseline", wall_base),
            ("wall_ns_smp", wall_smp),
            ("shard_waits", shard_waits),
            ("shootdowns_requested", shootdowns),
            ("ipis_sent", ipis),
            ("ring_submitted", ring_submitted),
            ("ring_batches", ring_batches),
        ],
    }
}

/// Runs the transition workload: each core does `roundtrips` fast
/// Enter+Return roundtrips into its own sealed tenant. The baseline
/// still takes the whole-monitor mutex per one-way switch; the SMP path
/// serves them from per-core state with no shared lock at all.
fn smp_run_transitions(threads: usize, roundtrips: usize) -> SmpEntry {
    use std::sync::{Arc, Mutex};
    use tyche_core::shared::SHARDS;

    let fx = smp_fixture(threads, SHARDS, 0);
    let (m, lanes) = (fx.m, fx.lanes);
    let c0 = m.machine.cycles.now();
    let shared = Arc::new(Mutex::new(m));
    let t0 = Instant::now();
    let workers: Vec<_> = (0..threads)
        .map(|core| {
            let shared = Arc::clone(&shared);
            let lane = lanes[core];
            std::thread::spawn(move || {
                for _ in 0..roundtrips {
                    shared
                        .lock()
                        .expect("monitor lock")
                        .enter_fast(core, lane.gate)
                        .expect("baseline enter");
                    shared
                        .lock()
                        .expect("monitor lock")
                        .ret_fast(core)
                        .expect("baseline return");
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("baseline worker");
    }
    let wall_base = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
    let baseline_cycles = shared.lock().expect("monitor lock").machine.cycles.now() - c0;

    let fx = smp_fixture(threads, SHARDS, 0);
    let (m, lanes) = (fx.m, fx.lanes);
    let cm = Arc::new(ConcurrentMonitor::new(m));
    let t0 = Instant::now();
    let workers: Vec<_> = (0..threads)
        .map(|core| {
            let cm = Arc::clone(&cm);
            let lane = lanes[core];
            std::thread::spawn(move || {
                for _ in 0..roundtrips {
                    match cm.serve(core, MonitorCall::Enter { cap: lane.gate }) {
                        Ok(CallResult::Entered { .. }) => {}
                        other => panic!("smp enter failed: {other:?}"),
                    }
                    match cm.serve(core, MonitorCall::Return) {
                        Ok(CallResult::Returned { .. }) => {}
                        other => panic!("smp return failed: {other:?}"),
                    }
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("smp worker");
    }
    let wall_smp = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
    let smp_cycles = cm.makespan();
    let fast = SmpStats::get(&cm.stats.fast_transitions);
    let mutations = SmpStats::get(&cm.stats.mutations);

    SmpEntry {
        workload: "transitions_distinct",
        threads,
        shards: SHARDS,
        ring_depth: ConcurrentMonitor::DEFAULT_RING_DEPTH,
        ops: (2 * roundtrips * threads) as u64,
        baseline_cycles,
        smp_cycles,
        detail: vec![
            ("wall_ns_baseline", wall_base),
            ("wall_ns_smp", wall_smp),
            ("fast_transitions", fast),
            ("mediated_fallbacks", mutations),
        ],
    }
}

/// Runs the SMP serving suite at 1–32 worker threads (one per modeled
/// core) and (with `json`) rewrites `BENCH_smp.json` at the workspace
/// root. Full runs append two sweeps at fixed thread counts: shard
/// count at the widest fan-out (locating the shard-collision knee) and
/// ring depth on the contended path (the batching amortization curve).
/// `smoke` shrinks everything to a single 2-thread pass per workload
/// for CI. Cycle numbers are simulated, so they are independent of the
/// host machine, and IPI charges are per-requester batches (TLB-gather
/// discipline), so they do not depend on thread interleaving either.
/// Wall-clock appears only in `detail`.
fn bench_smp(json: bool, smoke: bool) {
    use tyche_core::shared::SHARDS;

    let threads: &[usize] = if smoke { &[2] } else { &[1, 2, 4, 8, 16, 32] };
    let pairs: usize = if smoke { 8 } else { 64 };
    let roundtrips: usize = if smoke { 16 } else { 256 };
    let depth = ConcurrentMonitor::DEFAULT_RING_DEPTH;
    let mut entries: Vec<SmpEntry> = Vec::new();

    type Workload<'a> = (&'a str, Box<dyn Fn(usize) -> SmpEntry>);
    let workloads: [Workload; 4] = [
        (
            "hypercalls_distinct: per-core tenants mutate their own domains",
            Box::new(move |t| {
                smp_run_mutations("hypercalls_distinct", t, pairs, SmpMode::Distinct, SHARDS, depth)
            }),
        ),
        (
            "hypercalls_contended: every core mutates one shared running domain",
            Box::new(move |t| {
                smp_run_mutations("hypercalls_contended", t, pairs, SmpMode::Contended, SHARDS, depth)
            }),
        ),
        (
            "hypercalls_contended_ring: same contention through per-core submission rings",
            Box::new(move |t| {
                smp_run_mutations(
                    "hypercalls_contended_ring",
                    t,
                    pairs,
                    SmpMode::ContendedRing,
                    SHARDS,
                    depth,
                )
            }),
        ),
        (
            "transitions_distinct: per-core fast enter/return roundtrips",
            Box::new(move |t| smp_run_transitions(t, roundtrips)),
        ),
    ];
    for (title, run) in &workloads {
        let mut t = Table::new(
            &format!("BENCH SMP — {title}"),
            &[
                "threads",
                "baseline (ops/Mcycle)",
                "smp (ops/Mcycle)",
                "speedup",
            ],
        );
        for &n in threads {
            let e = run(n);
            t.row(&[
                n.to_string(),
                format!("{:.1}", e.baseline_tput()),
                format!("{:.1}", e.smp_tput()),
                format!("{:.2}x", e.speedup()),
            ]);
            entries.push(e);
        }
        t.print();
    }

    if !smoke {
        // Shard-count sweep at the widest fan-out: below 32 shards some
        // tenants fold onto one shard and re-serialize — the knee.
        let wide = *threads.last().expect("thread list");
        let mut t = Table::new(
            &format!("BENCH SMP — hypercalls_distinct_shards: shard sweep at {wide} threads"),
            &["shards", "baseline (ops/Mcycle)", "smp (ops/Mcycle)", "speedup"],
        );
        for &ns in &[8usize, 16, 32, 64] {
            let e = smp_run_mutations(
                "hypercalls_distinct_shards",
                wide,
                pairs,
                SmpMode::Distinct,
                ns,
                depth,
            );
            t.row(&[
                ns.to_string(),
                format!("{:.1}", e.baseline_tput()),
                format!("{:.1}", e.smp_tput()),
                format!("{:.2}x", e.speedup()),
            ]);
            entries.push(e);
        }
        t.print();

        // Ring-depth sweep: how much batching is needed before the
        // per-batch trap and shootdown round stop dominating.
        let mut t = Table::new(
            "BENCH SMP — hypercalls_contended_ringdepth: ring-depth sweep at 8 threads",
            &["ring_depth", "baseline (ops/Mcycle)", "smp (ops/Mcycle)", "speedup"],
        );
        for &d in &[4usize, 8, 16, 32] {
            let e = smp_run_mutations(
                "hypercalls_contended_ringdepth",
                8,
                pairs,
                SmpMode::ContendedRing,
                SHARDS,
                d,
            );
            t.row(&[
                d.to_string(),
                format!("{:.1}", e.baseline_tput()),
                format!("{:.1}", e.smp_tput()),
                format!("{:.2}x", e.speedup()),
            ]);
            entries.push(e);
        }
        t.print();
    }

    // Headline criteria: distinct-domain throughput must scale from the
    // lowest to the highest thread count and beat the whole-monitor
    // mutex there, and the ring-batched contended path must beat the
    // mutex on the workload where per-call serving plateaus.
    let distinct: Vec<&SmpEntry> = entries
        .iter()
        .filter(|e| e.workload == "hypercalls_distinct")
        .collect();
    let first = distinct.first().expect("distinct entries");
    let last = distinct.last().expect("distinct entries");
    let scaling = last.smp_tput() / first.smp_tput().max(f64::MIN_POSITIVE);
    let vs_baseline = last.speedup();
    println!(
        "SMP scaling (hypercalls_distinct): {:.2}x from {} to {} threads; \
         {vs_baseline:.2}x vs whole-monitor mutex at {} threads",
        scaling, first.threads, last.threads, last.threads
    );
    let contended_last = entries
        .iter()
        .rfind(|e| e.workload == "hypercalls_contended")
        .expect("contended entries");
    let ring_last = entries
        .iter()
        .rfind(|e| e.workload == "hypercalls_contended_ring")
        .expect("ring entries");
    let ring_vs_baseline = ring_last.speedup();
    println!(
        "SMP contended path at {} threads: {:.2}x serve-per-call, \
         {ring_vs_baseline:.2}x ring-batched vs whole-monitor mutex",
        ring_last.threads,
        contended_last.speedup()
    );

    if json {
        let body = entries
            .iter()
            .map(SmpEntry::to_json)
            .collect::<Vec<_>>()
            .join(",\n");
        let doc = format!(
            "{{\n  \"schema\": \"tyche-bench-smp/v2\",\n  \
             \"mode\": \"{}\",\n  \"monitor_version\": \"{}\",\n  \
             \"distinct_scaling\": {:.2},\n  \
             \"distinct_vs_baseline\": {:.2},\n  \
             \"contended_ring_vs_baseline\": {:.2},\n  \
             \"benches\": [\n{}\n  ]\n}}\n",
            if smoke { "smoke" } else { "full" },
            MONITOR_VERSION,
            scaling,
            vs_baseline,
            ring_vs_baseline,
            body
        );
        let path = workspace_root().join("BENCH_smp.json");
        std::fs::write(&path, doc).expect("write BENCH_smp.json");
        println!("wrote {}", path.display());
    }
}

// ---------------------------------------------------------------------
// `repro fuzz` — adversarial hypercall fuzzing over fixed seeds
// ---------------------------------------------------------------------

/// The fixed seed corpus (documented in EXPERIMENTS.md § Fuzz
/// methodology). Full runs take all eight; `--smoke` takes the first
/// four with a smaller call budget for CI.
const FUZZ_SEEDS: [u64; 8] = [1, 2, 3, 5, 8, 13, 21, 34];

/// Runs the adversarial fuzzer over the fixed seed corpus, replaying
/// each seed to check trace determinism. Returns false on any audit
/// finding or replay divergence.
fn fuzz_campaign(json: bool, smoke: bool) -> bool {
    let seeds: &[u64] = if smoke { &FUZZ_SEEDS[..4] } else { &FUZZ_SEEDS };
    let calls: u64 = if smoke { 1_500 } else { 10_000 };
    let mut t = Table::new(
        "FUZZ — adversarial hypercalls under deterministic fault injection",
        &[
            "seed", "calls", "ok", "refused", "malformed", "accesses", "faults", "quar",
            "replay", "trace",
        ],
    );
    let mut pass = true;
    let mut reports = Vec::new();
    let started = Instant::now();
    for &seed in seeds {
        let config = fuzz::FuzzConfig {
            seed,
            calls,
            faults: true,
        };
        let r = fuzz::run(config);
        let replayed = fuzz::run(config).trace == r.trace;
        if !r.clean() {
            pass = false;
            for f in &r.audit_failures {
                println!("AUDIT FAILURE: {f}");
            }
        }
        if !replayed {
            pass = false;
            println!("REPLAY DIVERGENCE: seed {seed} produced two different traces");
        }
        t.row(&[
            seed.to_string(),
            r.calls.to_string(),
            r.ok.to_string(),
            r.refused.to_string(),
            r.malformed.to_string(),
            r.accesses.to_string(),
            r.faults_fired.to_string(),
            r.quarantines.to_string(),
            if replayed { "=".into() } else { "DIVERGED".into() },
            r.trace.to_hex()[..16].to_string(),
        ]);
        reports.push((r, replayed));
    }
    t.print();
    println!(
        "fuzz: {} seeds x {} calls in {:.1}s — {}",
        seeds.len(),
        calls,
        started.elapsed().as_secs_f64(),
        if pass {
            "no panics, no audit findings, all traces replay"
        } else {
            "FAILURES above"
        }
    );
    if json {
        let body = reports
            .iter()
            .map(|(r, replayed)| {
                format!(
                    "    {{\"seed\": {}, \"calls\": {}, \"ok\": {}, \"refused\": {}, \
                     \"malformed\": {}, \"accesses\": {}, \"faults_fired\": {}, \
                     \"quarantines\": {}, \"audit_failures\": {}, \"replayed\": {}, \
                     \"trace\": \"{}\"}}",
                    r.seed,
                    r.calls,
                    r.ok,
                    r.refused,
                    r.malformed,
                    r.accesses,
                    r.faults_fired,
                    r.quarantines,
                    r.audit_failures.len(),
                    replayed,
                    r.trace.to_hex()
                )
            })
            .collect::<Vec<_>>()
            .join(",\n");
        let doc = format!(
            "{{\n  \"schema\": \"tyche-fuzz/v1\",\n  \"mode\": \"{}\",\n  \
             \"monitor_version\": \"{}\",\n  \"pass\": {},\n  \"seeds\": [\n{}\n  ]\n}}\n",
            if smoke { "smoke" } else { "full" },
            MONITOR_VERSION,
            pass,
            body
        );
        let path = workspace_root().join("FUZZ.json");
        std::fs::write(&path, doc).expect("write FUZZ.json");
        println!("wrote {}", path.display());
    }
    pass
}

// ---------------------------------------------------------------------
// `repro trace` — attested trace replay + runtime verification
// ---------------------------------------------------------------------

/// The trace seed corpus (a subset of [`FUZZ_SEEDS`], documented in
/// EXPERIMENTS.md § Trace/RV methodology): seed 1 is the plain witness;
/// seed 13 quarantines a domain under fault injection, so the
/// sticky-quarantine and shootdown checkers replay a non-vacuous
/// history.
const TRACE_SEEDS: [u64; 2] = [1, 13];

/// Runs traced fuzz campaigns over [`TRACE_SEEDS`], drains each
/// machine's event log, replays it through every `tyche-verify::rv`
/// temporal checker, re-runs each seed to confirm the attested hash
/// chain reproduces bit-for-bit, and finishes with
/// [`tracing_overhead_gate`]. Returns false on any RV finding, audit
/// failure, chain divergence, or overhead breach.
fn trace_campaign(json: bool, smoke: bool) -> bool {
    let calls: u64 = if smoke { 1_500 } else { 10_000 };
    let mut t = Table::new(
        "TRACE — drained event logs replayed through the RV checkers",
        &[
            "seed", "machine", "events", "hyper", "enters", "ipis", "findings", "replay", "chain",
        ],
    );
    let mut pass = true;
    let mut per_checker = std::collections::BTreeMap::new();
    for name in rv::CHECKERS {
        per_checker.insert(name, 0usize);
    }
    let mut seeds_json = Vec::new();
    let started = Instant::now();
    for &seed in &TRACE_SEEDS {
        let config = fuzz::FuzzConfig {
            seed,
            calls,
            faults: true,
        };
        let out = fuzz::run_traced(config);
        let again = fuzz::run_traced(config);
        if !out.report.clean() {
            pass = false;
            for f in &out.report.audit_failures {
                println!("AUDIT FAILURE: {f}");
            }
        }
        let mut machines_json = Vec::new();
        for (phase, replay) in out.phases.iter().zip(again.phases.iter()) {
            let replayed = phase.chain == replay.chain;
            if !replayed {
                pass = false;
                println!(
                    "CHAIN DIVERGENCE: seed {seed} {} chained differently on replay",
                    phase.name
                );
            }
            for f in &phase.findings {
                pass = false;
                println!("RV FINDING: seed {seed} {}: {f}", phase.name);
                if let Some(n) = per_checker.get_mut(f.checker) {
                    *n += 1;
                }
            }
            let count = |pred: fn(&EventKind) -> bool| {
                phase
                    .log
                    .events()
                    .iter()
                    .filter(|e| pred(&e.kind))
                    .count()
            };
            let hyper = count(|k| matches!(k, EventKind::HyperEnter { .. }));
            let enters = count(|k| matches!(k, EventKind::Enter { .. }));
            let ipis = count(|k| matches!(k, EventKind::Ipi { .. }));
            t.row(&[
                seed.to_string(),
                phase.name.into(),
                phase.log.len().to_string(),
                hyper.to_string(),
                enters.to_string(),
                ipis.to_string(),
                phase.findings.len().to_string(),
                if replayed { "=".into() } else { "DIVERGED".into() },
                phase.chain.to_hex()[..16].to_string(),
            ]);
            machines_json.push(format!(
                "        {{\"name\": \"{}\", \"events\": {}, \"findings\": {}, \
                 \"replayed\": {}, \"chain\": \"{}\"}}",
                phase.name,
                phase.log.len(),
                phase.findings.len(),
                replayed,
                phase.chain.to_hex()
            ));
        }
        seeds_json.push(format!(
            "    {{\"seed\": {}, \"calls\": {}, \"machines\": [\n{}\n    ]}}",
            seed,
            calls,
            machines_json.join(",\n")
        ));
    }
    t.print();

    let mut t = Table::new(
        "TRACE — runtime-verification verdicts (all seeds, all machines)",
        &["checker", "findings", "verdict"],
    );
    for name in rv::CHECKERS {
        let n = per_checker.get(name).copied().unwrap_or(0);
        t.row(&[
            name.to_string(),
            n.to_string(),
            if n == 0 { "ok".into() } else { "VIOLATED".into() },
        ]);
    }
    t.print();

    let overhead_ok = tracing_overhead_gate();
    pass = pass && overhead_ok;
    println!(
        "trace: {} seeds x {} calls in {:.1}s — {}",
        TRACE_SEEDS.len(),
        calls,
        started.elapsed().as_secs_f64(),
        if pass {
            "all RV checkers clean, chains reproduce, overhead within gate"
        } else {
            "FAILURES above"
        }
    );
    if json {
        let doc = format!(
            "{{\n  \"schema\": \"tyche-trace/v1\",\n  \"mode\": \"{}\",\n  \
             \"monitor_version\": \"{}\",\n  \"pass\": {},\n  \
             \"checkers\": [{}],\n  \"overhead_gate\": {},\n  \
             \"seeds\": [\n{}\n  ]\n}}\n",
            if smoke { "smoke" } else { "full" },
            MONITOR_VERSION,
            pass,
            rv::CHECKERS
                .iter()
                .map(|c| format!("\"{c}\""))
                .collect::<Vec<_>>()
                .join(", "),
            overhead_ok,
            seeds_json.join(",\n")
        );
        let path = workspace_root().join("TRACE.json");
        std::fs::write(&path, doc).expect("write TRACE.json");
        println!("wrote {}", path.display());
    }
    pass
}

/// Pulls `"key": <integer>` out of the first JSON object after
/// `section` in `doc` — enough of a parser for the artifact files this
/// binary writes itself (flat integers, stable key order).
fn json_field_u64(doc: &str, section: &str, key: &str) -> Option<u64> {
    let tail = &doc[doc.find(section)?..];
    let marker = format!("\"{key}\": ");
    let rest = &tail[tail.find(&marker)? + marker.len()..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// The tracing-overhead gate: recomputes the deterministic
/// simulated-cycle hot-path metrics with the trace sink recording and
/// holds each within 5% of the committed `BENCH_hotpath.json` value.
/// Wall-clock metrics are excluded — they gate nothing on shared CI
/// hardware; the cycle model is what the paper-facing claims rest on,
/// and tracing must not move it.
fn tracing_overhead_gate() -> bool {
    let path = workspace_root().join("BENCH_hotpath.json");
    let doc = match std::fs::read_to_string(&path) {
        Ok(d) => d,
        Err(e) => {
            println!("overhead gate: cannot read {}: {e}", path.display());
            return false;
        }
    };
    let trans = bench_transitions(16, true);
    let flush = bench_flush_policy(16, true);
    let detail = |e: &HotpathEntry, key: &str| {
        e.detail
            .iter()
            .find(|(k, _)| *k == key)
            .map(|&(_, v)| v)
    };
    let rows: [(&str, &str, &str, Option<u64>); 5] = [
        (
            "transitions.mediated_cycles",
            "\"name\": \"transitions\"",
            "mediated_cycles",
            detail(&trans, "mediated_cycles"),
        ),
        (
            "transitions.fast_cycles",
            "\"name\": \"transitions\"",
            "fast_cycles",
            detail(&trans, "fast_cycles"),
        ),
        (
            "flush_policy.obfuscate_cycles",
            "\"name\": \"flush_policy\"",
            "before",
            Some(flush.before),
        ),
        (
            "flush_policy.none_cycles",
            "\"name\": \"flush_policy\"",
            "after",
            Some(flush.after),
        ),
        (
            "flush_policy.zero_cycles",
            "\"name\": \"flush_policy\"",
            "zero_cycles",
            detail(&flush, "zero_cycles"),
        ),
    ];
    let mut t = Table::new(
        "TRACE — tracing-overhead gate: traced cycle metrics vs committed BENCH_hotpath.json",
        &["metric", "committed", "traced", "delta", "verdict"],
    );
    let mut pass = true;
    for (label, section, key, traced) in rows {
        let committed = json_field_u64(&doc, section, key);
        let (Some(committed), Some(traced)) = (committed, traced) else {
            pass = false;
            t.row(&[label.to_string(), "?".into(), "?".into(), "?".into(), "MISSING".into()]);
            continue;
        };
        let delta = (traced.abs_diff(committed) as f64) * 100.0 / (committed.max(1) as f64);
        let ok = delta <= 5.0;
        pass = pass && ok;
        t.row(&[
            label.to_string(),
            committed.to_string(),
            traced.to_string(),
            format!("{delta:.2}%"),
            if ok { "ok".into() } else { "OVER BUDGET".into() },
        ]);
    }
    t.print();
    pass
}
