//! Checked wall-clock arithmetic for the bench layer.
//!
//! The original `repro` binary had three silent measurement bugs this
//! module exists to make impossible:
//!
//! * `elapsed().as_nanos() as u64 / n` truncated the u128 nanosecond
//!   total **before** dividing, so a long window wrapped instead of
//!   erroring;
//! * `u64::try_from(..).unwrap_or(u64::MAX)` saturated overflows into a
//!   legal-looking number;
//! * `ops.max(1)` turned a zero-op timing window (a loop that never
//!   ran) into "one op that cost the whole setup" instead of a failure.
//!
//! Every conversion here divides in u128 first and surfaces the failure
//! modes as explicit errors that abort the run.

use std::time::Duration;

/// Why a timing conversion could not produce an honest number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TimingError {
    /// The timed window executed zero operations; a per-op figure would
    /// be the window's setup cost in disguise.
    ZeroOps,
    /// The per-op quotient was below 1 ns: either the clock resolution
    /// cannot support the claim or the op count is wrong. The total
    /// window and op count are carried for the error message.
    SubNanosecond {
        /// Total window duration in nanoseconds.
        total_ns: u128,
        /// Number of operations in the window.
        ops: u128,
    },
    /// The nanosecond value does not fit in `u64` (a >584-year window
    /// or a corrupted counter) — never silently saturate it.
    Saturated {
        /// The out-of-range nanosecond value.
        ns: u128,
    },
}

impl std::fmt::Display for TimingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TimingError::ZeroOps => {
                write!(f, "timing window executed zero operations")
            }
            TimingError::SubNanosecond { total_ns, ops } => write!(
                f,
                "per-op quotient below clock resolution: {total_ns} ns / {ops} ops < 1 ns"
            ),
            TimingError::Saturated { ns } => {
                write!(f, "nanosecond value {ns} overflows u64")
            }
        }
    }
}

/// Converts a whole duration to `u64` nanoseconds, refusing to
/// saturate.
pub fn total_ns(elapsed: Duration) -> Result<u64, TimingError> {
    let ns = elapsed.as_nanos();
    u64::try_from(ns).map_err(|_| TimingError::Saturated { ns })
}

/// Per-operation nanoseconds over a timed window: divides in u128 and
/// only then narrows, erroring on zero ops, sub-ns quotients, and
/// overflow instead of reporting 0 / `u64::MAX` / a wrapped value.
pub fn per_op_ns(elapsed: Duration, ops: usize) -> Result<u64, TimingError> {
    let total = elapsed.as_nanos();
    if ops == 0 {
        return Err(TimingError::ZeroOps);
    }
    let quotient = total / ops as u128;
    if quotient == 0 && total > 0 {
        return Err(TimingError::SubNanosecond { total_ns: total, ops: ops as u128 });
    }
    if quotient == 0 {
        // A genuinely unmeasurable window (total == 0): the clock did
        // not tick at all. Report it as sub-resolution too — a 0 ns/op
        // claim is exactly the dishonesty this module exists to stop.
        return Err(TimingError::SubNanosecond { total_ns: total, ops: ops as u128 });
    }
    u64::try_from(quotient).map_err(|_| TimingError::Saturated { ns: quotient })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_op_divides_in_u128() {
        let d = Duration::from_secs(3);
        assert_eq!(per_op_ns(d, 1_000), Ok(3_000_000));
        assert_eq!(per_op_ns(d, 1), Ok(3_000_000_000));
    }

    #[test]
    fn zero_ops_is_a_hard_error() {
        assert_eq!(per_op_ns(Duration::from_secs(1), 0), Err(TimingError::ZeroOps));
    }

    #[test]
    fn sub_ns_quotient_is_an_error_not_zero() {
        let err = per_op_ns(Duration::from_nanos(3), 10).unwrap_err();
        assert_eq!(err, TimingError::SubNanosecond { total_ns: 3, ops: 10 });
        // An untickled clock is also not a 0 ns/op claim.
        assert!(matches!(
            per_op_ns(Duration::from_nanos(0), 10),
            Err(TimingError::SubNanosecond { .. })
        ));
    }

    #[test]
    fn saturation_is_an_error_not_u64_max() {
        // u64::MAX seconds is ~5.8e28 ns, far beyond u64 nanoseconds.
        let huge = Duration::new(u64::MAX, 0);
        assert!(matches!(per_op_ns(huge, 1), Err(TimingError::Saturated { .. })));
        assert!(matches!(total_ns(huge), Err(TimingError::Saturated { .. })));
        // But dividing it down across enough ops is fine.
        assert!(per_op_ns(huge, 1 << 40).is_ok());
    }

    #[test]
    fn total_ns_roundtrips_ordinary_windows() {
        assert_eq!(total_ns(Duration::from_micros(84)), Ok(84_000));
    }
}
