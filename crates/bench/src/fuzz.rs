//! Adversarial hypercall fuzzing under deterministic fault injection.
//!
//! Every run is a pure function of its seed: a [`ChaChaRng`] drives the
//! call schedule, the argument corpus, the core selection, *and* the
//! [`FaultPlan`]s armed against the simulated hardware — no wall-clock,
//! no OS randomness, no thread interleaving. Identical seeds therefore
//! replay identical traces (checked by hashing every step into a
//! running digest), which turns any fuzz failure into a one-line
//! reproducer: `repro fuzz` with the seed.
//!
//! Each seed runs three phases over the same budget:
//!
//! 1. **x86 direct** — raw `(leaf, args)` registers through
//!    [`MonitorCall::decode`] into [`Monitor::call`], with fault plans
//!    arming mid-stream;
//! 2. **x86 SMP** — the same schedule shape served through
//!    [`ConcurrentMonitor::serve`] (single-threaded round-robin across
//!    cores, so the shard/snapshot/shootdown tiers are exercised
//!    without sacrificing determinism), with periodic
//!    [`ConcurrentMonitor::sync_shootdowns`];
//! 3. **RISC-V direct** — the PMP backend under the same storm;
//! 4. **fleet** (seeds in [`FLEET_SEEDS`] only) — a 3-machine attested
//!    fleet exchanging MAC-keyed frames under seeded NIC drop/dup
//!    faults, every violation resolving to a recorded teardown and the
//!    per-machine channel traces replayed through the runtime
//!    verifiers.
//!
//! After every call the engine auditor must come back clean; at the end
//! of each phase the injector is disarmed and hardware state must match
//! the engine for every non-quarantined domain. The pass criterion is
//! the tentpole's: every fuzzed call and injected fault resolves to a
//! checked error or a documented quarantine — never a panic, never a
//! silent invariant break.

use tyche_core::audit;
use tyche_core::engine::CapEngine;
use tyche_core::trace::{EventKind, TraceLog};
use tyche_crypto::{hash_parts, ChaChaRng, Digest};
use tyche_fleet::{Fleet, FleetConfig};
use tyche_verify::rv;
use tyche_hw::faults::{FaultPlan, FaultSite};
use tyche_monitor::abi::leaf;
use tyche_monitor::monitor::CallResult;
use tyche_monitor::{boot_riscv, boot_x86, BootConfig, ConcurrentMonitor, Monitor, MonitorCall, Status};

/// Every site the injector knows; the fuzzer arms them all.
const SITES: [FaultSite; 8] = [
    FaultSite::MemRead,
    FaultSite::MemWrite,
    FaultSite::IpiDrop,
    FaultSite::IpiDup,
    FaultSite::EptWalk,
    FaultSite::PmpWalk,
    FaultSite::DrbgEntropy,
    FaultSite::TpmQuote,
];

/// Every defined leaf, so structured draws cover the whole ABI.
const LEAVES: [u64; 14] = [
    leaf::CREATE_DOMAIN,
    leaf::SHARE,
    leaf::GRANT,
    leaf::SPLIT,
    leaf::REVOKE,
    leaf::SEAL,
    leaf::SET_ENTRY,
    leaf::RECORD_CONTENT,
    leaf::MAKE_TRANSITION,
    leaf::KILL,
    leaf::ENUMERATE,
    leaf::ENTER,
    leaf::RETURN,
    leaf::ATTEST,
];

/// One seed's campaign configuration.
#[derive(Clone, Copy, Debug)]
pub struct FuzzConfig {
    /// RNG seed; the run is a pure function of it.
    pub seed: u64,
    /// Total hypercalls to issue, split across the three phases.
    pub calls: u64,
    /// Whether fault plans get armed during the run.
    pub faults: bool,
}

/// Outcome of one seed's campaign.
#[derive(Clone, Debug)]
pub struct FuzzReport {
    /// The seed that produced this report.
    pub seed: u64,
    /// Hypercalls issued (decoded or not).
    pub calls: u64,
    /// Calls that succeeded.
    pub ok: u64,
    /// Calls the monitor refused with a checked [`Status`].
    pub refused: u64,
    /// Register loads [`MonitorCall::decode`] rejected as malformed.
    pub malformed: u64,
    /// Domain memory accesses and TPM operations interleaved with the
    /// calls (the paths most fault sites live on).
    pub accesses: u64,
    /// Hardware faults the injector fired.
    pub faults_fired: u64,
    /// Domains quarantined after unrecoverable backend faults.
    pub quarantines: u64,
    /// Engine-auditor and hardware-audit findings (must stay empty).
    pub audit_failures: Vec<String>,
    /// Running hash over every step: (phase, regs, outcome).
    pub trace: Digest,
}

impl FuzzReport {
    /// True when the campaign met the pass criterion: no audit finding
    /// (panics never get this far — the process dies).
    pub fn clean(&self) -> bool {
        self.audit_failures.is_empty()
    }
}

/// Deterministic schedule generator + step recorder shared by the phases.
struct Driver {
    rng: ChaChaRng,
    /// Harvested capability ids — live ones from the engine plus stale
    /// ones from earlier harvests, so revoked/killed ids get replayed.
    caps: Vec<u64>,
    domains: Vec<u64>,
    report: FuzzReport,
}

impl Driver {
    fn new(config: &FuzzConfig) -> Self {
        Driver {
            rng: ChaChaRng::from_seed(config.seed),
            caps: Vec::new(),
            domains: Vec::new(),
            report: FuzzReport {
                seed: config.seed,
                calls: 0,
                ok: 0,
                refused: 0,
                malformed: 0,
                accesses: 0,
                faults_fired: 0,
                quarantines: 0,
                audit_failures: Vec::new(),
                trace: Digest::ZERO,
            },
        }
    }

    /// One argument register: boundary values, plausible addresses, and
    /// harvested ids, weighted so structured calls decode often enough
    /// to reach the engine.
    fn arg(&mut self) -> u64 {
        match self.rng.below(13) {
            // A well-formed flag word: any rights nibble plus any
            // revocation-policy bits, so zero-on-revoke and TLB-flush
            // paths (and the memory writes and IPIs they cause) get hit.
            12 => self.rng.below(16) | (self.rng.below(8) << 8),
            0 => 0,
            1 => 1,
            2 => u64::MAX,
            // One page butting against the top of the address space —
            // the overflow boundary for exclusive-end arithmetic.
            3 => u64::MAX - 4095,
            4 => u64::MAX - 4096,
            5 => self.rng.below(64) << 12,
            6 => (self.rng.below(64) << 12) | (1 + self.rng.below(4095)),
            7 => self.pick_cap(),
            8 => self.pick_domain(),
            // Small integers: flag words, seal booleans, core counts.
            9 => self.rng.below(8),
            // Plausible domain-RAM addresses, page-aligned.
            10 => 0x10_0000 + (self.rng.below(256) << 12),
            _ => self.rng.next_u64(),
        }
    }

    fn pick_cap(&mut self) -> u64 {
        if self.caps.is_empty() {
            return self.rng.below(512);
        }
        let i = self.rng.below(self.caps.len() as u64) as usize;
        self.caps[i]
    }

    fn pick_domain(&mut self) -> u64 {
        if self.domains.is_empty() {
            return self.rng.below(64);
        }
        let i = self.rng.below(self.domains.len() as u64) as usize;
        self.domains[i]
    }

    /// Draws raw ABI registers: mostly defined leaves with adversarial
    /// arguments, sometimes a fully random leaf.
    fn gen_regs(&mut self) -> (u64, [u64; 6]) {
        let leaf_v = if self.rng.below(8) == 0 {
            self.rng.next_u64() & 0x3ff
        } else {
            LEAVES[self.rng.below(LEAVES.len() as u64) as usize]
        };
        let mut args = [0u64; 6];
        for a in args.iter_mut() {
            *a = self.arg();
        }
        (leaf_v, args)
    }

    fn gen_plan(&mut self) -> FaultPlan {
        let site = SITES[self.rng.below(SITES.len() as u64) as usize];
        FaultPlan::after(site, self.rng.below(6), 1 + self.rng.below(3))
    }

    /// Folds one step into the running trace digest.
    fn record(&mut self, phase: u64, leaf_v: u64, args: &[u64; 6], code: u64, aux: u64) {
        let mut buf = [0u8; 80];
        for (slot, v) in [phase, leaf_v, code, aux]
            .iter()
            .chain(args.iter())
            .enumerate()
        {
            buf[slot * 8..slot * 8 + 8].copy_from_slice(&v.to_le_bytes());
        }
        self.report.trace = hash_parts(&[self.report.trace.as_bytes(), &buf]);
    }

    fn tally(&mut self, res: &Result<CallResult, Status>) {
        match res {
            Ok(r) => {
                self.report.ok += 1;
                match r {
                    CallResult::NewDomain { domain, transition } => {
                        self.domains.push(domain.0);
                        self.caps.push(transition.0);
                    }
                    CallResult::Cap(c) => self.caps.push(c.0),
                    CallResult::Caps(lo, hi) => {
                        self.caps.push(lo.0);
                        self.caps.push(hi.0);
                    }
                    _ => {}
                }
            }
            Err(_) => self.report.refused += 1,
        }
    }

    /// Refreshes the id corpus from the engine, keeping a bounded tail
    /// of stale ids so freed ids keep getting replayed.
    fn harvest(&mut self, engine: &CapEngine) {
        if self.domains.len() > 96 {
            self.domains.drain(..self.domains.len() - 32);
        }
        if self.caps.len() > 192 {
            self.caps.drain(..self.caps.len() - 64);
        }
        for d in engine.domains() {
            self.domains.push(d.id.0);
            for c in engine.caps_of(d.id) {
                self.caps.push(c.id.0);
            }
        }
    }

    fn check_audit(&mut self, engine: &CapEngine, phase: &str, step: u64) {
        if self.report.audit_failures.len() >= 8 {
            return;
        }
        let v = audit::audit(engine);
        if !v.is_empty() {
            self.report.audit_failures.push(format!(
                "seed {} {phase} step {step}: {v:?}",
                self.report.seed
            ));
        }
    }
}

/// Maps a call outcome to a stable (code, aux) pair for the trace.
fn outcome(res: &Result<CallResult, Status>) -> (u64, u64) {
    match res {
        Ok(CallResult::Unit) => (1, 0),
        Ok(CallResult::NewDomain { domain, transition }) => {
            (2, domain.0 ^ transition.0.rotate_left(32))
        }
        Ok(CallResult::Cap(c)) => (3, c.0),
        Ok(CallResult::Caps(lo, hi)) => (4, lo.0 ^ hi.0.rotate_left(32)),
        Ok(CallResult::Measurement(d)) => (5, u64::from_le_bytes(d.0[..8].try_into().unwrap())),
        Ok(CallResult::Count(n)) => (6, *n),
        Ok(CallResult::Report(r)) => (
            7,
            u64::from_le_bytes(r.signature.0 .0[..8].try_into().unwrap()),
        ),
        Ok(CallResult::Entered { target, .. }) => (8, target.0),
        Ok(CallResult::Returned { to }) => (9, to.0),
        Err(s) => (0xff, *s as u64),
    }
}

/// A domain memory access or TPM operation: the hardware events (as
/// opposed to hypercalls) that reach the memory, translation-walk, and
/// TPM fault sites. Each resolves to `Ok` or a checked error, and its
/// outcome goes into the trace like any call.
fn access_event(m: &mut Monitor, d: &mut Driver, core: usize, phase: u64) {
    d.report.accesses += 1;
    let kind = d.rng.below(6);
    // Mostly plausible domain-RAM addresses (so the walk succeeds and
    // the memory sites get visited), sometimes a raw boundary value.
    let addr = if d.rng.below(4) == 0 {
        d.arg()
    } else {
        0x10_0000 + (d.rng.below(256) << 12) + d.rng.below(4080)
    };
    let code = match kind {
        0 => m.dom_read(core, addr, &mut [0u8; 16]).is_err() as u64,
        1 => m.dom_write(core, addr, &[0xa5; 16]).is_err() as u64,
        2 => m.dom_fetch(core, addr).is_err() as u64,
        3 => {
            let mut nonce = [0u8; 32];
            d.rng.fill_bytes(&mut nonce);
            m.machine_quote(nonce).is_err() as u64
        }
        4 => m.machine.tpm.fresh_nonce().is_err() as u64,
        _ => m.machine.irq.raise(32 + (addr % 16) as u32).is_none() as u64,
    };
    d.record(phase, 0xf000 + kind, &[addr, 0, 0, 0, 0, 0], 0xac, code);
}

/// Phase 1/3: raw registers straight into [`Monitor::call`].
fn drive_monitor(m: &mut Monitor, d: &mut Driver, n: u64, faults: bool, phase: u64, name: &str) {
    let cores = m.machine.cores as u64;
    for step in 0..n {
        if faults && d.rng.below(24) == 0 {
            let plan = d.gen_plan();
            m.machine.faults.arm(plan);
        }
        let core = d.rng.below(cores) as usize;
        if d.rng.below(6) == 0 {
            access_event(m, d, core, phase);
        }
        let (leaf_v, args) = d.gen_regs();
        d.report.calls += 1;
        match MonitorCall::decode(leaf_v, args) {
            None => {
                d.report.malformed += 1;
                d.record(phase, leaf_v, &args, 0xee, 0);
            }
            Some(call) => {
                let res = m.call(core, call);
                d.tally(&res);
                let (code, aux) = outcome(&res);
                d.record(phase, leaf_v, &args, code, aux);
            }
        }
        if step % 64 == 0 {
            d.harvest(&m.engine);
        }
        d.check_audit(&m.engine, name, step);
    }
    // Phase teardown: disarm the injector, then hardware state must
    // match the engine for every non-quarantined domain.
    d.report.faults_fired += m.machine.faults.fired();
    m.machine.faults.clear();
    let hw = m.audit_hardware();
    if !hw.is_empty() && d.report.audit_failures.len() < 8 {
        d.report
            .audit_failures
            .push(format!("seed {} {name} hardware audit: {hw:?}", d.report.seed));
    }
}

/// Phase 2: the same storm through the SMP serving tiers. Calls go
/// round-robin-by-RNG across cores on one thread: the shard locks,
/// snapshot reads, and shootdown queues are all exercised, and the
/// schedule stays a pure function of the seed.
fn drive_concurrent(m: Monitor, d: &mut Driver, n: u64, faults: bool, phase: u64) -> Monitor {
    let injector = m.machine.faults.clone();
    let cm = ConcurrentMonitor::new(m);
    let cores = cm.cores() as u64;
    for step in 0..n {
        if faults && d.rng.below(24) == 0 {
            injector.arm(d.gen_plan());
        }
        let core = d.rng.below(cores) as usize;
        let (leaf_v, args) = d.gen_regs();
        d.report.calls += 1;
        match MonitorCall::decode(leaf_v, args) {
            None => {
                d.report.malformed += 1;
                d.record(phase, leaf_v, &args, 0xee, 0);
            }
            Some(call) => {
                let res = cm.serve(core, call);
                d.tally(&res);
                let (code, aux) = outcome(&res);
                d.record(phase, leaf_v, &args, code, aux);
            }
        }
        if d.rng.below(16) == 0 {
            cm.sync_shootdowns(core);
        }
        if step % 64 == 0 {
            let snap = cm.snapshot();
            d.harvest(&snap);
        }
        cm.with_inner(|inner| d.check_audit(&inner.engine, "x86-smp", step));
    }
    for core in 0..cores as usize {
        cm.sync_shootdowns(core);
    }
    let mut m = cm.finish();
    d.report.faults_fired += injector.fired();
    injector.clear();
    let hw = m.audit_hardware();
    if !hw.is_empty() && d.report.audit_failures.len() < 8 {
        d.report.audit_failures.push(format!(
            "seed {} x86-smp hardware audit: {hw:?}",
            d.report.seed
        ));
    }
    // Drain anything the serve tiers left pending so the engine and
    // hardware agree before the next phase reuses the budget counters.
    let _ = m.sync_effects();
    m
}

/// Seeds that run the cross-machine fleet phase. Seed 5 sits inside the
/// CI smoke subset so the phase stays exercised on every push; seed 21
/// is full-campaign only.
pub const FLEET_SEEDS: [u64; 2] = [5, 21];

/// Phase 4: a 3-machine attested fleet with NIC drop/dup faults armed
/// on the receiving side. Every send/pump outcome folds into the step
/// digest (so replay divergence covers the fleet), channel quarantines
/// add to the campaign counters, and the drained per-machine traces go
/// through the same RV replay as the x86 and RISC-V phases — an
/// injected fault must resolve to a violation-plus-teardown pair the
/// checkers accept, never a checker finding.
fn drive_fleet(d: &mut Driver, traced: bool) -> Vec<(&'static str, TraceLog)> {
    const NAMES: [&str; 3] = ["fleet-0", "fleet-1", "fleet-2"];
    let mut fleet = Fleet::new(&FleetConfig {
        machines: NAMES.len(),
        seed: d.report.seed,
        ..FleetConfig::default()
    })
    .expect("fleet boots");
    if traced {
        fleet.enable_tracing();
    }
    // The NIC model consults the destination machine's plans, so the
    // faults arm on receivers: one dropped frame (surfaces as a
    // sequence gap on the next delivery) and one duplicated frame
    // (surfaces as a replay).
    for (m, site, skip) in [(1usize, FaultSite::NicDrop, 2), (2, FaultSite::NicDup, 4)] {
        fleet
            .machine_mut(m)
            .expect("fleet machine")
            .monitor
            .machine
            .faults
            .arm(FaultPlan::after(site, skip, 1));
    }
    let up = fleet.establish_all() as u64;
    d.record(4, 0xf1e7, &[up, 0, 0, 0, 0, 0], 0, 0);

    let pairs = [(0usize, 1usize), (1, 2), (2, 0), (1, 0), (2, 1), (0, 2)];
    for step in 0..24u64 {
        let (a, b) = pairs[step as usize % pairs.len()];
        let core = (step % 2) as usize;
        let payload = [d.report.seed as u8, step as u8, a as u8, b as u8];
        let code = fleet.send(a, b, core, &payload).unwrap_or(u64::MAX);
        let (accepted, rejected) = fleet.pump(b, core);
        let reason = rejected.first().map(|v| v.reason as u64).unwrap_or(0);
        d.record(
            4,
            0xf1ee,
            &[a as u64, b as u64, step, accepted.len() as u64, rejected.len() as u64, 0],
            code,
            reason,
        );
    }

    let (mut accepted, mut violations, mut quarantined) = (0u64, 0u64, 0u64);
    for i in 0..fleet.len() {
        let s = fleet.machine(i).expect("fleet machine").stats();
        accepted += s.accepted;
        violations += s.violations;
        quarantined += s.quarantined;
    }
    d.report.quarantines += quarantined;
    d.record(4, 0xf1e8, &[accepted, violations, quarantined, 0, 0, 0], 0, 0);

    NAMES
        .iter()
        .enumerate()
        .map(|(i, name)| {
            let m = fleet.machine(i).expect("fleet machine");
            m.monitor.trace().emit_engine(EventKind::PhaseEnd { phase: 4 });
            (*name, m.monitor.trace().drain())
        })
        .collect()
}

/// One machine's drained trace: the structured event log, its chained
/// digest, and the runtime-verification verdicts over it.
#[derive(Clone, Debug)]
pub struct PhaseTrace {
    /// Which machine produced it (`"x86"` covers the direct + SMP
    /// phases, which share one monitor; `"riscv"` is phase 3).
    pub name: &'static str,
    /// The drained, seq-ordered event log.
    pub log: TraceLog,
    /// SHA-256 hash chain over the canonical event encoding.
    pub chain: Digest,
    /// Temporal-invariant violations found by [`rv::check_all`].
    pub findings: Vec<rv::Finding>,
}

/// Everything one seed's campaign produced beyond the summary report:
/// the per-machine traces and the final engine states (for the
/// zero-perturbation property test).
#[derive(Clone, Debug)]
pub struct CampaignOutcome {
    /// The summary report (RV findings are folded into
    /// `audit_failures` with an `rv:` prefix).
    pub report: FuzzReport,
    /// Drained traces, one per machine: `x86` then `riscv`, followed by
    /// `fleet-0..2` for seeds in [`FLEET_SEEDS`].
    pub phases: Vec<PhaseTrace>,
    /// Final x86 engine state.
    pub x86_engine: CapEngine,
    /// Final RISC-V engine state.
    pub riscv_engine: CapEngine,
}

/// Runs one seed's full campaign with tracing enabled (the default:
/// emission consumes no RNG draws and no simulated cycles, so the step
/// digest is identical either way — `zero_perturbation` locks that in).
pub fn run(config: FuzzConfig) -> FuzzReport {
    run_traced(config).report
}

/// Runs one seed's campaign with the trace layer recording, drains each
/// machine's log at its last phase boundary, and replays the runtime
/// verifiers over it. Any RV finding lands in
/// `report.audit_failures` as `rv:...` — a fuzz campaign now fails when
/// the *temporal* story breaks, not just the state story.
pub fn run_traced(config: FuzzConfig) -> CampaignOutcome {
    campaign(config, true)
}

/// Runs one seed's campaign with the trace layer left disabled (its
/// emission gate stays cold). Exists for the zero-perturbation property
/// test: report and engine states must match [`run_traced`] exactly.
pub fn run_untraced(config: FuzzConfig) -> CampaignOutcome {
    campaign(config, false)
}

fn campaign(config: FuzzConfig, traced: bool) -> CampaignOutcome {
    let mut d = Driver::new(&config);
    let direct = config.calls * 2 / 5;
    let smp = config.calls * 2 / 5;
    let riscv = config.calls - direct - smp;

    let mut m = boot_x86(BootConfig::default());
    if traced {
        m.machine.trace.enable(m.machine.cores);
    }
    drive_monitor(&mut m, &mut d, direct, config.faults, 1, "x86-direct");
    m.trace().emit_engine(EventKind::PhaseEnd { phase: 1 });
    let m = drive_concurrent(m, &mut d, smp, config.faults, 2);
    d.report.quarantines += m.stats().quarantines;
    m.trace().emit_engine(EventKind::PhaseEnd { phase: 2 });
    let x86_log = m.trace().drain();

    // Fresh corpus for the RISC-V machine: its id space starts over.
    d.caps.clear();
    d.domains.clear();
    let mut rv_m = boot_riscv(BootConfig::default());
    if traced {
        rv_m.machine.trace.enable(rv_m.machine.cores);
    }
    drive_monitor(&mut rv_m, &mut d, riscv, config.faults, 3, "riscv-direct");
    d.report.quarantines += rv_m.stats().quarantines;
    rv_m.trace().emit_engine(EventKind::PhaseEnd { phase: 3 });
    let riscv_log = rv_m.trace().drain();

    let mut logs: Vec<(&'static str, TraceLog)> = vec![("x86", x86_log), ("riscv", riscv_log)];
    if FLEET_SEEDS.contains(&config.seed) {
        logs.extend(drive_fleet(&mut d, traced));
    }
    let phases: Vec<PhaseTrace> = logs
        .into_iter()
        .map(|(name, log)| {
            let findings = rv::check_all(&log);
            let chain = log.chain();
            PhaseTrace {
                name,
                log,
                chain,
                findings,
            }
        })
        .collect();
    for phase in &phases {
        for f in &phase.findings {
            if d.report.audit_failures.len() < 8 {
                d.report
                    .audit_failures
                    .push(format!("rv:seed {} {}: {f}", d.report.seed, phase.name));
            }
        }
    }

    CampaignOutcome {
        report: d.report,
        phases,
        x86_engine: m.engine,
        riscv_engine: rv_m.engine,
    }
}

/// Runs `config` twice and checks the traces match — the determinism
/// guarantee the whole layer is built on.
pub fn replays_identically(config: FuzzConfig) -> bool {
    run(config).trace == run(config).trace
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(seed: u64) -> FuzzConfig {
        FuzzConfig {
            seed,
            calls: 300,
            faults: true,
        }
    }

    #[test]
    fn campaign_is_clean_and_counts_add_up() {
        let r = run(small(7));
        assert!(r.clean(), "audit failures: {:?}", r.audit_failures);
        assert_eq!(r.calls, 300);
        assert_eq!(r.ok + r.refused + r.malformed, r.calls);
        assert!(r.ok > 0, "some structured calls must succeed");
        assert!(r.refused > 0, "adversarial args must get refused");
        assert!(r.malformed > 0, "garbage leaves must fail decode");
    }

    #[test]
    fn identical_seeds_replay_identical_traces() {
        assert!(replays_identically(small(11)));
    }

    #[test]
    fn gated_seeds_run_the_fleet_phase_clean() {
        let outcome = run_traced(small(FLEET_SEEDS[0]));
        assert!(
            outcome.report.clean(),
            "audit failures: {:?}",
            outcome.report.audit_failures
        );
        let names: Vec<&str> = outcome.phases.iter().map(|p| p.name).collect();
        assert_eq!(names, ["x86", "riscv", "fleet-0", "fleet-1", "fleet-2"]);
        // The injected NIC faults must actually bite: violations on the
        // fleet traces resolve to teardown pairs the checkers accept.
        assert!(outcome.report.quarantines > 0, "fleet faults must quarantine a peer");
        // Ungated seeds keep the two-machine shape.
        assert_eq!(run_traced(small(11)).phases.len(), 2);
        // And the gated seed still replays bit-identically.
        assert!(replays_identically(small(FLEET_SEEDS[0])));
    }

    #[test]
    fn different_seeds_diverge() {
        assert_ne!(run(small(1)).trace, run(small(2)).trace);
    }

    #[test]
    fn faults_change_the_trace() {
        let with = run(small(13));
        let without = run(FuzzConfig {
            faults: false,
            ..small(13)
        });
        // Fault arming consumes RNG draws and changes outcomes, so the
        // traces must differ — proof the injector actually engages.
        assert_ne!(with.trace, without.trace);
        assert!(with.faults_fired > 0, "plans must fire in 300 calls");
    }
}
