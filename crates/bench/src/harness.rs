//! The process-based bench harness: orchestration, merging, artifact
//! assembly, and the `repro report` diff/check layer.
//!
//! Shape (after the WIND bench harness): the orchestrator (`repro
//! harness`) spawns one **child process** per scenario/invocation — the
//! same release-built `repro` binary in `harness-child` mode — so every
//! measurement runs in a fresh address space with cold allocator state,
//! and a crash or assert in one scenario cannot poison the others. Each
//! child prints exactly one JSON line: its artifact row, the
//! deterministic (simulated-cycle) fields the parent asserts equal
//! across invocations, its named latency histograms, and a SHA-256
//! digest over the histograms' canonical bytes. The parent verifies
//! each digest, merges the histograms across invocations, and assembles
//! the artifact with per-row percentiles (p50/p99/p999/max — tails, not
//! means) plus a run [`Manifest`](crate::manifest::Manifest).
//!
//! `repro report old.json new.json` diffs two runs metric-by-metric and
//! exits non-zero past a configurable regression threshold; `repro
//! report --check artifact.json` is the one freshness/consistency gate
//! CI runs against every committed artifact.
//!
//! None of this is TCB: the harness observes the monitor from outside
//! and can at worst report wrong numbers, never weaken isolation.

use std::collections::BTreeSet;
use std::path::Path;
use std::process::Command;

use crate::histogram::Histogram;
use crate::json::{self, Json};
use crate::manifest::{ChildRecord, Manifest};
use crate::table::Table;

/// Schema identifier on every child line.
pub const CHILD_SCHEMA: &str = "tyche-harness-child/v1";

/// The four orchestrated bench suites.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// Hot-path before/after benches (`BENCH_hotpath.json`).
    Hotpath,
    /// SMP serving benches (`BENCH_smp.json`).
    Smp,
    /// Population-sweep benches (`BENCH_scale.json`).
    Scale,
    /// Multi-machine attested-channel benches (`BENCH_fleet.json`).
    Fleet,
}

impl Family {
    /// Parses a `--suite` argument.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "hotpath" => Some(Family::Hotpath),
            "smp" => Some(Family::Smp),
            "scale" => Some(Family::Scale),
            "fleet" => Some(Family::Fleet),
            _ => None,
        }
    }

    /// The committed artifact file name.
    pub fn artifact_name(self) -> &'static str {
        match self {
            Family::Hotpath => "BENCH_hotpath.json",
            Family::Smp => "BENCH_smp.json",
            Family::Scale => "BENCH_scale.json",
            Family::Fleet => "BENCH_fleet.json",
        }
    }

    /// The current artifact schema (v2 for hotpath/scale, v3 for smp —
    /// each bumped once when percentiles and manifests landed — and v1
    /// for the fleet suite, born under the harness).
    pub fn schema(self) -> &'static str {
        match self {
            Family::Hotpath => "tyche-bench-hotpath/v2",
            Family::Smp => "tyche-bench-smp/v3",
            Family::Scale => "tyche-bench-scale/v2",
            Family::Fleet => "tyche-bench-fleet/v1",
        }
    }

    /// Key of the rows array in the artifact document.
    pub fn rows_key(self) -> &'static str {
        match self {
            Family::Hotpath | Family::Smp => "benches",
            Family::Scale => "populations",
            Family::Fleet => "fleets",
        }
    }

    /// Display name (matches the `--suite` spelling).
    pub fn name(self) -> &'static str {
        match self {
            Family::Hotpath => "hotpath",
            Family::Smp => "smp",
            Family::Scale => "scale",
            Family::Fleet => "fleet",
        }
    }
}

/// One scenario the orchestrator runs: the stable row id, the
/// `harness-child` scenario selector, its `key=value` parameters, and
/// how many child invocations get merged.
#[derive(Debug, Clone)]
pub struct ChildSpec {
    /// Stable scenario id, e.g. `"hotpath/revocation/fanout=64"`.
    pub id: String,
    /// Scenario selector the child dispatches on.
    pub scenario: &'static str,
    /// `key=value` parameters passed on the child command line.
    pub params: Vec<(String, String)>,
    /// Number of invocations to merge (seeds `1..=invocations`).
    pub invocations: usize,
}

fn spec(
    id: String,
    scenario: &'static str,
    params: &[(&str, usize)],
    invocations: usize,
) -> ChildSpec {
    ChildSpec {
        id,
        scenario,
        params: params.iter().map(|&(k, v)| (k.to_string(), v.to_string())).collect(),
        invocations,
    }
}

/// Looks up a scenario parameter by key.
pub fn param<'a>(params: &'a [(String, String)], key: &str) -> Option<&'a str> {
    params.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
}

/// The scenario matrix for one suite. Mirrors the in-process
/// `bench`/`bench --smp`/`bench --scale` matrices so the harnessed
/// artifacts stay row-compatible with their predecessors; invocation
/// counts trade repetition against suite cost (the 1M-domain sweep runs
/// once, the cheap hot-path scenarios three times).
pub fn suite_specs(family: Family, smoke: bool) -> Vec<ChildSpec> {
    match family {
        Family::Hotpath => {
            let fanouts: &[usize] = if smoke { &[8] } else { &[16, 64, 256, 1024] };
            let iters = if smoke { 2 } else { 2000 };
            let storms = if smoke { 2 } else { 5 };
            let inv = if smoke { 2 } else { 3 };
            let mut specs = Vec::new();
            for &f in fanouts {
                specs.push(spec(
                    format!("hotpath/revocation/fanout={f}"),
                    "revocation",
                    &[("fanout", f), ("storms", storms)],
                    inv,
                ));
            }
            for &f in fanouts {
                specs.push(spec(
                    format!("hotpath/capability_ops/fanout={f}"),
                    "capability_ops",
                    &[("fanout", f), ("iters", iters)],
                    inv,
                ));
            }
            specs.push(spec("hotpath/transitions".into(), "transitions", &[("iters", iters)], inv));
            specs.push(spec(
                "hotpath/flush_policy".into(),
                "flush_policy",
                &[("iters", iters)],
                inv,
            ));
            specs
        }
        Family::Smp => {
            let threads: &[usize] = if smoke { &[2] } else { &[1, 2, 4, 8, 16, 32] };
            let pairs = if smoke { 8 } else { 64 };
            let roundtrips = if smoke { 16 } else { 256 };
            let shards = tyche_core::shared::SHARDS;
            let depth = tyche_monitor::ConcurrentMonitor::DEFAULT_RING_DEPTH;
            let inv = 2;
            let mut specs = Vec::new();
            for wl in ["hypercalls_distinct", "hypercalls_contended", "hypercalls_contended_ring"] {
                for &t in threads {
                    specs.push(ChildSpec {
                        id: format!("smp/{wl}/threads={t}"),
                        scenario: "mutations",
                        params: vec![
                            ("workload".into(), wl.into()),
                            ("threads".into(), t.to_string()),
                            ("pairs".into(), pairs.to_string()),
                            ("shards".into(), shards.to_string()),
                            ("ring_depth".into(), depth.to_string()),
                        ],
                        invocations: inv,
                    });
                }
            }
            for &t in threads {
                specs.push(spec(
                    format!("smp/transitions_distinct/threads={t}"),
                    "smp_transitions",
                    &[("threads", t), ("roundtrips", roundtrips)],
                    inv,
                ));
            }
            if !smoke {
                let wide = *threads.last().expect("thread list");
                for &ns in &[8usize, 16, 32, 64] {
                    specs.push(ChildSpec {
                        id: format!("smp/hypercalls_distinct_shards/shards={ns}"),
                        scenario: "mutations",
                        params: vec![
                            ("workload".into(), "hypercalls_distinct_shards".into()),
                            ("threads".into(), wide.to_string()),
                            ("pairs".into(), pairs.to_string()),
                            ("shards".into(), ns.to_string()),
                            ("ring_depth".into(), depth.to_string()),
                        ],
                        invocations: inv,
                    });
                }
                for &d in &[4usize, 8, 16, 32] {
                    specs.push(ChildSpec {
                        id: format!("smp/hypercalls_contended_ringdepth/ring_depth={d}"),
                        scenario: "mutations",
                        params: vec![
                            ("workload".into(), "hypercalls_contended_ringdepth".into()),
                            ("threads".into(), 8.to_string()),
                            ("pairs".into(), pairs.to_string()),
                            ("shards".into(), shards.to_string()),
                            ("ring_depth".into(), d.to_string()),
                        ],
                        invocations: inv,
                    });
                }
            }
            specs
        }
        Family::Scale => {
            let populations: &[usize] =
                if smoke { &[1_000, 10_000] } else { &[1_000, 10_000, 100_000, 1_000_000] };
            let depth = if smoke { 256 } else { 1024 };
            populations
                .iter()
                .map(|&n| {
                    spec(
                        format!("scale/population={n}"),
                        "population",
                        &[("population", n), ("neighbors", 64), ("depth", depth)],
                        1,
                    )
                })
                .collect()
        }
        Family::Fleet => {
            let requests = if smoke { 32 } else { 512 };
            let inv = 2;
            let mut specs = Vec::new();
            let sizes: &[usize] = if smoke { &[2] } else { &[2, 4, 8] };
            for &m in sizes {
                specs.push(spec(
                    format!("fleet/machines={m}"),
                    "fleet",
                    &[("machines", m), ("requests", requests)],
                    inv,
                ));
            }
            // Containment rows: one byzantine machine spraying forged
            // frames, and one healthy fleet under seeded NIC faults —
            // both at the mid-size fleet so their tails diff against
            // the healthy `machines=4` row (`machines=3` in smoke).
            let adversarial_size = if smoke { 3 } else { 4 };
            specs.push(spec(
                format!("fleet/byzantine/machines={adversarial_size}"),
                "fleet",
                &[
                    ("machines", adversarial_size),
                    ("requests", requests),
                    ("byzantine", 1),
                ],
                inv,
            ));
            specs.push(spec(
                format!("fleet/faulted/machines={adversarial_size}"),
                "fleet",
                &[
                    ("machines", adversarial_size),
                    ("requests", requests),
                    ("faulted", 1),
                ],
                inv,
            ));
            specs
        }
    }
}

// ---------------------------------------------------------------------
// Child-line protocol
// ---------------------------------------------------------------------

/// Digest over a child's histograms: SHA-256 of each histogram's name
/// and canonical bytes, in name order.
pub fn hists_digest(hists: &[(String, Histogram)]) -> String {
    let mut sorted: Vec<&(String, Histogram)> = hists.iter().collect();
    sorted.sort_by(|a, b| a.0.cmp(&b.0));
    let mut bytes = Vec::new();
    bytes.extend_from_slice(CHILD_SCHEMA.as_bytes());
    for (name, hist) in sorted {
        bytes.extend_from_slice(name.as_bytes());
        bytes.push(0);
        bytes.extend_from_slice(&hist.canonical_bytes());
    }
    tyche_crypto::hash(&bytes).to_hex()
}

/// Everything one child invocation reports: the artifact row it
/// produced, the deterministic fields the parent asserts across
/// invocations, and its latency histograms.
#[derive(Debug, Clone, PartialEq)]
pub struct ChildLine {
    /// Scenario id (matches the [`ChildSpec`]).
    pub id: String,
    /// Invocation seed this line came from.
    pub seed: u64,
    /// Deterministic fields (simulated-cycle metrics and exact op
    /// counts): the parent errors if any differs between invocations.
    pub det: Vec<(String, u64)>,
    /// The artifact row, pre-percentiles.
    pub row: Json,
    /// Named latency histograms (wall ns).
    pub hists: Vec<(String, Histogram)>,
}

impl ChildLine {
    /// Serialises to the single line the child prints, with the digest
    /// computed over the histograms.
    pub fn emit(&self) -> String {
        let det = Json::Obj(
            self.det.iter().map(|(k, v)| (k.clone(), Json::Num(v.to_string()))).collect(),
        );
        let hists = Json::Obj(
            self.hists.iter().map(|(k, h)| (k.clone(), h.to_json())).collect(),
        );
        Json::Obj(vec![
            ("schema".into(), Json::Str(CHILD_SCHEMA.into())),
            ("id".into(), Json::Str(self.id.clone())),
            ("seed".into(), Json::Num(self.seed.to_string())),
            ("det".into(), det),
            ("row".into(), self.row.clone()),
            ("hists".into(), hists),
            ("digest".into(), Json::Str(hists_digest(&self.hists))),
        ])
        .to_compact()
    }

    /// Parses a child line and **verifies its digest**: the digest is
    /// recomputed from the parsed histograms and compared to the
    /// claimed one, so a histogram corrupted anywhere between the
    /// child's measurement and the parent's merge is rejected here.
    pub fn parse(line: &str) -> Result<Self, String> {
        let doc = json::parse(line.trim())?;
        if doc.get("schema").and_then(Json::as_str) != Some(CHILD_SCHEMA) {
            return Err(format!("not a {CHILD_SCHEMA} line"));
        }
        let id = doc
            .get("id")
            .and_then(Json::as_str)
            .ok_or("child line missing id")?
            .to_string();
        let seed = doc.get("seed").and_then(Json::as_u64).ok_or("child line missing seed")?;
        let det = doc
            .get("det")
            .and_then(Json::as_obj)
            .ok_or("child line missing det")?
            .iter()
            .map(|(k, v)| {
                v.as_u64()
                    .map(|n| (k.clone(), n))
                    .ok_or_else(|| format!("det field {k:?} is not a u64"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let row = doc.get("row").ok_or("child line missing row")?.clone();
        let hists = doc
            .get("hists")
            .and_then(Json::as_obj)
            .ok_or("child line missing hists")?
            .iter()
            .map(|(k, v)| Histogram::from_json(v).map(|h| (k.clone(), h)))
            .collect::<Result<Vec<_>, _>>()?;
        let claimed = doc
            .get("digest")
            .and_then(Json::as_str)
            .ok_or("child line missing digest")?;
        let actual = hists_digest(&hists);
        if claimed != actual {
            return Err(format!(
                "child {id:?} seed {seed}: histogram digest mismatch \
                 (claimed {claimed}, recomputed {actual})"
            ));
        }
        Ok(Self { id, seed, det, row, hists })
    }
}

/// One scenario after merging its invocations: the row from the first
/// invocation, the merged histograms, and the per-child digest records
/// destined for the manifest.
#[derive(Debug, Clone)]
pub struct MergedScenario {
    /// Scenario id.
    pub id: String,
    /// The artifact row (percentiles not yet attached).
    pub row: Json,
    /// Histograms merged across all invocations, in name order.
    pub hists: Vec<(String, Histogram)>,
    /// Identity + digest of every contributing child invocation.
    pub children: Vec<ChildRecord>,
}

impl MergedScenario {
    /// Wraps a single in-process run (no child spawn) in the same
    /// shape, so `bench --json` and the orchestrator share one artifact
    /// assembler.
    pub fn from_single(id: String, row: Json, hists: Vec<(String, Histogram)>) -> Self {
        let digest = hists_digest(&hists);
        let child_id = format!("{id}#inprocess");
        Self { id, row, hists, children: vec![ChildRecord { id: child_id, digest }] }
    }
}

/// Merges the invocations of one scenario: verifies they agree on the
/// id and on every deterministic field (a simulated-cycle metric that
/// differs between two runs of the same binary is a determinism bug,
/// not noise), then folds the histograms together.
pub fn merge_invocations(lines: &[ChildLine]) -> Result<MergedScenario, String> {
    let first = lines.first().ok_or("no invocations to merge")?;
    let mut hists = first.hists.clone();
    let mut children = Vec::with_capacity(lines.len());
    children.push(ChildRecord {
        id: format!("{}#seed={}", first.id, first.seed),
        digest: hists_digest(&first.hists),
    });
    for line in &lines[1..] {
        if line.id != first.id {
            return Err(format!("merging mismatched scenarios {:?} and {:?}", first.id, line.id));
        }
        if line.det != first.det {
            return Err(format!(
                "scenario {:?}: deterministic fields differ between seed {} ({:?}) \
                 and seed {} ({:?})",
                first.id, first.seed, first.det, line.seed, line.det
            ));
        }
        let names: Vec<&String> = line.hists.iter().map(|(k, _)| k).collect();
        let first_names: Vec<&String> = first.hists.iter().map(|(k, _)| k).collect();
        if names != first_names {
            return Err(format!(
                "scenario {:?}: histogram sets differ across invocations",
                first.id
            ));
        }
        for ((_, merged), (_, h)) in hists.iter_mut().zip(&line.hists) {
            merged.merge_from(h);
        }
        children.push(ChildRecord {
            id: format!("{}#seed={}", line.id, line.seed),
            digest: hists_digest(&line.hists),
        });
    }
    hists.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(MergedScenario { id: first.id.clone(), row: first.row.clone(), hists, children })
}

// ---------------------------------------------------------------------
// Orchestration
// ---------------------------------------------------------------------

/// Spawns one child invocation and parses its line.
pub fn run_child(exe: &Path, spec: &ChildSpec, seed: u64) -> Result<ChildLine, String> {
    let mut cmd = Command::new(exe);
    cmd.arg("harness-child").arg(spec.scenario).arg("--id").arg(&spec.id);
    cmd.arg(format!("seed={seed}"));
    for (k, v) in &spec.params {
        cmd.arg(format!("{k}={v}"));
    }
    let out = cmd.output().map_err(|e| format!("spawn {}: {e}", exe.display()))?;
    let stdout = String::from_utf8_lossy(&out.stdout);
    if !out.status.success() {
        let stderr = String::from_utf8_lossy(&out.stderr);
        return Err(format!(
            "child {} seed {seed} exited with {}: {}{}",
            spec.id,
            out.status,
            stdout.trim(),
            stderr.trim()
        ));
    }
    let line = stdout
        .lines()
        .find(|l| l.trim_start().starts_with("{\"schema\": \"tyche-harness-child/"))
        .ok_or_else(|| format!("child {} seed {seed} printed no harness line", spec.id))?;
    let parsed = ChildLine::parse(line)?;
    if parsed.id != spec.id {
        return Err(format!("child answered for {:?}, expected {:?}", parsed.id, spec.id));
    }
    Ok(parsed)
}

/// One fully-orchestrated suite: merged rows plus the provenance inputs
/// the manifest needs.
#[derive(Debug, Clone)]
pub struct SuiteRun {
    /// Which suite ran.
    pub family: Family,
    /// Whether this was a smoke-sized run.
    pub smoke: bool,
    /// Merged scenarios in artifact row order.
    pub rows: Vec<MergedScenario>,
    /// Seed set handed to the children.
    pub seeds: Vec<u64>,
    /// Canonical configuration string (hashed into the manifest).
    pub config: String,
    /// Nominal invocations per scenario.
    pub invocations: usize,
}

/// Runs every scenario of `family` through child processes of `exe`
/// and merges the results. Prints one progress line per scenario.
pub fn orchestrate(exe: &Path, family: Family, smoke: bool) -> Result<SuiteRun, String> {
    let specs = suite_specs(family, smoke);
    let invocations = specs.iter().map(|s| s.invocations).max().unwrap_or(1);
    let config = canonical_config(family, smoke, &specs);
    let mut rows = Vec::with_capacity(specs.len());
    let total = specs.len();
    for (i, spec) in specs.iter().enumerate() {
        let lines = (1..=spec.invocations as u64)
            .map(|seed| run_child(exe, spec, seed))
            .collect::<Result<Vec<_>, _>>()?;
        let merged = merge_invocations(&lines)?;
        let summary = merged
            .hists
            .first()
            .map(|(name, h)| {
                format!(
                    "{name}: p50={} p99={} p999={} max={} ns over {} samples",
                    h.percentile(0.50),
                    h.percentile(0.99),
                    h.percentile(0.999),
                    h.max_ns(),
                    h.count()
                )
            })
            .unwrap_or_else(|| "no histogram".into());
        println!(
            "harness [{}/{}] {} x{} — {}",
            i + 1,
            total,
            spec.id,
            spec.invocations,
            summary
        );
        rows.push(merged);
    }
    Ok(SuiteRun {
        family,
        smoke,
        rows,
        seeds: (1..=invocations as u64).collect(),
        config,
        invocations,
    })
}

/// The canonical configuration string hashed into the manifest: suite,
/// mode, and every scenario with its parameters.
pub fn canonical_config(family: Family, smoke: bool, specs: &[ChildSpec]) -> String {
    let mut s = format!("suite={} smoke={smoke}", family.name());
    for spec in specs {
        s.push_str("; ");
        s.push_str(&spec.id);
        for (k, v) in &spec.params {
            s.push_str(&format!(" {k}={v}"));
        }
        s.push_str(&format!(" x{}", spec.invocations));
    }
    s
}

// ---------------------------------------------------------------------
// Artifact assembly
// ---------------------------------------------------------------------

/// Percentile summary of one merged histogram, as embedded per row.
pub fn latency_json(h: &Histogram) -> Json {
    Json::Obj(vec![
        ("p50".into(), Json::Num(h.percentile(0.50).to_string())),
        ("p99".into(), Json::Num(h.percentile(0.99).to_string())),
        ("p999".into(), Json::Num(h.percentile(0.999).to_string())),
        ("max".into(), Json::Num(h.max_ns().to_string())),
        ("mean".into(), Json::Num(h.mean_ns().to_string())),
        ("samples".into(), Json::Num(h.count().to_string())),
    ])
}

/// Attaches the percentile field(s) to a row: hotpath rows get
/// `"latency"` (one histogram named `op`), smp rows get
/// `"call_latency"` (one histogram named `call`), scale rows get a
/// `"percentiles"` map over their storm histograms.
fn row_with_percentiles(family: Family, merged: &MergedScenario) -> Json {
    let mut members = match &merged.row {
        Json::Obj(m) => m.clone(),
        other => vec![("row".into(), other.clone())],
    };
    match family {
        Family::Hotpath | Family::Smp => {
            let key = if family == Family::Hotpath { "latency" } else { "call_latency" };
            if let Some((_, h)) = merged.hists.first() {
                members.push((key.into(), latency_json(h)));
            }
        }
        Family::Scale => {
            let map =
                merged.hists.iter().map(|(k, h)| (k.clone(), latency_json(h))).collect();
            members.push(("percentiles".into(), Json::Obj(map)));
        }
        Family::Fleet => {
            // Attested requests/sec is derived here, from the *merged*
            // request histogram, so it reflects every invocation rather
            // than whichever child's row came first.
            if let Some((_, h)) = merged.hists.first() {
                members.push(("latency".into(), latency_json(h)));
                let mean = h.mean_ns().max(1);
                members.push((
                    "attested_rps".into(),
                    Json::Num(format!("{:.1}", 1e9 / mean as f64)),
                ));
            }
        }
    }
    Json::Obj(members)
}

fn manifest_block(m: &Manifest) -> String {
    let host = Json::Obj(vec![
        ("cores".into(), Json::Num(m.host.cores.to_string())),
        ("arch".into(), Json::Str(m.host.arch.clone())),
        ("os".into(), Json::Str(m.host.os.clone())),
        ("rustc".into(), Json::Str(m.host.rustc.clone())),
    ]);
    let seeds = Json::Arr(m.seeds.iter().map(|s| Json::Num(s.to_string())).collect());
    let children = m
        .children
        .iter()
        .map(|c| {
            format!(
                "      {}",
                Json::Obj(vec![
                    ("id".into(), Json::Str(c.id.clone())),
                    ("digest".into(), Json::Str(c.digest.clone())),
                ])
                .to_compact()
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    format!(
        "  \"manifest\": {{\n    \"generator\": \"{}\",\n    \"git_hash\": \"{}\",\n    \
         \"git_dirty\": {},\n    \"seeds\": {},\n    \"config_hash\": \"{}\",\n    \
         \"invocations\": {},\n    \"host\": {},\n    \"children\": [\n{}\n    ]\n  }}",
        m.generator,
        m.git_hash,
        m.git_dirty,
        seeds.to_compact(),
        m.config_hash,
        m.invocations,
        host.to_compact(),
        children
    )
}

fn f64_field(row: &Json, key: &str) -> f64 {
    row.get(key).and_then(Json::as_f64).unwrap_or(0.0)
}

/// Assembles the final artifact document for a run. `generator` is
/// `"harness"` for orchestrated runs and `"inprocess"` for single-run
/// `bench --json`; `root` anchors the git queries for the manifest.
pub fn assemble_artifact(
    run: &SuiteRun,
    monitor_version: &str,
    root: &Path,
    generator: &str,
) -> String {
    let children: Vec<ChildRecord> =
        run.rows.iter().flat_map(|r| r.children.iter().cloned()).collect();
    let manifest = Manifest::capture(
        root,
        generator,
        run.seeds.clone(),
        &run.config,
        run.invocations,
        children,
    );
    let rows = run
        .rows
        .iter()
        .map(|r| format!("    {}", row_with_percentiles(run.family, r).to_compact()))
        .collect::<Vec<_>>()
        .join(",\n");
    let mode = if run.smoke { "smoke" } else { "full" };
    let mut head = format!(
        "{{\n  \"schema\": \"{}\",\n  \"mode\": \"{mode}\",\n  \
         \"monitor_version\": \"{monitor_version}\",\n",
        run.family.schema()
    );
    match run.family {
        Family::Hotpath => {}
        Family::Smp => {
            // Headline stats, recomputed from the merged rows exactly as
            // the in-process suite computed them from its entries.
            let distinct: Vec<&MergedScenario> = run
                .rows
                .iter()
                .filter(|r| r.id.starts_with("smp/hypercalls_distinct/"))
                .collect();
            if let (Some(first), Some(last)) = (distinct.first(), distinct.last()) {
                let scaling = f64_field(&last.row, "smp_tput")
                    / f64_field(&first.row, "smp_tput").max(f64::MIN_POSITIVE);
                head.push_str(&format!("  \"distinct_scaling\": {scaling:.2},\n"));
                head.push_str(&format!(
                    "  \"distinct_vs_baseline\": {:.2},\n",
                    f64_field(&last.row, "speedup")
                ));
            }
            if let Some(ring) =
                run.rows.iter().rfind(|r| r.id.starts_with("smp/hypercalls_contended_ring/"))
            {
                head.push_str(&format!(
                    "  \"contended_ring_vs_baseline\": {:.2},\n",
                    f64_field(&ring.row, "speedup")
                ));
            }
        }
        Family::Scale => {
            head.push_str("  \"neighbors\": 64,\n");
        }
        Family::Fleet => {
            // Headline containment number: the byzantine row's healthy-
            // pair p99 over the same-size healthy fleet's p99. The
            // artifact check caps it at 2x.
            let p99_of = |r: &MergedScenario| {
                r.hists.first().map(|(_, h)| h.percentile(0.99)).unwrap_or(0)
            };
            let byz = run.rows.iter().find(|r| r.id.starts_with("fleet/byzantine/"));
            if let Some(byz) = byz {
                let size = byz.id.rsplit('=').next().unwrap_or("");
                let healthy = run
                    .rows
                    .iter()
                    .find(|r| r.id == format!("fleet/machines={size}"));
                if let Some(healthy) = healthy {
                    let ratio =
                        p99_of(byz) as f64 / (p99_of(healthy) as f64).max(f64::MIN_POSITIVE);
                    head.push_str(&format!("  \"byzantine_p99_ratio\": {ratio:.2},\n"));
                }
            }
        }
    }
    format!(
        "{head}{},\n  \"{}\": [\n{rows}\n  ]\n}}\n",
        manifest_block(&manifest),
        run.family.rows_key()
    )
}

// ---------------------------------------------------------------------
// Artifact writing (smoke-clobber protection)
// ---------------------------------------------------------------------

/// Refuses to let a smoke-sized run overwrite a committed full-run
/// artifact: if `path` exists and holds a `"mode": "full"` document,
/// writing smoke output there is an error, `--out` or not.
pub fn refuse_smoke_clobber(path: &Path) -> Result<(), String> {
    if let Ok(existing) = std::fs::read_to_string(path) {
        if existing.contains("\"mode\": \"full\"") {
            return Err(format!(
                "refusing to overwrite {} — it holds a full-run artifact and this \
                 is a smoke run (pick a different --out path)",
                path.display()
            ));
        }
    }
    Ok(())
}

/// Writes an artifact document, applying [`refuse_smoke_clobber`] when
/// the run was smoke-sized.
pub fn write_artifact(path: &Path, doc: &str, smoke: bool) -> Result<(), String> {
    if smoke {
        refuse_smoke_clobber(path)?;
    }
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    std::fs::write(path, doc).map_err(|e| format!("write {}: {e}", path.display()))
}

// ---------------------------------------------------------------------
// `repro report` — run-to-run diff
// ---------------------------------------------------------------------

/// Whether a bigger value of a metric is worse or better.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Direction {
    LowerIsBetter,
    HigherIsBetter,
}

struct MetricSpec {
    path: &'static str,
    direction: Direction,
}

const HOTPATH_METRICS: &[MetricSpec] = &[
    MetricSpec { path: "after", direction: Direction::LowerIsBetter },
    MetricSpec { path: "latency.p50", direction: Direction::LowerIsBetter },
    MetricSpec { path: "latency.p99", direction: Direction::LowerIsBetter },
];
const SMP_METRICS: &[MetricSpec] = &[
    MetricSpec { path: "smp_tput", direction: Direction::HigherIsBetter },
    MetricSpec { path: "call_latency.p99", direction: Direction::LowerIsBetter },
];
const FLEET_METRICS: &[MetricSpec] = &[
    MetricSpec { path: "attested_rps", direction: Direction::HigherIsBetter },
    MetricSpec { path: "latency.p50", direction: Direction::LowerIsBetter },
    MetricSpec { path: "latency.p99", direction: Direction::LowerIsBetter },
];
const SCALE_METRICS: &[MetricSpec] = &[
    MetricSpec { path: "create_ns_per_op", direction: Direction::LowerIsBetter },
    MetricSpec { path: "enter_ns_per_op", direction: Direction::LowerIsBetter },
    MetricSpec { path: "neighbor.caps_of_ns", direction: Direction::LowerIsBetter },
    MetricSpec { path: "neighbor.enumerate_ns", direction: Direction::LowerIsBetter },
    MetricSpec { path: "neighbor.refcount_ns", direction: Direction::LowerIsBetter },
    MetricSpec { path: "revoke_storm_ns_per_op", direction: Direction::LowerIsBetter },
];

/// A bench family as identified by an artifact's schema string,
/// version-agnostically (v1 artifacts remain diffable against v2).
fn family_of_schema(schema: &str) -> Option<Family> {
    let base = schema.split('/').next().unwrap_or(schema);
    match base {
        "tyche-bench-hotpath" => Some(Family::Hotpath),
        "tyche-bench-smp" => Some(Family::Smp),
        "tyche-bench-scale" => Some(Family::Scale),
        "tyche-bench-fleet" => Some(Family::Fleet),
        _ => None,
    }
}

fn row_key(family: Family, row: &Json) -> String {
    match family {
        Family::Hotpath => format!(
            "{}/fanout={}",
            row.get("name").and_then(Json::as_str).unwrap_or("?"),
            row.get("fanout").and_then(Json::as_u64).unwrap_or(0)
        ),
        Family::Smp => format!(
            "{}/t{}/s{}/r{}",
            row.get("workload").and_then(Json::as_str).unwrap_or("?"),
            row.get("threads").and_then(Json::as_u64).unwrap_or(0),
            row.get("shards").and_then(Json::as_u64).unwrap_or(0),
            row.get("ring_depth").and_then(Json::as_u64).unwrap_or(0)
        ),
        Family::Scale => format!(
            "population={}",
            row.get("population").and_then(Json::as_u64).unwrap_or(0)
        ),
        Family::Fleet => format!(
            "machines={}/byzantine={}/faulted={}",
            row.get("machines").and_then(Json::as_u64).unwrap_or(0),
            row.get("byzantine").and_then(Json::as_u64).unwrap_or(0),
            row.get("faulted").and_then(Json::as_u64).unwrap_or(0)
        ),
    }
}

/// Result of a `repro report` diff.
#[derive(Debug, Clone)]
pub struct ReportOutcome {
    /// Metrics compared (present on both sides).
    pub compared: usize,
    /// `row/metric` labels that regressed beyond the threshold.
    pub regressions: Vec<String>,
    /// Metrics that improved beyond the threshold.
    pub improvements: usize,
    /// Rows present on only one side (informational, not a failure —
    /// schema evolution adds and removes rows).
    pub unmatched: usize,
}

/// Diffs two bench artifacts of the same family, printing a table and
/// flagging any metric that moved in the bad direction by more than
/// `threshold_pct` percent. The caller turns a non-empty
/// `regressions` list into a non-zero exit.
pub fn report_diff(old: &Json, new: &Json, threshold_pct: f64) -> Result<ReportOutcome, String> {
    let old_schema = old.get("schema").and_then(Json::as_str).ok_or("old artifact has no schema")?;
    let new_schema = new.get("schema").and_then(Json::as_str).ok_or("new artifact has no schema")?;
    let family = family_of_schema(old_schema)
        .ok_or_else(|| format!("unknown artifact schema {old_schema:?}"))?;
    if family_of_schema(new_schema) != Some(family) {
        return Err(format!(
            "cannot diff {old_schema:?} against {new_schema:?}: different bench families"
        ));
    }
    let metrics = match family {
        Family::Hotpath => HOTPATH_METRICS,
        Family::Smp => SMP_METRICS,
        Family::Scale => SCALE_METRICS,
        Family::Fleet => FLEET_METRICS,
    };
    let rows_of = |doc: &Json| -> Vec<Json> {
        doc.get(family.rows_key()).and_then(Json::as_arr).map(<[Json]>::to_vec).unwrap_or_default()
    };
    let old_rows = rows_of(old);
    let new_rows = rows_of(new);

    let mut t = Table::new(
        &format!(
            "REPORT — {} ({old_schema} -> {new_schema}), regression threshold {threshold_pct}%",
            family.name()
        ),
        &["row", "metric", "old", "new", "delta", "verdict"],
    );
    let mut outcome =
        ReportOutcome { compared: 0, regressions: Vec::new(), improvements: 0, unmatched: 0 };
    let mut matched_new: BTreeSet<usize> = BTreeSet::new();
    for old_row in &old_rows {
        let key = row_key(family, old_row);
        let Some((new_idx, new_row)) =
            new_rows.iter().enumerate().find(|(_, r)| row_key(family, r) == key)
        else {
            outcome.unmatched += 1;
            t.row(&[key, "-".into(), "-".into(), "absent".into(), "-".into(), "unmatched".into()]);
            continue;
        };
        matched_new.insert(new_idx);
        for metric in metrics {
            let (Some(o), Some(n)) = (
                old_row.path(metric.path).and_then(Json::as_f64),
                new_row.path(metric.path).and_then(Json::as_f64),
            ) else {
                continue; // metric absent on one side (e.g. v1 has no percentiles)
            };
            outcome.compared += 1;
            // Signed percentage move in the *bad* direction.
            let base = o.abs().max(f64::MIN_POSITIVE);
            let delta = match metric.direction {
                Direction::LowerIsBetter => (n - o) * 100.0 / base,
                Direction::HigherIsBetter => (o - n) * 100.0 / base,
            };
            let verdict = if delta > threshold_pct {
                outcome.regressions.push(format!("{key}/{}", metric.path));
                "REGRESSED"
            } else if delta < -threshold_pct {
                outcome.improvements += 1;
                "improved"
            } else {
                "ok"
            };
            t.row(&[
                key.clone(),
                metric.path.into(),
                format!("{o:.2}"),
                format!("{n:.2}"),
                format!("{delta:+.1}%"),
                verdict.into(),
            ]);
        }
    }
    outcome.unmatched +=
        new_rows.len() - matched_new.len();
    t.print();
    println!(
        "report: {} metrics compared, {} regressed, {} improved, {} unmatched rows",
        outcome.compared,
        outcome.regressions.len(),
        outcome.improvements,
        outcome.unmatched
    );
    Ok(outcome)
}

// ---------------------------------------------------------------------
// `repro report --check` — the one committed-artifact gate
// ---------------------------------------------------------------------

fn check_manifest(doc: &Json, failures: &mut Vec<String>) {
    let Some(m) = doc.get("manifest") else {
        failures.push("missing manifest".into());
        return;
    };
    match Manifest::parse(m) {
        Err(e) => failures.push(format!("malformed manifest: {e}")),
        Ok(m) => {
            if m.generator != "harness" {
                failures.push(format!(
                    "generator is {:?} — committed bench artifacts must come from \
                     `repro harness`, not in-process runs",
                    m.generator
                ));
            }
            if m.host.cores == 0 {
                failures.push("manifest host has zero cores".into());
            }
            if m.children.is_empty() {
                failures.push("manifest records no child invocations".into());
            }
        }
    }
}

fn check_mode_full(doc: &Json, failures: &mut Vec<String>) {
    if doc.get("mode").and_then(Json::as_str) != Some("full") {
        failures.push("mode is not \"full\" — smoke output must not be committed".into());
    }
}

fn check_rows_have(
    rows: &[Json],
    path: &str,
    failures: &mut Vec<String>,
    family: Family,
) {
    for row in rows {
        if row.path(path).is_none() {
            failures.push(format!("row {} missing {path}", row_key(family, row)));
        }
    }
}

/// Validates one committed artifact: schema is current, the run is a
/// full one, the manifest is present and harness-generated, and the
/// family-specific row requirements hold (the union of what the six
/// retired CI greps checked, plus the percentile fields). Returns the
/// list of failures, empty on success.
pub fn check_artifact(doc: &Json) -> Vec<String> {
    let mut failures = Vec::new();
    let Some(schema) = doc.get("schema").and_then(Json::as_str) else {
        return vec!["artifact has no schema field".into()];
    };
    match schema {
        "tyche-bench-hotpath/v2" => {
            check_mode_full(doc, &mut failures);
            check_manifest(doc, &mut failures);
            let rows = doc.get("benches").and_then(Json::as_arr).unwrap_or(&[]);
            for name in ["revocation", "transitions", "flush_policy", "capability_ops"] {
                if !rows.iter().any(|r| r.get("name").and_then(Json::as_str) == Some(name)) {
                    failures.push(format!("bench {name:?} missing"));
                }
            }
            check_rows_have(rows, "latency.p50", &mut failures, Family::Hotpath);
            check_rows_have(rows, "latency.p999", &mut failures, Family::Hotpath);
        }
        "tyche-bench-smp/v3" => {
            check_mode_full(doc, &mut failures);
            check_manifest(doc, &mut failures);
            let rows = doc.get("benches").and_then(Json::as_arr).unwrap_or(&[]);
            for wl in [
                "hypercalls_distinct",
                "hypercalls_contended",
                "hypercalls_contended_ring",
                "hypercalls_distinct_shards",
                "hypercalls_contended_ringdepth",
                "transitions_distinct",
            ] {
                if !rows.iter().any(|r| r.get("workload").and_then(Json::as_str) == Some(wl)) {
                    failures.push(format!("workload {wl:?} missing"));
                }
            }
            for key in ["distinct_scaling", "distinct_vs_baseline", "contended_ring_vs_baseline"] {
                if doc.get(key).is_none() {
                    failures.push(format!("headline field {key:?} missing"));
                }
            }
            check_rows_have(rows, "call_latency.p50", &mut failures, Family::Smp);
            // The IPI tripwire the old grep gate carried: contended rows
            // with zero IPIs mean the victim-core design silently broke.
            for row in rows {
                let wl = row.get("workload").and_then(Json::as_str).unwrap_or("");
                if wl.starts_with("hypercalls_contended")
                    && row.path("detail.ipis_sent").and_then(Json::as_u64) == Some(0)
                {
                    failures.push(format!(
                        "row {} lost its IPIs (detail.ipis_sent == 0 on a contended workload)",
                        row_key(Family::Smp, row)
                    ));
                }
            }
        }
        "tyche-bench-scale/v2" => {
            check_mode_full(doc, &mut failures);
            check_manifest(doc, &mut failures);
            let rows = doc.get("populations").and_then(Json::as_arr).unwrap_or(&[]);
            if !rows
                .iter()
                .any(|r| r.get("population").and_then(Json::as_u64) == Some(1_000_000))
            {
                failures.push("sweep does not reach the 1M-domain population".into());
            }
            check_rows_have(rows, "bytes_per_domain", &mut failures, Family::Scale);
            check_rows_have(rows, "percentiles.create.p50", &mut failures, Family::Scale);
            check_rows_have(rows, "percentiles.revoke_storm.p999", &mut failures, Family::Scale);
        }
        "tyche-bench-fleet/v1" => {
            check_mode_full(doc, &mut failures);
            check_manifest(doc, &mut failures);
            let rows = doc.get("fleets").and_then(Json::as_arr).unwrap_or(&[]);
            let healthy = |r: &&Json| {
                r.get("byzantine").and_then(Json::as_u64).unwrap_or(0) == 0
                    && r.get("faulted").and_then(Json::as_u64).unwrap_or(0) == 0
            };
            for m in [2u64, 4, 8] {
                if !rows
                    .iter()
                    .filter(healthy)
                    .any(|r| r.get("machines").and_then(Json::as_u64) == Some(m))
                {
                    failures.push(format!("healthy fleet row machines={m} missing"));
                }
            }
            check_rows_have(rows, "latency.p50", &mut failures, Family::Fleet);
            check_rows_have(rows, "latency.p999", &mut failures, Family::Fleet);
            check_rows_have(rows, "attested_rps", &mut failures, Family::Fleet);
            // Containment: the byzantine machine must be quarantined by
            // every honest peer, and the healthy pairs' tail latency
            // must stay within 2x of the same-size healthy fleet.
            let byz = rows
                .iter()
                .find(|r| r.get("byzantine").and_then(Json::as_u64) == Some(1));
            match byz {
                None => failures.push("byzantine containment row missing".into()),
                Some(byz) => {
                    let machines = byz.get("machines").and_then(Json::as_u64).unwrap_or(0);
                    let quarantined =
                        byz.get("quarantined").and_then(Json::as_u64).unwrap_or(0);
                    if quarantined < machines.saturating_sub(1) {
                        failures.push(format!(
                            "byzantine row: only {quarantined} of {} honest peers \
                             quarantined the byzantine machine",
                            machines.saturating_sub(1)
                        ));
                    }
                    let peer = rows.iter().filter(healthy).find(|r| {
                        r.get("machines").and_then(Json::as_u64) == Some(machines)
                    });
                    if let Some(peer) = peer {
                        let b = f64_field(byz, "latency.p99");
                        let h = f64_field(peer, "latency.p99").max(f64::MIN_POSITIVE);
                        if b / h >= 2.0 {
                            failures.push(format!(
                                "byzantine row: healthy-pair p99 degraded {:.2}x \
                                 (containment bound is < 2x)",
                                b / h
                            ));
                        }
                    }
                }
            }
            if !rows
                .iter()
                .any(|r| r.get("faulted").and_then(Json::as_u64) == Some(1))
            {
                failures.push("faulted-NIC fleet row missing".into());
            }
        }
        "tyche-static/v1" => {
            if doc.get("pass").and_then(Json::as_bool) != Some(true) {
                failures.push("static audit did not pass".into());
            }
        }
        "tyche-fuzz/v1" => {
            check_mode_full(doc, &mut failures);
            if doc.get("pass").and_then(Json::as_bool) != Some(true) {
                failures.push("fuzz campaign did not pass".into());
            }
        }
        "tyche-trace/v1" => {
            check_mode_full(doc, &mut failures);
            if doc.get("pass").and_then(Json::as_bool) != Some(true) {
                failures.push("trace campaign did not pass".into());
            }
            if doc.get("overhead_gate").and_then(Json::as_bool) != Some(true) {
                failures.push("tracing-overhead gate did not pass".into());
            }
        }
        "tyche-bench-hotpath/v1" | "tyche-bench-scale/v1" | "tyche-bench-smp/v1"
        | "tyche-bench-smp/v2" => {
            failures.push(format!(
                "schema {schema:?} is superseded — regenerate through `repro harness`"
            ));
        }
        other => failures.push(format!("unknown artifact schema {other:?}")),
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_line(seed: u64) -> ChildLine {
        let mut h = Histogram::new();
        for v in [40u64, 45, 52, 300, 8_000] {
            h.record_n(v, seed + 1); // different weights per seed
        }
        ChildLine {
            id: "hotpath/transitions".into(),
            seed,
            det: vec![("fast_cycles".into(), 100), ("mediated_cycles".into(), 1340)],
            row: json::parse(
                r#"{"name": "transitions", "fanout": 1, "before": 70, "after": 44, "detail": {"mediated_cycles": 1340, "fast_cycles": 100}}"#,
            )
            .unwrap(),
            hists: vec![("op".into(), h)],
        }
    }

    #[test]
    fn child_line_roundtrips() {
        let line = sample_line(1);
        let parsed = ChildLine::parse(&line.emit()).unwrap();
        assert_eq!(line, parsed);
    }

    #[test]
    fn tampered_digest_is_rejected() {
        let emitted = sample_line(1).emit();
        let tampered = emitted.replacen("\"digest\": \"", "\"digest\": \"00", 1);
        let err = ChildLine::parse(&tampered).unwrap_err();
        assert!(err.contains("digest mismatch"), "unexpected error: {err}");
    }

    #[test]
    fn tampered_histogram_is_rejected_by_digest() {
        // Shift the histogram min by one: bucket counts still sum
        // correctly (so Histogram::from_json accepts it), but the
        // canonical bytes change and the digest no longer matches.
        let emitted = sample_line(1).emit();
        let tampered = emitted.replacen("\"min\": 40", "\"min\": 39", 1);
        assert_ne!(emitted, tampered, "tamper target not found");
        let err = ChildLine::parse(&tampered).unwrap_err();
        assert!(err.contains("digest mismatch"), "unexpected error: {err}");
    }

    #[test]
    fn merge_folds_histograms_and_records_digests() {
        let a = sample_line(1);
        let b = sample_line(2);
        let merged = merge_invocations(&[a.clone(), b.clone()]).unwrap();
        assert_eq!(merged.children.len(), 2);
        assert_eq!(merged.children[0].digest, hists_digest(&a.hists));
        assert_eq!(merged.children[1].digest, hists_digest(&b.hists));
        let total = merged.hists[0].1.count();
        assert_eq!(total, a.hists[0].1.count() + b.hists[0].1.count());
    }

    #[test]
    fn merge_rejects_deterministic_drift() {
        let a = sample_line(1);
        let mut b = sample_line(2);
        b.det[0].1 = 101; // a simulated-cycle metric that moved
        let err = merge_invocations(&[a, b]).unwrap_err();
        assert!(err.contains("deterministic fields differ"), "unexpected error: {err}");
    }

    fn hotpath_doc(after: u64, p99: u64) -> Json {
        json::parse(&format!(
            r#"{{"schema": "tyche-bench-hotpath/v2", "mode": "full", "benches": [
                {{"name": "transitions", "fanout": 1, "before": 70, "after": {after},
                  "latency": {{"p50": 45, "p99": {p99}, "p999": 200, "max": 900, "mean": 50, "samples": 1000}}}}
            ]}}"#
        ))
        .unwrap()
    }

    #[test]
    fn report_flags_regressions_beyond_threshold_only() {
        let old = hotpath_doc(44, 90);
        // +50% on `after`: regression at a 10% threshold.
        let out = report_diff(&old, &hotpath_doc(66, 90), 10.0).unwrap();
        assert_eq!(out.regressions, vec!["transitions/fanout=1/after".to_string()]);
        // +5% stays under a 10% threshold.
        let out = report_diff(&old, &hotpath_doc(46, 92), 10.0).unwrap();
        assert!(out.regressions.is_empty());
        // An improvement is never a regression.
        let out = report_diff(&old, &hotpath_doc(30, 60), 10.0).unwrap();
        assert!(out.regressions.is_empty());
        assert!(out.improvements >= 1);
    }

    #[test]
    fn report_rejects_cross_family_diffs() {
        let hot = hotpath_doc(44, 90);
        let scale = json::parse(
            r#"{"schema": "tyche-bench-scale/v2", "mode": "full", "populations": []}"#,
        )
        .unwrap();
        assert!(report_diff(&hot, &scale, 10.0).is_err());
    }

    #[test]
    fn check_rejects_smoke_missing_manifest_and_old_schemas() {
        let smoke = json::parse(
            r#"{"schema": "tyche-bench-hotpath/v2", "mode": "smoke", "benches": []}"#,
        )
        .unwrap();
        let failures = check_artifact(&smoke);
        assert!(failures.iter().any(|f| f.contains("smoke")), "{failures:?}");
        assert!(failures.iter().any(|f| f.contains("manifest")), "{failures:?}");

        let old = json::parse(r#"{"schema": "tyche-bench-hotpath/v1", "mode": "full"}"#).unwrap();
        assert!(check_artifact(&old)[0].contains("superseded"));
    }

    #[test]
    fn check_accepts_passing_campaign_artifacts() {
        let fuzz = json::parse(
            r#"{"schema": "tyche-fuzz/v1", "mode": "full", "pass": true}"#,
        )
        .unwrap();
        assert!(check_artifact(&fuzz).is_empty());
        let trace = json::parse(
            r#"{"schema": "tyche-trace/v1", "mode": "full", "pass": true, "overhead_gate": false}"#,
        )
        .unwrap();
        assert!(check_artifact(&trace).iter().any(|f| f.contains("overhead")));
    }

    #[test]
    fn smoke_clobber_is_refused() {
        let dir = std::env::temp_dir().join(format!("tyche-harness-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_full.json");
        std::fs::write(&path, "{\n  \"mode\": \"full\"\n}\n").unwrap();
        let err = write_artifact(&path, "{}", true).unwrap_err();
        assert!(err.contains("refusing to overwrite"), "unexpected error: {err}");
        // Full runs may replace full artifacts; smoke may write fresh paths.
        write_artifact(&path, "{\n  \"mode\": \"full\"\n}\n", false).unwrap();
        write_artifact(&dir.join("fresh.smoke.json"), "{}", true).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn suite_specs_cover_the_artifact_matrices() {
        assert_eq!(suite_specs(Family::Hotpath, false).len(), 10);
        assert_eq!(suite_specs(Family::Smp, false).len(), 32);
        assert_eq!(suite_specs(Family::Scale, false).len(), 4);
        assert_eq!(suite_specs(Family::Fleet, false).len(), 5);
        // Smoke keeps every scenario kind but shrinks the matrix.
        assert_eq!(suite_specs(Family::Hotpath, true).len(), 4);
        assert_eq!(suite_specs(Family::Smp, true).len(), 4);
        assert_eq!(suite_specs(Family::Scale, true).len(), 2);
        assert_eq!(suite_specs(Family::Fleet, true).len(), 3);
    }
}
