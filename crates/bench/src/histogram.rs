//! Log-bucketed latency histograms for the process-based harness.
//!
//! HDR-style layout: values below 32 ns land in exact unit buckets;
//! above that, each power-of-two octave is split into 32 linear
//! sub-buckets, bounding the relative quantisation error at 1/32
//! (≈3.2%). Buckets are kept sparse in a `BTreeMap` so a histogram
//! serialises as the handful of buckets it actually touched, which is
//! what lets every child process print its histograms on a single JSON
//! line for the orchestrator to merge.
//!
//! Percentiles are reported from the **upper** bound of the bucket
//! holding the target rank (clamped to the observed max), so the
//! quantisation error only ever overstates latency — the harness never
//! rounds a tail down.

use std::collections::BTreeMap;

use crate::json::Json;

/// Sub-bucket resolution: 2^5 = 32 linear sub-buckets per octave.
const SUB_BITS: u32 = 5;
const SUB_COUNT: u64 = 1 << SUB_BITS;

/// A sparse log-bucketed histogram of nanosecond latencies.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Histogram {
    buckets: BTreeMap<u32, u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

fn bucket_index(value: u64) -> u32 {
    if value < SUB_COUNT {
        value as u32
    } else {
        let exp = 63 - value.leading_zeros();
        let shift = exp - SUB_BITS;
        ((shift + 1) << SUB_BITS) + (((value >> shift) as u32) & (SUB_COUNT as u32 - 1))
    }
}

/// Inclusive `(lower, upper)` value bounds of a bucket.
fn bucket_bounds(index: u32) -> (u64, u64) {
    if index < SUB_COUNT as u32 {
        (u64::from(index), u64::from(index))
    } else {
        let shift = (index >> SUB_BITS) - 1;
        let sub = u64::from(index & (SUB_COUNT as u32 - 1));
        let lower = (SUB_COUNT + sub) << shift;
        (lower, lower + ((1u64 << shift) - 1))
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample of `ns` nanoseconds.
    pub fn record(&mut self, ns: u64) {
        self.record_n(ns, 1);
    }

    /// Records `n` samples of `ns` nanoseconds each. Used for batched
    /// timing of sub-100ns operations, where per-op `Instant` reads
    /// would dominate the measurement: the batch mean is recorded with
    /// the batch's op count as weight.
    pub fn record_n(&mut self, ns: u64, n: u64) {
        if n == 0 {
            return;
        }
        *self.buckets.entry(bucket_index(ns)).or_insert(0) += n;
        if self.count == 0 {
            self.min = ns;
            self.max = ns;
        } else {
            self.min = self.min.min(ns);
            self.max = self.max.max(ns);
        }
        self.count += n;
        self.sum += u128::from(ns) * u128::from(n);
    }

    /// Merges `other` into `self`. Merging is commutative and
    /// associative: the orchestrator folds every child invocation's
    /// histogram into one without caring about arrival order.
    pub fn merge_from(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        for (&index, &n) in &other.buckets {
            *self.buckets.entry(index).or_insert(0) += n;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded sample values in nanoseconds.
    pub fn sum_ns(&self) -> u128 {
        self.sum
    }

    /// Smallest recorded sample (0 if empty).
    pub fn min_ns(&self) -> u64 {
        self.min
    }

    /// Largest recorded sample (0 if empty).
    pub fn max_ns(&self) -> u64 {
        self.max
    }

    /// Mean sample value in nanoseconds (0 if empty).
    pub fn mean_ns(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            u64::try_from(self.sum / u128::from(self.count)).unwrap_or(u64::MAX)
        }
    }

    /// The value at quantile `q` in `[0, 1]`, reported from the upper
    /// bound of the bucket containing the rank `ceil(q * count)` and
    /// clamped into `[min, max]`. Returns 0 on an empty histogram.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (&index, &n) in &self.buckets {
            seen += n;
            if seen >= rank {
                let (_, upper) = bucket_bounds(index);
                return upper.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Canonical byte encoding: a domain tag, the summary counters, and
    /// every `(index, count)` pair in ascending index order, all
    /// little-endian. This is both the digest input and the definition
    /// of histogram equality across the process boundary.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.buckets.len() * 12);
        out.extend_from_slice(b"tyche-hist/v1");
        out.extend_from_slice(&self.count.to_le_bytes());
        out.extend_from_slice(&self.sum.to_le_bytes());
        out.extend_from_slice(&self.min.to_le_bytes());
        out.extend_from_slice(&self.max.to_le_bytes());
        for (&index, &n) in &self.buckets {
            out.extend_from_slice(&index.to_le_bytes());
            out.extend_from_slice(&n.to_le_bytes());
        }
        out
    }

    /// SHA-256 over [`Self::canonical_bytes`], hex-encoded. Each child
    /// process publishes this next to its histograms; the orchestrator
    /// recomputes it from the parsed buckets, so any corruption of a
    /// child's histogram in transit is caught before merging.
    pub fn digest_hex(&self) -> String {
        tyche_crypto::hash(&self.canonical_bytes()).to_hex()
    }

    /// Serialises as a compact JSON object with sparse buckets.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("count".into(), Json::Num(self.count.to_string())),
            ("sum".into(), Json::Num(self.sum.to_string())),
            ("min".into(), Json::Num(self.min.to_string())),
            ("max".into(), Json::Num(self.max.to_string())),
            (
                "buckets".into(),
                Json::Arr(
                    self.buckets
                        .iter()
                        .map(|(&i, &n)| {
                            Json::Arr(vec![
                                Json::Num(i.to_string()),
                                Json::Num(n.to_string()),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Parses the [`Self::to_json`] encoding, validating that the
    /// bucket counts sum to the advertised total.
    pub fn from_json(value: &Json) -> Result<Self, String> {
        let count = value
            .get("count")
            .and_then(Json::as_u64)
            .ok_or("histogram missing count")?;
        let sum = value
            .get("sum")
            .and_then(Json::as_u128)
            .ok_or("histogram missing sum")?;
        let min = value
            .get("min")
            .and_then(Json::as_u64)
            .ok_or("histogram missing min")?;
        let max = value
            .get("max")
            .and_then(Json::as_u64)
            .ok_or("histogram missing max")?;
        let mut buckets = BTreeMap::new();
        let mut total = 0u64;
        for pair in value
            .get("buckets")
            .and_then(Json::as_arr)
            .ok_or("histogram missing buckets")?
        {
            let pair = pair.as_arr().ok_or("bucket entry is not a pair")?;
            if pair.len() != 2 {
                return Err("bucket entry is not a pair".into());
            }
            let index =
                u32::try_from(pair[0].as_u64().ok_or("bad bucket index")?).map_err(|_| "bad bucket index".to_string())?;
            let n = pair[1].as_u64().ok_or("bad bucket count")?;
            if buckets.insert(index, n).is_some() {
                return Err(format!("duplicate bucket index {index}"));
            }
            total = total.checked_add(n).ok_or("bucket count overflow")?;
        }
        if total != count {
            return Err(format!(
                "histogram bucket counts sum to {total} but count field says {count}"
            ));
        }
        Ok(Self { buckets, count, sum, min, max })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_percentiles_below_quantisation() {
        // Values < 32 land in exact unit buckets, so percentiles on a
        // known distribution are exact: 1..=20, each once.
        let mut h = Histogram::new();
        for v in 1..=20 {
            h.record(v);
        }
        assert_eq!(h.percentile(0.50), 10);
        assert_eq!(h.percentile(0.05), 1);
        assert_eq!(h.percentile(0.99), 20);
        assert_eq!(h.percentile(1.0), 20);
        assert_eq!(h.max_ns(), 20);
        assert_eq!(h.min_ns(), 1);
        assert_eq!(h.count(), 20);
        assert_eq!(h.mean_ns(), 10); // (1+...+20)/20 = 10.5 -> 10
    }

    #[test]
    fn quantisation_error_bounded_on_large_distribution() {
        let mut h = Histogram::new();
        for v in 1..=100_000u64 {
            h.record(v);
        }
        for (q, exact) in [(0.50, 50_000u64), (0.99, 99_000), (0.999, 99_900)] {
            let got = h.percentile(q);
            // Upper-bound reporting: never below the exact value, never
            // more than one sub-bucket (1/32) above it.
            assert!(got >= exact, "p{q}: {got} < {exact}");
            assert!(
                got <= exact + exact / 32 + 1,
                "p{q}: {got} too far above {exact}"
            );
        }
        assert_eq!(h.percentile(1.0), 100_000);
    }

    #[test]
    fn percentiles_are_monotone() {
        let mut h = Histogram::new();
        for v in [3u64, 90, 90, 2_000, 55_000, 55_000, 55_000, 1_000_000] {
            h.record(v);
        }
        let qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0];
        let vals: Vec<u64> = qs.iter().map(|&q| h.percentile(q)).collect();
        for w in vals.windows(2) {
            assert!(w[0] <= w[1], "percentiles not monotone: {vals:?}");
        }
    }

    #[test]
    fn merge_is_commutative() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in [5u64, 17, 300, 4_096, 70_000] {
            a.record(v);
        }
        for v in [1u64, 17, 950, 1 << 40] {
            b.record_n(v, 3);
        }
        let mut ab = a.clone();
        ab.merge_from(&b);
        let mut ba = b.clone();
        ba.merge_from(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.digest_hex(), ba.digest_hex());
        assert_eq!(ab.count(), a.count() + b.count());
        assert_eq!(ab.sum_ns(), a.sum_ns() + b.sum_ns());
        assert_eq!(ab.min_ns(), 1);
        assert_eq!(ab.max_ns(), 1 << 40);
    }

    #[test]
    fn record_n_equals_repeated_record() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record_n(1234, 7);
        for _ in 0..7 {
            b.record(1234);
        }
        assert_eq!(a, b);
    }

    #[test]
    fn json_roundtrip_preserves_everything() {
        let mut h = Histogram::new();
        for v in [0u64, 31, 32, 33, 1_000, u64::MAX / 2] {
            h.record_n(v, v % 5 + 1);
        }
        let encoded = h.to_json().to_compact();
        let back = Histogram::from_json(&crate::json::parse(&encoded).unwrap()).unwrap();
        assert_eq!(h, back);
        assert_eq!(h.digest_hex(), back.digest_hex());
    }

    #[test]
    fn from_json_rejects_count_mismatch() {
        let mut h = Histogram::new();
        h.record(100);
        h.record(200);
        let mut encoded = h.to_json().to_compact();
        // Corrupt one bucket count: 2 samples advertised, 3 present.
        encoded = encoded.replacen("[[", "[[9999, 1], [", 1);
        let err = Histogram::from_json(&crate::json::parse(&encoded).unwrap());
        assert!(err.is_err(), "corrupted bucket list must not parse: {err:?}");
    }

    #[test]
    fn digest_detects_bucket_tampering() {
        let mut h = Histogram::new();
        h.record_n(50, 10);
        h.record_n(5_000, 10);
        let honest = h.digest_hex();
        let mut tampered = h.clone();
        tampered.record(5_000); // shift one bucket by one count
        assert_ne!(honest, tampered.digest_hex());
    }

    #[test]
    fn bucket_bounds_invert_index() {
        for v in (0..64).chain([100, 1_000, 123_456, 1 << 33, u64::MAX]) {
            let (lo, hi) = bucket_bounds(bucket_index(v));
            assert!(lo <= v && v <= hi, "value {v} outside bucket [{lo}, {hi}]");
            // Relative width bound: hi - lo < lo / 32 for lo >= 32.
            if lo >= 32 {
                assert!(hi - lo <= lo / 32, "bucket too wide at {v}");
            }
        }
    }

    #[test]
    fn empty_histogram_is_safe() {
        let h = Histogram::new();
        assert_eq!(h.percentile(0.5), 0);
        assert_eq!(h.mean_ns(), 0);
        assert_eq!(h.count(), 0);
        let back =
            Histogram::from_json(&crate::json::parse(&h.to_json().to_compact()).unwrap()).unwrap();
        assert_eq!(h, back);
    }
}
