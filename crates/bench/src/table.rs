//! Plain-text result tables.

/// A printable results table.
pub struct Table {
    /// Experiment id + title ("C2 — transition latency").
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("\n== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                line.push_str(&format!("{:<width$}  ", c, width = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("T — demo", &["name", "value"]);
        t.row(&["short".into(), "1".into()]);
        t.row(&["a-much-longer-name".into(), "23456".into()]);
        let s = t.render();
        assert!(s.contains("== T — demo =="));
        assert!(s.contains("a-much-longer-name"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 6);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row(&["only-one".into()]);
    }
}
