//! Experiment support: fixtures, scenarios, and reporting.
//!
//! Everything the reproduction's benches, examples, and the `repro`
//! harness binary share lives here:
//!
//! - [`fixtures`]: boot helpers and canned domain constructions;
//! - [`scenarios`]: the paper's figures as executable scenarios — the
//!   Figure 2 confidential-SaaS pipeline and the Figure 4 memory view;
//! - [`table`]: plain-text tables the harness prints (one per experiment,
//!   mirrored into `EXPERIMENTS.md`);
//! - [`json`], [`histogram`], [`timing`], [`manifest`], [`harness`]: the
//!   process-based bench harness — child-line protocol, log-bucketed
//!   latency histograms, checked timing arithmetic, run manifests, and
//!   the orchestrator/report/check layer behind `repro harness` and
//!   `repro report`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fixtures;
pub mod fuzz;
pub mod harness;
pub mod histogram;
pub mod json;
pub mod manifest;
pub mod scenarios;
pub mod table;
pub mod timing;

pub use fixtures::{boot, spawn_sealed};
pub use table::Table;
