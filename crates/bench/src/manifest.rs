//! Run manifests: the provenance record embedded in every bench
//! artifact.
//!
//! A perf number with no record of what produced it is not evidence.
//! Every harness run captures the git commit (plus a dirty flag — a
//! number from an uncommitted tree says so), the seed set handed to the
//! child processes, a hash of the scenario configuration, a host
//! fingerprint (core count, arch/OS, rustc version), and the digest of
//! every child invocation's histograms. `repro report --check` refuses
//! artifacts without one.

use std::path::Path;
use std::process::Command;

use crate::json::Json;

/// Hardware/toolchain identity of the machine that produced a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostFingerprint {
    /// Available parallelism (logical cores visible to the process).
    pub cores: usize,
    /// Target architecture (`std::env::consts::ARCH`).
    pub arch: String,
    /// Operating system (`std::env::consts::OS`).
    pub os: String,
    /// `rustc --version` of the toolchain on PATH at run time, or
    /// `"unknown"` when rustc is not invocable.
    pub rustc: String,
}

impl HostFingerprint {
    /// Captures the current host.
    pub fn capture() -> Self {
        let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        let rustc = Command::new("rustc")
            .arg("--version")
            .output()
            .ok()
            .filter(|out| out.status.success())
            .and_then(|out| String::from_utf8(out.stdout).ok())
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .unwrap_or_else(|| "unknown".to_string());
        Self {
            cores,
            arch: std::env::consts::ARCH.to_string(),
            os: std::env::consts::OS.to_string(),
            rustc,
        }
    }
}

/// One child invocation's identity and histogram digest, recorded so a
/// later reader can tie every merged bucket back to the process that
/// produced it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChildRecord {
    /// Scenario id plus invocation seed, e.g.
    /// `"hotpath/revocation/fanout=64#seed=2"`.
    pub id: String,
    /// Hex SHA-256 over the child's canonical histogram bytes.
    pub digest: String,
}

/// Provenance for one artifact-producing run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// `"harness"` for orchestrated multi-process runs, `"inprocess"`
    /// for single-process `bench --json` runs. The artifact gate only
    /// accepts `"harness"` for committed bench artifacts.
    pub generator: String,
    /// `git rev-parse HEAD`, or `"unknown"` outside a repo.
    pub git_hash: String,
    /// Whether the working tree had uncommitted changes.
    pub git_dirty: bool,
    /// Seeds handed to the child invocations, in order.
    pub seeds: Vec<u64>,
    /// Hex SHA-256 of the canonical scenario-configuration string.
    pub config_hash: String,
    /// Invocations merged per scenario.
    pub invocations: usize,
    /// Host identity.
    pub host: HostFingerprint,
    /// Digest of every child invocation that fed the artifact.
    pub children: Vec<ChildRecord>,
}

fn git_in(root: &Path, args: &[&str]) -> Option<String> {
    Command::new("git")
        .args(args)
        .current_dir(root)
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
}

impl Manifest {
    /// Captures a manifest for a run rooted at `root` (the workspace
    /// directory used for git queries). `config` is the canonical
    /// scenario-configuration string; only its hash is stored.
    pub fn capture(
        root: &Path,
        generator: &str,
        seeds: Vec<u64>,
        config: &str,
        invocations: usize,
        children: Vec<ChildRecord>,
    ) -> Self {
        let git_hash = git_in(root, &["rev-parse", "HEAD"])
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .unwrap_or_else(|| "unknown".to_string());
        let git_dirty = git_in(root, &["status", "--porcelain"])
            .map(|s| !s.trim().is_empty())
            .unwrap_or(false);
        Self {
            generator: generator.to_string(),
            git_hash,
            git_dirty,
            seeds,
            config_hash: tyche_crypto::hash(config.as_bytes()).to_hex(),
            invocations,
            host: HostFingerprint::capture(),
            children,
        }
    }

    /// Serialises to a JSON value (order-stable).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("generator".into(), Json::Str(self.generator.clone())),
            ("git_hash".into(), Json::Str(self.git_hash.clone())),
            ("git_dirty".into(), Json::Bool(self.git_dirty)),
            (
                "seeds".into(),
                Json::Arr(self.seeds.iter().map(|s| Json::Num(s.to_string())).collect()),
            ),
            ("config_hash".into(), Json::Str(self.config_hash.clone())),
            ("invocations".into(), Json::Num(self.invocations.to_string())),
            (
                "host".into(),
                Json::Obj(vec![
                    ("cores".into(), Json::Num(self.host.cores.to_string())),
                    ("arch".into(), Json::Str(self.host.arch.clone())),
                    ("os".into(), Json::Str(self.host.os.clone())),
                    ("rustc".into(), Json::Str(self.host.rustc.clone())),
                ]),
            ),
            (
                "children".into(),
                Json::Arr(
                    self.children
                        .iter()
                        .map(|c| {
                            Json::Obj(vec![
                                ("id".into(), Json::Str(c.id.clone())),
                                ("digest".into(), Json::Str(c.digest.clone())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Parses the [`Self::to_json`] encoding back, for `report --check`.
    pub fn parse(value: &Json) -> Result<Self, String> {
        let str_field = |key: &str| -> Result<String, String> {
            value
                .get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("manifest missing string field {key:?}"))
        };
        let host = value.get("host").ok_or("manifest missing host")?;
        let seeds = value
            .get("seeds")
            .and_then(Json::as_arr)
            .ok_or("manifest missing seeds")?
            .iter()
            .map(|s| s.as_u64().ok_or_else(|| "bad seed".to_string()))
            .collect::<Result<Vec<_>, _>>()?;
        let children = value
            .get("children")
            .and_then(Json::as_arr)
            .ok_or("manifest missing children")?
            .iter()
            .map(|c| {
                Ok(ChildRecord {
                    id: c
                        .get("id")
                        .and_then(Json::as_str)
                        .ok_or_else(|| "child record missing id".to_string())?
                        .to_string(),
                    digest: c
                        .get("digest")
                        .and_then(Json::as_str)
                        .ok_or_else(|| "child record missing digest".to_string())?
                        .to_string(),
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(Self {
            generator: str_field("generator")?,
            git_hash: str_field("git_hash")?,
            git_dirty: value
                .get("git_dirty")
                .and_then(Json::as_bool)
                .ok_or("manifest missing git_dirty")?,
            seeds,
            config_hash: str_field("config_hash")?,
            invocations: value
                .get("invocations")
                .and_then(Json::as_u64)
                .ok_or("manifest missing invocations")? as usize,
            host: HostFingerprint {
                cores: host.get("cores").and_then(Json::as_u64).ok_or("host missing cores")?
                    as usize,
                arch: host
                    .get("arch")
                    .and_then(Json::as_str)
                    .ok_or("host missing arch")?
                    .to_string(),
                os: host.get("os").and_then(Json::as_str).ok_or("host missing os")?.to_string(),
                rustc: host
                    .get("rustc")
                    .and_then(Json::as_str)
                    .ok_or("host missing rustc")?
                    .to_string(),
            },
            children,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_fills_host_fingerprint() {
        let m = Manifest::capture(
            Path::new("."),
            "harness",
            vec![1, 2, 3],
            "suite=hotpath fanouts=16,64",
            3,
            vec![ChildRecord { id: "a#seed=1".into(), digest: "00".into() }],
        );
        assert!(m.host.cores >= 1);
        assert!(!m.host.arch.is_empty());
        assert_eq!(m.config_hash.len(), 64);
        assert_eq!(m.generator, "harness");
    }

    #[test]
    fn json_roundtrip() {
        let m = Manifest {
            generator: "harness".into(),
            git_hash: "abc123".into(),
            git_dirty: true,
            seeds: vec![1, 2],
            config_hash: "ff".repeat(32),
            invocations: 2,
            host: HostFingerprint {
                cores: 8,
                arch: "x86_64".into(),
                os: "linux".into(),
                rustc: "rustc 1.0".into(),
            },
            children: vec![
                ChildRecord { id: "x#seed=1".into(), digest: "aa".repeat(32) },
                ChildRecord { id: "x#seed=2".into(), digest: "bb".repeat(32) },
            ],
        };
        let encoded = m.to_json().to_compact();
        let back = Manifest::parse(&crate::json::parse(&encoded).unwrap()).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn config_hash_differs_by_config() {
        let a = Manifest::capture(Path::new("."), "harness", vec![], "a", 1, vec![]);
        let b = Manifest::capture(Path::new("."), "harness", vec![], "b", 1, vec![]);
        assert_ne!(a.config_hash, b.config_hash);
    }
}
