//! A fleet of mutually attesting Tyche machines.
//!
//! Everything below this crate lives inside one `Machine`; the paper's
//! trust story only pays off when monitors compose *across* machines —
//! "millions of users, one monitor per machine", where any single
//! machine may be byzantine and must not be able to forge attestation
//! or silently partition its peers. A [`Fleet`] assembles N fully
//! independent machines (each with its own monitor, TPM, DRBG, and
//! sealed TEE domain) connected only by the modeled trusted NIC
//! (`tyche-hw::nic`): frames are cycle-charged on the per-core clocks,
//! queues are bounded and in-order, and the wire between two NICs is
//! attacker-controlled (seeded drop/dup/reorder/corrupt fault plans).
//!
//! Trust is established pairwise by **mutual attestation**
//! ([`Fleet::attest_pair`]): each side challenges the other with TPM
//! DRBG nonces, verifies the quote + monitor report chain against its
//! *own* measurement root for the open-source monitor build (the peer
//! publishes only keys, never the expected PCR — see
//! `tyche-monitor::attest::MachineRoots`), and both sides derive the
//! same channel key with HKDF over the sorted report digests, all four
//! nonces, and the key epoch. Every subsequent frame carries a
//! monotonic sequence number and an HMAC over
//! `(src, epoch, seq, payload)`; the receiving TCB's `ChannelTable`
//! (`tyche-core::channel`) is the single accept/reject authority, and
//! any violation — bad MAC, replay, reorder, truncation, stale epoch —
//! tears the channel down at an exact frame index and quarantines the
//! peer for good.
//!
//! The `libtyche` RDMA scenario composes on top: [`Fleet::rdma_connect`]
//! runs the RDMA attestation handshake over an already-attested channel
//! and [`Fleet::rdma_write`] routes the encrypted RDMA frames through
//! the NIC transport instead of an abstract wire, making it a real
//! two-machine attested workload.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

use std::collections::BTreeMap;

use libtyche::rdma::{RKey, RdmaError, RdmaNic};
use libtyche::{RdmaConnection, TycheClient};
use tyche_core::channel::{ChannelTable, Violation, ViolationReason};
use tyche_core::prelude::*;
use tyche_core::SealPolicy;
use tyche_crypto::{hkdf, Digest, HmacSha256};
use tyche_hw::machine::MachineConfig;
use tyche_hw::nic::Frame;
use tyche_hw::tpm::{Quote, TpmError};
use tyche_monitor::attest::{MachineRoots, VerifyError};
use tyche_monitor::boot::MONITOR_VERSION;
use tyche_monitor::{boot_x86, BootConfig, Monitor, Status};

/// The TEE memory window carved on every fleet machine: the sealed
/// domain whose report backs the machine's channels, and the RDMA
/// source/target region.
pub const TEE_MEM: (u64, u64) = (0x10_0000, 0x10_4000);

/// The MR window registered for attested RDMA, inside [`TEE_MEM`].
pub const RDMA_MR: (u64, u64) = (0x10_1000, 0x10_2000);

/// Channel frame overhead: epoch (8) + seq (8) + HMAC tag (32).
pub const FRAME_OVERHEAD: usize = 48;

/// The monitor version a byzantine machine boots: a different image,
/// measuring to a different PCR 17, so every honest peer's tier-1
/// check fails.
pub const EVIL_VERSION: &str = "evil-monitor v6.6.6";

/// Fleet construction parameters.
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// Number of machines.
    pub machines: usize,
    /// Master seed; each machine's TPM/DRBG seed is derived from it, so
    /// two fleets built from the same config are bit-identical.
    pub seed: u64,
    /// Index of a machine booted with [`EVIL_VERSION`], if any.
    pub byzantine: Option<usize>,
    /// Cores per machine.
    pub cores: usize,
    /// NIC inbound queue depth, in frames.
    pub nic_queue_frames: usize,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            machines: 2,
            seed: 1,
            byzantine: None,
            cores: 2,
            nic_queue_frames: tyche_hw::nic::DEFAULT_QUEUE_FRAMES,
        }
    }
}

/// Why a fleet operation failed.
#[derive(Debug)]
pub enum FleetError {
    /// A machine index was out of range (or `from == to`).
    NoSuchMachine,
    /// A send was refused locally (no open channel to the peer).
    Refused(ViolationReason),
    /// An inbound frame was rejected; the channel is torn down and the
    /// violation records the exact frame index.
    Channel(Violation),
    /// The peer's attestation chain failed verification; the peer is
    /// quarantined.
    Attestation(VerifyError),
    /// A TPM operation failed (injected fault).
    Tpm(TpmError),
    /// A monitor call failed while spawning or attesting the TEE.
    Monitor(Status),
    /// The destination NIC queue was full; the frame was refused.
    QueueFull,
    /// An RDMA-layer error.
    Rdma(RdmaError),
}

impl core::fmt::Display for FleetError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FleetError::NoSuchMachine => f.write_str("no such machine"),
            FleetError::Refused(r) => write!(f, "send refused: {r}"),
            FleetError::Channel(v) => {
                write!(f, "frame {} rejected: {}", v.frame_index, v.reason)
            }
            FleetError::Attestation(e) => write!(f, "attestation failed: {e}"),
            FleetError::Tpm(e) => write!(f, "tpm failure: {e:?}"),
            FleetError::Monitor(s) => write!(f, "monitor call failed: {s:?}"),
            FleetError::QueueFull => f.write_str("destination NIC queue full"),
            FleetError::Rdma(e) => write!(f, "rdma failure: {e:?}"),
        }
    }
}

impl std::error::Error for FleetError {}

/// A frame accepted by the receiving channel.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Delivery {
    /// The sending machine's id.
    pub from: u64,
    /// The per-channel sequence number the frame verified at.
    pub seq: u64,
    /// The authenticated payload.
    pub payload: Vec<u8>,
}

/// Deterministic per-machine counters, for benches and replay checks.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MachineStats {
    /// Frames accepted by this machine's channels.
    pub accepted: u64,
    /// Frames rejected (violations) by this machine's channels.
    pub violations: u64,
    /// Peers this machine has quarantined.
    pub quarantined: u64,
}

/// One fleet member: an independent machine + monitor, its sealed TEE,
/// its channel table, and its per-epoch key material.
pub struct FleetMachine {
    /// The machine's monitor (owns the `tyche_hw::Machine`).
    pub monitor: Monitor,
    /// The TCB channel state for this machine.
    pub channels: ChannelTable,
    /// The sealed TEE domain backing this machine's attestations.
    pub tee: DomainId,
    /// The transition gate into the TEE.
    pub gate: CapId,
    /// Channel keys by peer, then by epoch. At most the current and the
    /// previous epoch are retained (the one-epoch grace window lets a
    /// stale-epoch frame be *diagnosed* as stale rather than merely
    /// unauthentic); retired keys are never used to accept frames, and
    /// a teardown destroys every epoch for the peer.
    keys: BTreeMap<u64, BTreeMap<u64, [u8; 32]>>,
    accepted: u64,
    violations: u64,
}

impl FleetMachine {
    /// Deterministic counters for this machine.
    pub fn stats(&self) -> MachineStats {
        MachineStats {
            accepted: self.accepted,
            violations: self.violations,
            quarantined: self.channels.quarantined_peers().len() as u64,
        }
    }

    /// Records a violation: bump counters and destroy the peer's keys
    /// (the channel-teardown half of the key lifecycle).
    fn violated(&mut self, peer: u64, v: Violation) -> Violation {
        self.violations += 1;
        self.keys.remove(&peer);
        v
    }

    /// Installs `key` for (`peer`, `epoch`), pruning epochs older than
    /// the grace window.
    fn install_key(&mut self, peer: u64, epoch: u64, key: [u8; 32]) {
        let epochs = self.keys.entry(peer).or_default();
        epochs.insert(epoch, key);
        while epochs.len() > 2 {
            if let Some((&oldest, _)) = epochs.iter().next() {
                epochs.remove(&oldest);
            }
        }
    }
}

/// An established attested-RDMA session between two fleet machines.
pub struct RdmaSession {
    conn: RdmaConnection,
    nic: RdmaNic,
    rkey: RKey,
}

/// A fleet of independent machines connected by trusted NICs.
pub struct Fleet {
    machines: Vec<FleetMachine>,
}

/// Derives machine `i`'s TPM seed from the fleet seed (distinct per
/// machine, stable across runs).
fn tpm_seed_for(fleet_seed: u64, i: usize) -> u64 {
    fleet_seed ^ (i as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

/// MAC transcript for one channel frame.
fn frame_tag(key: &[u8; 32], src: u64, epoch: u64, seq: u64, payload: &[u8]) -> Digest {
    HmacSha256::mac_parts(
        key,
        &[
            &src.to_le_bytes(),
            &epoch.to_le_bytes(),
            &seq.to_le_bytes(),
            payload,
        ],
    )
}

impl Fleet {
    /// Boots `config.machines` independent machines, each with a
    /// distinct TPM seed, its own monitor (the byzantine one boots
    /// [`EVIL_VERSION`]), and one sealed TEE owning [`TEE_MEM`].
    ///
    /// No channels exist yet; call [`Self::attest_pair`] or
    /// [`Self::establish_all`].
    pub fn new(config: &FleetConfig) -> Result<Fleet, FleetError> {
        let mut machines = Vec::with_capacity(config.machines);
        for i in 0..config.machines {
            let version = if config.byzantine == Some(i) {
                EVIL_VERSION
            } else {
                MONITOR_VERSION
            };
            let boot = BootConfig {
                machine: MachineConfig {
                    cores: config.cores,
                    tpm_seed: tpm_seed_for(config.seed, i),
                    machine_id: i as u64,
                    nic_queue_frames: config.nic_queue_frames,
                    ..MachineConfig::default()
                },
                version,
                ..BootConfig::default()
            };
            let mut monitor = boot_x86(boot);
            let (tee, gate) = spawn_tee(&mut monitor)?;
            let channels = ChannelTable::new(monitor.machine.trace.clone());
            machines.push(FleetMachine {
                monitor,
                channels,
                tee,
                gate,
                keys: BTreeMap::new(),
                accepted: 0,
                violations: 0,
            });
        }
        Ok(Fleet { machines })
    }

    /// Number of machines.
    pub fn len(&self) -> usize {
        self.machines.len()
    }

    /// True for an empty fleet.
    pub fn is_empty(&self) -> bool {
        self.machines.is_empty()
    }

    /// Borrows machine `i`.
    pub fn machine(&self, i: usize) -> Option<&FleetMachine> {
        self.machines.get(i)
    }

    /// Mutably borrows machine `i`.
    pub fn machine_mut(&mut self, i: usize) -> Option<&mut FleetMachine> {
        self.machines.get_mut(i)
    }

    /// Enables tracing on every machine (one lane per core plus the
    /// engine lane), so per-machine trace chains can be compared across
    /// replayed runs.
    pub fn enable_tracing(&self) {
        for m in &self.machines {
            m.monitor.machine.trace.enable(m.monitor.machine.cores);
        }
    }

    /// Splits two distinct machine borrows.
    fn pair_mut(
        &mut self,
        a: usize,
        b: usize,
    ) -> Result<(&mut FleetMachine, &mut FleetMachine), FleetError> {
        if a == b || a >= self.machines.len() || b >= self.machines.len() {
            return Err(FleetError::NoSuchMachine);
        }
        if a < b {
            let (lo, hi) = self.machines.split_at_mut(b);
            match (lo.get_mut(a), hi.first_mut()) {
                (Some(ma), Some(mb)) => Ok((ma, mb)),
                _ => Err(FleetError::NoSuchMachine),
            }
        } else {
            let (lo, hi) = self.machines.split_at_mut(a);
            match (hi.first_mut(), lo.get_mut(b)) {
                (Some(ma), Some(mb)) => Ok((ma, mb)),
                _ => Err(FleetError::NoSuchMachine),
            }
        }
    }

    /// Mutually attests machines `a` and `b` and establishes (or
    /// re-keys) the channel between them.
    ///
    /// Each side challenges the other with fresh TPM DRBG nonces,
    /// verifies the quote + report chain against its own trust in the
    /// [`MONITOR_VERSION`] build, and on success both derive the same
    /// key for the next epoch. A failed verification quarantines the
    /// presenting peer on the verifying side — a byzantine machine
    /// never gets a channel.
    pub fn attest_pair(&mut self, a: usize, b: usize) -> Result<(), FleetError> {
        self.attest_pair_with(a, b, |_| {})
    }

    /// [`Self::attest_pair`] with a tamper hook applied to `b`'s quote
    /// before `a` verifies it — the adversarial tests use this to model
    /// a byzantine `b` forging its quote in flight. The hook does not
    /// affect what `b` itself derives, so a tampered handshake dies at
    /// `a`'s verification, exactly like a real forgery.
    pub fn attest_pair_with(
        &mut self,
        a: usize,
        b: usize,
        tamper_b_quote: impl FnOnce(&mut Quote),
    ) -> Result<(), FleetError> {
        let (ma, mb) = self.pair_mut(a, b)?;
        let (a_id, b_id) = (a as u64, b as u64);
        let epoch = ma.channels.epoch(b_id).max(mb.channels.epoch(a_id)) + 1;

        // Challenges: each side's TPM DRBG supplies the nonces the
        // *other* side must quote/report over.
        let qn_a = mb.monitor.machine.tpm.fresh_nonce().map_err(FleetError::Tpm)?;
        let rn_a = mb.monitor.machine.tpm.fresh_nonce().map_err(FleetError::Tpm)?;
        let qn_b = ma.monitor.machine.tpm.fresh_nonce().map_err(FleetError::Tpm)?;
        let rn_b = ma.monitor.machine.tpm.fresh_nonce().map_err(FleetError::Tpm)?;

        let quote_a = ma.monitor.machine_quote(qn_a).map_err(FleetError::Tpm)?;
        let report_a = ma
            .monitor
            .attest_domain(ma.tee, rn_a)
            .map_err(|_| FleetError::Monitor(Status::Denied))?;
        let mut quote_b = mb.monitor.machine_quote(qn_b).map_err(FleetError::Tpm)?;
        let report_b = mb
            .monitor
            .attest_domain(mb.tee, rn_b)
            .map_err(|_| FleetError::Monitor(Status::Denied))?;
        tamper_b_quote(&mut quote_b);

        // a verifies b's chain with b's published roots but a's own
        // measurement expectation, and vice versa.
        let verifier_of_b = MachineRoots::of(&mb.monitor).verifier(MONITOR_VERSION);
        if let Err(e) = verifier_of_b.verify(&quote_b, &qn_b, &report_b, &rn_b, None) {
            let v = ma.channels.reject(b_id, ViolationReason::BadAttestation);
            ma.violated(b_id, v);
            return Err(FleetError::Attestation(e));
        }
        let verifier_of_a = MachineRoots::of(&ma.monitor).verifier(MONITOR_VERSION);
        if let Err(e) = verifier_of_a.verify(&quote_a, &qn_a, &report_a, &rn_a, None) {
            let v = mb.channels.reject(a_id, ViolationReason::BadAttestation);
            mb.violated(a_id, v);
            return Err(FleetError::Attestation(e));
        }

        // Both sides hold both reports and all four nonces: derive the
        // epoch key from the sorted report digests (order-independent)
        // plus the full nonce transcript and the epoch.
        let mut da = report_a.report.digest();
        let mut db = report_b.report.digest();
        if db.0 < da.0 {
            std::mem::swap(&mut da, &mut db);
        }
        let mut ikm = Vec::new();
        ikm.extend_from_slice(da.as_bytes());
        ikm.extend_from_slice(db.as_bytes());
        ikm.extend_from_slice(&qn_a);
        ikm.extend_from_slice(&qn_b);
        ikm.extend_from_slice(&rn_a);
        ikm.extend_from_slice(&rn_b);
        ikm.extend_from_slice(&epoch.to_le_bytes());
        let key = hkdf::derive_key32(b"tyche-fleet", &ikm, b"channel");

        ma.channels
            .establish(b_id, epoch)
            .map_err(FleetError::Refused)?;
        ma.install_key(b_id, epoch, key);
        mb.channels
            .establish(a_id, epoch)
            .map_err(FleetError::Refused)?;
        mb.install_key(a_id, epoch, key);
        Ok(())
    }

    /// Attests every unordered machine pair, returning how many
    /// channels were established. Pairs whose attestation fails (e.g.
    /// one side byzantine) are skipped — the rest of the fleet stays
    /// connected, which is the containment property the benches pin.
    pub fn establish_all(&mut self) -> usize {
        let n = self.machines.len();
        let mut up = 0;
        for a in 0..n {
            for b in (a + 1)..n {
                if self.attest_pair(a, b).is_ok() {
                    up += 1;
                }
            }
        }
        up
    }

    /// Sends `payload` from machine `from` to machine `to` over their
    /// attested channel: reserves the next sequence number, MACs
    /// `(src, epoch, seq, payload)`, and hands the frame to the NICs
    /// (charging send cycles to `core` on the sending machine).
    /// Returns the frame's sequence number.
    pub fn send(
        &mut self,
        from: usize,
        to: usize,
        core: usize,
        payload: &[u8],
    ) -> Result<u64, FleetError> {
        let (mf, mt) = self.pair_mut(from, to)?;
        let to_id = to as u64;
        let (seq, epoch) = mf.channels.note_send(to_id).map_err(FleetError::Refused)?;
        let Some(key) = mf.keys.get(&to_id).and_then(|e| e.get(&epoch)) else {
            return Err(FleetError::Refused(ViolationReason::NoChannel));
        };
        let tag = frame_tag(key, from as u64, epoch, seq, payload);
        let mut bytes = Vec::with_capacity(payload.len() + FRAME_OVERHEAD);
        bytes.extend_from_slice(&epoch.to_le_bytes());
        bytes.extend_from_slice(&seq.to_le_bytes());
        bytes.extend_from_slice(payload);
        bytes.extend_from_slice(tag.as_bytes());
        let frame = mf.monitor.machine.nic_send(core, to_id, bytes);
        mt.monitor
            .machine
            .nic_enqueue(frame)
            .map_err(|_| FleetError::QueueFull)?;
        Ok(seq)
    }

    /// Sends raw, unauthenticated bytes from `from`'s NIC to `to`'s
    /// queue, bypassing the channel layer — what a byzantine machine
    /// does. The receiver will reject it ([`ViolationReason::NoChannel`]
    /// or [`ViolationReason::BadMac`]) and quarantine `from`.
    pub fn send_raw(
        &mut self,
        from: usize,
        to: usize,
        core: usize,
        bytes: Vec<u8>,
    ) -> Result<(), FleetError> {
        let (mf, mt) = self.pair_mut(from, to)?;
        let frame = mf.monitor.machine.nic_send(core, to as u64, bytes);
        mt.monitor
            .machine
            .nic_enqueue(frame)
            .map_err(|_| FleetError::QueueFull)
    }

    /// Injects a raw NIC frame directly into machine `to`'s queue — the
    /// adversarial tests use this to model in-flight tampering beyond
    /// what the seeded NIC faults produce.
    pub fn inject(&mut self, to: usize, frame: Frame) -> Result<(), FleetError> {
        let mt = self.machines.get_mut(to).ok_or(FleetError::NoSuchMachine)?;
        mt.monitor
            .machine
            .nic_enqueue(frame)
            .map_err(|_| FleetError::QueueFull)
    }

    /// Polls machine `at`'s NIC from `core` and verifies the next frame
    /// through the channel: MAC first, then the `ChannelTable`'s
    /// sequence/epoch judgment. `Ok(None)` on an empty queue; a
    /// rejection tears the channel down, destroys the peer's keys, and
    /// reports the exact frame index.
    pub fn deliver(&mut self, at: usize, core: usize) -> Result<Option<Delivery>, FleetError> {
        let m = self.machines.get_mut(at).ok_or(FleetError::NoSuchMachine)?;
        let Some(frame) = m.monitor.machine.nic_recv(core) else {
            return Ok(None);
        };
        // Attribution comes from the trusted NIC's link header; the MAC
        // transcript binds the same id, so a forged id dies as BadMac.
        let src = frame.src;
        match Self::verify_frame(m, src, &frame.payload) {
            Ok(d) => {
                m.accepted += 1;
                Ok(Some(d))
            }
            Err(v) => {
                let v = m.violated(src, v);
                Err(FleetError::Channel(v))
            }
        }
    }

    /// Drains machine `at`'s queue, collecting accepted deliveries and
    /// rejections (the pump keeps going after a violation: later frames
    /// on a torn-down channel are themselves violations, which is
    /// exactly what the sticky-quarantine property wants recorded).
    pub fn pump(&mut self, at: usize, core: usize) -> (Vec<Delivery>, Vec<Violation>) {
        let mut accepted = Vec::new();
        let mut rejected = Vec::new();
        loop {
            match self.deliver(at, core) {
                Ok(Some(d)) => accepted.push(d),
                Ok(None) => break,
                Err(FleetError::Channel(v)) => rejected.push(v),
                Err(_) => break,
            }
        }
        (accepted, rejected)
    }

    fn verify_frame(m: &mut FleetMachine, src: u64, bytes: &[u8]) -> Result<Delivery, Violation> {
        if bytes.len() < FRAME_OVERHEAD {
            return Err(m.channels.reject(src, ViolationReason::Truncated));
        }
        let (body, tag) = bytes.split_at(bytes.len() - 32);
        let mut word = [0u8; 8];
        let Some(epoch_bytes) = body.get(..8) else {
            return Err(m.channels.reject(src, ViolationReason::Truncated));
        };
        word.copy_from_slice(epoch_bytes);
        let epoch = u64::from_le_bytes(word);
        let Some(seq_bytes) = body.get(8..16) else {
            return Err(m.channels.reject(src, ViolationReason::Truncated));
        };
        word.copy_from_slice(seq_bytes);
        let seq = u64::from_le_bytes(word);
        let payload = body.get(16..).unwrap_or(&[]);
        // Key lookup by the frame's *claimed* epoch: a frame under a
        // retired (grace-window) epoch authenticates against its old
        // key so it can be diagnosed as StaleEpoch by the table rather
        // than dying as an anonymous BadMac; an unknown epoch has no
        // key and is judged directly.
        let current = m.channels.epoch(src);
        let Some(key) = m.keys.get(&src).and_then(|e| e.get(&epoch)) else {
            let reason = if epoch != current && current != 0 {
                ViolationReason::StaleEpoch
            } else {
                ViolationReason::NoChannel
            };
            return Err(m.channels.reject(src, reason));
        };
        let mut tag32 = [0u8; 32];
        tag32.copy_from_slice(tag);
        let expected = Digest(tag32);
        if !HmacSha256::verify_parts(
            key,
            &[
                &src.to_le_bytes(),
                &epoch.to_le_bytes(),
                &seq.to_le_bytes(),
                payload,
            ],
            &expected,
        ) {
            return Err(m.channels.reject(src, ViolationReason::BadMac));
        }
        let seq = m.channels.accept_recv(src, seq, epoch)?;
        Ok(Delivery {
            from: src,
            seq,
            payload: payload.to_vec(),
        })
    }

    /// Enters machine `at`'s TEE on `core` (subsequent
    /// [`Self::tee_write`] / RDMA reads run as the TEE).
    pub fn enter_tee(&mut self, at: usize, core: usize) -> Result<(), FleetError> {
        let m = self.machines.get_mut(at).ok_or(FleetError::NoSuchMachine)?;
        let gate = m.gate;
        TycheClient::new(&mut m.monitor, core)
            .enter(gate)
            .map(|_| ())
            .map_err(FleetError::Monitor)
    }

    /// Returns from machine `at`'s TEE on `core`.
    pub fn exit_tee(&mut self, at: usize, core: usize) -> Result<(), FleetError> {
        let m = self.machines.get_mut(at).ok_or(FleetError::NoSuchMachine)?;
        TycheClient::new(&mut m.monitor, core)
            .ret()
            .map(|_| ())
            .map_err(FleetError::Monitor)
    }

    /// Writes `data` at `addr` as the domain currently running on
    /// machine `at`'s `core` (enter the TEE first).
    pub fn tee_write(
        &mut self,
        at: usize,
        core: usize,
        addr: u64,
        data: &[u8],
    ) -> Result<(), FleetError> {
        let m = self.machines.get_mut(at).ok_or(FleetError::NoSuchMachine)?;
        TycheClient::new(&mut m.monitor, core)
            .write(addr, data)
            .map_err(|_| FleetError::Monitor(Status::Denied))
    }

    /// Reads `out.len()` bytes at `addr` as the domain currently running
    /// on machine `at`'s `core`.
    pub fn tee_read(
        &mut self,
        at: usize,
        core: usize,
        addr: u64,
        out: &mut [u8],
    ) -> Result<(), FleetError> {
        let m = self.machines.get_mut(at).ok_or(FleetError::NoSuchMachine)?;
        TycheClient::new(&mut m.monitor, core)
            .read(addr, out)
            .map_err(|_| FleetError::Monitor(Status::Denied))
    }

    /// Establishes an attested RDMA session from `a`'s TEE into an MR
    /// on `b`'s TEE ([`RDMA_MR`]), over the already-attested channel
    /// (`a → b` must be open). Runs the full RDMA handshake: fresh
    /// nonces, machine quotes, signed TEE reports, verified both ways.
    pub fn rdma_connect(&mut self, a: usize, b: usize) -> Result<RdmaSession, FleetError> {
        if !self
            .machines
            .get(a)
            .is_some_and(|m| m.channels.is_open(b as u64))
        {
            return Err(FleetError::Refused(ViolationReason::NoChannel));
        }
        let (ma, mb) = self.pair_mut(a, b)?;
        let qn = ma.monitor.machine.tpm.fresh_nonce().map_err(FleetError::Tpm)?;
        let rn = ma.monitor.machine.tpm.fresh_nonce().map_err(FleetError::Tpm)?;
        let quote_b = mb.monitor.machine_quote(qn).map_err(FleetError::Tpm)?;
        let report_b = mb
            .monitor
            .attest_domain(mb.tee, rn)
            .map_err(|_| FleetError::Monitor(Status::Denied))?;
        let report_a = ma
            .monitor
            .attest_domain(ma.tee, rn)
            .map_err(|_| FleetError::Monitor(Status::Denied))?;
        let verifier_of_b = MachineRoots::of(&mb.monitor).verifier(MONITOR_VERSION);
        let conn = RdmaConnection::establish(
            &verifier_of_b,
            &quote_b,
            &qn,
            &report_b,
            &rn,
            &report_a,
            None,
        )
        .map_err(|e| match e {
            RdmaError::Attestation(v) => FleetError::Attestation(v),
            other => FleetError::Rdma(other),
        })?;
        // b's TEE registers the MR (entered so the NIC validates the
        // right requesting domain).
        let mut nic = RdmaNic::new();
        let gate_b = mb.gate;
        TycheClient::new(&mut mb.monitor, 0)
            .enter(gate_b)
            .map_err(FleetError::Monitor)?;
        let rkey = nic
            .register_mr(&mut mb.monitor, 0, RDMA_MR.0, RDMA_MR.1, true)
            .map_err(FleetError::Rdma)?;
        TycheClient::new(&mut mb.monitor, 0)
            .ret()
            .map_err(FleetError::Monitor)?;
        Ok(RdmaSession { conn, nic, rkey })
    }

    /// One attested RDMA write routed over the fleet transport: `a`'s
    /// TEE produces the encrypted+MACed RDMA frame (enter the TEE on
    /// `core` first), the frame rides the NIC channel `a → b`, and on
    /// delivery `b`'s RDMA NIC re-validates the MR and lands the bytes.
    #[allow(clippy::too_many_arguments)]
    pub fn rdma_write(
        &mut self,
        sess: &mut RdmaSession,
        a: usize,
        b: usize,
        core: usize,
        local_addr: u64,
        len: usize,
        remote_off: u64,
    ) -> Result<(), FleetError> {
        let rdma_frame = {
            let ma = self.machines.get_mut(a).ok_or(FleetError::NoSuchMachine)?;
            sess.conn
                .produce_frame(&mut ma.monitor, core, local_addr, len)
                .map_err(FleetError::Rdma)?
        };
        self.send(a, b, core, &rdma_frame)?;
        let delivery = loop {
            match self.deliver(b, core)? {
                Some(d) if d.from == a as u64 => break d,
                Some(_) => continue,
                None => return Err(FleetError::Refused(ViolationReason::NoChannel)),
            }
        };
        let mb = self.machines.get_mut(b).ok_or(FleetError::NoSuchMachine)?;
        sess.conn
            .deliver_frame(&delivery.payload, &mut mb.monitor, &sess.nic, sess.rkey, remote_off)
            .map_err(FleetError::Rdma)
    }
}

/// Spawns one sealed TEE owning [`TEE_MEM`] on a freshly booted
/// monitor, sharing core 0 so it can be entered, and returns the
/// domain and its gate. Mirrors the bench fixture used everywhere.
fn spawn_tee(m: &mut Monitor) -> Result<(DomainId, CapId), FleetError> {
    let mut client = TycheClient::new(m, 0);
    let (d, gate) = client.create_domain().map_err(FleetError::Monitor)?;
    let cap = client
        .carve(TEE_MEM.0, TEE_MEM.1)
        .map_err(FleetError::Monitor)?;
    client
        .grant(cap, d, Rights::RW, RevocationPolicy::OBFUSCATE)
        .map_err(FleetError::Monitor)?;
    let me = client.whoami();
    let core0 = client
        .monitor
        .engine
        .caps_of(me)
        .iter()
        .find(|c| c.active && matches!(c.resource, Resource::CpuCore(0)))
        .map(|c| c.id)
        .ok_or(FleetError::Monitor(Status::Denied))?;
    client
        .share(core0, d, None, Rights::USE, RevocationPolicy::NONE)
        .map_err(FleetError::Monitor)?;
    client.set_entry(d, TEE_MEM.0).map_err(FleetError::Monitor)?;
    client
        .seal(d, SealPolicy::strict())
        .map_err(FleetError::Monitor)?;
    Ok((d, gate))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two() -> Fleet {
        let mut f = Fleet::new(&FleetConfig::default()).unwrap();
        assert_eq!(f.establish_all(), 1);
        f
    }

    #[test]
    fn machines_have_independent_roots_of_trust() {
        let mut f = Fleet::new(&FleetConfig {
            machines: 3,
            ..FleetConfig::default()
        })
        .unwrap();
        // Distinct TPM seeds → distinct attestation keys; identical
        // seeds would make "mutual" attestation a self-signature. A
        // quote from machine 0 must not verify under machine 1's key.
        let nonce = [7u8; 32];
        let q0 = f
            .machine_mut(0)
            .unwrap()
            .monitor
            .machine_quote(nonce)
            .unwrap();
        let k0 = f.machine(0).unwrap().monitor.machine.tpm.attestation_key();
        let k1 = f.machine(1).unwrap().monitor.machine.tpm.attestation_key();
        assert!(q0.verify(&k0, &nonce));
        assert!(!q0.verify(&k1, &nonce));
    }

    #[test]
    fn attested_channel_round_trip() {
        let mut f = two();
        let seq = f.send(0, 1, 0, b"hello fleet").unwrap();
        assert_eq!(seq, 0);
        let d = f.deliver(1, 0).unwrap().unwrap();
        assert_eq!(d.from, 0);
        assert_eq!(d.payload, b"hello fleet");
        assert_eq!(f.machine(1).unwrap().stats().accepted, 1);
    }

    #[test]
    fn byzantine_machine_never_gets_a_channel() {
        let mut f = Fleet::new(&FleetConfig {
            machines: 3,
            byzantine: Some(2),
            ..FleetConfig::default()
        })
        .unwrap();
        // Only the honest pair (0,1) comes up.
        assert_eq!(f.establish_all(), 1);
        assert!(f.machine(0).unwrap().channels.is_open(1));
        assert!(!f.machine(0).unwrap().channels.is_open(2));
        assert!(f.machine(0).unwrap().channels.is_quarantined(2));
        assert!(f.machine(1).unwrap().channels.is_quarantined(2));
        // And the honest pair still works.
        f.send(0, 1, 0, b"containment").unwrap();
        assert!(f.deliver(1, 0).unwrap().is_some());
    }

    #[test]
    fn forged_quote_is_rejected() {
        let mut f = Fleet::new(&FleetConfig::default()).unwrap();
        // b tampers its quote to claim an arbitrary PCR 17: the TPM
        // signature no longer verifies.
        let err = f
            .attest_pair_with(0, 1, |q| {
                if let Some(v) = q.pcr_values.first_mut() {
                    *v = tyche_crypto::hash(b"forged");
                }
            })
            .unwrap_err();
        assert!(matches!(
            err,
            FleetError::Attestation(VerifyError::BadQuote)
        ));
        assert!(f.machine(0).unwrap().channels.is_quarantined(1));
        // The quarantine is sticky: even an honest retry is refused.
        assert!(f.attest_pair(0, 1).is_err());
    }

    #[test]
    fn rekey_bumps_epoch_and_old_frames_go_stale() {
        let mut f = two();
        assert_eq!(f.machine(0).unwrap().channels.epoch(1), 1);
        f.attest_pair(0, 1).unwrap();
        assert_eq!(f.machine(0).unwrap().channels.epoch(1), 2);
        f.send(0, 1, 0, b"fresh").unwrap();
        let d = f.deliver(1, 0).unwrap().unwrap();
        assert_eq!(d.payload, b"fresh");
    }

    #[test]
    fn rdma_over_the_fleet_transport() {
        let mut f = two();
        let mut sess = f.rdma_connect(0, 1).unwrap();
        f.enter_tee(0, 0).unwrap();
        f.tee_write(0, 0, TEE_MEM.0 + 0x100, b"fleet rdma secret").unwrap();
        f.rdma_write(&mut sess, 0, 1, 0, TEE_MEM.0 + 0x100, 17, 0)
            .unwrap();
        f.exit_tee(0, 0).unwrap();
        f.enter_tee(1, 0).unwrap();
        let mut got = [0u8; 17];
        f.tee_read(1, 0, RDMA_MR.0, &mut got).unwrap();
        assert_eq!(&got, b"fleet rdma secret");
        f.exit_tee(1, 0).unwrap();
    }

    #[test]
    fn fleet_construction_is_deterministic() {
        let build = |seed| {
            let mut f = Fleet::new(&FleetConfig {
                machines: 3,
                seed,
                ..FleetConfig::default()
            })
            .unwrap();
            f.establish_all();
            f.send(0, 1, 0, b"det").unwrap();
            f.send(1, 2, 0, b"det2").unwrap();
            let d1 = f.deliver(1, 0).unwrap().unwrap();
            let d2 = f.deliver(2, 0).unwrap().unwrap();
            (d1, d2)
        };
        assert_eq!(build(7), build(7));
    }
}
