//! Injected hardware faults through the monitor's runtime paths: every
//! fault must resolve to a checked `Status` or the documented quarantine
//! state — never a panic — and the engine auditor must stay clean
//! throughout. These pin the failure modes the adversarial fuzzer
//! (`repro fuzz`) explores at scale, each with a fixed, replayable plan.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use tyche_core::audit;
use tyche_core::metrics::Counter;
use tyche_core::prelude::*;
use tyche_hw::faults::{FaultPlan, FaultSite};
use tyche_monitor::abi::MonitorCall;
use tyche_monitor::monitor::CallResult;
use tyche_monitor::{boot_x86, BootConfig, Monitor, Status};

fn x86() -> Monitor {
    boot_x86(BootConfig::default())
}

/// Creates a child with one RWX page granted at `base` (zero-on-revoke)
/// and returns (child, grant cap held by the child).
fn child_with_page(m: &mut Monitor, base: u64) -> (DomainId, CapId) {
    let (child, _tcap) = match m.call(0, MonitorCall::CreateDomain).unwrap() {
        CallResult::NewDomain { domain, transition } => (domain, transition),
        other => panic!("unexpected {other:?}"),
    };
    let os = m.engine.root().unwrap();
    let ram = m
        .engine
        .caps_of(os)
        .iter()
        .find(|c| c.active && c.is_memory())
        .map(|c| c.id)
        .unwrap();
    let (_lo, hi) = match m.call(0, MonitorCall::Split { cap: ram, at: base }).unwrap() {
        CallResult::Caps(a, b) => (a, b),
        other => panic!("unexpected {other:?}"),
    };
    let (page, _rest) = match m
        .call(
            0,
            MonitorCall::Split {
                cap: hi,
                at: base + 0x1000,
            },
        )
        .unwrap()
    {
        CallResult::Caps(a, b) => (a, b),
        other => panic!("unexpected {other:?}"),
    };
    let granted = match m
        .call(
            0,
            MonitorCall::Grant {
                cap: page,
                target: child,
                rights: Rights::RWX,
                policy: RevocationPolicy::ZERO,
            },
        )
        .unwrap()
    {
        CallResult::Cap(c) => c,
        other => panic!("unexpected {other:?}"),
    };
    (child, granted)
}

#[test]
fn record_content_on_bad_range_is_refused_not_panicked() {
    let mut m = x86();
    let (child, _) = match m.call(0, MonitorCall::CreateDomain).unwrap() {
        CallResult::NewDomain { domain, transition } => (domain, transition),
        other => panic!("unexpected {other:?}"),
    };
    // A range far beyond installed RAM used to hit the infallible
    // `measure_range` and abort the monitor.
    let res = m.call(
        0,
        MonitorCall::RecordContent {
            domain: child,
            start: u64::MAX - 4095,
            end: u64::MAX,
        },
    );
    assert_eq!(res.unwrap_err(), Status::InvalidArg);
    assert!(audit::audit(&m.engine).is_empty());
}

#[test]
fn record_content_under_injected_read_fault_degrades_checked() {
    let mut m = x86();
    let (child, _) = match m.call(0, MonitorCall::CreateDomain).unwrap() {
        CallResult::NewDomain { domain, transition } => (domain, transition),
        other => panic!("unexpected {other:?}"),
    };
    m.machine.faults.arm(FaultPlan::once(FaultSite::MemRead));
    let res = m.call(
        0,
        MonitorCall::RecordContent {
            domain: child,
            start: 0x10_0000,
            end: 0x10_1000,
        },
    );
    assert_eq!(res.unwrap_err(), Status::BackendFailure);
    assert_eq!(m.machine.faults.fired(), 1);
    // With the fault spent, the same call goes through.
    assert!(m
        .call(
            0,
            MonitorCall::RecordContent {
                domain: child,
                start: 0x10_0000,
                end: 0x10_1000,
            },
        )
        .is_ok());
    assert!(audit::audit(&m.engine).is_empty());
}

#[test]
fn transient_write_fault_during_revoke_heals_without_quarantine() {
    let mut m = x86();
    let (_child, granted) = child_with_page(&mut m, 0x10_0000);
    // One write fails mid-apply (an EPT table write); the compensation
    // path must resync the implicated domain once the fault is spent,
    // so hardware rejoins the engine with nobody quarantined.
    m.machine.faults.arm(FaultPlan::once(FaultSite::MemWrite));
    let res = m.call(0, MonitorCall::Revoke { cap: granted });
    assert_eq!(res.unwrap_err(), Status::BackendFailure);
    assert_eq!(m.stats().quarantines, 0, "transient fault must self-heal");
    assert!(audit::audit(&m.engine).is_empty());
    m.machine.faults.clear();
    let hw = m.audit_hardware();
    assert!(hw.is_empty(), "hardware must match the engine: {hw:?}");
}

#[test]
fn persistent_write_faults_quarantine_instead_of_diverging() {
    let mut m = x86();
    let (child, granted) = child_with_page(&mut m, 0x10_0000);
    // Every write fails: the resyncs fail, the heal fails, and every
    // implicated domain must end up quarantined — the documented
    // degraded state — rather than silently keeping stale mappings.
    m.machine
        .faults
        .arm(FaultPlan::after(FaultSite::MemWrite, 0, 1 << 32));
    let res = m.call(0, MonitorCall::Revoke { cap: granted });
    assert_eq!(res.unwrap_err(), Status::BackendFailure);
    assert!(m.stats().quarantines >= 1, "divergence must be quarantined");
    assert!(
        m.engine.domain(child).unwrap().is_quarantined(),
        "the domain whose unmap was lost is quarantined"
    );
    assert!(audit::audit(&m.engine).is_empty());
    m.machine.faults.clear();
    // Quarantined domains are the *documented* divergence: the hardware
    // audit skips them, and everything else must still match.
    let hw = m.audit_hardware();
    assert!(hw.is_empty(), "non-quarantined state must match: {hw:?}");
    // Quarantined: still killable and enumerable...
    assert!(m.engine.enumerate(child).is_ok());
    assert!(m.call(0, MonitorCall::Kill { domain: child }).is_ok());
}

#[test]
fn quarantined_domain_is_not_enterable() {
    let mut m = x86();
    let (child, _granted) = child_with_page(&mut m, 0x10_0000);
    let tcap = match m
        .call(
            0,
            MonitorCall::MakeTransition {
                target: child,
                policy: RevocationPolicy::NONE,
            },
        )
        .unwrap()
    {
        CallResult::Cap(c) => c,
        other => panic!("unexpected {other:?}"),
    };
    m.engine.quarantine(child).unwrap();
    let _ = m.sync_effects();
    let res = m.call(0, MonitorCall::Enter { cap: tcap });
    assert_eq!(res.unwrap_err(), Status::Denied);
    assert!(audit::audit(&m.engine).is_empty());
}

#[test]
fn injected_quote_and_entropy_faults_are_checked_errors() {
    let mut m = x86();
    m.machine.faults.arm(FaultPlan::once(FaultSite::TpmQuote));
    assert!(m.machine_quote([3u8; 32]).is_err());
    assert!(m.machine_quote([3u8; 32]).is_ok(), "fault spent");
    m.machine
        .faults
        .arm(FaultPlan::once(FaultSite::DrbgEntropy));
    assert!(m.machine.tpm.fresh_nonce().is_err());
    assert!(m.machine.tpm.fresh_nonce().is_ok(), "fault spent");
}

#[test]
fn injected_ept_walk_fault_fails_domain_access_not_monitor() {
    let mut m = x86();
    m.machine.faults.arm(FaultPlan::once(FaultSite::EptWalk));
    let mut buf = [0u8; 8];
    assert!(m.dom_read(0, 0x10_0000, &mut buf).is_err());
    assert!(m.dom_read(0, 0x10_0000, &mut buf).is_ok(), "fault spent");
    assert!(audit::audit(&m.engine).is_empty());
    let hw = m.audit_hardware();
    assert!(hw.is_empty(), "{hw:?}");
}

#[test]
fn dropped_and_duplicated_ipis_are_counted_not_fatal() {
    let mut m = x86();
    m.machine.irq.route(32, 7);
    m.machine.faults.arm(FaultPlan::once(FaultSite::IpiDrop));
    m.machine.faults.arm(FaultPlan::once(FaultSite::IpiDup));
    let dropped = m.machine.irq.raise(32);
    assert!(dropped.is_none(), "dropped IPI delivers nowhere");
    let duplicated = m.machine.irq.raise(32);
    assert_eq!(duplicated, Some(7));
    assert_eq!(m.machine.metrics.get(Counter::IrqInjectedDrops), 1);
    assert_eq!(m.machine.metrics.get(Counter::IrqInjectedDups), 1);
    assert_eq!(m.machine.irq.drain(7), vec![32, 32], "delivered twice");
    // Injectors spent: delivery is back to normal.
    assert_eq!(m.machine.irq.raise(32), Some(7));
    assert_eq!(m.machine.irq.drain(7), vec![32]);
}
