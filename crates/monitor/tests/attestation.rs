//! The two-tier attestation chain (§3.4), end to end, including the full
//! tamper matrix: every forgery a remote verifier must catch.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use tyche_core::prelude::*;
use tyche_monitor::abi::MonitorCall;
use tyche_monitor::attest::{SignedReport, Verifier, VerifyError};
use tyche_monitor::boot::{expected_monitor_pcr, MONITOR_VERSION};
use tyche_monitor::monitor::CallResult;
use tyche_monitor::{boot_x86, BootConfig, Monitor};

fn setup_with_enclave() -> (Monitor, DomainId, tyche_crypto::Digest) {
    let mut m = boot_x86(BootConfig::default());
    let os = m.engine.root().unwrap();
    let (child, _t) = match m.call(0, MonitorCall::CreateDomain).unwrap() {
        CallResult::NewDomain { domain, transition } => (domain, transition),
        other => panic!("unexpected {other:?}"),
    };
    // Load "code" into the page that will belong to the enclave and record
    // its content measurement before sealing.
    m.dom_write(0, 0x10_0000, b"enclave code v1").unwrap();
    let ram = m
        .engine
        .caps_of(os)
        .iter()
        .find(|c| c.active && c.is_memory())
        .unwrap()
        .id;
    let CallResult::Caps(_lo, hi) = m
        .call(
            0,
            MonitorCall::Split {
                cap: ram,
                at: 0x10_0000,
            },
        )
        .unwrap()
    else {
        panic!()
    };
    let CallResult::Caps(page, _rest) = m
        .call(
            0,
            MonitorCall::Split {
                cap: hi,
                at: 0x10_1000,
            },
        )
        .unwrap()
    else {
        panic!()
    };
    m.call(
        0,
        MonitorCall::RecordContent {
            domain: child,
            start: 0x10_0000,
            end: 0x10_1000,
        },
    )
    .unwrap();
    m.call(
        0,
        MonitorCall::Grant {
            cap: page,
            target: child,
            rights: Rights::RWX,
            policy: RevocationPolicy::ZERO,
        },
    )
    .unwrap();
    m.call(
        0,
        MonitorCall::SetEntry {
            domain: child,
            entry: 0x10_0000,
        },
    )
    .unwrap();
    let CallResult::Measurement(measurement) = m
        .call(
            0,
            MonitorCall::Seal {
                domain: child,
                allow_outward: false,
                allow_children: false,
            },
        )
        .unwrap()
    else {
        panic!()
    };
    (m, child, measurement)
}

fn verifier_for(m: &Monitor) -> Verifier {
    Verifier {
        tpm_key: m.machine.tpm.attestation_key(),
        expected_monitor_pcr: expected_monitor_pcr(MONITOR_VERSION),
        monitor_key: m.report_key(),
    }
}

#[test]
fn full_chain_verifies() {
    let (mut m, child, measurement) = setup_with_enclave();
    let verifier = verifier_for(&m);
    let quote_nonce = [7u8; 32];
    let report_nonce = [9u8; 32];
    let quote = m.machine_quote(quote_nonce).unwrap();
    let signed = m.attest_domain(child, report_nonce).unwrap();

    let attested = verifier
        .verify(
            &quote,
            &quote_nonce,
            &signed,
            &report_nonce,
            Some(measurement),
        )
        .expect("chain verifies");
    assert_eq!(attested.domain, child);
    assert!(
        attested.sharing_is_exactly(&[]),
        "enclave memory fully exclusive"
    );
    // The content measurement of the code page is in the report.
    assert_eq!(attested.report.content_measurements.len(), 1);
    assert_eq!(
        attested.report.content_measurements[0].2,
        tyche_crypto::hash(
            {
                let mut page = b"enclave code v1".to_vec();
                page.resize(0x1000, 0);
                &page.clone()
            }
            .as_slice()
        )
    );
}

#[test]
fn wrong_monitor_detected() {
    let (mut m, child, _) = setup_with_enclave();
    let mut verifier = verifier_for(&m);
    // The verifier expects a different monitor version.
    verifier.expected_monitor_pcr = expected_monitor_pcr("tyche-repro-monitor v9.9.9");
    let quote = m.machine_quote([1u8; 32]).unwrap();
    let signed = m.attest_domain(child, [2u8; 32]).unwrap();
    assert!(matches!(
        verifier.verify(&quote, &[1u8; 32], &signed, &[2u8; 32], None),
        Err(VerifyError::WrongMonitor { .. })
    ));
}

#[test]
fn replayed_quote_detected() {
    let (mut m, child, _) = setup_with_enclave();
    let verifier = verifier_for(&m);
    let old_quote = m.machine_quote([1u8; 32]).unwrap();
    let signed = m.attest_domain(child, [2u8; 32]).unwrap();
    // Verifier asked with a fresh nonce but got a stale quote.
    assert!(matches!(
        verifier.verify(&old_quote, &[42u8; 32], &signed, &[2u8; 32], None),
        Err(VerifyError::BadQuote)
    ));
}

#[test]
fn replayed_report_detected() {
    let (mut m, child, _) = setup_with_enclave();
    let verifier = verifier_for(&m);
    let quote = m.machine_quote([1u8; 32]).unwrap();
    let stale = m.attest_domain(child, [2u8; 32]).unwrap();
    assert!(matches!(
        verifier.verify(&quote, &[1u8; 32], &stale, &[3u8; 32], None),
        Err(VerifyError::BadReportSignature)
    ));
}

#[test]
fn tampered_report_detected() {
    let (mut m, child, _) = setup_with_enclave();
    let verifier = verifier_for(&m);
    let quote = m.machine_quote([1u8; 32]).unwrap();
    let mut signed = m.attest_domain(child, [2u8; 32]).unwrap();
    // The adversary edits the refcounts to hide a shared mapping.
    for r in &mut signed.report.resources {
        r.refcount = tyche_core::refcount::RefCount { max: 1, min: 1 };
    }
    // (Contents actually were exclusive; flip the measurement instead to
    // guarantee a difference.)
    signed.report.measurement = tyche_crypto::hash(b"innocent-looking");
    assert!(matches!(
        verifier.verify(&quote, &[1u8; 32], &signed, &[2u8; 32], None),
        Err(VerifyError::BadReportSignature)
    ));
}

#[test]
fn forged_signature_detected() {
    let (mut m, child, _) = setup_with_enclave();
    let verifier = verifier_for(&m);
    let quote = m.machine_quote([1u8; 32]).unwrap();
    let mut signed = m.attest_domain(child, [2u8; 32]).unwrap();
    // A monitor key the verifier does not trust.
    let rogue = tyche_crypto::sign::SigningKey::derive(b"rogue", "monitor-report-key");
    signed.signature = rogue.sign(&SignedReport::signed_bytes(&signed.report, &signed.nonce));
    assert!(matches!(
        verifier.verify(&quote, &[1u8; 32], &signed, &[2u8; 32], None),
        Err(VerifyError::BadReportSignature)
    ));
}

#[test]
fn wrong_domain_measurement_detected() {
    let (mut m, child, _) = setup_with_enclave();
    let verifier = verifier_for(&m);
    let quote = m.machine_quote([1u8; 32]).unwrap();
    let signed = m.attest_domain(child, [2u8; 32]).unwrap();
    let wrong = tyche_crypto::hash(b"some other enclave");
    assert!(matches!(
        verifier.verify(&quote, &[1u8; 32], &signed, &[2u8; 32], Some(wrong)),
        Err(VerifyError::WrongDomainMeasurement { .. })
    ));
}

#[test]
fn unsealed_domain_cannot_be_attested() {
    let mut m = boot_x86(BootConfig::default());
    let CallResult::NewDomain { domain, .. } = m.call(0, MonitorCall::CreateDomain).unwrap() else {
        panic!()
    };
    assert!(m.attest_domain(domain, [0u8; 32]).is_err());
}

#[test]
fn sharing_becomes_visible_in_reattestation() {
    // Figure 2's core property: the customer can see, from refcounts,
    // whether enclave memory is reachable by anyone else.
    let (mut m, child, _) = setup_with_enclave();
    let report1 = m.attest_domain(child, [1u8; 32]).unwrap();
    assert!(report1.report.check_sharing(&[]));

    // The *OS* later maps a window overlapping... it cannot: the page was
    // granted away. Instead, model a nestable enclave that shares onward.
    // Build a second enclave with a nestable seal and make it share.
    let os = m.engine.root().unwrap();
    let (e2, _t) = m.engine.create_domain(os).unwrap();
    let ram = m
        .engine
        .caps_of(os)
        .iter()
        .find(|c| {
            c.active
                && c.resource
                    .as_mem()
                    .map(|r| r.contains(&MemRegion::new(0x20_0000, 0x20_1000)))
                    .unwrap_or(false)
        })
        .unwrap()
        .id;
    let (_lo, hi) = m.engine.split(os, ram, 0x20_0000).unwrap();
    let (page2, _rest) = m.engine.split(os, hi, 0x20_1000).unwrap();
    let g = m
        .engine
        .grant(os, page2, e2, None, Rights::RW, RevocationPolicy::NONE)
        .unwrap();
    m.engine.set_entry(os, e2, 0).unwrap();
    m.engine.seal(os, e2, SealPolicy::nestable()).unwrap();
    let r_before = m.attest_domain(e2, [1u8; 32]).unwrap();
    assert!(
        r_before.report.check_sharing(&[]),
        "exclusive before sharing"
    );

    let (nested, _t2) = m.engine.create_domain(e2).unwrap();
    m.engine
        .share(e2, g, nested, None, Rights::RO, RevocationPolicy::NONE)
        .unwrap();
    let r_after = m.attest_domain(e2, [2u8; 32]).unwrap();
    assert!(
        !r_after.report.check_sharing(&[]),
        "re-attestation exposes the share"
    );
}
