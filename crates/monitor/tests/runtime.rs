//! End-to-end monitor runtime tests: the full VMCALL path, mediated and
//! fast transitions, hardware-enforced isolation, and clean-up policies.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use tyche_core::prelude::*;
use tyche_hw::machine::{Machine, MachineConfig};
use tyche_monitor::abi::MonitorCall;
use tyche_monitor::backend::riscv::RiscvBackend;
use tyche_monitor::backend::x86::X86Backend;
use tyche_monitor::monitor::CallResult;
use tyche_monitor::{boot_riscv, boot_x86, BootConfig, Monitor, Status};

fn x86() -> Monitor {
    boot_x86(BootConfig::default())
}

/// Drives the full create→load→seal flow for a child domain with one
/// exclusive RWX page at `base` and core 0 shared; returns (domain,
/// transition cap).
fn spawn_sealed(m: &mut Monitor, base: u64) -> (DomainId, CapId) {
    let core = 0usize;
    let (child, tcap) = match m.call(core, MonitorCall::CreateDomain).unwrap() {
        CallResult::NewDomain { domain, transition } => (domain, transition),
        other => panic!("unexpected {other:?}"),
    };
    let os = m.engine.root().unwrap();
    let ram = m
        .engine
        .caps_of(os)
        .iter()
        .find(|c| {
            c.active
                && c.resource
                    .as_mem()
                    .map(|r| r.contains(&MemRegion::new(base, base + 0x1000)))
                    .unwrap_or(false)
        })
        .map(|c| c.id)
        .unwrap();
    // Carve [base, base+0x1000).
    let region = m.engine.cap(ram).unwrap().resource.as_mem().unwrap();
    let page = if region.start == base {
        let (lo, _hi) = match m
            .call(
                core,
                MonitorCall::Split {
                    cap: ram,
                    at: base + 0x1000,
                },
            )
            .unwrap()
        {
            CallResult::Caps(a, b) => (a, b),
            other => panic!("unexpected {other:?}"),
        };
        lo
    } else {
        let (_lo, hi) = match m
            .call(core, MonitorCall::Split { cap: ram, at: base })
            .unwrap()
        {
            CallResult::Caps(a, b) => (a, b),
            other => panic!("unexpected {other:?}"),
        };
        let (mid, _rest) = match m
            .call(
                core,
                MonitorCall::Split {
                    cap: hi,
                    at: base + 0x1000,
                },
            )
            .unwrap()
        {
            CallResult::Caps(a, b) => (a, b),
            other => panic!("unexpected {other:?}"),
        };
        mid
    };
    m.call(
        core,
        MonitorCall::Grant {
            cap: page,
            target: child,
            rights: Rights::RWX,
            policy: RevocationPolicy::ZERO,
        },
    )
    .unwrap();
    // Share core 0.
    let core_cap = m
        .engine
        .caps_of(os)
        .iter()
        .find(|c| c.active && matches!(c.resource, Resource::CpuCore(0)))
        .map(|c| c.id)
        .unwrap();
    m.call(
        core,
        MonitorCall::Share {
            cap: core_cap,
            target: child,
            sub: None,
            rights: Rights::USE,
            policy: RevocationPolicy::NONE,
        },
    )
    .unwrap();
    m.call(
        core,
        MonitorCall::SetEntry {
            domain: child,
            entry: base,
        },
    )
    .unwrap();
    m.call(
        core,
        MonitorCall::Seal {
            domain: child,
            allow_outward: false,
            allow_children: false,
        },
    )
    .unwrap();
    (child, tcap)
}

#[test]
fn os_reads_and_writes_through_ept() {
    let mut m = x86();
    m.dom_write(0, 0x5000, b"hello tyche").unwrap();
    let mut buf = [0u8; 11];
    m.dom_read(0, 0x5000, &mut buf).unwrap();
    assert_eq!(&buf, b"hello tyche");
}

#[test]
fn os_cannot_touch_monitor_memory() {
    let mut m = x86();
    let monitor_base = m.machine.domain_ram.end.as_u64();
    assert!(
        m.dom_write(0, monitor_base, &[0xff]).is_err(),
        "monitor region unmapped for OS"
    );
    assert!(m.dom_read(0, monitor_base + 0x100, &mut [0u8; 1]).is_err());
}

#[test]
fn full_enclave_lifecycle_with_isolation() {
    let mut m = x86();
    let base = 0x10_0000u64;
    m.dom_write(0, base, b"enclave-secret").unwrap();
    let (child, tcap) = spawn_sealed(&mut m, base);

    // After the grant the OS can no longer read the page.
    assert!(
        m.dom_read(0, base, &mut [0u8; 4]).is_err(),
        "OS lost the granted page"
    );

    // Enter the enclave; it can read its memory.
    let entered = m.call(0, MonitorCall::Enter { cap: tcap }).unwrap();
    assert!(matches!(entered, CallResult::Entered { target, .. } if target == child));
    assert_eq!(m.current_domain(0), child);
    let mut buf = [0u8; 14];
    m.dom_read(0, base, &mut buf).unwrap();
    assert_eq!(&buf, b"enclave-secret");
    // ...but not the OS's memory.
    assert!(m.dom_read(0, 0x5000, &mut [0u8; 1]).is_err());

    // Return to the OS.
    let ret = m.call(0, MonitorCall::Return).unwrap();
    assert!(matches!(ret, CallResult::Returned { to } if to == m.engine.root().unwrap()));
    assert_eq!(m.current_domain(0), m.engine.root().unwrap());
}

#[test]
fn revocation_zeroes_enclave_memory() {
    let mut m = x86();
    let base = 0x20_0000u64;
    m.dom_write(0, base, b"key-material").unwrap();
    let (child, tcap) = spawn_sealed(&mut m, base);
    let granted = m
        .engine
        .caps_of(child)
        .iter()
        .find(|c| c.is_memory())
        .map(|c| c.id)
        .unwrap();
    let _ = tcap;
    m.call(0, MonitorCall::Revoke { cap: granted }).unwrap();
    // The OS regained the page — and it is zeroed.
    let mut buf = [0u8; 12];
    m.dom_read(0, base, &mut buf).unwrap();
    assert_eq!(
        &buf, &[0u8; 12],
        "ZERO policy scrubbed the page before return"
    );
}

#[test]
fn enter_requires_transition_cap_and_core() {
    let mut m = x86();
    let (child, tcap) = spawn_sealed(&mut m, 0x30_0000);
    // Enter on a core the child does not own (core 1 was never shared).
    assert_eq!(
        m.call(1, MonitorCall::Enter { cap: tcap }),
        Err(Status::Denied)
    );
    // A bogus capability id.
    assert_eq!(
        m.call(0, MonitorCall::Enter { cap: CapId(9999) }),
        Err(Status::NotFound)
    );
    let _ = child;
}

#[test]
fn return_without_call_denied() {
    let mut m = x86();
    assert_eq!(m.call(0, MonitorCall::Return), Err(Status::Denied));
}

#[test]
fn fast_path_is_cheaper_than_mediated() {
    let mut m = x86();
    let (_child, tcap) = spawn_sealed(&mut m, 0x40_0000);

    // Mediated round trip cost.
    let before = m.machine.cycles.now();
    m.call(0, MonitorCall::Enter { cap: tcap }).unwrap();
    m.call(0, MonitorCall::Return).unwrap();
    let mediated = m.machine.cycles.since(before);

    // Fast round trip cost.
    let before = m.machine.cycles.now();
    m.enter_fast(0, tcap).unwrap();
    m.ret_fast(0).unwrap();
    let fast = m.machine.cycles.since(before);

    assert!(
        fast * 5 < mediated,
        "VMFUNC path ({fast} cycles) should be >5x cheaper than mediated ({mediated} cycles)"
    );
    assert_eq!(m.stats().transitions_fast, 2);
    // The paper's number: ~100 cycles per one-way fast transition.
    assert!(
        (50..500).contains(&(fast / 2)),
        "one-way fast transition = {} cycles",
        fast / 2
    );
}

#[test]
fn fast_path_with_flush_policy_falls_back_to_mediated() {
    let mut m = x86();
    let (child, _tcap) = spawn_sealed(&mut m, 0x50_0000);
    let os = m.engine.root().unwrap();
    let flushing = m
        .engine
        .make_transition(os, child, RevocationPolicy::OBFUSCATE)
        .unwrap();
    // A flush policy needs the monitor in the loop: the fast path falls
    // back to the mediated path (the doc comment's contract) instead of
    // refusing outright. The entry succeeds, is counted as mediated, and
    // pays at least the vm-exit trap cost.
    let calls = m.stats().calls;
    let before = m.machine.cycles.now();
    assert_eq!(m.enter_fast(0, flushing), Ok(child));
    assert!(m.machine.cycles.since(before) >= m.machine.cost.vmexit_roundtrip);
    assert_eq!(m.stats().transitions_fast, 0);
    assert_eq!(m.stats().transitions_mediated, 1);
    assert_eq!(m.stats().calls, calls + 1, "fallback is a monitor call");
    // The frame is a normal mediated frame: Return works and re-applies
    // the flush policy on the way back.
    assert_eq!(
        m.call(0, MonitorCall::Return),
        Ok(CallResult::Returned { to: os })
    );
    assert_eq!(m.stats().transitions_mediated, 2);
}

#[test]
fn fast_path_cache_invalidated_by_revoke() {
    let mut m = x86();
    let (child, tcap) = spawn_sealed(&mut m, 0x70_0000);
    // Two round trips: the second enter rides the warm validation cache.
    assert_eq!(m.enter_fast(0, tcap), Ok(child));
    m.ret_fast(0).unwrap();
    assert_eq!(m.enter_fast(0, tcap), Ok(child));
    m.ret_fast(0).unwrap();
    // Revoke the transition capability (engine generation bumps): the
    // cached validation must not let the dead capability enter.
    let os = m.engine.root().unwrap();
    m.engine.revoke(os, tcap).unwrap();
    m.sync_effects().unwrap();
    assert_eq!(m.enter_fast(0, tcap), Err(Status::NotFound));
}

#[test]
fn fast_path_cache_invalidated_by_core_revoke() {
    let mut m = x86();
    let (child, tcap) = spawn_sealed(&mut m, 0x72_0000);
    assert_eq!(m.enter_fast(0, tcap), Ok(child));
    m.ret_fast(0).unwrap();
    // Revoke the child's core share: it can no longer be scheduled, even
    // though the transition capability itself is untouched.
    let os = m.engine.root().unwrap();
    let core_cap = m
        .engine
        .caps_of(child)
        .iter()
        .find(|c| matches!(c.resource, Resource::CpuCore(0)))
        .map(|c| c.id)
        .unwrap();
    m.engine.revoke(os, core_cap).unwrap();
    m.sync_effects().unwrap();
    assert_eq!(m.enter_fast(0, tcap), Err(Status::Denied));
}

#[test]
fn fast_path_cache_invalidated_by_kill() {
    let mut m = x86();
    let (child, tcap) = spawn_sealed(&mut m, 0x74_0000);
    assert_eq!(m.enter_fast(0, tcap), Ok(child));
    m.ret_fast(0).unwrap();
    m.call(0, MonitorCall::Kill { domain: child }).unwrap();
    assert_eq!(m.enter_fast(0, tcap), Err(Status::NotFound));
}

#[test]
fn fast_path_cached_matches_uncached() {
    // The cached and revalidating fast paths agree on results and end
    // state; only the validation work differs.
    let mut m = x86();
    let (child, tcap) = spawn_sealed(&mut m, 0x76_0000);
    assert_eq!(m.enter_fast(0, tcap), Ok(child));
    m.ret_fast(0).unwrap();
    assert_eq!(m.enter_fast_uncached(0, tcap), Ok(child));
    m.ret_fast(0).unwrap();
    assert_eq!(m.enter_fast(0, tcap), Ok(child));
    m.ret_fast(0).unwrap();
    assert_eq!(m.stats().transitions_fast, 6);
    assert_eq!(m.stats().transitions_mediated, 0);
}

#[test]
fn unsealed_domain_cannot_run() {
    let mut m = x86();
    let (child, tcap) = match m.call(0, MonitorCall::CreateDomain).unwrap() {
        CallResult::NewDomain { domain, transition } => (domain, transition),
        other => panic!("unexpected {other:?}"),
    };
    let _ = child;
    assert_eq!(
        m.call(0, MonitorCall::Enter { cap: tcap }),
        Err(Status::Denied)
    );
}

#[test]
fn actor_is_implicit_current_domain() {
    // A domain cannot act with another domain's authority: the enclave
    // tries to revoke the OS's capabilities and fails, because the actor
    // is derived from the running context.
    let mut m = x86();
    let (child, tcap) = spawn_sealed(&mut m, 0x60_0000);
    let os = m.engine.root().unwrap();
    let os_ram = m
        .engine
        .caps_of(os)
        .iter()
        .find(|c| c.active && c.is_memory())
        .map(|c| c.id)
        .unwrap();
    m.call(0, MonitorCall::Enter { cap: tcap }).unwrap();
    assert_eq!(m.current_domain(0), child);
    // Enclave attempts to revoke an OS capability subtree.
    assert!(matches!(
        m.call(0, MonitorCall::Revoke { cap: os_ram }),
        Err(Status::Denied) | Err(Status::NotFound)
    ));
    // And cannot kill the OS.
    assert_eq!(
        m.call(0, MonitorCall::Kill { domain: os }),
        Err(Status::Denied)
    );
}

#[test]
fn enumerate_counts_own_resources() {
    let mut m = x86();
    let (_child, tcap) = spawn_sealed(&mut m, 0x70_0000);
    m.call(0, MonitorCall::Enter { cap: tcap }).unwrap();
    match m.call(0, MonitorCall::Enumerate).unwrap() {
        CallResult::Count(n) => assert_eq!(n, 2, "one memory page + one core"),
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn riscv_end_to_end() {
    let mut m = boot_riscv(BootConfig::default());
    let base = 0x10_0000u64;
    m.dom_write(0, base, b"riscv-secret").unwrap();
    let (child, tcap) = spawn_sealed(&mut m, base);
    assert!(
        m.dom_read(0, base, &mut [0u8; 4]).is_err(),
        "OS lost the page (PMP)"
    );
    m.call(0, MonitorCall::Enter { cap: tcap }).unwrap();
    assert_eq!(m.current_domain(0), child);
    let mut buf = [0u8; 12];
    m.dom_read(0, base, &mut buf).unwrap();
    assert_eq!(&buf, b"riscv-secret");
    assert!(
        m.dom_read(0, 0x5000, &mut [0u8; 1]).is_err(),
        "enclave confined by PMP"
    );
    m.call(0, MonitorCall::Return).unwrap();
    let mut buf2 = [0u8; 1];
    m.dom_read(0, 0x5000, &mut buf2).unwrap();
}

#[test]
fn riscv_fragmented_share_compensated() {
    // Sharing a 15th discontiguous fragment into one domain exceeds PMP
    // capacity: the monitor must report BackendFailure and roll back, so
    // the engine and hardware stay consistent.
    let mut m = boot_riscv(BootConfig::default());
    let os = m.engine.root().unwrap();
    let (child, _t) = match m.call(0, MonitorCall::CreateDomain).unwrap() {
        CallResult::NewDomain { domain, transition } => (domain, transition),
        other => panic!("unexpected {other:?}"),
    };
    let ram = m
        .engine
        .caps_of(os)
        .iter()
        .find(|c| c.active && c.is_memory())
        .map(|c| c.id)
        .unwrap();
    let mut failures = 0;
    for i in 0..20u64 {
        let start = 0x10_0000 + i * 0x4000;
        let r = m.call(
            0,
            MonitorCall::Share {
                cap: ram,
                target: child,
                sub: Some((start, start + 0x1000)),
                rights: Rights::RO,
                policy: RevocationPolicy::NONE,
            },
        );
        if r == Err(Status::BackendFailure) {
            failures += 1;
        }
    }
    assert_eq!(failures, 6, "fragments 15..20 rejected");
    assert!(m.stats().compensations >= 6);
    // The engine view matches what the backend accepted: 14 fragments.
    let mems = m
        .engine
        .caps_of(child)
        .iter()
        .filter(|c| c.is_memory())
        .count();
    assert_eq!(mems, 14);
    assert!(tyche_core::audit::audit(&m.engine).is_empty());
}

#[test]
fn vmfunc_unavailable_on_riscv() {
    let mut m = boot_riscv(BootConfig::default());
    let (_child, tcap) = spawn_sealed(&mut m, 0x10_0000);
    assert_eq!(m.enter_fast(0, tcap), Err(Status::BackendFailure));
}

#[test]
fn invalid_args_rejected_before_engine() {
    let mut m = x86();
    let os_ram = {
        let os = m.engine.root().unwrap();
        m.engine
            .caps_of(os)
            .iter()
            .find(|c| c.is_memory())
            .map(|c| c.id)
            .unwrap()
    };
    // Unaligned split.
    assert_eq!(
        m.call(
            0,
            MonitorCall::Split {
                cap: os_ram,
                at: 0x1234
            }
        ),
        Err(Status::InvalidArg)
    );
    // Unaligned share window.
    assert_eq!(
        m.call(
            0,
            MonitorCall::Share {
                cap: os_ram,
                target: DomainId(0),
                sub: Some((0x100, 0x200)),
                rights: Rights::RO,
                policy: RevocationPolicy::NONE
            }
        ),
        Err(Status::InvalidArg)
    );
}

#[test]
fn domain_churn_beyond_eptp_list_capacity() {
    // The EPTP list has 512 slots; dead domains must return theirs, or a
    // long-lived machine stops being able to create domains (found by the
    // domain_create_kill benchmark panicking at iteration 513).
    let mut m = x86();
    for i in 0..1500u32 {
        let CallResult::NewDomain { domain, .. } = m
            .call(0, MonitorCall::CreateDomain)
            .unwrap_or_else(|e| panic!("creation {i} refused: {e:?}"))
        else {
            panic!("unexpected result");
        };
        m.call(0, MonitorCall::Kill { domain }).unwrap();
    }
    assert!(tyche_core::audit::audit(&m.engine).is_empty());
}

// ---------------------------------------------------------------------------
// Backend resync cost rules: these pin down the charging discipline the SMP
// shootdown model relies on — redundant resyncs must be free (riscv) and TLB
// shootdowns must only be charged when a live translation actually changed
// (x86). A regression here silently inflates every BENCH_smp number.
// ---------------------------------------------------------------------------

#[test]
fn riscv_resync_of_unchanged_layout_is_free() {
    let mut machine = Machine::new(MachineConfig::default());
    let mut engine = CapEngine::new();
    let mut backend = RiscvBackend::new(&machine);
    let os = engine.create_root_domain();
    engine
        .endow(os, Resource::mem(0, 0x10_0000), Rights::RWX)
        .unwrap();
    for fx in engine.drain_effects() {
        backend.apply(&mut machine, &engine, &fx).unwrap();
    }

    // Re-delivering a map effect whose page view coalesces to the layout
    // already programmed must early-exit before any PMP write is charged.
    let c0 = machine.cycles.now();
    backend
        .apply(
            &mut machine,
            &engine,
            &Effect::MapMem {
                domain: os,
                region: MemRegion::new(0, 0x1000),
                rights: Rights::RWX,
            },
        )
        .unwrap();
    assert_eq!(
        machine.cycles.now(),
        c0,
        "unchanged layout resync must not charge PMP writes"
    );

    // A real layout change pays for its segment writes.
    let ram = engine.caps_of(os)[0].id;
    let (child, _gate) = engine.create_domain(os).unwrap();
    engine
        .share(
            os,
            ram,
            child,
            Some(MemRegion::new(0x4000, 0x8000)),
            Rights::RO,
            RevocationPolicy::NONE,
        )
        .unwrap();
    for fx in engine.drain_effects() {
        backend.apply(&mut machine, &engine, &fx).unwrap();
    }
    assert!(
        machine.cycles.now() > c0,
        "changed layout resync must charge PMP writes"
    );
}

#[test]
fn x86_shootdown_charged_only_on_translation_change() {
    let mut machine = Machine::new(MachineConfig::default());
    let mut engine = CapEngine::new();
    let mut backend = X86Backend::new(&mut machine).unwrap();
    let os = engine.create_root_domain();
    engine
        .endow(os, Resource::mem(0, 0x10_0000), Rights::RWX)
        .unwrap();
    for fx in engine.drain_effects() {
        backend.apply(&mut machine, &engine, &fx).unwrap();
    }

    // Map-only resync: the child only *gains* pages. No stale translation
    // can exist for a page that was never mapped, so no shootdown charge.
    let ram = engine.caps_of(os)[0].id;
    let (child, _gate) = engine.create_domain(os).unwrap();
    let share = engine
        .share(
            os,
            ram,
            child,
            Some(MemRegion::new(0x4000, 0x6000)),
            Rights::RW,
            RevocationPolicy::NONE,
        )
        .unwrap();
    let c0 = machine.cycles.now();
    for fx in engine.drain_effects() {
        backend.apply(&mut machine, &engine, &fx).unwrap();
    }
    assert_eq!(
        machine.cycles.now(),
        c0,
        "map-only resync must not charge a TLB shootdown"
    );

    // Revoking the window unmaps live child translations: exactly one
    // coalesced shootdown for the whole resync, nothing more.
    engine.revoke(os, share).unwrap();
    let c1 = machine.cycles.now();
    for fx in engine.drain_effects() {
        backend.apply(&mut machine, &engine, &fx).unwrap();
    }
    assert_eq!(
        machine.cycles.now() - c1,
        machine.cost.tlb_flush,
        "unmap resync must charge exactly one TLB shootdown"
    );
}
