//! ABI fuzzing: the register encoding of monitor calls must round-trip
//! for every representable call, and the decoder must be total (never
//! panic) on arbitrary register values — a domain controls those
//! registers fully.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use proptest::prelude::*;
use tyche_core::prelude::*;
use tyche_monitor::abi::{pack_flags, unpack_flags, MonitorCall};

fn rights_strategy() -> impl Strategy<Value = Rights> {
    (0u8..16).prop_map(Rights)
}

fn policy_strategy() -> impl Strategy<Value = RevocationPolicy> {
    (any::<bool>(), any::<bool>(), any::<bool>()).prop_map(
        |(zero_memory, flush_cache, flush_tlb)| RevocationPolicy {
            zero_memory,
            flush_cache,
            flush_tlb,
        },
    )
}

fn call_strategy() -> impl Strategy<Value = MonitorCall> {
    prop_oneof![
        Just(MonitorCall::CreateDomain),
        (
            any::<u64>(),
            any::<u64>(),
            proptest::option::of((any::<u64>(), any::<u64>())),
            rights_strategy(),
            policy_strategy()
        )
            .prop_map(|(cap, target, sub, rights, policy)| MonitorCall::Share {
                cap: CapId(cap),
                target: DomainId(target),
                sub,
                rights,
                policy,
            }),
        (
            any::<u64>(),
            any::<u64>(),
            rights_strategy(),
            policy_strategy()
        )
            .prop_map(|(cap, target, rights, policy)| MonitorCall::Grant {
                cap: CapId(cap),
                target: DomainId(target),
                rights,
                policy,
            }),
        (any::<u64>(), any::<u64>()).prop_map(|(cap, at)| MonitorCall::Split {
            cap: CapId(cap),
            at
        }),
        any::<u64>().prop_map(|cap| MonitorCall::Revoke { cap: CapId(cap) }),
        (any::<u64>(), any::<bool>(), any::<bool>()).prop_map(
            |(domain, allow_outward, allow_children)| MonitorCall::Seal {
                domain: DomainId(domain),
                allow_outward,
                allow_children,
            }
        ),
        (any::<u64>(), any::<u64>()).prop_map(|(domain, entry)| MonitorCall::SetEntry {
            domain: DomainId(domain),
            entry
        }),
        (any::<u64>(), any::<u64>(), any::<u64>()).prop_map(|(domain, start, end)| {
            MonitorCall::RecordContent {
                domain: DomainId(domain),
                start,
                end,
            }
        }),
        (any::<u64>(), policy_strategy()).prop_map(|(target, policy)| {
            MonitorCall::MakeTransition {
                target: DomainId(target),
                policy,
            }
        }),
        any::<u64>().prop_map(|domain| MonitorCall::Kill {
            domain: DomainId(domain)
        }),
        Just(MonitorCall::Enumerate),
        any::<u64>().prop_map(|cap| MonitorCall::Enter { cap: CapId(cap) }),
        Just(MonitorCall::Return),
        (any::<u64>(), any::<u64>()).prop_map(|(domain, nonce)| MonitorCall::Attest {
            domain: DomainId(domain),
            nonce
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn encode_decode_roundtrip(call in call_strategy()) {
        let (leaf, args) = call.encode();
        prop_assert_eq!(MonitorCall::decode(leaf, args), Some(call));
    }

    #[test]
    fn decoder_total_on_arbitrary_registers(leaf in any::<u64>(), args in any::<[u64; 6]>()) {
        // A guest controls every register bit; decode must never panic
        // and, when it accepts, re-encoding must agree (no two register
        // states map to "the same call" with different canonical forms
        // in a way that loses information the handler uses).
        if let Some(call) = MonitorCall::decode(leaf, args) {
            let (leaf2, args2) = call.encode();
            prop_assert_eq!(MonitorCall::decode(leaf2, args2), Some(call));
        }
    }

    #[test]
    fn flags_roundtrip(rights in rights_strategy(), policy in policy_strategy()) {
        prop_assert_eq!(unpack_flags(pack_flags(rights, policy)), Some((rights, policy)));
    }

    #[test]
    fn flags_reject_reserved_bits(v in any::<u64>()) {
        match unpack_flags(v) {
            Some((rights, policy)) => {
                // Accepted values must re-pack to themselves: no reserved
                // bit survives a round trip.
                prop_assert_eq!(pack_flags(rights, policy), v);
            }
            None => prop_assert_ne!(v & !0x70f, 0, "only reserved bits justify rejection"),
        }
    }
}
