//! The monitor call ABI (§3.2: "a simple yet expressive API").
//!
//! A running domain invokes the monitor through VMCALL (x86) or `ecall`
//! (RISC-V). Both deliver a *leaf* (operation number) and six argument
//! registers. This module defines the register encoding as a typed
//! [`MonitorCall`] with a lossless round-trip, plus the [`Status`] codes
//! returned in the first result register.
//!
//! The acting domain is *never* an argument: the monitor knows which
//! domain is running on the calling core. Identity comes from hardware
//! context, not from a forgeable parameter.

use tyche_core::prelude::*;

/// Operation leaf numbers (the `rax`/`a7` selector).
pub mod leaf {
    /// Create a child domain.
    pub const CREATE_DOMAIN: u64 = 0x100;
    /// Share a capability.
    pub const SHARE: u64 = 0x101;
    /// Grant a capability.
    pub const GRANT: u64 = 0x102;
    /// Split a memory capability.
    pub const SPLIT: u64 = 0x103;
    /// Revoke a capability subtree.
    pub const REVOKE: u64 = 0x104;
    /// Seal a domain.
    pub const SEAL: u64 = 0x105;
    /// Set a domain's entry point.
    pub const SET_ENTRY: u64 = 0x106;
    /// Record a content measurement for a domain under construction.
    pub const RECORD_CONTENT: u64 = 0x107;
    /// Create a transition capability.
    pub const MAKE_TRANSITION: u64 = 0x108;
    /// Kill a managed domain.
    pub const KILL: u64 = 0x109;
    /// Enumerate own resources (returns a count; entries via ENUM_NEXT).
    pub const ENUMERATE: u64 = 0x10a;
    /// Enter another domain through a transition capability.
    pub const ENTER: u64 = 0x200;
    /// Return to the calling domain.
    pub const RETURN: u64 = 0x201;
    /// Request an attestation report for a domain.
    pub const ATTEST: u64 = 0x300;
}

/// Result status returned in the first result register.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u64)]
pub enum Status {
    /// Operation succeeded.
    Ok = 0,
    /// Malformed call (unknown leaf, bad flags, unaligned address).
    InvalidArg = 1,
    /// The engine refused the operation (policy violation).
    Denied = 2,
    /// Referenced capability or domain does not exist.
    NotFound = 3,
    /// The platform backend could not realize the operation (e.g. PMP
    /// layout overflow).
    BackendFailure = 4,
}

impl Status {
    /// Decodes a status register value.
    pub fn from_u64(v: u64) -> Status {
        match v {
            0 => Status::Ok,
            1 => Status::InvalidArg,
            2 => Status::Denied,
            3 => Status::NotFound,
            _ => Status::BackendFailure,
        }
    }
}

/// Packs rights + revocation policy flags into one register.
///
/// Bits 0..3: rights (r/w/x/use). Bits 8..10: zero/flush-cache/flush-TLB.
pub fn pack_flags(rights: Rights, policy: RevocationPolicy) -> u64 {
    (rights.0 as u64)
        | ((policy.zero_memory as u64) << 8)
        | ((policy.flush_cache as u64) << 9)
        | ((policy.flush_tlb as u64) << 10)
}

/// Unpacks [`pack_flags`]. Returns `None` when reserved bits are set.
pub fn unpack_flags(v: u64) -> Option<(Rights, RevocationPolicy)> {
    if v & !0x70f != 0 {
        return None;
    }
    Some((
        Rights((v & 0xf) as u8),
        RevocationPolicy {
            zero_memory: v & (1 << 8) != 0,
            flush_cache: v & (1 << 9) != 0,
            flush_tlb: v & (1 << 10) != 0,
        },
    ))
}

/// A decoded monitor call.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MonitorCall {
    /// Create a child domain; returns (domain id, transition cap id).
    CreateDomain,
    /// Share `cap` with `target`; optional subrange `[start, end)` when
    /// `has_sub`.
    Share {
        /// Capability to share.
        cap: CapId,
        /// Receiving domain.
        target: DomainId,
        /// Optional subrange.
        sub: Option<(u64, u64)>,
        /// Rights for the child capability.
        rights: Rights,
        /// Revocation policy for the child capability.
        policy: RevocationPolicy,
    },
    /// Grant `cap` to `target` (whole capability).
    Grant {
        /// Capability to grant.
        cap: CapId,
        /// Receiving domain.
        target: DomainId,
        /// Rights for the child capability.
        rights: Rights,
        /// Revocation policy for the child capability.
        policy: RevocationPolicy,
    },
    /// Split a memory capability at `at`.
    Split {
        /// Capability to split.
        cap: CapId,
        /// Split address.
        at: u64,
    },
    /// Revoke a capability subtree.
    Revoke {
        /// Root of the subtree to revoke.
        cap: CapId,
    },
    /// Seal `domain` with the given policy flags.
    Seal {
        /// Domain to seal.
        domain: DomainId,
        /// Whether outward sharing stays allowed.
        allow_outward: bool,
        /// Whether child-domain creation stays allowed.
        allow_children: bool,
    },
    /// Set `domain`'s fixed entry point.
    SetEntry {
        /// Domain to configure.
        domain: DomainId,
        /// Entry address.
        entry: u64,
    },
    /// Record that `[start, end)` of `domain`'s initial memory will be
    /// measured by the monitor.
    RecordContent {
        /// Domain under construction.
        domain: DomainId,
        /// Region start.
        start: u64,
        /// Region end.
        end: u64,
    },
    /// Create a transition capability into `target`.
    MakeTransition {
        /// Target domain.
        target: DomainId,
        /// Flush policy applied on transitions through this capability.
        policy: RevocationPolicy,
    },
    /// Kill a managed domain.
    Kill {
        /// Domain to kill.
        domain: DomainId,
    },
    /// Count the caller's resources.
    Enumerate,
    /// Enter a domain through a transition capability.
    Enter {
        /// Transition capability.
        cap: CapId,
    },
    /// Return to the caller domain.
    Return,
    /// Request an attestation report for `domain` with an 8-byte nonce
    /// seed (expanded by the monitor).
    Attest {
        /// Domain to attest.
        domain: DomainId,
        /// Verifier-chosen nonce seed.
        nonce: u64,
    },
}

impl MonitorCall {
    /// Encodes the call as `(leaf, args)` register values.
    pub fn encode(&self) -> (u64, [u64; 6]) {
        match *self {
            MonitorCall::CreateDomain => (leaf::CREATE_DOMAIN, [0; 6]),
            MonitorCall::Share {
                cap,
                target,
                sub,
                rights,
                policy,
            } => {
                let (has, s, e) = match sub {
                    Some((s, e)) => (1, s, e),
                    None => (0, 0, 0),
                };
                (
                    leaf::SHARE,
                    [cap.0, target.0, pack_flags(rights, policy), has, s, e],
                )
            }
            MonitorCall::Grant {
                cap,
                target,
                rights,
                policy,
            } => (
                leaf::GRANT,
                [cap.0, target.0, pack_flags(rights, policy), 0, 0, 0],
            ),
            MonitorCall::Split { cap, at } => (leaf::SPLIT, [cap.0, at, 0, 0, 0, 0]),
            MonitorCall::Revoke { cap } => (leaf::REVOKE, [cap.0, 0, 0, 0, 0, 0]),
            MonitorCall::Seal {
                domain,
                allow_outward,
                allow_children,
            } => (
                leaf::SEAL,
                [
                    domain.0,
                    allow_outward as u64,
                    allow_children as u64,
                    0,
                    0,
                    0,
                ],
            ),
            MonitorCall::SetEntry { domain, entry } => {
                (leaf::SET_ENTRY, [domain.0, entry, 0, 0, 0, 0])
            }
            MonitorCall::RecordContent { domain, start, end } => {
                (leaf::RECORD_CONTENT, [domain.0, start, end, 0, 0, 0])
            }
            MonitorCall::MakeTransition { target, policy } => (
                leaf::MAKE_TRANSITION,
                [target.0, pack_flags(Rights::USE, policy), 0, 0, 0, 0],
            ),
            MonitorCall::Kill { domain } => (leaf::KILL, [domain.0, 0, 0, 0, 0, 0]),
            MonitorCall::Enumerate => (leaf::ENUMERATE, [0; 6]),
            MonitorCall::Enter { cap } => (leaf::ENTER, [cap.0, 0, 0, 0, 0, 0]),
            MonitorCall::Return => (leaf::RETURN, [0; 6]),
            MonitorCall::Attest { domain, nonce } => (leaf::ATTEST, [domain.0, nonce, 0, 0, 0, 0]),
        }
    }

    /// Decodes `(leaf, args)` registers into a call. `None` on a malformed
    /// encoding.
    pub fn decode(leaf_v: u64, args: [u64; 6]) -> Option<MonitorCall> {
        Some(match leaf_v {
            leaf::CREATE_DOMAIN => MonitorCall::CreateDomain,
            leaf::SHARE => {
                let (rights, policy) = unpack_flags(args[2])?;
                let sub = match args[3] {
                    0 => None,
                    1 => Some((args[4], args[5])),
                    _ => return None,
                };
                MonitorCall::Share {
                    cap: CapId(args[0]),
                    target: DomainId(args[1]),
                    sub,
                    rights,
                    policy,
                }
            }
            leaf::GRANT => {
                let (rights, policy) = unpack_flags(args[2])?;
                MonitorCall::Grant {
                    cap: CapId(args[0]),
                    target: DomainId(args[1]),
                    rights,
                    policy,
                }
            }
            leaf::SPLIT => MonitorCall::Split {
                cap: CapId(args[0]),
                at: args[1],
            },
            leaf::REVOKE => MonitorCall::Revoke {
                cap: CapId(args[0]),
            },
            leaf::SEAL => {
                if args[1] > 1 || args[2] > 1 {
                    return None;
                }
                MonitorCall::Seal {
                    domain: DomainId(args[0]),
                    allow_outward: args[1] == 1,
                    allow_children: args[2] == 1,
                }
            }
            leaf::SET_ENTRY => MonitorCall::SetEntry {
                domain: DomainId(args[0]),
                entry: args[1],
            },
            leaf::RECORD_CONTENT => MonitorCall::RecordContent {
                domain: DomainId(args[0]),
                start: args[1],
                end: args[2],
            },
            leaf::MAKE_TRANSITION => {
                let (_, policy) = unpack_flags(args[1])?;
                MonitorCall::MakeTransition {
                    target: DomainId(args[0]),
                    policy,
                }
            }
            leaf::KILL => MonitorCall::Kill {
                domain: DomainId(args[0]),
            },
            leaf::ENUMERATE => MonitorCall::Enumerate,
            leaf::ENTER => MonitorCall::Enter {
                cap: CapId(args[0]),
            },
            leaf::RETURN => MonitorCall::Return,
            leaf::ATTEST => MonitorCall::Attest {
                domain: DomainId(args[0]),
                nonce: args[1],
            },
            _ => return None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(call: MonitorCall) {
        let (l, a) = call.encode();
        assert_eq!(MonitorCall::decode(l, a), Some(call));
    }

    #[test]
    fn all_calls_roundtrip() {
        roundtrip(MonitorCall::CreateDomain);
        roundtrip(MonitorCall::Share {
            cap: CapId(3),
            target: DomainId(4),
            sub: Some((0x1000, 0x2000)),
            rights: Rights::RW,
            policy: RevocationPolicy::ZERO,
        });
        roundtrip(MonitorCall::Share {
            cap: CapId(3),
            target: DomainId(4),
            sub: None,
            rights: Rights::RO,
            policy: RevocationPolicy::NONE,
        });
        roundtrip(MonitorCall::Grant {
            cap: CapId(9),
            target: DomainId(1),
            rights: Rights::RWX,
            policy: RevocationPolicy::OBFUSCATE,
        });
        roundtrip(MonitorCall::Split {
            cap: CapId(1),
            at: 0x4000,
        });
        roundtrip(MonitorCall::Revoke { cap: CapId(2) });
        roundtrip(MonitorCall::Seal {
            domain: DomainId(5),
            allow_outward: true,
            allow_children: false,
        });
        roundtrip(MonitorCall::SetEntry {
            domain: DomainId(5),
            entry: 0xdead,
        });
        roundtrip(MonitorCall::RecordContent {
            domain: DomainId(5),
            start: 0,
            end: 0x1000,
        });
        roundtrip(MonitorCall::MakeTransition {
            target: DomainId(6),
            policy: RevocationPolicy::OBFUSCATE,
        });
        roundtrip(MonitorCall::Kill {
            domain: DomainId(7),
        });
        roundtrip(MonitorCall::Enumerate);
        roundtrip(MonitorCall::Enter { cap: CapId(11) });
        roundtrip(MonitorCall::Return);
        roundtrip(MonitorCall::Attest {
            domain: DomainId(2),
            nonce: 42,
        });
    }

    #[test]
    fn malformed_encodings_rejected() {
        assert_eq!(MonitorCall::decode(0xdead, [0; 6]), None, "unknown leaf");
        // Reserved flag bits set.
        assert_eq!(
            MonitorCall::decode(leaf::SHARE, [0, 0, 1 << 20, 0, 0, 0]),
            None
        );
        // Bad has-sub discriminator.
        assert_eq!(MonitorCall::decode(leaf::SHARE, [0, 0, 0, 7, 0, 0]), None);
        // Non-boolean seal flags.
        assert_eq!(MonitorCall::decode(leaf::SEAL, [0, 2, 0, 0, 0, 0]), None);
    }

    #[test]
    fn flags_pack_roundtrip() {
        for rights in [
            Rights::NONE,
            Rights::RO,
            Rights::RW,
            Rights::RWX,
            Rights::USE,
        ] {
            for policy in [
                RevocationPolicy::NONE,
                RevocationPolicy::ZERO,
                RevocationPolicy::OBFUSCATE,
            ] {
                let packed = pack_flags(rights, policy);
                assert_eq!(unpack_flags(packed), Some((rights, policy)));
            }
        }
    }

    #[test]
    fn status_decode() {
        assert_eq!(Status::from_u64(0), Status::Ok);
        assert_eq!(Status::from_u64(2), Status::Denied);
        assert_eq!(Status::from_u64(99), Status::BackendFailure);
    }
}
