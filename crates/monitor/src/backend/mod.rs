//! Platform backends: mirroring engine state into hardware.
//!
//! A backend consumes the engine's [`tyche_core::Effect`] stream plus the
//! engine's authoritative per-domain memory view, and programs the
//! corresponding hardware structures. Two backends exist, matching the
//! paper's two ports:
//!
//! - [`x86`]: EPT + EPTP-list (VMFUNC) + I/O-MMU contexts,
//! - [`riscv`]: PMP layouts with entry-count validation.
//!
//! The contract both uphold: *after `apply` returns, hardware grants
//! exactly the access the engine's active capabilities describe.* The
//! integration test `tests/backend_equivalence.rs` checks the two backends
//! agree on every accept/deny decision the hardware can express.

pub mod riscv;
pub mod x86;

use std::collections::BTreeMap;
use tyche_core::prelude::*;

/// A domain's desired memory view: page base → rights, derived from the
/// engine's active capabilities (union of rights where caps overlap).
pub type PageView = BTreeMap<u64, Rights>;

/// Computes `domain`'s page-level view from the engine.
///
/// Capability regions are page-truncated inward: partial pages at region
/// edges are *not* mapped (hardware cannot protect sub-page granules), so
/// the hardware view never exceeds the policy view.
pub fn page_view(engine: &CapEngine, domain: DomainId) -> PageView {
    const PAGE: u64 = 4096;
    let mut view = PageView::new();
    for cap in engine.caps_of(domain) {
        if !cap.active {
            continue;
        }
        if let Some(region) = cap.resource.as_mem() {
            let start = region.start.div_ceil(PAGE) * PAGE;
            let end = (region.end / PAGE) * PAGE;
            let mut page = start;
            while page < end {
                let entry = view.entry(page).or_insert(Rights::NONE);
                *entry = Rights(entry.0 | cap.rights.0);
                page += PAGE;
            }
        }
    }
    view
}

/// Errors a backend can raise while realizing engine state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BackendError {
    /// Hardware resource exhaustion or programming failure.
    Hardware(String),
    /// The domain's memory layout cannot be expressed by this platform's
    /// protection mechanism (the RISC-V PMP entry limit, §4).
    LayoutUnrepresentable {
        /// The domain whose layout failed validation.
        domain: DomainId,
        /// Entries needed.
        needed: usize,
        /// Entries available.
        available: usize,
    },
}

impl core::fmt::Display for BackendError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            BackendError::Hardware(s) => write!(f, "hardware backend failure: {s}"),
            BackendError::LayoutUnrepresentable {
                domain,
                needed,
                available,
            } => write!(
                f,
                "domain {domain} needs {needed} PMP entries but only {available} are available"
            ),
        }
    }
}

impl std::error::Error for BackendError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_view_unions_rights_and_truncates() {
        let mut e = CapEngine::new();
        let os = e.create_root_domain();
        // Two overlapping caps with different rights; one has a ragged end.
        e.endow(os, Resource::mem(0x1000, 0x3000), Rights::RO)
            .unwrap();
        e.endow(os, Resource::mem(0x2000, 0x4800), Rights::RW)
            .unwrap();
        let view = page_view(&e, os);
        assert_eq!(view.get(&0x1000), Some(&Rights::RO));
        assert_eq!(view.get(&0x2000), Some(&Rights::RW), "union at overlap");
        assert_eq!(view.get(&0x3000), Some(&Rights::RW));
        assert_eq!(view.get(&0x4000), None, "partial page truncated inward");
    }

    #[test]
    fn page_view_ignores_inactive() {
        let mut e = CapEngine::new();
        let os = e.create_root_domain();
        let ram = e.endow(os, Resource::mem(0, 0x4000), Rights::RW).unwrap();
        let (a, _) = e.create_domain(os).unwrap();
        e.grant(os, ram, a, None, Rights::RW, RevocationPolicy::NONE)
            .unwrap();
        assert!(page_view(&e, os).is_empty(), "granted away");
        assert_eq!(page_view(&e, a).len(), 4);
    }
}
