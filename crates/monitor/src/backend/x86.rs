//! The x86 backend: EPT per domain, EPTP list for VMFUNC, I/O-MMU.
//!
//! Domains name physical memory (§3.2), so every domain's EPT is an
//! *identity* mapping restricted to the pages its capabilities cover, with
//! capability rights as EPT permissions. Transitions switch the active
//! EPT; the fast path switches via the EPTP list without a vm exit.

use super::{page_view, BackendError, PageView};
use std::collections::HashMap;
use tyche_core::prelude::*;
use tyche_hw::addr::{GuestPhysAddr, PhysAddr, PhysRange};
use tyche_hw::machine::Machine;
use tyche_hw::x86::ept::{Ept, EptFlags};

/// Converts capability rights to EPT permission bits.
fn ept_flags(rights: Rights) -> EptFlags {
    let mut f = 0u64;
    if rights.can_read() {
        f |= EptFlags::READ;
    }
    if rights.can_write() {
        f |= EptFlags::WRITE;
    }
    if rights.can_exec() {
        f |= EptFlags::EXEC;
    }
    EptFlags(f)
}

/// Per-domain translation state.
struct DomainSpace {
    ept: Ept,
    /// Mirror of what is currently programmed: page base → rights.
    programmed: PageView,
    /// Slot in the EPTP list (VMFUNC index).
    slot: usize,
}

/// The x86 platform backend.
pub struct X86Backend {
    spaces: HashMap<DomainId, DomainSpace>,
    /// The shared EPTP-list page (512 slots of 8 bytes).
    eptp_list: PhysAddr,
    next_slot: usize,
    /// Slots returned by dead domains, recycled before `next_slot` grows
    /// (without this, the 513th domain ever created would fail even if
    /// only a handful are alive).
    free_slots: Vec<usize>,
    /// MKTME key ids of encryption-enabled domains.
    enc_keys: HashMap<DomainId, u64>,
}

impl X86Backend {
    /// Creates the backend, allocating the EPTP list page.
    pub fn new(machine: &mut Machine) -> Result<Self, BackendError> {
        let eptp_list = machine
            .monitor_frames
            .alloc_zeroed(&mut machine.mem)
            .map_err(|e| BackendError::Hardware(e.to_string()))?;
        Ok(X86Backend {
            spaces: HashMap::new(),
            eptp_list,
            next_slot: 0,
            free_slots: Vec::new(),
            enc_keys: HashMap::new(),
        })
    }

    /// The EPTP-list page address (programmed into each VMCS).
    pub fn eptp_list(&self) -> PhysAddr {
        self.eptp_list
    }

    /// The EPT root of `domain` (its VMFUNC tag / EPTP value).
    pub fn ept_root(&self, domain: DomainId) -> Option<PhysAddr> {
        self.spaces.get(&domain).map(|s| s.ept.root())
    }

    /// The VMFUNC slot index of `domain`.
    pub fn vmfunc_slot(&self, domain: DomainId) -> Option<usize> {
        self.spaces.get(&domain).map(|s| s.slot)
    }

    /// Applies one engine effect. Memory map/unmap effects trigger a
    /// full-view resync of the affected domain (the engine is the
    /// authority; the backend diffs and programs).
    pub fn apply(
        &mut self,
        machine: &mut Machine,
        engine: &CapEngine,
        effect: &Effect,
    ) -> Result<(), BackendError> {
        match effect {
            Effect::DomainCreated { domain } => self.create_space(machine, *domain),
            Effect::DomainKilled { domain } => self.destroy_space(machine, *domain),
            Effect::MapMem { domain, .. } | Effect::UnmapMem { domain, .. } => {
                self.sync_domain(machine, engine, *domain)
            }
            Effect::ZeroMem { region } => {
                machine
                    .mem
                    .zero_range(PhysRange::new(
                        PhysAddr::new(region.start),
                        PhysAddr::new(region.end),
                    ))
                    .map_err(|e| BackendError::Hardware(e.to_string()))?;
                // Scrubbed pages drop their encryption tag: the content is
                // literal zeros now, under no key.
                let mut page = region.start & !(tyche_hw::PAGE_SIZE - 1);
                while page < region.end {
                    machine
                        .mktme
                        .force_tag(PhysAddr::new(page), tyche_hw::mktme::KEYID_PLAIN);
                    page += tyche_hw::PAGE_SIZE;
                }
                machine
                    .cycles
                    .charge(machine.cost.zero_page * region.len().div_ceil(tyche_hw::PAGE_SIZE));
                Ok(())
            }
            Effect::FlushCache { domain } => {
                if let Some(space) = self.spaces.get(domain) {
                    let flushed = machine.cache.flush_domain(space.ept.root().as_u64());
                    machine.cycles.charge(
                        machine.cost.cache_flush_base
                            + machine.cost.cacheline_flush * flushed as u64,
                    );
                }
                Ok(())
            }
            Effect::FlushTlb { domain } => {
                if let Some(space) = self.spaces.get(domain) {
                    machine.tlb.flush_domain(space.ept.root().as_u64());
                    machine.cycles.charge(machine.cost.tlb_flush);
                }
                Ok(())
            }
            Effect::AttachDevice { device, domain } => {
                let space = self
                    .spaces
                    .get(domain)
                    .ok_or_else(|| BackendError::Hardware(format!("no space for {domain}")))?;
                machine
                    .iommu
                    .attach(tyche_hw::iommu::DeviceId(*device), space.ept.root());
                Ok(())
            }
            Effect::DetachDevice { device } => {
                machine.iommu.detach(tyche_hw::iommu::DeviceId(*device));
                Ok(())
            }
            Effect::RouteIrq { vector, domain } => {
                let space = self
                    .spaces
                    .get(domain)
                    .ok_or_else(|| BackendError::Hardware(format!("no space for {domain}")))?;
                machine.irq.route(*vector, space.ept.root().as_u64());
                Ok(())
            }
            Effect::UnrouteIrq { vector } => {
                machine.irq.unroute(*vector);
                Ok(())
            }
            // Core scheduling rights are checked at transition time from
            // engine state; no x86 hardware structure to program.
            Effect::AddCore { .. } | Effect::RemoveCore { .. } => Ok(()),
        }
    }

    fn create_space(
        &mut self,
        machine: &mut Machine,
        domain: DomainId,
    ) -> Result<(), BackendError> {
        let ept = Ept::new(&mut machine.mem, &mut machine.monitor_frames)
            .map_err(|e| BackendError::Hardware(e.to_string()))?;
        let slot = match self.free_slots.pop() {
            Some(s) => s,
            None => {
                let s = self.next_slot;
                if s >= 512 {
                    return Err(BackendError::Hardware("EPTP list full".into()));
                }
                self.next_slot += 1;
                s
            }
        };
        machine
            .mem
            .write_u64(
                PhysAddr::new(self.eptp_list.as_u64() + (slot as u64) * 8),
                ept.root().as_u64() | 0x6, // low bits: WB memtype, as on real EPTPs
            )
            .map_err(|e| BackendError::Hardware(e.to_string()))?;
        self.spaces.insert(
            domain,
            DomainSpace {
                ept,
                programmed: PageView::new(),
                slot,
            },
        );
        Ok(())
    }

    fn destroy_space(
        &mut self,
        machine: &mut Machine,
        domain: DomainId,
    ) -> Result<(), BackendError> {
        let Some(space) = self.spaces.remove(&domain) else {
            return Ok(());
        };
        // Clear the VMFUNC slot so the dead domain is unreachable.
        machine
            .mem
            .write_u64(
                PhysAddr::new(self.eptp_list.as_u64() + (space.slot as u64) * 8),
                0,
            )
            .map_err(|e| BackendError::Hardware(e.to_string()))?;
        machine.tlb.flush_domain(space.ept.root().as_u64());
        machine.cache.flush_domain(space.ept.root().as_u64());
        machine.irq.purge_key(space.ept.root().as_u64());
        self.enc_keys.remove(&domain);
        self.free_slots.push(space.slot);
        // Return the translation-table frames.
        let frames = space
            .ept
            .table_frames(&machine.mem)
            .map_err(|e| BackendError::Hardware(e.to_string()))?;
        for f in frames {
            machine.monitor_frames.free(f);
        }
        Ok(())
    }

    /// Enables memory encryption for `domain`: allocates an MKTME key and
    /// retags every page it currently maps (contents preserved). New pages
    /// mapped later are tagged automatically by `sync_domain`.
    pub fn enable_encryption(
        &mut self,
        machine: &mut Machine,
        domain: DomainId,
    ) -> Result<(), BackendError> {
        let space = self
            .spaces
            .get(&domain)
            .ok_or_else(|| BackendError::Hardware(format!("no space for {domain}")))?;
        let key = machine.mktme.new_key();
        self.enc_keys.insert(domain, key);
        let pages: Vec<u64> = space.programmed.keys().copied().collect();
        for page in pages {
            machine
                .mktme
                .retag(&mut machine.mem, PhysAddr::new(page), key)
                .map_err(|e| BackendError::Hardware(e.to_string()))?;
        }
        machine.cycles.charge(
            machine.cost.zero_page
                * self
                    .spaces
                    .get(&domain)
                    .map(|s| s.programmed.len())
                    .unwrap_or(0) as u64,
        );
        Ok(())
    }

    /// Diffs the engine's authoritative view against programmed state and
    /// updates the EPT minimally.
    fn sync_domain(
        &mut self,
        machine: &mut Machine,
        engine: &CapEngine,
        domain: DomainId,
    ) -> Result<(), BackendError> {
        let desired = page_view(engine, domain);
        let Some(space) = self.spaces.get_mut(&domain) else {
            // The root domain's space is created at boot before endowments;
            // any other missing space is a bug surfaced by tests.
            return Err(BackendError::Hardware(format!(
                "sync for unknown domain {domain}"
            )));
        };
        let hw = |e: tyche_hw::x86::ept::EptError| BackendError::Hardware(e.to_string());
        // Unmap pages no longer covered; re-protect changed pages. Track
        // whether any existing translation changed: only those need the
        // TLB shootdown at the end (the TLB model caches positive,
        // permission-carrying entries, so newly mapped pages miss and
        // walk — no stale entry can exist for them).
        let mut translation_changed = false;
        let programmed = space.programmed.clone();
        for (page, old) in &programmed {
            match desired.get(page) {
                None => {
                    space
                        .ept
                        .unmap(&mut machine.mem, GuestPhysAddr::new(*page))
                        .map_err(hw)?;
                    space.programmed.remove(page);
                    translation_changed = true;
                }
                Some(new) if new != old => {
                    space
                        .ept
                        .protect(&mut machine.mem, GuestPhysAddr::new(*page), ept_flags(*new))
                        .map_err(hw)?;
                    space.programmed.insert(*page, *new);
                    translation_changed = true;
                }
                Some(_) => {}
            }
        }
        // Map newly covered pages (identity). Pages entering an
        // encryption-enabled domain are retagged to its key (contents
        // preserved, ciphertext rotated); pages entering a plaintext
        // domain are retagged to plaintext.
        let keyid = self
            .enc_keys
            .get(&domain)
            .copied()
            .unwrap_or(tyche_hw::mktme::KEYID_PLAIN);
        for (page, rights) in &desired {
            if !space.programmed.contains_key(page) {
                space
                    .ept
                    .map(
                        &mut machine.mem,
                        &mut machine.monitor_frames,
                        GuestPhysAddr::new(*page),
                        PhysAddr::new(*page),
                        ept_flags(*rights),
                    )
                    .map_err(hw)?;
                machine
                    .mktme
                    .retag(&mut machine.mem, PhysAddr::new(*page), keyid)
                    .map_err(|e| BackendError::Hardware(e.to_string()))?;
                space.programmed.insert(*page, *rights);
            }
        }
        // Any downgrade requires a TLB shootdown for this domain, exactly
        // like INVEPT after reducing permissions — charged once per
        // resync, not per effect. Map-only resyncs skip it.
        if translation_changed {
            machine.tlb.flush_domain(space.ept.root().as_u64());
            machine.cycles.charge(machine.cost.tlb_flush);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tyche_hw::machine::MachineConfig;
    use tyche_hw::x86::ept::Access;

    fn setup() -> (Machine, CapEngine, X86Backend, DomainId) {
        let mut machine = Machine::new(MachineConfig::default());
        let mut engine = CapEngine::new();
        let mut backend = X86Backend::new(&mut machine).unwrap();
        let os = engine.create_root_domain();
        engine
            .endow(os, Resource::mem(0, 0x10_0000), Rights::RWX)
            .unwrap();
        for e in engine.drain_effects() {
            backend.apply(&mut machine, &engine, &e).unwrap();
        }
        (machine, engine, backend, os)
    }

    fn apply_all(m: &mut Machine, e: &mut CapEngine, b: &mut X86Backend) {
        for fx in e.drain_effects() {
            b.apply(m, e, &fx).unwrap();
        }
    }

    fn can(m: &Machine, b: &X86Backend, d: DomainId, addr: u64, access: Access) -> bool {
        let root = b.ept_root(d).unwrap();
        Ept::from_root(root)
            .translate(&m.mem, GuestPhysAddr::new(addr), access)
            .is_ok()
    }

    #[test]
    fn boot_identity_mapping() {
        let (m, _e, b, os) = setup();
        assert!(can(&m, &b, os, 0x1000, Access::Read));
        assert!(can(&m, &b, os, 0x1000, Access::Write));
        assert!(can(&m, &b, os, 0xf_f000, Access::Exec));
        assert!(
            !can(&m, &b, os, 0x10_0000, Access::Read),
            "beyond endowment"
        );
        // Identity: GPA == HPA.
        let root = b.ept_root(os).unwrap();
        let (hpa, _) = Ept::from_root(root)
            .translate(&m.mem, GuestPhysAddr::new(0x2345), Access::Read)
            .unwrap();
        assert_eq!(hpa.as_u64(), 0x2345);
    }

    #[test]
    fn grant_moves_hardware_access() {
        let (mut m, mut e, mut b, os) = setup();
        let ram = e.caps_of(os)[0].id;
        let (child, _t) = e.create_domain(os).unwrap();
        let (page, _rest) = e.split(os, ram, 0x1000).unwrap();
        e.grant(os, page, child, None, Rights::RW, RevocationPolicy::ZERO)
            .unwrap();
        apply_all(&mut m, &mut e, &mut b);
        assert!(!can(&m, &b, os, 0x0, Access::Read), "granter lost the page");
        assert!(can(&m, &b, child, 0x0, Access::Read));
        assert!(can(&m, &b, child, 0x0, Access::Write));
        assert!(
            !can(&m, &b, child, 0x0, Access::Exec),
            "rights narrowed to RW"
        );
        assert!(can(&m, &b, os, 0x1000, Access::Read), "rest still mapped");
    }

    #[test]
    fn revoke_zeroes_and_restores() {
        let (mut m, mut e, mut b, os) = setup();
        let ram = e.caps_of(os)[0].id;
        let (child, _t) = e.create_domain(os).unwrap();
        let (page, _rest) = e.split(os, ram, 0x1000).unwrap();
        let g = e
            .grant(os, page, child, None, Rights::RW, RevocationPolicy::ZERO)
            .unwrap();
        apply_all(&mut m, &mut e, &mut b);
        m.mem.write(PhysAddr::new(0x10), b"secret").unwrap();
        e.revoke(os, g).unwrap();
        apply_all(&mut m, &mut e, &mut b);
        let mut buf = [0u8; 6];
        m.mem.read(PhysAddr::new(0x10), &mut buf).unwrap();
        assert_eq!(&buf, &[0u8; 6], "revocation clean-up zeroed the page");
        assert!(can(&m, &b, os, 0x0, Access::Read), "granter restored");
        assert!(!can(&m, &b, child, 0x0, Access::Read));
    }

    #[test]
    fn shared_window_visible_to_both() {
        let (mut m, mut e, mut b, os) = setup();
        let ram = e.caps_of(os)[0].id;
        let (child, _t) = e.create_domain(os).unwrap();
        e.share(
            os,
            ram,
            child,
            Some(MemRegion::new(0x2000, 0x4000)),
            Rights::RO,
            RevocationPolicy::NONE,
        )
        .unwrap();
        apply_all(&mut m, &mut e, &mut b);
        assert!(
            can(&m, &b, os, 0x2000, Access::Write),
            "owner keeps full rights"
        );
        assert!(can(&m, &b, child, 0x2000, Access::Read));
        assert!(
            !can(&m, &b, child, 0x2000, Access::Write),
            "share is read-only"
        );
        assert!(!can(&m, &b, child, 0x4000, Access::Read), "window bounded");
    }

    #[test]
    fn kill_clears_slot_and_frees_frames() {
        let (mut m, mut e, mut b, os) = setup();
        let before = m.monitor_frames.outstanding();
        let (child, _t) = e.create_domain(os).unwrap();
        let ram = e
            .caps_of(os)
            .iter()
            .find(|c| c.active && c.is_memory())
            .unwrap()
            .id;
        let (page, _) = e.split(os, ram, 0x1000).unwrap();
        e.grant(os, page, child, None, Rights::RW, RevocationPolicy::NONE)
            .unwrap();
        apply_all(&mut m, &mut e, &mut b);
        let slot = b.vmfunc_slot(child).unwrap();
        e.kill(os, child).unwrap();
        apply_all(&mut m, &mut e, &mut b);
        assert!(b.ept_root(child).is_none());
        let entry = m
            .mem
            .read_u64(PhysAddr::new(b.eptp_list().as_u64() + (slot as u64) * 8))
            .unwrap();
        assert_eq!(entry, 0, "VMFUNC slot cleared");
        assert_eq!(
            m.monitor_frames.outstanding(),
            before,
            "table frames reclaimed"
        );
    }

    #[test]
    fn device_attach_follows_capability() {
        let (mut m, mut e, mut b, os) = setup();
        let dev = e.endow(os, Resource::Device(7), Rights::USE).unwrap();
        let (child, _t) = e.create_domain(os).unwrap();
        let ram = e
            .caps_of(os)
            .iter()
            .find(|c| c.active && c.is_memory())
            .unwrap()
            .id;
        e.share(
            os,
            ram,
            child,
            Some(MemRegion::new(0x3000, 0x5000)),
            Rights::RW,
            RevocationPolicy::NONE,
        )
        .unwrap();
        let g = e
            .grant(os, dev, child, None, Rights::USE, RevocationPolicy::NONE)
            .unwrap();
        apply_all(&mut m, &mut e, &mut b);
        // The device now translates through the child's EPT.
        let did = tyche_hw::iommu::DeviceId(7);
        let mut mem = m.mem.clone();
        m.iommu
            .dma_write(&mut mem, did, GuestPhysAddr::new(0x3000), &[1])
            .unwrap();
        // Revoking the device capability detaches it.
        e.revoke(os, g).unwrap();
        apply_all(&mut m, &mut e, &mut b);
        // After revocation the device cap returned to the OS (AttachDevice
        // for os wins); child window no longer reachable via os view? The
        // os identity view covers 0x3000 so DMA still works — verify the
        // context points at the os EPT now.
        assert_eq!(m.iommu.context_of(did), b.ept_root(os));
    }
}
