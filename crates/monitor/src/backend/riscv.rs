//! The RISC-V backend: machine mode + PMP layouts.
//!
//! §4 of the paper: "On RISC-V, \[Tyche\] runs in machine mode and
//! demonstrates the generality of our approach by relying on a more
//! limited mechanism than virtualization: PMP. PMP only supports a fixed
//! number of segments, which requires a careful memory layout of trust
//! domains and validation by the monitor."
//!
//! This backend performs that validation: a domain's active memory view is
//! coalesced into contiguous same-rights segments, each encoded as one
//! NAPOT entry when naturally aligned or an OFF+TOR pair otherwise. If the
//! encoding needs more entries than the hart provides (16, minus one
//! locked guard protecting the monitor itself), the layout is rejected —
//! the exact failure mode experiment C7 measures.
// Approved panic paths: every `expect(` in this module is budgeted,
// with a reviewed reason, in crates/verify/allowlist.toml.
#![allow(clippy::expect_used)]

use super::{page_view, BackendError};
use std::collections::HashMap;
use tyche_core::prelude::*;
use tyche_hw::machine::Machine;
use tyche_hw::riscv::pmp::{napot_addr, AddressMode, PmpEntry, PMP_ENTRIES};
use tyche_hw::riscv::{Hart, PrivMode};

/// A coalesced, validated memory segment of a domain layout.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Segment {
    /// Segment start (page-aligned).
    pub start: u64,
    /// Segment end (exclusive, page-aligned).
    pub end: u64,
    /// Access rights.
    pub rights: Rights,
}

impl Segment {
    /// Number of PMP entries this segment consumes: 1 for NAPOT-encodable
    /// segments, 2 for an OFF+TOR pair.
    pub fn entries_needed(&self) -> usize {
        let len = self.end - self.start;
        if len.is_power_of_two() && len >= 8 && self.start.is_multiple_of(len) {
            1
        } else {
            2
        }
    }
}

/// Coalesces a page view into maximal contiguous same-rights segments.
pub fn coalesce(view: &super::PageView) -> Vec<Segment> {
    const PAGE: u64 = 4096;
    let mut out: Vec<Segment> = Vec::new();
    for (&page, &rights) in view {
        match out.last_mut() {
            Some(seg) if seg.end == page && seg.rights == rights => seg.end = page + PAGE,
            _ => out.push(Segment {
                start: page,
                end: page + PAGE,
                rights,
            }),
        }
    }
    out
}

/// The RISC-V platform backend.
pub struct RiscvBackend {
    /// One hart per machine core.
    pub harts: Vec<Hart>,
    /// Validated layouts per domain.
    layouts: HashMap<DomainId, Vec<Segment>>,
    /// PMP entries reserved for the locked monitor guard.
    reserved: usize,
    /// Per-domain cache/TLB tag (domains have no EPT root here, so the
    /// backend assigns tags itself).
    tags: HashMap<DomainId, u64>,
    next_tag: u64,
}

impl RiscvBackend {
    /// Creates the backend: one hart per core, with entry 0 on every hart
    /// locked as a no-access guard over the monitor's reserved region
    /// (so not even M-mode stray writes can touch monitor frames without
    /// going through the allocator).
    pub fn new(machine: &Machine) -> Self {
        let guard_top = machine.mem.size();
        let guard_base = machine.domain_ram.end.as_u64();
        let mut harts = Vec::new();
        for id in 0..machine.cores {
            let mut hart = Hart::new(id);
            // Guard entry: TOR over the monitor region needs a base; use
            // entry 0 = OFF with addr=base, entry 1 = locked TOR no-access.
            hart.pmp.set(
                0,
                PmpEntry {
                    a: AddressMode::Off,
                    addr: guard_base >> 2,
                    l: true,
                    ..Default::default()
                },
            );
            hart.pmp.set(
                1,
                PmpEntry {
                    r: false,
                    w: false,
                    x: false,
                    a: AddressMode::Tor,
                    l: true,
                    addr: guard_top >> 2,
                },
            );
            harts.push(hart);
        }
        RiscvBackend {
            harts,
            layouts: HashMap::new(),
            reserved: 2,
            tags: HashMap::new(),
            next_tag: 1,
        }
    }

    /// PMP entries available for domain layouts.
    pub fn available_entries(&self) -> usize {
        PMP_ENTRIES - self.reserved
    }

    /// The validated layout of `domain`, if any.
    pub fn layout(&self, domain: DomainId) -> Option<&[Segment]> {
        self.layouts.get(&domain).map(|v| v.as_slice())
    }

    /// The cache/TLB tag of `domain`.
    pub fn tag(&self, domain: DomainId) -> Option<u64> {
        self.tags.get(&domain).copied()
    }

    /// Applies one engine effect.
    pub fn apply(
        &mut self,
        machine: &mut Machine,
        engine: &CapEngine,
        effect: &Effect,
    ) -> Result<(), BackendError> {
        match effect {
            Effect::DomainCreated { domain } => {
                let tag = self.next_tag;
                self.next_tag += 1;
                self.tags.insert(*domain, tag);
                self.layouts.insert(*domain, Vec::new());
                Ok(())
            }
            Effect::DomainKilled { domain } => {
                self.layouts.remove(domain);
                if let Some(tag) = self.tags.remove(domain) {
                    machine.tlb.flush_domain(tag);
                    machine.cache.flush_domain(tag);
                    machine.irq.purge_key(tag);
                }
                Ok(())
            }
            Effect::MapMem { domain, .. } | Effect::UnmapMem { domain, .. } => {
                self.sync_domain(machine, engine, *domain)
            }
            Effect::ZeroMem { region } => {
                machine
                    .mem
                    .zero_range(tyche_hw::addr::PhysRange::new(
                        tyche_hw::PhysAddr::new(region.start),
                        tyche_hw::PhysAddr::new(region.end),
                    ))
                    .map_err(|e| BackendError::Hardware(e.to_string()))?;
                machine
                    .cycles
                    .charge(machine.cost.zero_page * region.len().div_ceil(tyche_hw::PAGE_SIZE));
                Ok(())
            }
            Effect::FlushCache { domain } => {
                if let Some(tag) = self.tags.get(domain) {
                    let flushed = machine.cache.flush_domain(*tag);
                    machine.cycles.charge(
                        machine.cost.cache_flush_base
                            + machine.cost.cacheline_flush * flushed as u64,
                    );
                }
                Ok(())
            }
            Effect::FlushTlb { domain } => {
                if let Some(tag) = self.tags.get(domain) {
                    machine.tlb.flush_domain(*tag);
                    machine.cycles.charge(machine.cost.tlb_flush);
                }
                Ok(())
            }
            // PMP has no I/O-MMU pairing in our model; device effects are
            // refused so callers learn the platform limitation loudly.
            Effect::AttachDevice { .. } | Effect::DetachDevice { .. } => Err(
                BackendError::Hardware("device isolation unsupported on the PMP backend".into()),
            ),
            Effect::RouteIrq { vector, domain } => {
                let tag = self
                    .tags
                    .get(domain)
                    .ok_or_else(|| BackendError::Hardware(format!("no tag for {domain}")))?;
                machine.irq.route(*vector, *tag);
                Ok(())
            }
            Effect::UnrouteIrq { vector } => {
                machine.irq.unroute(*vector);
                Ok(())
            }
            Effect::AddCore { .. } | Effect::RemoveCore { .. } => Ok(()),
        }
    }

    /// Re-validates `domain`'s layout from engine state.
    ///
    /// Fails with [`BackendError::LayoutUnrepresentable`] when the segments
    /// exceed the available PMP entries. The monitor compensates by
    /// rolling back the engine operation that caused it.
    fn sync_domain(
        &mut self,
        machine: &mut Machine,
        engine: &CapEngine,
        domain: DomainId,
    ) -> Result<(), BackendError> {
        let view = page_view(engine, domain);
        let segments = coalesce(&view);
        // A resync that reproduces the already-validated layout is a
        // no-op: skip the PMP writes and the flush entirely.
        if self.layouts.get(&domain).is_some_and(|l| *l == segments) {
            return Ok(());
        }
        let needed: usize = segments.iter().map(|s| s.entries_needed()).sum();
        machine
            .cycles
            .charge(machine.cost.pmp_write * segments.len() as u64);
        if needed > self.available_entries() {
            return Err(BackendError::LayoutUnrepresentable {
                domain,
                needed,
                available: self.available_entries(),
            });
        }
        self.layouts.insert(domain, segments);
        if let Some(tag) = self.tags.get(&domain) {
            machine.tlb.flush_domain(*tag);
        }
        // Reprogram any hart currently running this domain.
        for hart in &mut self.harts {
            if hart.domain_tag == *self.tags.get(&domain).unwrap_or(&u64::MAX)
                && hart.mode != PrivMode::Machine
            {
                Self::program_hart(
                    hart,
                    self.layouts.get(&domain).expect("just inserted"),
                    self.reserved,
                );
            }
        }
        Ok(())
    }

    /// Programs a hart's PMP with a domain layout (entries after the
    /// reserved guard).
    fn program_hart(hart: &mut Hart, segments: &[Segment], reserved: usize) {
        hart.pmp.clear_unlocked();
        let mut idx = reserved;
        for seg in segments {
            let len = seg.end - seg.start;
            if seg.entries_needed() == 1 {
                hart.pmp.set(
                    idx,
                    PmpEntry {
                        r: seg.rights.can_read(),
                        w: seg.rights.can_write(),
                        x: seg.rights.can_exec(),
                        a: AddressMode::Napot,
                        l: false,
                        addr: napot_addr(seg.start, len),
                    },
                );
                idx += 1;
            } else {
                hart.pmp.set(
                    idx,
                    PmpEntry {
                        a: AddressMode::Off,
                        addr: seg.start >> 2,
                        ..Default::default()
                    },
                );
                hart.pmp.set(
                    idx + 1,
                    PmpEntry {
                        r: seg.rights.can_read(),
                        w: seg.rights.can_write(),
                        x: seg.rights.can_exec(),
                        a: AddressMode::Tor,
                        l: false,
                        addr: seg.end >> 2,
                    },
                );
                idx += 2;
            }
        }
    }

    /// Switches `core` to run `domain`: programs its PMP layout and drops
    /// to S-mode at `entry`.
    pub fn enter_domain(
        &mut self,
        machine: &mut Machine,
        domain: DomainId,
        core: usize,
        entry: u64,
    ) -> Result<(), BackendError> {
        let segments = self
            .layouts
            .get(&domain)
            .ok_or_else(|| BackendError::Hardware(format!("no layout for {domain}")))?
            .clone();
        let tag = *self
            .tags
            .get(&domain)
            .ok_or_else(|| BackendError::Hardware(format!("no tag for {domain}")))?;
        let hart = self
            .harts
            .get_mut(core)
            .ok_or_else(|| BackendError::Hardware(format!("no hart {core}")))?;
        Self::program_hart(hart, &segments, self.reserved);
        machine
            .cycles
            .charge(machine.cost.pmp_write * segments.len() as u64);
        hart.domain_tag = tag;
        hart.mret(PrivMode::Supervisor, entry);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tyche_hw::machine::MachineConfig;
    use tyche_hw::riscv::pmp::PmpAccess;
    use tyche_hw::PhysAddr;

    fn setup() -> (Machine, CapEngine, RiscvBackend, DomainId) {
        let mut machine = Machine::new(MachineConfig::default());
        let mut engine = CapEngine::new();
        let mut backend = RiscvBackend::new(&machine);
        let os = engine.create_root_domain();
        engine
            .endow(os, Resource::mem(0, 0x10_0000), Rights::RWX)
            .unwrap();
        for e in engine.drain_effects() {
            backend.apply(&mut machine, &engine, &e).unwrap();
        }
        (machine, engine, backend, os)
    }

    fn apply_all(
        m: &mut Machine,
        e: &mut CapEngine,
        b: &mut RiscvBackend,
    ) -> Result<(), BackendError> {
        for fx in e.drain_effects() {
            b.apply(m, e, &fx)?;
        }
        Ok(())
    }

    #[test]
    fn coalesce_merges_contiguous_same_rights() {
        let mut view = super::super::PageView::new();
        for p in [0x1000u64, 0x2000, 0x3000] {
            view.insert(p, Rights::RW);
        }
        view.insert(0x4000, Rights::RO); // different rights: new segment
        view.insert(0x6000, Rights::RO); // hole: new segment
        let segs = coalesce(&view);
        assert_eq!(segs.len(), 3);
        assert_eq!(
            segs[0],
            Segment {
                start: 0x1000,
                end: 0x4000,
                rights: Rights::RW
            }
        );
        assert_eq!(
            segs[1],
            Segment {
                start: 0x4000,
                end: 0x5000,
                rights: Rights::RO
            }
        );
        assert_eq!(
            segs[2],
            Segment {
                start: 0x6000,
                end: 0x7000,
                rights: Rights::RO
            }
        );
    }

    #[test]
    fn entry_counting() {
        // Aligned power-of-two: NAPOT, one entry.
        assert_eq!(
            Segment {
                start: 0x4000,
                end: 0x8000,
                rights: Rights::RW
            }
            .entries_needed(),
            1
        );
        // Unaligned or non-power-of-two: OFF+TOR pair.
        assert_eq!(
            Segment {
                start: 0x1000,
                end: 0x4000,
                rights: Rights::RW
            }
            .entries_needed(),
            2
        );
        assert_eq!(
            Segment {
                start: 0x3000,
                end: 0x7000,
                rights: Rights::RW
            }
            .entries_needed(),
            2
        );
    }

    #[test]
    fn boot_layout_and_entry() {
        let (mut m, mut e, mut b, os) = setup();
        e.set_entry(os, os, 0x1000).unwrap();
        b.enter_domain(&mut m, os, 0, 0x1000).unwrap();
        let hart = &b.harts[0];
        assert_eq!(hart.mode, PrivMode::Supervisor);
        assert_eq!(hart.pc, 0x1000);
        // The domain can touch its RAM but not the monitor region.
        assert!(hart
            .pmp
            .check(false, PhysAddr::new(0x8000), 8, PmpAccess::Write)
            .is_ok());
        let monitor_base = m.domain_ram.end.as_u64();
        assert!(hart
            .pmp
            .check(false, PhysAddr::new(monitor_base), 8, PmpAccess::Read)
            .is_err());
    }

    #[test]
    fn monitor_guard_is_locked_even_for_mmode() {
        let (m, _e, b, _os) = setup();
        let monitor_base = m.domain_ram.end.as_u64();
        let hart = &b.harts[0];
        assert!(
            hart.pmp
                .check(
                    true,
                    PhysAddr::new(monitor_base + 0x100),
                    8,
                    PmpAccess::Write
                )
                .is_err(),
            "locked guard binds M-mode too"
        );
    }

    #[test]
    fn fragmented_layout_rejected() {
        let (mut m, mut e, mut b, os) = setup();
        let (child, _t) = e.create_domain(os).unwrap();
        apply_all(&mut m, &mut e, &mut b).unwrap();
        // Share many discontiguous single pages: each one costs an entry
        // (NAPOT) — the 15th distinct fragment exceeds 14 available.
        let ram = e
            .caps_of(os)
            .iter()
            .find(|c| c.active && c.is_memory())
            .unwrap()
            .id;
        let mut failed_at = None;
        for i in 0..20u64 {
            let start = i * 0x4000; // discontiguous 1-page windows
            e.share(
                os,
                ram,
                child,
                Some(MemRegion::new(start, start + 0x1000)),
                Rights::RO,
                RevocationPolicy::NONE,
            )
            .unwrap();
            if let Err(BackendError::LayoutUnrepresentable {
                needed, available, ..
            }) = apply_all(&mut m, &mut e, &mut b)
            {
                assert!(needed > available);
                failed_at = Some(i + 1);
                break;
            }
        }
        assert_eq!(
            failed_at,
            Some(15),
            "14 single-page NAPOT fragments fit, the 15th does not"
        );
    }

    #[test]
    fn contiguous_layout_scales_fine() {
        // The same total memory as the fragmented case, but contiguous:
        // one segment, no matter how large.
        let (mut m, mut e, mut b, os) = setup();
        let (child, _t) = e.create_domain(os).unwrap();
        let ram = e
            .caps_of(os)
            .iter()
            .find(|c| c.active && c.is_memory())
            .unwrap()
            .id;
        e.share(
            os,
            ram,
            child,
            Some(MemRegion::new(0, 0x8_0000)),
            Rights::RO,
            RevocationPolicy::NONE,
        )
        .unwrap();
        apply_all(&mut m, &mut e, &mut b).unwrap();
        assert_eq!(b.layout(child).unwrap().len(), 1);
    }

    #[test]
    fn enter_programs_pmp_for_target() {
        let (mut m, mut e, mut b, os) = setup();
        let (child, _t) = e.create_domain(os).unwrap();
        let ram = e
            .caps_of(os)
            .iter()
            .find(|c| c.active && c.is_memory())
            .unwrap()
            .id;
        let (page, _rest) = e.split(os, ram, 0x4000).unwrap();
        e.grant(os, page, child, None, Rights::RWX, RevocationPolicy::ZERO)
            .unwrap();
        apply_all(&mut m, &mut e, &mut b).unwrap();
        b.enter_domain(&mut m, child, 1, 0x0).unwrap();
        let hart = &b.harts[1];
        assert!(hart
            .pmp
            .check(false, PhysAddr::new(0x1000), 8, PmpAccess::Write)
            .is_ok());
        assert!(
            hart.pmp
                .check(false, PhysAddr::new(0x5000), 8, PmpAccess::Read)
                .is_err(),
            "child sees only its granted pages"
        );
        // Hart 0 still has the OS view (minus the granted page after sync
        // if it were entered); enter OS on hart 0 and check.
        b.enter_domain(&mut m, os, 0, 0).unwrap();
        assert!(b.harts[0]
            .pmp
            .check(false, PhysAddr::new(0x5000), 8, PmpAccess::Read)
            .is_ok());
        assert!(
            b.harts[0]
                .pmp
                .check(false, PhysAddr::new(0x1000), 8, PmpAccess::Read)
                .is_err(),
            "OS lost the granted page"
        );
    }

    #[test]
    fn device_effects_unsupported() {
        let (mut m, mut e, mut b, os) = setup();
        e.endow(os, Resource::Device(1), Rights::USE).unwrap();
        let err = apply_all(&mut m, &mut e, &mut b).unwrap_err();
        assert!(matches!(err, BackendError::Hardware(_)));
    }
}
