//! SMP front-end: concurrent hypercall serving over one [`Monitor`].
//!
//! [`ConcurrentMonitor`] lets one worker thread per modeled core issue
//! hypercalls against a shared monitor. Three serving tiers:
//!
//! - **Read-only calls** (`Enumerate`) run against a published snapshot
//!   from the epoch read side ([`EpochReadSide`]): every committed
//!   mutation publishes a fresh `Arc<CapEngine>` clone, so a read is one
//!   Acquire head load plus an uncontended slot read — no snapshot-cache
//!   mutex, no shard lock. Readers pin their core's epoch slot for the
//!   duration, which keeps the snapshot they hold off the reclamation
//!   path (retire-after-grace; see `tyche_core::shared`).
//! - **Fast transitions** (`Enter` through a `NONE`-policy transition
//!   capability, and the matching `Return`) touch only per-core state:
//!   validation runs on the snapshot, the VMFUNC switch is charged to
//!   the core's own clock, and no shared lock is taken. This is the
//!   paper's "fast (100 cycles) transitions" path, now per-core.
//! - **Mutations** (everything else) take the *shard locks* of every
//!   involved domain — in ascending shard order, the same global rule
//!   as [`tyche_core::shared::SharedEngine`], so cross-domain grants and
//!   revokes are deadlock-free — and then the inner monitor lock for
//!   the actual state change.
//!
//! ## Simulated-time contention model
//!
//! Correctness comes from the real locks; *cost* comes from the
//! discrete-event clock model. Each shard lock carries a simulated
//! clock: a mutation starts at `t0 = max(core clock, involved shard
//! clocks)` (+ a lock hand-off penalty if it had to wait), runs for the
//! operation's charged cycle count, and advances the core clock and
//! every involved shard clock to `t0 + dt`. Two cores mutating
//! *distinct* domains never share a shard clock and proceed in parallel
//! simulated time; two cores hammering the *same* domain serialize on
//! its shard clock exactly like a contended lock. The machine makespan
//! is `max` over core clocks. The engine object itself is still guarded
//! by one inner lock (it is a single data structure); the shard clocks
//! model the per-domain engine sharding the lock order is designed for,
//! and the whole-monitor-mutex baseline in `tyche-bench` models the
//! alternative where every call serializes on one global clock.
//!
//! ## Cross-core shootdowns
//!
//! Translation-shrinking mutations (grant, revoke, kill) queue the
//! domains that lost access into the *calling core's* invalidation
//! batch instead of IPI-ing immediately — the per-CPU TLB-gather
//! discipline: whoever shrinks a translation owns its flush.
//! [`ConcurrentMonitor::sync_shootdowns`] drains the caller's batch,
//! finds the cores currently running an affected domain, and charges
//! the IPI + remote-flush cost through [`Machine::shootdown`] — one IPI
//! per (core, batch) however many pending invalidations coalesced into
//! it, replacing the single-stream `sync_effects` model. Until a core's
//! shootdown is delivered, its fast path may still validate against the
//! pre-revocation snapshot — the same TOCTOU grace window real
//! shootdown-based revocation has between the capability update and the
//! remote TLB flush.
//!
//! Queue-vs-drain responsibilities: `serve` (the single-call mutating
//! tier) only *queues* invalidations — it never drains its own batch, so
//! consecutive shrinking calls keep coalescing (the whole point of the
//! TLB-gather discipline) and the caller decides the flush boundary by
//! calling [`ConcurrentMonitor::sync_shootdowns`]. A *ring drain* is
//! different: the batch is an explicit boundary, so
//! [`ConcurrentMonitor::ring_doorbell`] delivers the batch's coalesced
//! shootdown round itself before returning.
//!
//! ## Batched submission rings
//!
//! The TNIC-style doorbell path for mutation-heavy cores: workers
//! [`submit`](ConcurrentMonitor::submit) mutating calls into a per-core
//! ring (paying only the core-local `ring_enqueue` cost), and the ring
//! is drained as one batch — by an explicit
//! [`ring_doorbell`](ConcurrentMonitor::ring_doorbell) or automatically
//! when the ring reaches its configured depth. A drain charges **one**
//! trap crossing for the whole batch (each entry then pays its operation
//! cost minus the per-call trap, plus `ring_dispatch`), takes the shard
//! locks of the batch's involved-set union **once**, pays at most one
//! `lock_handoff`, and coalesces every entry's invalidations into one
//! shootdown round. Read-tier and transition calls are never enqueued:
//! they have their own no-lock tiers, and their results are needed
//! synchronously to know what the core runs next.
//!
//! A fast transition never traps into the monitor, so the inner
//! monitor's per-core "current domain" still names the caller. A domain
//! entered through the fast path must *return* before issuing mutating
//! hypercalls: `serve` refuses (Denied) when the SMP view and the inner
//! monitor disagree about who is running on the core, rather than let a
//! hypercall execute with the wrong actor.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

use tyche_core::engine::CapEngine;
use tyche_core::ids::{CapId, DomainId};
use tyche_core::shared::{EpochReadSide, SharedEngine, SHARDS};
use tyche_core::trace::{EventKind, TraceSink};
use tyche_core::RevocationPolicy;
use tyche_hw::cycles::{CycleCounter, PerCoreClocks};

use crate::abi::{MonitorCall, Status};
use crate::monitor::{Arch, CallResult, Monitor};

fn read_lock<T>(l: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    match l.read() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

fn write_lock<T>(l: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    match l.write() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

fn mutex_lock<T>(l: &Mutex<T>) -> MutexGuard<'_, T> {
    match l.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

/// One shard: the real lock serializing conflicting mutations, plus the
/// simulated clock modeling when the shard is next free.
struct Shard {
    lock: Mutex<()>,
    clock: CycleCounter,
}

/// A fast-path stack frame mirrored per core.
struct SmpFrame {
    caller: DomainId,
    fast: bool,
}

/// Per-core SMP state: which domain this core believes it is running,
/// the fast-transition stack, and the validated fast-path cache.
struct SmpCore {
    current: DomainId,
    stack: Vec<SmpFrame>,
    /// `(engine generation, actor, cap)` → `(target, entry)`; valid only
    /// while the generation matches.
    cache: Option<(u64, DomainId, CapId, DomainId, u64)>,
}

/// Aggregate counters, all atomics so workers update them lock-free.
#[derive(Default)]
pub struct SmpStats {
    /// Hypercalls served (all tiers).
    pub calls: AtomicU64,
    /// Mutating hypercalls that went through the inner monitor.
    pub mutations: AtomicU64,
    /// Fast (per-core, no-lock) transitions, one per one-way switch.
    pub fast_transitions: AtomicU64,
    /// Read-only calls served from a snapshot.
    pub snapshot_reads: AtomicU64,
    /// Domain invalidations queued for shootdown (pre-coalescing).
    pub shootdowns_requested: AtomicU64,
    /// Remote IPIs actually sent (post-coalescing).
    pub ipis_sent: AtomicU64,
    /// Mutations that had to wait on a busy shard clock.
    pub shard_waits: AtomicU64,
    /// Calls enqueued into a submission ring.
    pub ring_submitted: AtomicU64,
    /// Ring batches drained (each = one trap crossing, one shard-lock
    /// acquisition, one shootdown round).
    pub ring_batches: AtomicU64,
}

impl SmpStats {
    fn bump(counter: &AtomicU64) {
        // verify: relaxed-ok SMP statistics counter; never synchronizes monitor state
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Reads a counter (for reports).
    pub fn get(counter: &AtomicU64) -> u64 {
        // verify: relaxed-ok report-time read; counters are advisory
        counter.load(Ordering::Relaxed)
    }
}

/// The SMP serving layer. See the module docs for the tier and locking
/// model.
pub struct ConcurrentMonitor {
    inner: RwLock<Monitor>,
    shards: Vec<Shard>,
    cores: Vec<Mutex<SmpCore>>,
    clocks: Arc<PerCoreClocks>,
    /// Per-core invalidation batches: domains whose translations a core
    /// shrank since its last shootdown sync. The shrinking core owns the
    /// batch (like per-CPU TLB gather), which keeps IPI accounting
    /// deterministic — it never depends on which core happens to sync
    /// first.
    pending: Vec<Mutex<BTreeSet<DomainId>>>,
    /// Engine generation after the most recent committed mutation.
    live_gen: AtomicU64,
    /// Epoch read side: published snapshots, one reader pin slot per
    /// core, retire-after-grace reclamation.
    reads: EpochReadSide,
    /// Per-core submission rings of pending mutating calls.
    rings: Vec<Mutex<Vec<MonitorCall>>>,
    /// Ring depth at which `submit` force-drains the ring.
    ring_depth: usize,
    /// Counters.
    pub stats: SmpStats,
    /// Trace sink (clone of the inner monitor's; lock-free to emit into,
    /// so fast-tier events need no inner lock).
    trace: TraceSink,
    arch: Arch,
    trap_cost: u64,
    vmfunc_cost: u64,
    lock_handoff: u64,
    ring_enqueue_cost: u64,
    ring_dispatch_cost: u64,
}

/// What [`ConcurrentMonitor::submit`] did with a call.
#[derive(Debug)]
pub enum RingOutcome {
    /// Enqueued into the core's ring; the value is the ring occupancy
    /// after the push. Results arrive at the next drain.
    Queued(usize),
    /// Not ring-eligible (read tier or transition): served inline.
    Completed(Result<CallResult, Status>),
    /// The push filled the ring and triggered a drain; results for the
    /// whole batch, in submission order.
    Drained(Vec<Result<CallResult, Status>>),
}

impl ConcurrentMonitor {
    /// Default submission-ring depth: deep enough to amortize the trap
    /// crossing well below 10% per entry, shallow enough that a drain's
    /// critical section stays short.
    pub const DEFAULT_RING_DEPTH: usize = 16;

    /// Wraps a booted monitor for SMP serving with the default shard
    /// count and ring depth. Each core's SMP view starts at the domain
    /// the inner monitor has current on that core.
    pub fn new(monitor: Monitor) -> Self {
        Self::with_config(monitor, SHARDS, Self::DEFAULT_RING_DEPTH)
    }

    /// Like [`new`](Self::new) with an explicit shard count (the SMP
    /// benches sweep it). Rounded up to a power of two so routing is a
    /// mask, matching [`SharedEngine::shard_of_n`].
    pub fn with_shards(monitor: Monitor, nshards: usize) -> Self {
        Self::with_config(monitor, nshards, Self::DEFAULT_RING_DEPTH)
    }

    /// Full-control constructor: `nshards` domain shards (at least one,
    /// rounded up to a power of two) and `ring_depth` (at least one) for
    /// the per-core submission rings.
    pub fn with_config(monitor: Monitor, nshards: usize, ring_depth: usize) -> Self {
        let arch = monitor.arch();
        let cost = monitor.machine.cost;
        let trap_cost = match arch {
            Arch::X86 => cost.vmexit_roundtrip,
            Arch::RiscV => cost.mmode_trap_roundtrip,
        };
        let clocks = Arc::clone(&monitor.machine.core_clocks);
        let trace = monitor.trace().clone();
        let gen = monitor.engine.generation();
        let snap = Arc::new(monitor.engine.clone());
        let core_count = monitor.machine.cores;
        let cores = (0..core_count)
            .map(|core| {
                Mutex::new(SmpCore {
                    current: monitor.current_domain(core),
                    stack: Vec::new(),
                    cache: None,
                })
            })
            .collect();
        ConcurrentMonitor {
            inner: RwLock::new(monitor),
            shards: (0..nshards.max(1).next_power_of_two())
                .map(|_| Shard {
                    lock: Mutex::new(()),
                    clock: CycleCounter::new(),
                })
                .collect(),
            cores,
            clocks,
            pending: (0..core_count).map(|_| Mutex::new(BTreeSet::new())).collect(),
            live_gen: AtomicU64::new(gen),
            reads: EpochReadSide::new(gen, snap, core_count.max(1)),
            rings: (0..core_count).map(|_| Mutex::new(Vec::new())).collect(),
            ring_depth: ring_depth.max(1),
            stats: SmpStats::default(),
            trace,
            arch,
            trap_cost,
            vmfunc_cost: cost.vmfunc_switch,
            lock_handoff: cost.lock_handoff,
            ring_enqueue_cost: cost.ring_enqueue,
            ring_dispatch_cost: cost.ring_dispatch,
        }
    }

    /// Number of domain shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Rebuilds the shard table with `nshards` shards (rounded up to a
    /// power of two) and returns the new count.
    ///
    /// Resize protocol (monitor side): the table is only reachable
    /// through `&self` serving paths, so taking `&mut self` *is* the
    /// quiesce point — no core can be mid-hypercall while the exclusive
    /// borrow exists, and the per-core submission rings drain before the
    /// caller can obtain it. Shard mutexes are stateless, so there is
    /// nothing to rehash; the shard *clocks* are stateful, and every new
    /// clock starts at the max of the old ones so discrete-event time
    /// never runs backwards for an operation routed to a different shard
    /// after the resize.
    pub fn resize_shards(&mut self, nshards: usize) -> usize {
        let floor = self
            .shards
            .iter()
            .map(|s| s.clock.now())
            .max()
            .unwrap_or(0);
        let n = nshards.max(1).next_power_of_two();
        self.shards = (0..n)
            .map(|_| {
                let clock = CycleCounter::new();
                clock.advance_to(floor);
                Shard {
                    lock: Mutex::new(()),
                    clock,
                }
            })
            .collect();
        n
    }

    /// The configured submission-ring depth.
    pub fn ring_depth(&self) -> usize {
        self.ring_depth
    }

    /// The epoch read side (reader pins, reclamation counters).
    pub fn epochs(&self) -> &EpochReadSide {
        &self.reads
    }

    /// The shard index a domain maps to in *this* monitor.
    fn shard_index(&self, domain: DomainId) -> usize {
        SharedEngine::shard_of_n(domain, self.shards.len())
    }

    /// Number of modeled cores.
    pub fn cores(&self) -> usize {
        self.cores.len()
    }

    /// The per-core simulated clocks (shared with the inner machine).
    pub fn clocks(&self) -> &PerCoreClocks {
        &self.clocks
    }

    /// The machine makespan so far: max over all core clocks.
    pub fn makespan(&self) -> u64 {
        self.clocks.max_now()
    }

    /// Runs `f` with read access to the inner monitor (blocks mutations
    /// for the duration; use for assertions and teardown, not serving).
    pub fn with_inner<R>(&self, f: impl FnOnce(&Monitor) -> R) -> R {
        f(&read_lock(&self.inner))
    }

    /// Unwraps back into the inner [`Monitor`] (e.g. for a final
    /// `audit()` / `audit_hardware()` pass after workers joined).
    pub fn finish(self) -> Monitor {
        match self.inner.into_inner() {
            Ok(m) => m,
            Err(p) => p.into_inner(),
        }
    }

    /// A point-in-time engine snapshot: the newest published clone from
    /// the epoch read side. One Acquire head load plus an uncontended
    /// slot read — no snapshot-cache mutex, no shard lock, no inner
    /// lock. Every committed mutation publishes before it releases the
    /// inner lock, so the head can lag a mutation only within the same
    /// window a real remote core has before its shootdown lands.
    pub fn snapshot(&self) -> Arc<CapEngine> {
        self.reads.current()
    }

    /// Serves one hypercall issued by the domain running on `core`.
    pub fn serve(&self, core: usize, call: MonitorCall) -> Result<CallResult, Status> {
        if core >= self.cores.len() {
            return Err(Status::InvalidArg);
        }
        SmpStats::bump(&self.stats.calls);
        match call {
            MonitorCall::Enumerate => self.serve_enumerate(core),
            MonitorCall::Enter { cap } => self.serve_enter(core, cap),
            MonitorCall::Return => self.serve_return(core),
            other => self.serve_mutating(core, other),
        }
    }

    /// Read tier: enumerate on a published snapshot, pinned for the
    /// duration. Charges the trap cost to the calling core's clock;
    /// takes no shared lock at all.
    fn serve_enumerate(&self, core: usize) -> Result<CallResult, Status> {
        SmpStats::bump(&self.stats.snapshot_reads);
        let start = self.clocks.now(core);
        self.clocks.charge(core, self.trap_cost);
        let actor = mutex_lock(self.core_state(core)?).current;
        let leaf = MonitorCall::Enumerate.encode().0;
        self.trace
            .emit(core as u32, EventKind::HyperEnter { leaf, actor: actor.0 });
        // Pin this core's epoch slot before loading the head: everything
        // published-then-displaced from here on stays on the retired
        // list until the pin drops, so the borrowed view cannot be
        // reclaimed mid-read however long enumeration takes.
        let _pin = self.reads.pin(core);
        let (gen, snap) = self.reads.current_with_gen();
        self.trace.emit(core as u32, EventKind::SnapRead { gen });
        let res = snap.enumerate(actor).map_err(crate::monitor::cap_status);
        let code = match &res {
            Ok(_) => 0,
            Err(s) => *s as u64,
        };
        let cycles = self.clocks.now(core).saturating_sub(start);
        self.trace
            .emit(core as u32, EventKind::HyperExit { leaf, code, cycles });
        res.map(|resources| CallResult::Count(resources.len() as u64))
    }

    fn core_state(&self, core: usize) -> Result<&Mutex<SmpCore>, Status> {
        self.cores.get(core).ok_or(Status::InvalidArg)
    }

    /// Fast-or-mediated enter. The fast path validates on the snapshot
    /// and touches only this core's state; flush-policy transitions and
    /// non-x86 architectures fall back to the mediated (mutating) tier.
    fn serve_enter(&self, core: usize, cap: CapId) -> Result<CallResult, Status> {
        if self.arch == Arch::X86 {
            let mut state = mutex_lock(self.core_state(core)?);
            let actor = state.current;
            let gen = self.live_gen.load(Ordering::Acquire);
            let hit = match state.cache {
                Some((g, a, c, target, entry)) if g == gen && a == actor && c == cap => {
                    Some((target, entry))
                }
                _ => None,
            };
            let validated = match hit {
                Some(v) => {
                    self.trace.emit(
                        core as u32,
                        EventKind::CacheHit {
                            actor: actor.0,
                            cap: cap.0,
                            gen,
                        },
                    );
                    Some(v)
                }
                None => {
                    let snap = self.snapshot();
                    match snap.can_enter(actor, cap, core) {
                        Ok((target, entry, policy)) if policy == RevocationPolicy::NONE => {
                            state.cache = Some((gen, actor, cap, target, entry));
                            self.trace.emit(
                                core as u32,
                                EventKind::CacheFill {
                                    actor: actor.0,
                                    cap: cap.0,
                                    gen,
                                },
                            );
                            Some((target, entry))
                        }
                        // Flush policies need the monitor in the loop:
                        // fall through to the mediated tier below.
                        Ok(_) => None,
                        Err(e) => return Err(crate::monitor::cap_status(e)),
                    }
                }
            };
            if let Some((target, entry)) = validated {
                self.clocks.charge(core, self.vmfunc_cost);
                state.stack.push(SmpFrame {
                    caller: actor,
                    fast: true,
                });
                state.current = target;
                SmpStats::bump(&self.stats.fast_transitions);
                self.trace.emit(
                    core as u32,
                    EventKind::Enter {
                        from: actor.0,
                        to: target.0,
                        fast: true,
                    },
                );
                return Ok(CallResult::Entered { target, entry });
            }
        }
        self.serve_mutating(core, MonitorCall::Enter { cap })
    }

    /// Return: fast if the top frame was entered fast, mediated
    /// otherwise.
    fn serve_return(&self, core: usize) -> Result<CallResult, Status> {
        let mut state = mutex_lock(self.core_state(core)?);
        match state.stack.last() {
            Some(f) if f.fast => {
                let frame = match state.stack.pop() {
                    Some(f) => f,
                    None => return Err(Status::Denied),
                };
                self.clocks.charge(core, self.vmfunc_cost);
                let leaving = state.current;
                state.current = frame.caller;
                SmpStats::bump(&self.stats.fast_transitions);
                self.trace.emit(
                    core as u32,
                    EventKind::Return {
                        from: leaving.0,
                        to: frame.caller.0,
                        fast: true,
                    },
                );
                Ok(CallResult::Returned { to: frame.caller })
            }
            _ => {
                drop(state);
                self.serve_mutating(core, MonitorCall::Return)
            }
        }
    }

    /// Mutation tier: shard locks in ascending order, then the inner
    /// monitor, with the discrete-event timing described in the module
    /// docs.
    fn serve_mutating(&self, core: usize, call: MonitorCall) -> Result<CallResult, Status> {
        let mut state = mutex_lock(self.core_state(core)?);
        let actor = state.current;
        // One snapshot for the whole involved-set computation, so the
        // set and the loser set come from a single generation (mixing
        // generations across the per-cap lookups under-computed
        // shootdown targets).
        let snap = self.snapshot();
        let (involved, losers) = self.involved_domains(&snap, actor, &call);
        let mut shard_idx: Vec<usize> = involved.iter().map(|&d| self.shard_index(d)).collect();
        shard_idx.sort_unstable();
        shard_idx.dedup();
        let shards: Vec<&Shard> = shard_idx
            .iter()
            .filter_map(|&i| self.shards.get(i))
            .collect();
        let _guards: Vec<MutexGuard<'_, ()>> = shards.iter().map(|s| mutex_lock(&s.lock)).collect();
        let mut inner = write_lock(&self.inner);
        // A fast-entered domain has not trapped into the monitor: the
        // inner monitor still has its caller current on this core, so a
        // mutating hypercall would execute as the wrong actor. It must
        // return first. The refusal still leaves a hypercall bracket in
        // the trace — an attempted mutation the observability layer
        // cannot see is exactly what the trace-completeness argument
        // forbids.
        if inner.current_domain(core) != actor {
            let leaf = call.encode().0;
            self.trace
                .emit(core as u32, EventKind::HyperEnter { leaf, actor: actor.0 });
            self.trace.emit(
                core as u32,
                EventKind::HyperExit {
                    leaf,
                    code: Status::Denied as u64,
                    cycles: 0,
                },
            );
            return Err(Status::Denied);
        }
        // Discrete-event lock timing: start when the core *and* every
        // involved shard are free; pay a hand-off if the shard clocks
        // made us wait.
        let core_now = self.clocks.now(core);
        let mut shard_free = 0;
        let mut busiest_shard = 0u64;
        for (s, &i) in shards.iter().zip(shard_idx.iter()) {
            let now = s.clock.now();
            if now > shard_free {
                shard_free = now;
                busiest_shard = i as u64;
            }
        }
        let mut t0 = core_now.max(shard_free);
        if shard_free > core_now {
            SmpStats::bump(&self.stats.shard_waits);
            self.trace.emit(
                core as u32,
                EventKind::ShardWait {
                    shard: busiest_shard,
                },
            );
            t0 += self.lock_handoff;
        }
        // The inner call charges the machine-global counter; the delta
        // is this operation's cost, re-charged to the core's timeline.
        let before = inner.machine.cycles.now();
        let result = inner.call(core, call);
        let dt = inner.machine.cycles.since(before);
        let end = t0 + dt;
        self.clocks.advance_to(core, end);
        for s in &shards {
            s.clock.advance_to(end);
        }
        // Publish the committed state to the epoch read side before the
        // Release store makes the new generation observable: a reader
        // that sees `live_gen == gen` finds a snapshot at least that new
        // at the head. Failed and read-only calls leave the generation
        // unchanged and skip the clone.
        let gen = inner.engine.generation();
        if gen != self.live_gen.load(Ordering::Acquire) {
            self.reads.publish(gen, Arc::new(inner.engine.clone()));
        }
        self.live_gen.store(gen, Ordering::Release);
        SmpStats::bump(&self.stats.mutations);
        // Mirror mediated transitions into the SMP view.
        match &result {
            Ok(CallResult::Entered { target, .. }) => {
                state.stack.push(SmpFrame {
                    caller: actor,
                    fast: false,
                });
                state.current = *target;
            }
            Ok(CallResult::Returned { to }) => {
                state.stack.pop();
                state.current = *to;
            }
            _ => {}
        }
        drop(inner);
        drop(state);
        // Translation-shrinking ops queue the domains that *lost* access
        // for a batched cross-core shootdown instead of IPI-ing inline.
        if result.is_ok() && !losers.is_empty() {
            // `core` was validated by `core_state` above; `get` keeps the
            // no-panic discipline anyway.
            if let Some(batch) = self.pending.get(core) {
                let mut pending = mutex_lock(batch);
                for d in losers {
                    SmpStats::bump(&self.stats.shootdowns_requested);
                    if pending.insert(d) {
                        self.trace
                            .emit(core as u32, EventKind::ShootQueue { domain: d.0 });
                    }
                }
            }
        }
        result
    }

    /// Submits a call through `core`'s doorbell ring. Read-tier and
    /// transition calls are served inline — they have their own no-lock
    /// tiers and the core needs their results synchronously — and
    /// everything else is enqueued (core-local `ring_enqueue` cost) to
    /// be served in submission order at the next drain. Reaching the
    /// configured ring depth force-drains inline.
    pub fn submit(&self, core: usize, call: MonitorCall) -> RingOutcome {
        match call {
            MonitorCall::Enumerate | MonitorCall::Enter { .. } | MonitorCall::Return => {
                RingOutcome::Completed(self.serve(core, call))
            }
            mutating => {
                let ring_cell = match self.rings.get(core) {
                    Some(r) => r,
                    None => return RingOutcome::Completed(Err(Status::InvalidArg)),
                };
                self.clocks.charge(core, self.ring_enqueue_cost);
                SmpStats::bump(&self.stats.ring_submitted);
                let occupancy = {
                    let mut ring = mutex_lock(ring_cell);
                    ring.push(mutating);
                    ring.len()
                };
                if occupancy >= self.ring_depth {
                    RingOutcome::Drained(self.ring_doorbell(core))
                } else {
                    RingOutcome::Queued(occupancy)
                }
            }
        }
    }

    /// Rings `core`'s doorbell: drains every queued call as one batch —
    /// one trap crossing, one shard-lock acquisition over the batch's
    /// involved-set union, at most one lock hand-off, and one coalesced
    /// shootdown round delivered before returning — and returns the
    /// per-call results in submission order. Empty ring ⇒ empty vec.
    pub fn ring_doorbell(&self, core: usize) -> Vec<Result<CallResult, Status>> {
        let queued: Vec<MonitorCall> = match self.rings.get(core) {
            Some(ring_cell) => std::mem::take(&mut *mutex_lock(ring_cell)),
            None => Vec::new(),
        };
        if queued.is_empty() {
            return Vec::new();
        }
        match self.serve_batch(core, &queued) {
            Ok(results) => results,
            Err(status) => queued.iter().map(|_| Err(status)).collect(),
        }
    }

    /// Serves one drained batch. Same locking story as the single-call
    /// mutating tier, paid once: the shard locks cover the union of
    /// every entry's involved set at one generation (a superset of any
    /// per-entry set, so still conservative), and the timing model
    /// charges one trap crossing plus per-entry dispatch overhead
    /// instead of a trap per call.
    fn serve_batch(
        &self,
        core: usize,
        batch: &[MonitorCall],
    ) -> Result<Vec<Result<CallResult, Status>>, Status> {
        let state = mutex_lock(self.core_state(core)?);
        let actor = state.current;
        // One snapshot for the whole batch: the union is computed at a
        // single generation. Intra-batch mutations may shift ownership
        // mid-batch — the shard locks only model contention, so a
        // pre-batch union stays safe; shootdown targets are recomputed
        // per entry against the live engine below.
        let snap = self.snapshot();
        let mut involved: BTreeSet<DomainId> = BTreeSet::new();
        for call in batch {
            let (inv, _) = self.involved_domains(&snap, actor, call);
            involved.extend(inv);
        }
        let mut shard_idx: Vec<usize> = involved.iter().map(|&d| self.shard_index(d)).collect();
        shard_idx.sort_unstable();
        shard_idx.dedup();
        let shards: Vec<&Shard> = shard_idx
            .iter()
            .filter_map(|&i| self.shards.get(i))
            .collect();
        let guards: Vec<MutexGuard<'_, ()>> = shards.iter().map(|s| mutex_lock(&s.lock)).collect();
        let mut inner = write_lock(&self.inner);
        // Same refusal rule as the single-call tier: a fast-entered
        // domain must return before mutating. Each refused entry still
        // leaves a hypercall bracket in the trace.
        if inner.current_domain(core) != actor {
            for call in batch {
                let leaf = call.encode().0;
                self.trace
                    .emit(core as u32, EventKind::HyperEnter { leaf, actor: actor.0 });
                self.trace.emit(
                    core as u32,
                    EventKind::HyperExit {
                        leaf,
                        code: Status::Denied as u64,
                        cycles: 0,
                    },
                );
            }
            return Ok(batch.iter().map(|_| Err(Status::Denied)).collect());
        }
        let core_now = self.clocks.now(core);
        let mut shard_free = 0;
        let mut busiest_shard = 0u64;
        for (s, &i) in shards.iter().zip(shard_idx.iter()) {
            let now = s.clock.now();
            if now > shard_free {
                shard_free = now;
                busiest_shard = i as u64;
            }
        }
        let mut t0 = core_now.max(shard_free);
        if shard_free > core_now {
            SmpStats::bump(&self.stats.shard_waits);
            self.trace.emit(
                core as u32,
                EventKind::ShardWait {
                    shard: busiest_shard,
                },
            );
            t0 += self.lock_handoff;
        }
        // One doorbell trap crossing for the whole batch; each entry
        // then pays its operation cost *minus* the per-call trap the
        // inner monitor charges, plus the ring dispatch overhead.
        let mut t_end = t0 + self.trap_cost;
        let mut results = Vec::with_capacity(batch.len());
        let mut all_losers: BTreeSet<DomainId> = BTreeSet::new();
        for call in batch {
            SmpStats::bump(&self.stats.calls);
            // Shootdown targets come from the live engine state this
            // entry actually executes against: an earlier entry in the
            // same batch may already have moved ownership.
            let (_, call_losers) = self.involved_domains(&inner.engine, actor, call);
            let before = inner.machine.cycles.now();
            let result = inner.call(core, *call);
            let dt = inner.machine.cycles.since(before);
            t_end += dt.saturating_sub(self.trap_cost) + self.ring_dispatch_cost;
            SmpStats::bump(&self.stats.mutations);
            if result.is_ok() {
                all_losers.extend(call_losers);
            }
            results.push(result);
        }
        let gen = inner.engine.generation();
        if gen != self.live_gen.load(Ordering::Acquire) {
            self.reads.publish(gen, Arc::new(inner.engine.clone()));
        }
        self.live_gen.store(gen, Ordering::Release);
        self.clocks.advance_to(core, t_end);
        for s in &shards {
            s.clock.advance_to(t_end);
        }
        SmpStats::bump(&self.stats.ring_batches);
        drop(inner);
        drop(state);
        // The shard guards must go before the sync below: it takes other
        // cores' state locks (rank below the shards), and a core waiting
        // on one of our shards could be holding its own state lock.
        drop(guards);
        if !all_losers.is_empty() {
            if let Some(pending_cell) = self.pending.get(core) {
                let mut pending = mutex_lock(pending_cell);
                for d in all_losers {
                    SmpStats::bump(&self.stats.shootdowns_requested);
                    if pending.insert(d) {
                        self.trace
                            .emit(core as u32, EventKind::ShootQueue { domain: d.0 });
                    }
                }
            }
        }
        // A batch is an explicit flush boundary: its invalidations are
        // already coalesced, so deliver the shootdown round now instead
        // of leaving the gather window open.
        self.sync_shootdowns(core);
        Ok(results)
    }

    /// The domains a call touches, for shard locking, plus the subset
    /// that *loses* translations (shootdown targets), all computed
    /// against the **one** engine state the caller passes in — never a
    /// fresh snapshot per cap, which could mix generations within a
    /// single involved-set computation and under-compute shootdown
    /// targets. The involved set is conservative — a superset is always
    /// safe, since the inner lock guarantees correctness and shards only
    /// model contention — but tight enough that distinct-domain
    /// workloads stay disjoint. The loser set mirrors the backends'
    /// flush rule: map-only changes (share, split, create) never shoot
    /// down; grant strips the granter, revoke strips the subtree owners,
    /// kill strips the dead domain.
    fn involved_domains(
        &self,
        snap: &CapEngine,
        actor: DomainId,
        call: &MonitorCall,
    ) -> (BTreeSet<DomainId>, BTreeSet<DomainId>) {
        let mut set = BTreeSet::new();
        let mut losers = BTreeSet::new();
        set.insert(actor);
        match call {
            MonitorCall::Share { cap, target, .. } => {
                set.insert(*target);
                if let Some(c) = snap.cap(*cap) {
                    set.insert(c.owner);
                }
            }
            MonitorCall::Grant { cap, target, .. } => {
                set.insert(*target);
                if let Some(c) = snap.cap(*cap) {
                    set.insert(c.owner);
                    if matches!(c.resource, tyche_core::Resource::Memory(_)) {
                        losers.insert(c.owner);
                    }
                }
            }
            MonitorCall::Revoke { cap } => {
                // Owners across the revoked subtree, all from the same
                // generation.
                let mut stack = vec![*cap];
                while let Some(id) = stack.pop() {
                    if let Some(c) = snap.cap(id) {
                        set.insert(c.owner);
                        if c.active && matches!(c.resource, tyche_core::Resource::Memory(_)) {
                            losers.insert(c.owner);
                        }
                        stack.extend(c.children.iter().copied());
                    }
                }
            }
            MonitorCall::Kill { domain } => {
                set.insert(*domain);
                losers.insert(*domain);
            }
            MonitorCall::Seal { domain, .. }
            | MonitorCall::SetEntry { domain, .. }
            | MonitorCall::RecordContent { domain, .. }
            | MonitorCall::Attest { domain, .. } => {
                set.insert(*domain);
            }
            MonitorCall::MakeTransition { target, .. } => {
                set.insert(*target);
            }
            MonitorCall::Enter { cap } => {
                if let Some(c) = snap.cap(*cap) {
                    if let tyche_core::Resource::Transition(t) = c.resource {
                        set.insert(t);
                    }
                }
            }
            MonitorCall::Split { .. }
            | MonitorCall::CreateDomain
            | MonitorCall::Return
            | MonitorCall::Enumerate => {}
        }
        (set, losers)
    }

    /// Drains `core`'s own invalidation batch and delivers one batched
    /// IPI round: every *other* core currently running an affected domain
    /// gets one IPI + remote flush, however many invalidations coalesced
    /// into the batch. Returns the number of IPIs sent. Each core flushes
    /// only what it shrank — the TLB-gather discipline — so IPI counts
    /// are a function of the workload, not of sync interleaving.
    pub fn sync_shootdowns(&self, core: usize) -> usize {
        let affected: BTreeSet<DomainId> = match self.pending.get(core) {
            Some(batch) => std::mem::take(&mut *mutex_lock(batch)),
            None => return 0,
        };
        if affected.is_empty() {
            return 0;
        }
        // Snapshot each core's current domain one lock at a time (no
        // nested core locks, so this cannot deadlock against workers).
        let mut targets = Vec::new();
        for (i, slot) in self.cores.iter().enumerate() {
            if i == core {
                continue;
            }
            let st = mutex_lock(slot);
            if affected.contains(&st.current) {
                targets.push(i);
            }
        }
        let sent = if targets.is_empty() {
            0
        } else {
            let m = read_lock(&self.inner);
            m.machine.shootdown(core, &targets)
        };
        // The batch event closes the core's gather window even when no
        // remote core was running an affected domain (zero IPIs) — the
        // RV shootdown checker keys on it.
        self.trace.emit(
            core as u32,
            EventKind::ShootBatch {
                drained: affected.len() as u64,
                ipis: sent as u64,
            },
        );
        for _ in 0..sent {
            SmpStats::bump(&self.stats.ipis_sent);
        }
        sent
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boot::{boot_x86, BootConfig};
    use tyche_core::{MemRegion, Resource, Rights, SealPolicy};

    /// Boots, creates one sealed child per core (each owning its core and
    /// a private memory window), and returns the wrapper plus per-core
    /// (domain, transition cap) pairs.
    fn smp_fixture() -> (ConcurrentMonitor, Vec<(DomainId, CapId)>) {
        let mut m = boot_x86(BootConfig::default());
        let root = m.engine.root().unwrap();
        let cores = m.machine.cores;
        let mut out = Vec::new();
        for core in 0..cores {
            let base = 0x40_0000 + (core as u64) * 0x10_000;
            let (child, gate) = m.engine.create_domain(root).unwrap();
            let ram_cap = m
                .engine
                .caps_of(root)
                .iter()
                .find(|c| {
                    c.active
                        && matches!(c.resource, Resource::Memory(r)
                            if r.start <= base && base + 0x10_000 <= r.end)
                })
                .map(|c| c.id)
                .unwrap();
            m.engine
                .share(
                    root,
                    ram_cap,
                    child,
                    Some(MemRegion::new(base, base + 0x10_000)),
                    Rights::RWX,
                    RevocationPolicy::NONE,
                )
                .unwrap();
            let core_cap = m
                .engine
                .caps_of(root)
                .iter()
                .find(|c| c.active && matches!(c.resource, Resource::CpuCore(n) if n == core))
                .map(|c| c.id)
                .unwrap();
            m.engine
                .share(root, core_cap, child, None, Rights::USE, RevocationPolicy::NONE)
                .unwrap();
            m.engine.set_entry(root, child, base).unwrap();
            m.engine.seal(root, child, SealPolicy::strict()).unwrap();
            m.sync_effects().unwrap();
            out.push((child, gate));
        }
        (ConcurrentMonitor::new(m), out)
    }

    #[test]
    fn fast_transitions_stay_per_core() {
        let (cm, doms) = smp_fixture();
        let (_, cap0) = doms[0];
        let before_other = cm.clocks().now(1);
        match cm.serve(0, MonitorCall::Enter { cap: cap0 }) {
            Ok(CallResult::Entered { .. }) => {}
            other => panic!("fast enter failed: {other:?}"),
        }
        match cm.serve(0, MonitorCall::Return) {
            Ok(CallResult::Returned { .. }) => {}
            other => panic!("fast return failed: {other:?}"),
        }
        assert_eq!(SmpStats::get(&cm.stats.fast_transitions), 2);
        assert_eq!(SmpStats::get(&cm.stats.mutations), 0);
        let vmfunc = tyche_hw::cycles::CostModel::default_model().vmfunc_switch;
        assert_eq!(cm.clocks().now(0), 2 * vmfunc);
        assert_eq!(cm.clocks().now(1), before_other, "core 1 untouched");
    }

    #[test]
    fn mutating_call_denied_while_fast_entered() {
        let (cm, doms) = smp_fixture();
        let (_, cap0) = doms[0];
        cm.serve(0, MonitorCall::Enter { cap: cap0 }).unwrap();
        // The fast-entered child never trapped in; the inner monitor
        // still has root current. Mutations must be refused, not run as
        // the wrong actor — and the refusal must still leave a
        // HyperEnter/HyperExit bracket, or the RV replay would never see
        // the attempt.
        cm.trace.enable(cm.cores());
        assert_eq!(
            cm.serve(0, MonitorCall::CreateDomain),
            Err(Status::Denied)
        );
        let leaf = MonitorCall::CreateDomain.encode().0;
        let events = cm.trace.drain();
        assert!(
            events
                .events()
                .iter()
                .any(|e| matches!(e.kind, EventKind::HyperEnter { leaf: l, .. } if l == leaf)),
            "denied mutation left no HyperEnter: {events:?}"
        );
        assert!(
            events.events().iter().any(|e| matches!(
                e.kind,
                EventKind::HyperExit { leaf: l, code, .. }
                    if l == leaf && code == Status::Denied as u64
            )),
            "denied mutation left no HyperExit with the Denied code: {events:?}"
        );
        cm.trace.disable();
        cm.serve(0, MonitorCall::Return).unwrap();
        assert!(matches!(
            cm.serve(0, MonitorCall::CreateDomain),
            Ok(CallResult::NewDomain { .. })
        ));
    }

    #[test]
    fn concurrent_serving_stays_auditable() {
        let (cm, doms) = smp_fixture();
        let cm = Arc::new(cm);
        let workers: Vec<_> = (0..cm.cores())
            .map(|core| {
                let cm = Arc::clone(&cm);
                let (_, cap) = doms[core];
                std::thread::spawn(move || {
                    for _ in 0..20 {
                        cm.serve(core, MonitorCall::Enter { cap }).unwrap();
                        cm.serve(core, MonitorCall::Return).unwrap();
                        match cm.serve(core, MonitorCall::CreateDomain) {
                            Ok(CallResult::NewDomain { domain, .. }) => {
                                cm.serve(core, MonitorCall::Kill { domain }).unwrap();
                            }
                            other => panic!("create failed: {other:?}"),
                        }
                        cm.serve(core, MonitorCall::Enumerate).unwrap();
                        cm.sync_shootdowns(core);
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        let cm = Arc::try_unwrap(cm).ok().expect("workers joined");
        let monitor = cm.finish();
        assert!(tyche_core::audit::audit(&monitor.engine).is_empty());
        assert!(monitor.audit_hardware().is_empty());
    }

    #[test]
    fn revoke_triggers_coalesced_shootdown() {
        let (cm, doms) = smp_fixture();
        let (d1, cap1) = doms[1];
        // Core 1 fast-enters its domain so a shootdown can target it.
        cm.serve(1, MonitorCall::Enter { cap: cap1 }).unwrap();
        // Root on core 0 revokes two of d1's capabilities; both queue
        // invalidations, but one sync sends a single IPI to core 1.
        let caps: Vec<CapId> = cm
            .snapshot()
            .caps_of(d1)
            .iter()
            .filter(|c| matches!(c.resource, tyche_core::Resource::Memory(_)))
            .map(|c| c.id)
            .collect();
        for cap in caps {
            cm.serve(0, MonitorCall::Revoke { cap }).unwrap();
        }
        assert!(SmpStats::get(&cm.stats.shootdowns_requested) >= 1);
        let sent = cm.sync_shootdowns(0);
        assert_eq!(sent, 1, "batched invalidations coalesce to one IPI");
        assert_eq!(cm.sync_shootdowns(0), 0, "pending set drained");
    }

    /// Regression test for the torn-snapshot bug: `involved_domains`
    /// used to call `self.snapshot()` separately per cap, so a mutation
    /// committing between the lookups could make one computation mix
    /// two generations. The fixed signature takes the snapshot as a
    /// parameter, which makes the result a pure function of one
    /// generation — interleaved mutations (modeled both with a real
    /// served call and with the corruption hooks) must not change it.
    #[test]
    fn involved_set_computed_at_one_generation() {
        let (cm, doms) = smp_fixture();
        let (d1, _) = doms[1];
        let root = cm.with_inner(|m| m.engine.root().unwrap());
        let snap = cm.snapshot();
        let cap = snap
            .caps_of(d1)
            .iter()
            .find(|c| matches!(c.resource, Resource::Memory(_)))
            .map(|c| c.id)
            .unwrap();
        let call = MonitorCall::Revoke { cap };
        let before = cm.involved_domains(&snap, root, &call);
        assert!(before.0.contains(&d1), "owner of the revoked cap is involved");
        assert!(before.1.contains(&d1), "memory revocation shoots d1 down");
        // A mutation interleaves: the cap is revoked for real. The
        // computation against the *held* snapshot must not change.
        cm.serve(0, call).unwrap();
        let after = cm.involved_domains(&snap, root, &call);
        assert_eq!(before, after, "one snapshot in => one generation out");
        // Same property under the corruption hooks: tampering a clone
        // (the interleaved-mutation stand-in the pre-fix code could
        // have observed mid-computation) changes the answer, proving
        // the per-cap re-snapshot really could tear the set...
        let mut tampered = (*snap).clone();
        if let Some(c) = tampered.corrupt_cap(cap) {
            c.owner = root;
        }
        let torn = cm.involved_domains(&tampered, root, &call);
        assert_ne!(before, torn, "a different generation gives a different set");
        // ...while the held snapshot still answers as before.
        assert_eq!(cm.involved_domains(&snap, root, &call), before);
    }

    #[test]
    fn ring_batch_amortizes_trap_crossings() {
        let (cm, _doms) = smp_fixture();
        let n = cm.ring_depth();
        // Fill the ring: the first n-1 submissions queue, the n-th
        // force-drains the whole batch.
        for i in 0..n - 1 {
            match cm.submit(0, MonitorCall::CreateDomain) {
                RingOutcome::Queued(occ) => assert_eq!(occ, i + 1),
                other => panic!("expected Queued, got {other:?}"),
            }
        }
        let results = match cm.submit(0, MonitorCall::CreateDomain) {
            RingOutcome::Drained(r) => r,
            other => panic!("expected Drained, got {other:?}"),
        };
        assert_eq!(results.len(), n);
        for r in &results {
            assert!(matches!(r, Ok(CallResult::NewDomain { .. })), "{r:?}");
        }
        assert_eq!(SmpStats::get(&cm.stats.ring_batches), 1);
        assert_eq!(SmpStats::get(&cm.stats.ring_submitted), n as u64);
        assert_eq!(SmpStats::get(&cm.stats.mutations), n as u64);
        let ring_cost = cm.clocks().now(0);
        // The same calls through the single-call tier on a fresh,
        // identical fixture: deterministic costs, so the saving is
        // exactly (n-1) trap crossings minus the ring overhead.
        let (cm2, _doms2) = smp_fixture();
        for _ in 0..n {
            cm2.serve(0, MonitorCall::CreateDomain).unwrap();
        }
        let solo_cost = cm2.clocks().now(0);
        let m = tyche_hw::cycles::CostModel::default_model();
        assert!(ring_cost < solo_cost, "batching must be cheaper");
        assert_eq!(
            solo_cost - ring_cost,
            (n as u64 - 1) * m.vmexit_roundtrip
                - n as u64 * (m.ring_enqueue + m.ring_dispatch),
            "batch pays one trap, plus per-entry enqueue+dispatch"
        );
    }

    #[test]
    fn ring_drain_coalesces_shootdowns_and_syncs() {
        let (cm, doms) = smp_fixture();
        let (d1, cap1) = doms[1];
        // Core 1 fast-enters its domain so a shootdown can target it.
        cm.serve(1, MonitorCall::Enter { cap: cap1 }).unwrap();
        let caps: Vec<CapId> = cm
            .snapshot()
            .caps_of(d1)
            .iter()
            .filter(|c| matches!(c.resource, tyche_core::Resource::Memory(_)))
            .map(|c| c.id)
            .collect();
        assert!(!caps.is_empty());
        for cap in caps {
            match cm.submit(0, MonitorCall::Revoke { cap }) {
                RingOutcome::Queued(_) => {}
                other => panic!("expected Queued, got {other:?}"),
            }
        }
        let results = cm.ring_doorbell(0);
        assert!(results.iter().all(Result::is_ok), "{results:?}");
        // The drain is its own flush boundary: the coalesced IPI went
        // out with the batch, nothing is left to sync.
        assert_eq!(SmpStats::get(&cm.stats.ipis_sent), 1);
        assert_eq!(cm.sync_shootdowns(0), 0, "gather window already closed");
        assert!(cm.ring_doorbell(0).is_empty(), "ring fully drained");
    }

    #[test]
    fn ring_refused_while_fast_entered() {
        let (cm, doms) = smp_fixture();
        let (_, cap0) = doms[0];
        cm.serve(0, MonitorCall::Enter { cap: cap0 }).unwrap();
        match cm.submit(0, MonitorCall::CreateDomain) {
            RingOutcome::Queued(1) => {}
            other => panic!("expected Queued(1), got {other:?}"),
        }
        let results = cm.ring_doorbell(0);
        assert_eq!(results, vec![Err(Status::Denied)]);
        assert!(cm.ring_doorbell(0).is_empty(), "refused batch is not requeued");
        cm.serve(0, MonitorCall::Return).unwrap();
        cm.submit(0, MonitorCall::CreateDomain);
        let retried = cm.ring_doorbell(0);
        assert!(matches!(retried.first(), Some(Ok(CallResult::NewDomain { .. }))));
    }

    #[test]
    fn ring_results_in_submission_order_and_inline_tiers() {
        let (cm, doms) = smp_fixture();
        let (d1, _) = doms[1];
        // Read-tier calls bypass the ring entirely.
        match cm.submit(0, MonitorCall::Enumerate) {
            RingOutcome::Completed(Ok(CallResult::Count(_))) => {}
            other => panic!("expected inline Completed, got {other:?}"),
        }
        cm.submit(0, MonitorCall::CreateDomain);
        cm.submit(
            0,
            MonitorCall::MakeTransition {
                target: d1,
                policy: RevocationPolicy::NONE,
            },
        );
        let results = cm.ring_doorbell(0);
        assert_eq!(results.len(), 2, "inline enumerate never entered the ring");
        assert!(matches!(results[0], Ok(CallResult::NewDomain { .. })), "{results:?}");
        assert!(matches!(results[1], Ok(CallResult::Cap(_))), "{results:?}");
    }

    #[test]
    fn enumerate_pins_epoch_across_publication_storm() {
        let (cm, _doms) = smp_fixture();
        // A storm of committed mutations publishes a snapshot each; with
        // no reader pinned they reclaim as they retire.
        for _ in 0..8 {
            cm.serve(0, MonitorCall::CreateDomain).unwrap();
        }
        assert!(cm.epochs().published() >= 8);
        assert_eq!(cm.epochs().retired_len(), 0, "no pins => retirees reclaimed");
        // A pinned reader holds the horizon while further publications
        // displace slots under it.
        let pin = cm.epochs().pin(1);
        let view = cm.snapshot();
        let doms_before = view.domains().count();
        for _ in 0..8 {
            cm.serve(0, MonitorCall::CreateDomain).unwrap();
        }
        assert!(cm.epochs().retired_len() > 0, "pin defers reclamation");
        assert_eq!(view.domains().count(), doms_before, "pinned view is stable");
        drop(pin);
        cm.epochs().reclaim();
        assert_eq!(cm.epochs().retired_len(), 0);
    }
}
