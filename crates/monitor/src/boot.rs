//! Measured boot (§3.4 tier 1).
//!
//! The boot sequence models what TXT (x86) or a first-stage boot ROM
//! (RISC-V) does before the monitor gets control:
//!
//! 1. the monitor image is loaded into the reserved region of RAM,
//! 2. the TPM measures it and extends PCR 17,
//! 3. the monitor's configuration (cost model, core count — anything that
//!    changes behaviour) is measured into PCR 18,
//! 4. the monitor creates the initial domain and endows it with the whole
//!    machine: all domain RAM, every CPU core, every registered device,
//! 5. control drops to the initial domain (the unmodified OS in the
//!    paper's prototype).
// Approved panic paths: every `expect(` in this module is budgeted,
// with a reviewed reason, in crates/verify/allowlist.toml.
#![allow(clippy::expect_used)]

use crate::attest::expected_pcr_for;
use crate::backend::riscv::RiscvBackend;
use crate::backend::x86::X86Backend;
use crate::monitor::{Arch, Monitor};
use tyche_core::prelude::*;
use tyche_crypto::sign::SigningKey;
use tyche_crypto::Digest;
use tyche_hw::addr::PhysRange;
use tyche_hw::machine::{Machine, MachineConfig};
use tyche_hw::tpm::{measure_range, PCR_CONFIG, PCR_MONITOR};

/// The simulated monitor image: deterministic bytes standing in for the
/// compiled monitor binary. Version changes change the measurement, which
/// is exactly how verifiers notice a different monitor.
pub const MONITOR_VERSION: &str = "tyche-repro-monitor v1.0.0";

/// Boot-time configuration.
#[derive(Clone, Debug)]
pub struct BootConfig {
    /// Machine shape.
    pub machine: MachineConfig,
    /// PCI devices present at boot (endowed to the initial domain).
    pub devices: Vec<u16>,
    /// Interrupt vectors endowed to the initial domain (routable onward
    /// as capabilities).
    pub irq_vectors: Vec<u32>,
    /// Monitor version string (changes the measurement).
    pub version: &'static str,
}

impl Default for BootConfig {
    fn default() -> Self {
        BootConfig {
            machine: MachineConfig::default(),
            devices: Vec::new(),
            irq_vectors: (32..48).collect(),
            version: MONITOR_VERSION,
        }
    }
}

/// Synthesizes the monitor image bytes for `version` (one page).
fn monitor_image(version: &str) -> Vec<u8> {
    let mut image = Vec::with_capacity(4096);
    while image.len() < 4096 {
        image.extend_from_slice(version.as_bytes());
        image.push(0);
    }
    image.truncate(4096);
    image
}

/// The measurement a verifier expects for a given monitor version — the
/// "known expected value" of §3.4, derivable from the open-source build.
pub fn expected_monitor_measurement(version: &str) -> Digest {
    tyche_crypto::hash(&monitor_image(version))
}

/// The expected PCR 17 value for a monitor version.
pub fn expected_monitor_pcr(version: &str) -> Digest {
    expected_pcr_for(expected_monitor_measurement(version))
}

/// Shared boot steps 1–4; returns the pieces `Monitor::assemble` needs.
fn boot_common(config: &BootConfig) -> (Machine, CapEngine, DomainId, SigningKey, Digest) {
    let mut machine = Machine::new(config.machine.clone());

    // Step 1: load the monitor image into the first frame of the reserved
    // region (claimed from the allocator so table frames never clobber it).
    let image = monitor_image(config.version);
    let image_base = machine
        .monitor_frames
        .alloc()
        .expect("reserved region holds the image");
    machine
        .mem
        .write(image_base, &image)
        .expect("reserved region holds the image");

    // Step 2: measure the image into PCR 17.
    let image_range = PhysRange::from_len(image_base, image.len() as u64);
    let measurement = measure_range(&machine.mem, image_range);
    machine
        .tpm
        .extend(PCR_MONITOR, "monitor-image", measurement);

    // Step 3: measure configuration into PCR 18.
    let mut cfg = Vec::new();
    cfg.extend_from_slice(&(machine.cores as u64).to_le_bytes());
    cfg.extend_from_slice(&machine.mem.size().to_le_bytes());
    cfg.extend_from_slice(&machine.cost.vmfunc_switch.to_le_bytes());
    let cfg_digest = tyche_crypto::hash(&cfg);
    machine.tpm.extend(PCR_CONFIG, "monitor-config", cfg_digest);

    // The monitor's attestation key: derived from TPM-held entropy, as a
    // sealed key released only to the measured monitor would be. Fault
    // plans are armed post-boot, so boot-time entropy is an invariant —
    // a machine whose TPM cannot seed the monitor key cannot boot.
    let key_seed = machine.tpm.fresh_nonce().expect("boot-time entropy");
    let sign_key = SigningKey::derive(&key_seed, "monitor-report-key");

    // Step 4: initial domain owns the machine.
    let mut engine = CapEngine::new();
    let root = engine.create_root_domain();
    engine
        .endow(
            root,
            Resource::mem(0, machine.domain_ram.end.as_u64()),
            Rights::RWX,
        )
        .expect("endow RAM");
    for core in 0..machine.cores {
        engine
            .endow(root, Resource::CpuCore(core), Rights::USE)
            .expect("endow core");
    }
    for dev in &config.devices {
        engine
            .endow(root, Resource::Device(*dev), Rights::USE)
            .expect("endow device");
    }
    for v in &config.irq_vectors {
        engine
            .endow(root, Resource::Interrupt(*v), Rights::USE)
            .expect("endow vector");
    }
    (machine, engine, root, sign_key, measurement)
}

/// Boots the monitor on the x86 (VT-x) platform.
///
/// # Panics
///
/// Panics if the machine cannot hold the monitor image or translation
/// tables — a configuration error, not a runtime condition.
pub fn boot_x86(config: BootConfig) -> Monitor {
    let (mut machine, mut engine, root, sign_key, measurement) = boot_common(&config);
    let mut backend = X86Backend::new(&mut machine).expect("EPTP list allocation");
    for fx in engine.drain_effects() {
        backend
            .apply(&mut machine, &engine, &fx)
            .expect("boot effects are realizable");
    }
    Monitor::assemble(
        machine,
        engine,
        Arch::X86,
        Some(backend),
        None,
        root,
        sign_key,
        measurement,
    )
}

/// Boots the monitor on the RISC-V (machine mode + PMP) platform.
///
/// # Panics
///
/// Panics if boot effects are not realizable (the whole-RAM initial
/// endowment is a single segment, so it always fits PMP).
pub fn boot_riscv(config: BootConfig) -> Monitor {
    assert!(
        config.devices.is_empty(),
        "the PMP backend does not support device isolation"
    );
    let (mut machine, mut engine, root, sign_key, measurement) = boot_common(&config);
    let mut backend = RiscvBackend::new(&machine);
    for fx in engine.drain_effects() {
        backend
            .apply(&mut machine, &engine, &fx)
            .expect("boot effects are realizable");
    }
    // Step 5: drop every hart into S-mode running the initial domain, so
    // PMP checks bind from the first instruction.
    for core in 0..machine.cores {
        backend
            .enter_domain(&mut machine, root, core, 0)
            .expect("initial layout fits PMP");
    }
    Monitor::assemble(
        machine,
        engine,
        Arch::RiscV,
        None,
        Some(backend),
        root,
        sign_key,
        measurement,
    )
}

/// Verifies that the machine's reserved region still contains the exact
/// monitor image (used by integrity tests).
pub fn monitor_image_intact(monitor: &Monitor) -> bool {
    let base = monitor.machine.domain_ram.end;
    let range = PhysRange::from_len(base, 4096);
    measure_range(&monitor.machine.mem, range) == monitor.measurement()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tyche_hw::tpm::replay_log;

    #[test]
    fn boot_measures_monitor() {
        let m = boot_x86(BootConfig::default());
        assert_eq!(
            m.measurement(),
            expected_monitor_measurement(MONITOR_VERSION)
        );
        assert_eq!(
            m.machine.tpm.read_pcr(PCR_MONITOR),
            expected_monitor_pcr(MONITOR_VERSION)
        );
        assert!(monitor_image_intact(&m));
    }

    #[test]
    fn different_version_different_pcr() {
        let good = boot_x86(BootConfig::default());
        let evil = boot_x86(BootConfig {
            version: "evil-monitor v6.6.6",
            ..Default::default()
        });
        assert_ne!(
            good.machine.tpm.read_pcr(PCR_MONITOR),
            evil.machine.tpm.read_pcr(PCR_MONITOR)
        );
    }

    #[test]
    fn event_log_replays() {
        let m = boot_x86(BootConfig::default());
        assert!(replay_log(
            m.machine.tpm.event_log(),
            &[
                (PCR_MONITOR, m.machine.tpm.read_pcr(PCR_MONITOR)),
                (PCR_CONFIG, m.machine.tpm.read_pcr(PCR_CONFIG)),
            ]
        ));
    }

    #[test]
    fn root_owns_machine() {
        let m = boot_x86(BootConfig {
            devices: vec![7],
            ..Default::default()
        });
        let root = m.engine.root().unwrap();
        assert_eq!(m.current_domain(0), root);
        assert!(m.engine.owns_core(root, 0));
        assert!(m.engine.owns_device(root, 7));
        let end = m.machine.domain_ram.end.as_u64();
        assert!(m
            .engine
            .refcount_mem_full(tyche_core::MemRegion::new(0, end))
            .is_exclusive());
    }

    #[test]
    fn riscv_boot_works() {
        let m = boot_riscv(BootConfig::default());
        assert_eq!(m.arch(), crate::Arch::RiscV);
        let root = m.engine.root().unwrap();
        assert!(m.riscv_backend().unwrap().layout(root).is_some());
    }
}
