//! The monitor runtime: call dispatch, mediated transitions, fast
//! transitions, and memory access on behalf of the running domain.
//!
//! The monitor is the *executive* branch only (§3): it validates and
//! enforces policies that running domains define through the call API,
//! and it mediates every control transfer. It never chooses policies
//! itself.
// Approved panic paths: every `expect(` in this module is budgeted,
// with a reviewed reason, in crates/verify/allowlist.toml.
#![allow(clippy::expect_used)]

use crate::abi::{MonitorCall, Status};
use crate::attest::SignedReport;
use crate::backend::riscv::RiscvBackend;
use crate::backend::x86::X86Backend;
use crate::backend::BackendError;
use std::collections::{BTreeSet, HashMap};
use tyche_core::attest::DomainReport;
use tyche_core::metrics::{Counter, Metrics};
use tyche_core::prelude::*;
use tyche_core::trace::{EventKind, TraceSink};
use tyche_crypto::sign::SigningKey;
use tyche_crypto::Digest;
use tyche_hw::machine::Machine;
use tyche_hw::x86::vcpu::VCpu;
use tyche_hw::x86::vmcs::Vmcs;

/// Target architecture of a booted monitor.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Arch {
    /// Intel VT-x: EPT, VMCALL, VMFUNC, I/O-MMU.
    X86,
    /// RISC-V: machine mode + PMP.
    RiscV,
}

/// A memory fault taken by the running domain (the hardware event the
/// monitor sees; the domain gets no access).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Fault {
    /// Faulting physical address.
    pub addr: u64,
    /// True for writes, false for reads/fetches.
    pub write: bool,
}

/// Successful results of monitor calls.
#[derive(Clone, Debug, PartialEq)]
pub enum CallResult {
    /// Nothing to return.
    Unit,
    /// A new domain and the transition capability into it.
    NewDomain {
        /// The created domain.
        domain: DomainId,
        /// Transition capability owned by the caller.
        transition: CapId,
    },
    /// A single capability.
    Cap(CapId),
    /// Two capabilities (split pieces).
    Caps(CapId, CapId),
    /// A measurement (seal).
    Measurement(Digest),
    /// A resource count (enumerate).
    Count(u64),
    /// A signed attestation report.
    Report(Box<SignedReport>),
    /// Control transferred into another domain.
    Entered {
        /// The domain now running on the core.
        target: DomainId,
        /// Its entry point.
        entry: u64,
    },
    /// Control returned to the calling domain.
    Returned {
        /// The domain now running on the core.
        to: DomainId,
    },
}

/// Transition bookkeeping for returns.
#[derive(Clone, Copy, Debug)]
struct Frame {
    caller: DomainId,
    /// Flush policy of the transition capability (applied again on the
    /// way back so the callee's micro-architectural state is scrubbed).
    policy: RevocationPolicy,
    /// Whether this frame was entered through the fast (VMFUNC) path.
    fast: bool,
    /// The caller's VMFUNC slot, captured at fast-enter time so the fast
    /// return needs no lookup. Sound to cache: a stacked caller cannot be
    /// killed, so its slot cannot be recycled while the frame is live.
    caller_slot: Option<usize>,
}

/// A point-in-time snapshot of the runtime counters (used by the
/// benches). Built from the machine-wide metrics registry by
/// [`Monitor::stats`]; the field names are the registry's dotted
/// counter names with the `monitor.`/`transitions.` prefixes folded in.
#[derive(Clone, Copy, Debug, Default)]
pub struct Stats {
    /// Monitor calls dispatched.
    pub calls: u64,
    /// Mediated transitions (enter + return).
    pub transitions_mediated: u64,
    /// Fast-path transitions (VMFUNC).
    pub transitions_fast: u64,
    /// Backend compensations (rolled-back operations).
    pub compensations: u64,
    /// Domains quarantined after unrecoverable backend faults.
    pub quarantines: u64,
}

/// The isolation monitor.
pub struct Monitor {
    /// The simulated machine.
    pub machine: Machine,
    /// The capability engine (the paper's verified core).
    pub engine: CapEngine,
    arch: Arch,
    x86: Option<X86Backend>,
    riscv: Option<RiscvBackend>,
    /// Per-core vCPUs (x86).
    vcpus: Vec<VCpu>,
    /// Per-core current domain.
    current: Vec<DomainId>,
    /// Per-core call stacks.
    stacks: Vec<Vec<Frame>>,
    sign_key: SigningKey,
    monitor_measurement: Digest,
    /// Validated fast-path entries: `(core, caller, cap)` → `(target,
    /// entry, vmfunc slot)`. Valid only while `fast_cache_gen` matches
    /// the engine's generation counter — revoke/kill/seal/grant bump it,
    /// which drops every cached validation at the next fast enter.
    fast_cache: HashMap<(usize, DomainId, CapId), (DomainId, u64, usize)>,
    fast_cache_gen: u64,
    /// Counter registry (a clone of the machine's master handle).
    metrics: Metrics,
    /// Trace sink (a clone of the machine's master handle; the engine
    /// holds its own clone, installed at assembly).
    trace: TraceSink,
}

impl Monitor {
    /// Assembles a monitor; used by [`crate::boot`]. Not public API for
    /// applications — boot through [`crate::boot::boot_x86`] /
    /// [`crate::boot::boot_riscv`].
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn assemble(
        machine: Machine,
        mut engine: CapEngine,
        arch: Arch,
        x86: Option<X86Backend>,
        riscv: Option<RiscvBackend>,
        root: DomainId,
        sign_key: SigningKey,
        monitor_measurement: Digest,
    ) -> Self {
        let cores = machine.cores;
        // The machine owns the master trace/metrics handles; the engine
        // and the monitor record into clones of the same sinks.
        engine.set_trace(machine.trace.clone());
        let trace = machine.trace.clone();
        let metrics = machine.metrics.clone();
        let mut vcpus = Vec::new();
        if let Some(b) = &x86 {
            let root_ept = b.ept_root(root).expect("root domain has a space");
            for core in 0..cores {
                let mut vmcs = Vmcs::new(root_ept);
                vmcs.eptp_list = Some(b.eptp_list());
                vcpus.push(VCpu::new(core, vmcs));
            }
        }
        Monitor {
            machine,
            engine,
            arch,
            x86,
            riscv,
            vcpus,
            current: vec![root; cores],
            stacks: vec![Vec::new(); cores],
            sign_key,
            monitor_measurement,
            fast_cache: HashMap::new(),
            fast_cache_gen: 0,
            metrics,
            trace,
        }
    }

    /// Snapshot of the runtime counters from the metrics registry.
    pub fn stats(&self) -> Stats {
        Stats {
            calls: self.metrics.get(Counter::MonitorCalls),
            transitions_mediated: self.metrics.get(Counter::TransitionsMediated),
            transitions_fast: self.metrics.get(Counter::TransitionsFast),
            compensations: self.metrics.get(Counter::Compensations),
            quarantines: self.metrics.get(Counter::Quarantines),
        }
    }

    /// The metrics registry this monitor counts into (shared with the
    /// machine and its hardware units).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The trace sink this monitor emits into (shared with the machine
    /// and the engine).
    pub fn trace(&self) -> &TraceSink {
        &self.trace
    }

    /// The architecture this monitor runs on.
    pub fn arch(&self) -> Arch {
        self.arch
    }

    /// The domain currently running on `core`.
    pub fn current_domain(&self, core: usize) -> DomainId {
        self.current[core]
    }

    /// The monitor's measurement (PCR 17 preimage).
    pub fn measurement(&self) -> Digest {
        self.monitor_measurement
    }

    /// The monitor's report-verification key (tier-2 trust anchor).
    pub fn report_key(&self) -> tyche_crypto::sign::VerifyingKey {
        self.sign_key.verifying_key()
    }

    /// Produces the tier-1 machine attestation: a TPM quote over the
    /// monitor PCRs with the verifier's nonce. Fails when the TPM does
    /// (e.g. an injected quote fault) — attestation degrades to a checked
    /// error, never a panic.
    pub fn machine_quote(
        &self,
        nonce: [u8; 32],
    ) -> Result<tyche_hw::tpm::Quote, tyche_hw::tpm::TpmError> {
        self.machine.tpm.quote(
            &[tyche_hw::tpm::PCR_MONITOR, tyche_hw::tpm::PCR_CONFIG],
            nonce,
        )
    }

    // ------------------------------------------------------------------
    // The call interface
    // ------------------------------------------------------------------

    /// Dispatches a monitor call issued by the domain running on `core`.
    ///
    /// Charges the architectural trap cost (VMCALL round trip on x86,
    /// M-mode trap on RISC-V), validates through the capability engine,
    /// applies effects through the platform backend, and — when the
    /// backend cannot realize the new state (PMP layout overflow) —
    /// rolls the operation back and reports [`Status::BackendFailure`].
    pub fn call(&mut self, core: usize, call: MonitorCall) -> Result<CallResult, Status> {
        let leaf = call.encode().0;
        let actor = self
            .current
            .get(core)
            .map(|d| d.0)
            .unwrap_or(u64::MAX);
        let start = self.machine.cycles.now();
        self.trace
            .emit(core as u32, EventKind::HyperEnter { leaf, actor });
        let res = self.call_inner(core, call);
        let code = match &res {
            Ok(_) => 0,
            Err(s) => *s as u64,
        };
        let cycles = self.machine.cycles.now().saturating_sub(start);
        self.trace
            .emit(core as u32, EventKind::HyperExit { leaf, code, cycles });
        res
    }

    /// The dispatch body of [`call`](Self::call), inside the
    /// hyper-enter/hyper-exit trace bracket.
    fn call_inner(&mut self, core: usize, call: MonitorCall) -> Result<CallResult, Status> {
        self.metrics.bump(Counter::MonitorCalls);
        let trap_cost = match self.arch {
            Arch::X86 => self.machine.cost.vmexit_roundtrip,
            Arch::RiscV => self.machine.cost.mmode_trap_roundtrip,
        };
        self.machine.cycles.charge(trap_cost);
        let actor = self.current[core];
        match call {
            MonitorCall::CreateDomain => {
                let (domain, transition) = self.engine.create_domain(actor).map_err(cap_status)?;
                self.apply_or_compensate(&[RollBack::KillDomain(domain)])?;
                Ok(CallResult::NewDomain { domain, transition })
            }
            MonitorCall::Share {
                cap,
                target,
                sub,
                rights,
                policy,
            } => {
                let sub = match sub {
                    Some((s, e)) => {
                        if s >= e || !s.is_multiple_of(4096) || !e.is_multiple_of(4096) {
                            return Err(Status::InvalidArg);
                        }
                        Some(MemRegion::new(s, e))
                    }
                    None => None,
                };
                let child = self
                    .engine
                    .share(actor, cap, target, sub, rights, policy)
                    .map_err(cap_status)?;
                self.apply_or_compensate(&[RollBack::Revoke { actor, cap: child }])?;
                Ok(CallResult::Cap(child))
            }
            MonitorCall::Grant {
                cap,
                target,
                rights,
                policy,
            } => {
                let child = self
                    .engine
                    .grant(actor, cap, target, None, rights, policy)
                    .map_err(cap_status)?;
                self.apply_or_compensate(&[RollBack::Revoke { actor, cap: child }])?;
                Ok(CallResult::Cap(child))
            }
            MonitorCall::Split { cap, at } => {
                if !at.is_multiple_of(4096) {
                    return Err(Status::InvalidArg);
                }
                let (lo, hi) = self.engine.split(actor, cap, at).map_err(cap_status)?;
                self.apply_or_compensate(&[
                    RollBack::Revoke { actor, cap: lo },
                    RollBack::Revoke { actor, cap: hi },
                ])?;
                Ok(CallResult::Caps(lo, hi))
            }
            MonitorCall::Revoke { cap } => {
                self.engine.revoke(actor, cap).map_err(cap_status)?;
                // Revocation shrinks layouts; it cannot fail validation.
                self.apply_or_compensate(&[])?;
                Ok(CallResult::Unit)
            }
            MonitorCall::Seal {
                domain,
                allow_outward,
                allow_children,
            } => {
                let policy = SealPolicy {
                    allow_outward_sharing: allow_outward,
                    allow_child_domains: allow_children,
                };
                let m = self
                    .engine
                    .seal(actor, domain, policy)
                    .map_err(cap_status)?;
                self.apply_or_compensate(&[])?;
                Ok(CallResult::Measurement(m))
            }
            MonitorCall::SetEntry { domain, entry } => {
                self.engine
                    .set_entry(actor, domain, entry)
                    .map_err(cap_status)?;
                Ok(CallResult::Unit)
            }
            MonitorCall::RecordContent { domain, start, end } => {
                if start >= end {
                    return Err(Status::InvalidArg);
                }
                // The monitor itself measures the region's current bytes:
                // the caller cannot claim arbitrary content. The range is
                // caller-controlled, so a region outside installed RAM is
                // a malformed request and an injected DRAM fault during
                // the measurement is a backend failure — neither may
                // panic the monitor.
                let range = tyche_hw::addr::PhysRange::new(
                    tyche_hw::PhysAddr::new(start),
                    tyche_hw::PhysAddr::new(end),
                );
                let digest = match tyche_hw::tpm::try_measure_range(&self.machine.mem, range) {
                    Ok(d) => d,
                    Err(tyche_hw::mem::MemError::Injected { .. }) => {
                        return Err(Status::BackendFailure)
                    }
                    Err(_) => return Err(Status::InvalidArg),
                };
                self.machine
                    .cycles
                    .charge(self.machine.cost.hash_page * (end - start).div_ceil(4096));
                self.engine
                    .record_content(actor, domain, MemRegion::new(start, end), digest)
                    .map_err(cap_status)?;
                Ok(CallResult::Unit)
            }
            MonitorCall::MakeTransition { target, policy } => {
                let cap = self
                    .engine
                    .make_transition(actor, target, policy)
                    .map_err(cap_status)?;
                Ok(CallResult::Cap(cap))
            }
            MonitorCall::Kill { domain } => {
                // A domain that is currently running on some core (or is a
                // caller in a transition stack) cannot be killed: tearing
                // down its translation tables would leave that core's
                // hardware context pointing at freed frames, which a later
                // allocation could alias. Real hardware would need an IPI
                // handshake here; the model refuses instead.
                let busy = self.current.contains(&domain)
                    || self.stacks.iter().flatten().any(|f| f.caller == domain);
                if busy {
                    return Err(Status::Denied);
                }
                self.engine.kill(actor, domain).map_err(cap_status)?;
                self.apply_or_compensate(&[])?;
                Ok(CallResult::Unit)
            }
            MonitorCall::Enumerate => {
                let resources = self.engine.enumerate(actor).map_err(cap_status)?;
                Ok(CallResult::Count(resources.len() as u64))
            }
            MonitorCall::Enter { cap } => self.enter_mediated(core, cap),
            MonitorCall::Return => self.ret(core),
            MonitorCall::Attest { domain, nonce } => {
                let mut nonce_bytes = [0u8; 32];
                nonce_bytes[..8].copy_from_slice(&nonce.to_le_bytes());
                let signed = self
                    .attest_domain(domain, nonce_bytes)
                    .map_err(cap_status)?;
                Ok(CallResult::Report(Box::new(signed)))
            }
        }
    }

    /// Signs an attestation report for a sealed domain (tier 2, §3.4).
    pub fn attest_domain(
        &mut self,
        domain: DomainId,
        nonce: [u8; 32],
    ) -> Result<SignedReport, CapError> {
        let report = DomainReport::build(&self.engine, domain)?;
        self.machine
            .cycles
            .charge(self.machine.cost.hash_page * (1 + report.resources.len() as u64 / 16));
        let msg = SignedReport::signed_bytes(&report, &nonce);
        let signature = self.sign_key.sign(&msg);
        Ok(SignedReport {
            report,
            nonce,
            signature,
        })
    }

    // ------------------------------------------------------------------
    // Transitions
    // ------------------------------------------------------------------

    /// Mediated transition (the VMCALL path): full validation, flush
    /// policies applied, stack frame pushed.
    fn enter_mediated(&mut self, core: usize, cap: CapId) -> Result<CallResult, Status> {
        let actor = self.current[core];
        let (target, entry, policy) = self
            .engine
            .can_enter(actor, cap, core)
            .map_err(cap_status)?;
        self.apply_flushes(core, actor, policy);
        self.switch_hw(core, target, entry)
            .map_err(|_| Status::BackendFailure)?;
        self.stacks[core].push(Frame {
            caller: actor,
            policy,
            fast: false,
            caller_slot: None,
        });
        self.current[core] = target;
        self.metrics.bump(Counter::TransitionsMediated);
        self.trace.emit(
            core as u32,
            EventKind::Enter {
                from: actor.0,
                to: target.0,
                fast: false,
            },
        );
        Ok(CallResult::Entered { target, entry })
    }

    /// Fast transition via VMFUNC (§4.1: "fast (100 cycles) domain
    /// transitions using VMFUNC").
    ///
    /// No vm exit happens: the hardware switches EPTPs from the
    /// pre-approved list. The monitor pre-approved the pair when it
    /// created the transition capability; at runtime only the hardware
    /// check runs, plus a cache lookup keyed on the engine generation.
    /// Transition capabilities with flush policies cannot stay on the
    /// fast path (flushes need the monitor) — they fall back to the
    /// mediated path, paying the full trap cost. The RISC-V backend has
    /// no equivalent.
    pub fn enter_fast(&mut self, core: usize, cap: CapId) -> Result<DomainId, Status> {
        self.enter_fast_inner(core, cap, true)
    }

    /// Cache-ablated variant of [`enter_fast`](Self::enter_fast):
    /// revalidates through the engine on every call. Benchmark "before"
    /// path.
    #[doc(hidden)]
    pub fn enter_fast_uncached(&mut self, core: usize, cap: CapId) -> Result<DomainId, Status> {
        self.enter_fast_inner(core, cap, false)
    }

    fn enter_fast_inner(
        &mut self,
        core: usize,
        cap: CapId,
        use_cache: bool,
    ) -> Result<DomainId, Status> {
        if self.arch != Arch::X86 {
            return Err(Status::BackendFailure);
        }
        let actor = self.current[core];
        if use_cache && self.fast_cache_gen != self.engine.generation() {
            self.fast_cache.clear();
            self.fast_cache_gen = self.engine.generation();
        }
        let key = (core, actor, cap);
        let hit = if use_cache {
            self.fast_cache.get(&key).copied()
        } else {
            None
        };
        if hit.is_some() {
            self.trace.emit(
                core as u32,
                EventKind::CacheHit {
                    actor: actor.0,
                    cap: cap.0,
                    gen: self.fast_cache_gen,
                },
            );
        }
        let (target, entry, slot) = match hit {
            Some(v) => v,
            None => {
                let (target, entry, policy) = self
                    .engine
                    .can_enter(actor, cap, core)
                    .map_err(cap_status)?;
                if policy != RevocationPolicy::NONE {
                    // Flush policies need the monitor in the loop: take
                    // the mediated path instead, paying the trap cost the
                    // hardware would charge for the vm exit.
                    self.metrics.bump(Counter::MonitorCalls);
                    self.machine.cycles.charge(self.machine.cost.vmexit_roundtrip);
                    return match self.enter_mediated(core, cap)? {
                        CallResult::Entered { target, .. } => Ok(target),
                        _ => Err(Status::BackendFailure),
                    };
                }
                let slot = self
                    .x86
                    .as_ref()
                    .and_then(|b| b.vmfunc_slot(target))
                    .ok_or(Status::BackendFailure)?;
                if use_cache {
                    self.fast_cache.insert(key, (target, entry, slot));
                    self.trace.emit(
                        core as u32,
                        EventKind::CacheFill {
                            actor: actor.0,
                            cap: cap.0,
                            gen: self.fast_cache_gen,
                        },
                    );
                }
                (target, entry, slot)
            }
        };
        let caller_slot = self.x86.as_ref().and_then(|b| b.vmfunc_slot(actor));
        let (vcpu, machine) = (&mut self.vcpus[core], &mut self.machine);
        let mut plat = machine.platform();
        vcpu.vmfunc_switch(&mut plat, slot as u64)
            .map_err(|_| Status::BackendFailure)?;
        self.stacks[core].push(Frame {
            caller: actor,
            policy: RevocationPolicy::NONE,
            fast: true,
            caller_slot,
        });
        self.current[core] = target;
        self.vcpus[core].vmcs.guest.rip = entry;
        self.metrics.bump(Counter::TransitionsFast);
        self.trace.emit(
            core as u32,
            EventKind::Enter {
                from: actor.0,
                to: target.0,
                fast: true,
            },
        );
        Ok(target)
    }

    /// Returns from the current domain to its caller, applying the
    /// transition capability's flush policy to scrub the callee's
    /// micro-architectural footprint.
    fn ret(&mut self, core: usize) -> Result<CallResult, Status> {
        self.ret_inner(core, false)
    }

    /// Shared return path. `via_fast` records the mechanism the caller
    /// actually used: a `MonitorCall::Return` is a vm exit and counts as
    /// mediated even when the frame was entered fast; only a
    /// [`ret_fast`](Self::ret_fast) on a fast-entered frame rides VMFUNC
    /// and counts as fast. One transition is counted per one-way switch,
    /// by the mechanism used — symmetric with the enter paths.
    fn ret_inner(&mut self, core: usize, via_fast: bool) -> Result<CallResult, Status> {
        let frame = self.stacks[core].pop().ok_or(Status::Denied)?;
        let leaving = self.current[core];
        self.apply_flushes(core, leaving, frame.policy);
        let fast_return = via_fast && frame.fast && self.arch == Arch::X86;
        if fast_return {
            let slot = match frame.caller_slot {
                Some(s) => s,
                None => self
                    .x86
                    .as_ref()
                    .and_then(|b| b.vmfunc_slot(frame.caller))
                    .ok_or(Status::BackendFailure)?,
            } as u64;
            let (vcpu, machine) = (&mut self.vcpus[core], &mut self.machine);
            let mut plat = machine.platform();
            vcpu.vmfunc_switch(&mut plat, slot)
                .map_err(|_| Status::BackendFailure)?;
        } else {
            // Mediated return: switch hardware context back. The caller
            // resumes after its Enter call site; entry here is moot.
            self.switch_hw(core, frame.caller, 0)
                .map_err(|_| Status::BackendFailure)?;
        }
        self.current[core] = frame.caller;
        self.metrics.add(
            Counter::TransitionsMediated,
            u64::from(!fast_return),
        );
        self.metrics
            .add(Counter::TransitionsFast, u64::from(fast_return));
        self.trace.emit(
            core as u32,
            EventKind::Return {
                from: leaving.0,
                to: frame.caller.0,
                fast: fast_return,
            },
        );
        Ok(CallResult::Returned { to: frame.caller })
    }

    /// Test-only corruption hook: forges the generation the fast cache
    /// believes current *without* dropping its entries, modelling a
    /// monitor bug that serves stale validations. Used by the
    /// trace-oracle suite to prove the RV cache checker catches it.
    #[doc(hidden)]
    pub fn corrupt_fast_cache_gen(&mut self, gen: u64) {
        self.fast_cache_gen = gen;
    }

    /// Test-only corruption hook: rewrites the caller recorded in
    /// `core`'s top transition frame, modelling stack corruption. The
    /// next return transfers to the forged caller.
    #[doc(hidden)]
    pub fn corrupt_frame(&mut self, core: usize, caller: DomainId) {
        if let Some(frame) = self.stacks.get_mut(core).and_then(|s| s.last_mut()) {
            frame.caller = caller;
        }
    }

    /// Fast return counterpart of [`Monitor::enter_fast`].
    pub fn ret_fast(&mut self, core: usize) -> Result<DomainId, Status> {
        match self.ret_inner(core, true) {
            Ok(CallResult::Returned { to }) => Ok(to),
            Ok(_) => Err(Status::BackendFailure),
            Err(s) => Err(s),
        }
    }

    /// Applies a transition/revocation flush policy to `domain` on
    /// behalf of `core`.
    fn apply_flushes(&mut self, core: usize, domain: DomainId, policy: RevocationPolicy) {
        if !policy.flush_cache && !policy.flush_tlb {
            return;
        }
        let tag = self.domain_tag(domain);
        if let Some(tag) = tag {
            if policy.flush_cache {
                let flushed = self.machine.cache.flush_domain(tag);
                self.machine.cycles.charge(
                    self.machine.cost.cache_flush_base
                        + self.machine.cost.cacheline_flush * flushed as u64,
                );
            }
            if policy.flush_tlb {
                self.machine.tlb.flush_domain(tag);
                self.machine.cycles.charge(self.machine.cost.tlb_flush);
            }
            self.trace.emit(
                core as u32,
                EventKind::Flush {
                    domain: domain.0,
                    tlb: policy.flush_tlb,
                    cache: policy.flush_cache,
                },
            );
        }
    }

    /// The cache/TLB tag of `domain` on the active backend.
    fn domain_tag(&self, domain: DomainId) -> Option<u64> {
        match self.arch {
            Arch::X86 => self
                .x86
                .as_ref()
                .and_then(|b| b.ept_root(domain))
                .map(|r| r.as_u64()),
            Arch::RiscV => self.riscv.as_ref().and_then(|b| b.tag(domain)),
        }
    }

    /// Points `core`'s hardware context at `target`.
    fn switch_hw(&mut self, core: usize, target: DomainId, entry: u64) -> Result<(), BackendError> {
        match self.arch {
            Arch::X86 => {
                let root = self
                    .x86
                    .as_ref()
                    .and_then(|b| b.ept_root(target))
                    .ok_or_else(|| BackendError::Hardware(format!("no space for {target}")))?;
                self.vcpus[core].vmcs.eptp = root;
                self.vcpus[core].vmcs.guest.rip = entry;
                Ok(())
            }
            Arch::RiscV => {
                let b = self
                    .riscv
                    .as_mut()
                    .ok_or_else(|| BackendError::Hardware("riscv backend missing".into()))?;
                b.enter_domain(&mut self.machine, target, core, entry)
            }
        }
    }

    // ------------------------------------------------------------------
    // Memory access on behalf of the running domain
    // ------------------------------------------------------------------

    /// Reads memory as the domain running on `core` (through EPT or PMP).
    pub fn dom_read(&mut self, core: usize, addr: u64, out: &mut [u8]) -> Result<(), Fault> {
        match self.arch {
            Arch::X86 => {
                let (vcpu, machine) = (&self.vcpus[core], &mut self.machine);
                let mut plat = machine.platform();
                vcpu.read(&mut plat, tyche_hw::addr::GuestPhysAddr::new(addr), out)
                    .map_err(|_| Fault { addr, write: false })
            }
            Arch::RiscV => {
                // A missing backend or hart is a machine-configuration
                // fault; surface it as a memory fault, never a panic.
                let Some(hart) = self.riscv.as_ref().and_then(|b| b.harts.get(core)) else {
                    return Err(Fault { addr, write: false });
                };
                let mut plat = self.machine.platform();
                hart.read(&mut plat, tyche_hw::PhysAddr::new(addr), out)
                    .map_err(|_| Fault { addr, write: false })
            }
        }
    }

    /// Writes memory as the domain running on `core`.
    pub fn dom_write(&mut self, core: usize, addr: u64, data: &[u8]) -> Result<(), Fault> {
        match self.arch {
            Arch::X86 => {
                let (vcpu, machine) = (&self.vcpus[core], &mut self.machine);
                let mut plat = machine.platform();
                vcpu.write(&mut plat, tyche_hw::addr::GuestPhysAddr::new(addr), data)
                    .map_err(|_| Fault { addr, write: true })
            }
            Arch::RiscV => {
                let Some(hart) = self.riscv.as_ref().and_then(|b| b.harts.get(core)) else {
                    return Err(Fault { addr, write: true });
                };
                let mut plat = self.machine.platform();
                hart.write(&mut plat, tyche_hw::PhysAddr::new(addr), data)
                    .map_err(|_| Fault { addr, write: true })
            }
        }
    }

    /// Instruction-fetch check at `addr` for the running domain.
    pub fn dom_fetch(&mut self, core: usize, addr: u64) -> Result<(), Fault> {
        match self.arch {
            Arch::X86 => {
                let (vcpu, machine) = (&self.vcpus[core], &mut self.machine);
                let mut plat = machine.platform();
                vcpu.fetch(&mut plat, tyche_hw::addr::GuestPhysAddr::new(addr))
                    .map_err(|_| Fault { addr, write: false })
            }
            Arch::RiscV => {
                let Some(hart) = self.riscv.as_ref().and_then(|b| b.harts.get(core)) else {
                    return Err(Fault { addr, write: false });
                };
                let mut plat = self.machine.platform();
                hart.fetch(&mut plat, tyche_hw::PhysAddr::new(addr))
                    .map_err(|_| Fault { addr, write: false })
            }
        }
    }

    /// Drains the interrupt vectors pending for the domain running on
    /// `core` (§4.1 cross-domain interrupt routing). A domain receives a
    /// vector's deliveries iff it holds an active capability for it.
    pub fn pending_interrupts(&mut self, core: usize) -> Vec<u32> {
        let d = self.current[core];
        match self.domain_tag(d) {
            Some(tag) => self.machine.irq.drain(tag),
            None => Vec::new(),
        }
    }

    /// Enables MKTME-class memory encryption for `domain` (physical-
    /// attack resistance, §4.2). The caller (current domain on `core`)
    /// must manage `domain` or be it. x86-only — the PMP platform has no
    /// memory-encryption engine in this model.
    pub fn enable_memory_encryption(
        &mut self,
        core: usize,
        domain: DomainId,
    ) -> Result<(), Status> {
        let actor = self.current[core];
        let managed = self
            .engine
            .domain(domain)
            .map(|d| d.manager == Some(actor) || actor == domain)
            .unwrap_or(false);
        if !managed {
            return Err(Status::Denied);
        }
        match (self.arch, self.x86.as_mut()) {
            (Arch::X86, Some(b)) => b
                .enable_encryption(&mut self.machine, domain)
                .map_err(|_| Status::BackendFailure),
            _ => Err(Status::BackendFailure),
        }
    }

    /// Drains and applies any pending engine effects. Normal monitor
    /// calls do this themselves; test fixtures that drive
    /// [`Monitor::engine`] directly call this afterwards to bring
    /// hardware state back in sync.
    pub fn sync_effects(&mut self) -> Result<(), Status> {
        self.apply_all().map_err(|_| Status::BackendFailure)
    }

    /// Coalescing-ablated variant of [`sync_effects`](Self::sync_effects):
    /// applies the drained effects one at a time, exactly as emitted.
    /// Benchmark "before" path.
    #[doc(hidden)]
    pub fn sync_effects_uncoalesced(&mut self) -> Result<(), Status> {
        let effects = self.engine.drain_effects();
        self.apply_list(&effects).map_err(|_| Status::BackendFailure)
    }

    /// Audits hardware state against the capability engine: for every
    /// live domain, the translation structures the backend programmed
    /// must grant exactly the access the engine's active capabilities
    /// describe. Returns human-readable discrepancies (empty = sound).
    ///
    /// This is the executive half of the judiciary story: the engine can
    /// be verified in isolation, and this check pins the hardware to it.
    pub fn audit_hardware(&self) -> Vec<String> {
        let mut out = Vec::new();
        // Quarantined domains are the *documented* divergence: their
        // hardware state is exactly what the engine could no longer
        // realize, they can never be entered, and killing them resyncs.
        // Auditing them would report the divergence quarantine exists to
        // contain.
        for dom in self
            .engine
            .domains()
            .filter(|d| d.is_alive() && !d.is_quarantined())
        {
            let want = crate::backend::page_view(&self.engine, dom.id);
            match self.arch {
                Arch::X86 => {
                    let Some(root) = self.x86.as_ref().and_then(|b| b.ept_root(dom.id)) else {
                        if !want.is_empty() {
                            out.push(format!("{}: no EPT but engine grants memory", dom.id));
                        }
                        continue;
                    };
                    let ept = tyche_hw::x86::ept::Ept::from_root(root);
                    let Ok(mappings) = ept.mappings(&self.machine.mem) else {
                        out.push(format!("{}: EPT walk failed", dom.id));
                        continue;
                    };
                    let mut got = std::collections::BTreeMap::new();
                    for (gpa, hpa, flags) in mappings {
                        if gpa.as_u64() != hpa.as_u64() {
                            out.push(format!("{}: non-identity mapping {gpa} -> {hpa}", dom.id));
                        }
                        let mut r = 0u8;
                        if flags.allows(tyche_hw::x86::ept::Access::Read) {
                            r |= Rights::R;
                        }
                        if flags.allows(tyche_hw::x86::ept::Access::Write) {
                            r |= Rights::W;
                        }
                        if flags.allows(tyche_hw::x86::ept::Access::Exec) {
                            r |= Rights::X;
                        }
                        got.insert(gpa.as_u64(), Rights(r));
                    }
                    if got != want {
                        for (page, rights) in &want {
                            match got.get(page) {
                                None => out.push(format!(
                                    "{}: page {page:#x} granted {rights:?} but unmapped",
                                    dom.id
                                )),
                                Some(g) if g != rights => out.push(format!(
                                    "{}: page {page:#x} rights {g:?} != engine {rights:?}",
                                    dom.id
                                )),
                                _ => {}
                            }
                        }
                        for page in got.keys() {
                            if !want.contains_key(page) {
                                out.push(format!(
                                    "{}: page {page:#x} mapped but not granted",
                                    dom.id
                                ));
                            }
                        }
                    }
                }
                Arch::RiscV => {
                    let Some(layout) = self
                        .riscv
                        .as_ref()
                        .and_then(|b| b.layout(dom.id).map(|l| l.to_vec()))
                    else {
                        if !want.is_empty() {
                            out.push(format!(
                                "{}: no PMP layout but engine grants memory",
                                dom.id
                            ));
                        }
                        continue;
                    };
                    let expected = crate::backend::riscv::coalesce(&want);
                    if layout != expected {
                        out.push(format!(
                            "{}: PMP layout {layout:?} != engine view {expected:?}",
                            dom.id
                        ));
                    }
                }
            }
        }
        out
    }

    /// Direct access to the x86 backend (tests, examples).
    pub fn x86_backend(&self) -> Option<&X86Backend> {
        self.x86.as_ref()
    }

    /// Direct access to the RISC-V backend (tests, examples).
    pub fn riscv_backend(&self) -> Option<&RiscvBackend> {
        self.riscv.as_ref()
    }

    // ------------------------------------------------------------------
    // Effect application & compensation
    // ------------------------------------------------------------------

    /// Drains engine effects into the backend. When the backend refuses
    /// (PMP layout overflow), performs the given compensations (revoking
    /// the just-created capabilities / killing the just-created domain),
    /// re-applies, and reports failure to the caller.
    fn apply_or_compensate(&mut self, rollback: &[RollBack]) -> Result<(), Status> {
        match self.apply_all() {
            Ok(()) => Ok(()),
            Err((_, mut implicated)) => {
                self.metrics.bump(Counter::Compensations);
                for rb in rollback {
                    match rb {
                        RollBack::Revoke { actor, cap } => {
                            let _ = self.engine.revoke(*actor, *cap);
                        }
                        RollBack::KillDomain(d) => {
                            if let Some(m) = self.engine.domain(*d).and_then(|x| x.manager) {
                                let _ = self.engine.kill(m, *d);
                            }
                        }
                    }
                }
                if let Err((_, more)) = self.apply_all() {
                    implicated.extend(more);
                }
                // The failed effects were drained before they could reach
                // hardware, and the rollback may have emitted nothing at
                // all (revoke/kill/seal roll back by doing nothing) — so
                // even a clean re-apply can leave an implicated domain's
                // translations stale. Force a full resync of each one:
                // the backends rebuild a domain's entire state from the
                // engine on any memory effect (the synthetic region is
                // irrelevant). A domain whose resync fails too is
                // quarantined — it stays killable and enumerable but is
                // never entered on untrusted translations — instead of
                // panicking the TCB.
                for d in implicated {
                    let alive = self.engine.domain(d).map(|x| x.is_alive()).unwrap_or(false);
                    if !alive {
                        continue;
                    }
                    let healed = self
                        .apply_list(&[Effect::UnmapMem {
                            domain: d,
                            region: MemRegion::new(0, 4096),
                        }])
                        .is_ok();
                    if !healed && self.engine.quarantine(d).is_ok() {
                        self.metrics.bump(Counter::Quarantines);
                    }
                }
                Err(Status::BackendFailure)
            }
        }
    }

    fn apply_all(&mut self) -> Result<(), (BackendError, BTreeSet<DomainId>)> {
        let effects = Self::coalesce_effects(self.engine.drain_effects());
        self.apply_list(&effects)
    }

    /// Coalesces a drained effect batch before backend application.
    ///
    /// The backends resync a domain's *entire* translation state from the
    /// engine on every `MapMem`/`UnmapMem` (the engine is the authority),
    /// so only the last mem effect per domain needs applying — earlier
    /// ones would program intermediate states the final resync overwrites.
    /// A resync ends in a TLB shootdown for the domain, so standalone
    /// `FlushTlb` effects for a resynced domain are redundant; otherwise
    /// one flush per (domain, batch) suffices, as flushes are idempotent.
    /// Everything else is preserved in emission order.
    fn coalesce_effects(effects: Vec<Effect>) -> Vec<Effect> {
        let mut last_sync: HashMap<DomainId, usize> = HashMap::new();
        let mut last_tlb: HashMap<DomainId, usize> = HashMap::new();
        let mut last_cache: HashMap<DomainId, usize> = HashMap::new();
        for (i, fx) in effects.iter().enumerate() {
            match fx {
                Effect::MapMem { domain, .. } | Effect::UnmapMem { domain, .. } => {
                    last_sync.insert(*domain, i);
                }
                Effect::FlushTlb { domain } => {
                    last_tlb.insert(*domain, i);
                }
                Effect::FlushCache { domain } => {
                    last_cache.insert(*domain, i);
                }
                _ => {}
            }
        }
        effects
            .into_iter()
            .enumerate()
            .filter(|(i, fx)| match fx {
                Effect::MapMem { domain, .. } | Effect::UnmapMem { domain, .. } => {
                    last_sync.get(domain) == Some(i)
                }
                Effect::FlushTlb { domain } => {
                    !last_sync.contains_key(domain) && last_tlb.get(domain) == Some(i)
                }
                Effect::FlushCache { domain } => last_cache.get(domain) == Some(i),
                _ => true,
            })
            .map(|(_, fx)| fx)
            .collect()
    }

    /// Applies every effect in order and returns the *first* failure,
    /// paired with the set of domains the failures implicate (several
    /// resyncs can fail in one batch — e.g. a persistent DRAM fault
    /// breaks every table write). Application is best-effort: a fault on
    /// one domain's translation update must not strand the remaining
    /// domains' hardware state, so later effects still run.
    fn apply_list(&mut self, effects: &[Effect]) -> Result<(), (BackendError, BTreeSet<DomainId>)> {
        let mut first: Option<BackendError> = None;
        let mut implicated = BTreeSet::new();
        for fx in effects {
            let res = match self.arch {
                Arch::X86 => match self.x86.as_mut() {
                    Some(b) => b.apply(&mut self.machine, &self.engine, fx),
                    None => Err(BackendError::Hardware("x86 backend missing".into())),
                },
                Arch::RiscV => match self.riscv.as_mut() {
                    Some(b) => b.apply(&mut self.machine, &self.engine, fx),
                    None => Err(BackendError::Hardware("riscv backend missing".into())),
                },
            };
            if let Err(error) = res {
                let domain = match &error {
                    BackendError::LayoutUnrepresentable { domain, .. } => Some(*domain),
                    BackendError::Hardware(_) => fx.domain(),
                };
                implicated.extend(domain);
                if first.is_none() {
                    first = Some(error);
                }
            }
        }
        match first {
            None => Ok(()),
            Some(e) => Err((e, implicated)),
        }
    }
}

/// Compensating actions for backend-refused operations.
enum RollBack {
    Revoke { actor: DomainId, cap: CapId },
    KillDomain(DomainId),
}

/// Maps engine errors onto ABI status codes.
pub(crate) fn cap_status(e: CapError) -> Status {
    match e {
        CapError::NoSuchDomain(_) | CapError::NoSuchCap(_) => Status::NotFound,
        CapError::OutOfRange | CapError::SubrangeOnNonMemory | CapError::WrongResourceType => {
            Status::InvalidArg
        }
        _ => Status::Denied,
    }
}
