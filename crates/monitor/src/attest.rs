//! Two-tier remote attestation (§3.4 of the paper).
//!
//! Tier 1 — *the machine runs a specific monitor*: the TPM measured the
//! monitor image into PCR 17 (and its configuration into PCR 18) at boot
//! and produces a signed [`tyche_hw::tpm::Quote`] over those PCRs and a
//! verifier nonce.
//!
//! Tier 2 — *a specific domain has a specific configuration*: the monitor
//! signs a [`tyche_core::attest::DomainReport`] (resources, rights,
//! reference counts, measurement) with its attestation key.
//!
//! A [`Verifier`] holds the TPM's verifying key, the *expected* monitor
//! measurement (obtained by building the open-source monitor and hashing
//! it), and the monitor's report-verification key (distributed alongside
//! the quote, as a certificate would be). `verify` checks the whole chain
//! and returns an [`AttestedDomain`] the relying party can query.

use tyche_core::attest::DomainReport;
use tyche_core::ids::DomainId;
use tyche_crypto::sign::{Signature, VerifyingKey};
use tyche_crypto::Digest;
use tyche_hw::tpm::{Quote, PCR_CONFIG, PCR_MONITOR};

/// A domain report signed by the monitor, bound to a verifier nonce.
#[derive(Clone, Debug, PartialEq)]
pub struct SignedReport {
    /// The report contents.
    pub report: DomainReport,
    /// The verifier nonce the signature covers (anti-replay).
    pub nonce: [u8; 32],
    /// Monitor signature over `report.canonical_bytes() || nonce`.
    pub signature: Signature,
}

impl SignedReport {
    /// The exact bytes the monitor signs.
    pub fn signed_bytes(report: &DomainReport, nonce: &[u8; 32]) -> Vec<u8> {
        let mut msg = report.canonical_bytes();
        msg.extend_from_slice(nonce);
        msg
    }
}

/// Why verification failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VerifyError {
    /// The TPM quote signature or nonce check failed.
    BadQuote,
    /// PCR 17 does not match the expected monitor measurement: an unknown
    /// monitor (or none) controls the machine.
    WrongMonitor {
        /// What the quote reported.
        got: Digest,
        /// What the verifier expected.
        expected: Digest,
    },
    /// The quote did not cover the required PCRs.
    MissingPcr(usize),
    /// The domain report signature failed or the nonce was replayed.
    BadReportSignature,
    /// The report's domain measurement does not match the expected value.
    WrongDomainMeasurement {
        /// What the report carried.
        got: Digest,
        /// What the verifier expected.
        expected: Digest,
    },
    /// A memory resource the verifier required to be exclusive is shared.
    UnexpectedSharing,
}

impl core::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            VerifyError::BadQuote => f.write_str("TPM quote verification failed"),
            VerifyError::WrongMonitor { .. } => {
                f.write_str("machine is not running the expected monitor")
            }
            VerifyError::MissingPcr(p) => write!(f, "quote does not cover PCR {p}"),
            VerifyError::BadReportSignature => f.write_str("domain report signature invalid"),
            VerifyError::WrongDomainMeasurement { .. } => {
                f.write_str("domain measurement mismatch")
            }
            VerifyError::UnexpectedSharing => f.write_str("resource shared beyond stated policy"),
        }
    }
}

impl std::error::Error for VerifyError {}

/// The verified view of a domain a relying party acts on.
#[derive(Clone, Debug)]
pub struct AttestedDomain {
    /// The attested domain id.
    pub domain: DomainId,
    /// Its verified measurement.
    pub measurement: Digest,
    /// The verified report (resources + reference counts).
    pub report: DomainReport,
}

impl AttestedDomain {
    /// The Figure 2 customer check: every memory resource is exclusive
    /// except the listed `(start, end, expected_count)` shared windows.
    pub fn sharing_is_exactly(&self, allowed_shared: &[(u64, u64, usize)]) -> bool {
        self.report.check_sharing(allowed_shared)
    }
}

/// A remote verifier's trust anchors.
pub struct Verifier {
    /// TPM attestation (quote) verification key.
    pub tpm_key: VerifyingKey,
    /// Expected PCR 17 value: `extend(0, H(monitor image))`.
    pub expected_monitor_pcr: Digest,
    /// The monitor's report-verification key.
    pub monitor_key: VerifyingKey,
}

impl Verifier {
    /// Verifies the full two-tier chain:
    ///
    /// 1. the quote is signed by the TPM and fresh (`quote_nonce`);
    /// 2. PCR 17 proves the expected monitor controls the machine;
    /// 3. the report is signed by that monitor and fresh (`report_nonce`);
    /// 4. if `expected_measurement` is given, the domain measurement
    ///    matches.
    pub fn verify(
        &self,
        quote: &Quote,
        quote_nonce: &[u8; 32],
        signed: &SignedReport,
        report_nonce: &[u8; 32],
        expected_measurement: Option<Digest>,
    ) -> Result<AttestedDomain, VerifyError> {
        if !quote.verify(&self.tpm_key, quote_nonce) {
            return Err(VerifyError::BadQuote);
        }
        let pcr17 = quote
            .pcr(PCR_MONITOR)
            .ok_or(VerifyError::MissingPcr(PCR_MONITOR))?;
        quote
            .pcr(PCR_CONFIG)
            .ok_or(VerifyError::MissingPcr(PCR_CONFIG))?;
        if pcr17 != self.expected_monitor_pcr {
            return Err(VerifyError::WrongMonitor {
                got: pcr17,
                expected: self.expected_monitor_pcr,
            });
        }
        if &signed.nonce != report_nonce {
            return Err(VerifyError::BadReportSignature);
        }
        let msg = SignedReport::signed_bytes(&signed.report, &signed.nonce);
        if !self.monitor_key.verify(&msg, &signed.signature) {
            return Err(VerifyError::BadReportSignature);
        }
        if let Some(expected) = expected_measurement {
            if signed.report.measurement != expected {
                return Err(VerifyError::WrongDomainMeasurement {
                    got: signed.report.measurement,
                    expected,
                });
            }
        }
        Ok(AttestedDomain {
            domain: signed.report.domain,
            measurement: signed.report.measurement,
            report: signed.report.clone(),
        })
    }
}

/// Computes the expected PCR 17 value for a monitor image measurement —
/// what a verifier derives from the open-source monitor build.
pub fn expected_pcr_for(image_measurement: Digest) -> Digest {
    tyche_crypto::hash_parts(&[Digest::ZERO.as_bytes(), image_measurement.as_bytes()])
}

/// The measurement roots one machine *publishes* so fleet peers can
/// verify its attestation chain: its TPM's quote-verification key and
/// its monitor's report-verification key. In a real deployment these
/// travel out-of-band (a fleet manifest, an endorsement certificate);
/// in the model they are collected from the booted monitor.
///
/// Note what is deliberately **not** published: the expected monitor
/// PCR. Each peer derives that itself from the open-source monitor
/// build it trusts ([`Self::verifier`]), so a byzantine machine that
/// boots a different monitor can distribute honest-looking keys and
/// still fail tier 1 of every peer's [`Verifier::verify`].
#[derive(Clone, Debug)]
pub struct MachineRoots {
    /// The machine's TPM attestation (quote-verification) key.
    pub tpm_key: VerifyingKey,
    /// The machine's monitor report-verification key.
    pub monitor_key: VerifyingKey,
}

impl MachineRoots {
    /// Collects the roots a booted monitor publishes for its machine.
    pub fn of(monitor: &crate::monitor::Monitor) -> Self {
        MachineRoots {
            tpm_key: monitor.machine.tpm.attestation_key(),
            monitor_key: monitor.report_key(),
        }
    }

    /// Builds the verifier a peer uses against this machine, trusting
    /// only monitors whose image measures to the named `version` (see
    /// `boot::expected_monitor_pcr`).
    pub fn verifier(&self, version: &str) -> Verifier {
        Verifier {
            tpm_key: self.tpm_key.clone(),
            expected_monitor_pcr: crate::boot::expected_monitor_pcr(version),
            monitor_key: self.monitor_key.clone(),
        }
    }
}

// ---------------------------------------------------------------------
// Multi-domain topology attestation (§4.2 extension)
// ---------------------------------------------------------------------

/// What a verifier expects of a multi-domain deployment: a set of member
/// domains (optionally with pinned measurements) and the exact shared
/// channels among them. "All communication paths are secured and
/// attested" (§4.2) means: every byte reachable by more than one member
/// must be a declared channel, reachable by *exactly* its declared
/// member set — no undeclared sharing, no outsiders on any channel.
#[derive(Clone, Debug, Default)]
pub struct TopologySpec {
    /// Expected member measurements, parallel to the reports presented;
    /// `None` skips the measurement pin for that slot.
    pub member_measurements: Vec<Option<Digest>>,
    /// Declared channels: `(start, end, member indices with access)`.
    pub channels: Vec<(u64, u64, Vec<usize>)>,
}

/// Why a topology failed verification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TopologyError {
    /// The spec and the report set disagree on cardinality.
    WrongMemberCount {
        /// Reports presented.
        got: usize,
        /// Spec slots.
        expected: usize,
    },
    /// An individual report failed (index, underlying error).
    Member(usize, VerifyError),
    /// Member `member` shares `[start, end)` which no declared channel
    /// covers.
    UndeclaredSharing {
        /// The offending member index.
        member: usize,
        /// Region start.
        start: u64,
        /// Region end.
        end: u64,
    },
    /// A declared channel is missing from a member that should hold it.
    MissingChannel {
        /// The member index lacking the channel.
        member: usize,
        /// Channel start.
        start: u64,
    },
    /// A channel's reference count does not equal its member-set size:
    /// someone outside the deployment can reach it.
    OutsiderOnChannel {
        /// Channel start.
        start: u64,
        /// Declared member count.
        expected: usize,
        /// Observed reference count.
        got: usize,
    },
}

impl core::fmt::Display for TopologyError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TopologyError::WrongMemberCount { got, expected } => {
                write!(f, "expected {expected} member reports, got {got}")
            }
            TopologyError::Member(i, e) => write!(f, "member {i}: {e}"),
            TopologyError::UndeclaredSharing { member, start, end } => {
                write!(
                    f,
                    "member {member} shares undeclared region [{start:#x},{end:#x})"
                )
            }
            TopologyError::MissingChannel { member, start } => {
                write!(f, "member {member} lacks declared channel at {start:#x}")
            }
            TopologyError::OutsiderOnChannel {
                start,
                expected,
                got,
            } => write!(
                f,
                "channel at {start:#x}: refcount {got} but only {expected} members declared"
            ),
        }
    }
}

impl std::error::Error for TopologyError {}

impl Verifier {
    /// Verifies a whole deployment: one machine quote, one signed report
    /// per member, and the [`TopologySpec`]. On success the deployment's
    /// communication graph is exactly the declared one.
    pub fn verify_topology(
        &self,
        quote: &Quote,
        quote_nonce: &[u8; 32],
        reports: &[SignedReport],
        report_nonce: &[u8; 32],
        spec: &TopologySpec,
    ) -> Result<Vec<AttestedDomain>, TopologyError> {
        if reports.len() != spec.member_measurements.len() {
            return Err(TopologyError::WrongMemberCount {
                got: reports.len(),
                expected: spec.member_measurements.len(),
            });
        }
        let mut attested = Vec::with_capacity(reports.len());
        for (i, (r, expect)) in reports.iter().zip(&spec.member_measurements).enumerate() {
            let a = self
                .verify(quote, quote_nonce, r, report_nonce, *expect)
                .map_err(|e| TopologyError::Member(i, e))?;
            attested.push(a);
        }
        // Every shared memory region of every member must be a declared
        // channel covering that member...
        for (i, a) in attested.iter().enumerate() {
            for res in &a.report.resources {
                let tyche_core::Resource::Memory(region) = res.resource else {
                    continue;
                };
                if res.refcount.max <= 1 {
                    continue;
                }
                let declared = spec.channels.iter().find(|(s, e, members)| {
                    *s == region.start && *e == region.end && members.contains(&i)
                });
                let Some((s, _e, members)) = declared else {
                    return Err(TopologyError::UndeclaredSharing {
                        member: i,
                        start: region.start,
                        end: region.end,
                    });
                };
                // ...with a refcount of exactly the member-set size.
                if res.refcount.max != members.len() || res.refcount.min != members.len() {
                    return Err(TopologyError::OutsiderOnChannel {
                        start: *s,
                        expected: members.len(),
                        got: res.refcount.max,
                    });
                }
            }
        }
        // ...and every declared channel must actually exist in each of
        // its members' reports (a missing leg means the path is not the
        // one the verifier will use).
        for (s, e, members) in &spec.channels {
            for &i in members {
                let present = attested[i].report.resources.iter().any(|r| {
                    matches!(r.resource, tyche_core::Resource::Memory(m)
                        if m.start == *s && m.end == *e)
                });
                if !present {
                    return Err(TopologyError::MissingChannel {
                        member: i,
                        start: *s,
                    });
                }
            }
        }
        Ok(attested)
    }
}
