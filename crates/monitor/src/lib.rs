//! The Tyche isolation monitor (§4 of the paper).
//!
//! This crate assembles the system: the platform-independent capability
//! engine (`tyche-core`) runs on top of simulated commodity hardware
//! (`tyche-hw`), connected by platform *backends* that translate engine
//! [`tyche_core::Effect`]s into hardware state:
//!
//! - [`backend::x86`]: per-domain EPTs (identity-mapped, since domains name
//!   physical memory), an EPTP list for VMFUNC fast transitions, and
//!   I/O-MMU contexts for device capabilities;
//! - [`backend::riscv`]: per-domain PMP layouts with the paper's layout
//!   validation — a domain whose memory fragments need more than the 16
//!   available entries is rejected (§4: "PMP only supports a fixed number
//!   of segments, which requires a careful memory layout of trust domains
//!   and validation by the monitor");
//! - [`abi`]: the VMCALL / ecall calling convention — how a running domain
//!   names engine operations through registers;
//! - [`monitor`]: the runtime — per-core current domain, mediated
//!   transitions with flush policies, the VMFUNC fast path, memory access
//!   on behalf of the running domain;
//! - [`attest`]: the two-tier attestation protocol (§3.4) — TPM quote over
//!   the measured monitor, monitor-signed domain reports, and the remote
//!   verifier that checks the chain;
//! - [`boot`]: measured boot — loading the monitor image, extending PCRs,
//!   endowing the initial domain with the whole machine.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Tests assert on engine state freely; the panic-path lints govern
// production code only (accounting: crates/verify/allowlist.toml).
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod abi;
pub mod attest;
pub mod backend;
pub mod boot;
pub mod concurrent;
pub mod monitor;

pub use abi::{MonitorCall, Status};
pub use concurrent::{ConcurrentMonitor, RingOutcome, SmpStats};
pub use attest::{AttestedDomain, MachineRoots, Verifier};
pub use boot::{boot_riscv, boot_x86, BootConfig};
pub use monitor::{Arch, Fault, Monitor};
