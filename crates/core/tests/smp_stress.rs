//! Seeded concurrent stress test for [`SharedEngine`].
//!
//! N threads race capability mutations (create/share/grant/revoke/seal/
//! set-entry/make-transition) through the sharded front-end while also
//! auditing point-in-time snapshots. Every mutation is recorded with its
//! concrete arguments and the sequence number [`SharedEngine::mutate`]
//! assigned inside the exclusive section. Afterwards the log is replayed
//! single-threadedly in sequence order on a fresh engine: because the
//! sequence order is a linearization, the replay must produce the *same
//! result for every operation* and an engine that is `==` to the shared
//! one — ids, stamps, and pending effects included. Any lost update,
//! torn snapshot, or non-linearizable interleaving shows up as a replay
//! divergence; any invariant break shows up in `audit()`.
//!
//! The seed comes from `TYCHE_STRESS_SEED` (default 1) and the shard
//! count from `TYCHE_STRESS_SHARDS` (default [`SHARDS`]) so CI can
//! sweep a fixed set of seeds crossed with shard counts. Run with
//! `--features paranoid-checks` to keep the index-vs-scan differential
//! checks hot in release builds.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use tyche_core::audit::audit;
use tyche_core::prelude::*;
use tyche_core::shared::{SharedEngine, SHARDS};

const THREADS: usize = 4;
const OPS_PER_THREAD: usize = 100;
/// Each thread's private 1 MiB window inside the root endowment.
const WINDOW: u64 = 0x10_0000;

/// xorshift64* — tiny, seedable, good enough to diversify interleavings.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// One recorded mutation: everything needed to re-issue it verbatim.
#[derive(Clone, Debug)]
enum Op {
    Create { mgr: DomainId },
    Share { actor: DomainId, cap: CapId, target: DomainId, sub: Option<MemRegion> },
    Grant { actor: DomainId, cap: CapId, target: DomainId },
    Revoke { actor: DomainId, cap: CapId },
    SetEntry { actor: DomainId, domain: DomainId, entry: u64 },
    Seal { actor: DomainId, domain: DomainId },
    MakeTransition { actor: DomainId, target: DomainId },
}

impl Op {
    /// Applies the operation to an engine, returning a comparable result
    /// digest (success payloads and errors both derive `Debug`).
    fn apply(&self, e: &mut CapEngine) -> String {
        match *self {
            Op::Create { mgr } => format!("{:?}", e.create_domain(mgr)),
            Op::Share { actor, cap, target, sub } => format!(
                "{:?}",
                e.share(actor, cap, target, sub, Rights::RW, RevocationPolicy::NONE)
            ),
            Op::Grant { actor, cap, target } => format!(
                "{:?}",
                e.grant(actor, cap, target, None, Rights::RW, RevocationPolicy::ZERO)
            ),
            Op::Revoke { actor, cap } => format!("{:?}", e.revoke(actor, cap)),
            Op::SetEntry { actor, domain, entry } => {
                format!("{:?}", e.set_entry(actor, domain, entry))
            }
            Op::Seal { actor, domain } => {
                format!("{:?}", e.seal(actor, domain, SealPolicy::nestable()))
            }
            Op::MakeTransition { actor, target } => format!(
                "{:?}",
                e.make_transition(actor, target, RevocationPolicy::NONE)
            ),
        }
    }

    /// The domains whose shards the shared run locks for this op.
    fn domains(&self) -> Vec<DomainId> {
        match *self {
            Op::Create { mgr } => vec![mgr],
            Op::Share { actor, target, .. } | Op::Grant { actor, target, .. } => {
                vec![actor, target]
            }
            Op::Revoke { actor, .. } => vec![actor],
            Op::SetEntry { actor, domain, .. } | Op::Seal { actor, domain } => {
                vec![actor, domain]
            }
            Op::MakeTransition { actor, target } => vec![actor, target],
        }
    }
}

/// Deterministic setup shared by the concurrent run and the replay:
/// root endows THREADS private windows to tenant domains T_0..T_N.
fn setup() -> (CapEngine, DomainId, Vec<(DomainId, CapId)>) {
    let mut e = CapEngine::new();
    let root = e.create_root_domain();
    let ram = e
        .endow(root, Resource::mem(0, THREADS as u64 * WINDOW), Rights::RWX)
        .unwrap();
    let tenants: Vec<(DomainId, CapId)> = (0..THREADS as u64)
        .map(|i| {
            let (t, _gate) = e.create_domain(root).unwrap();
            let window = e
                .share(
                    root,
                    ram,
                    t,
                    Some(MemRegion::new(i * WINDOW, (i + 1) * WINDOW)),
                    Rights::RWX,
                    RevocationPolicy::NONE,
                )
                .unwrap();
            (t, window)
        })
        .collect();
    (e, root, tenants)
}

fn seed_from_env() -> u64 {
    std::env::var("TYCHE_STRESS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

fn shards_from_env() -> usize {
    std::env::var("TYCHE_STRESS_SHARDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(SHARDS)
}

#[test]
fn concurrent_mutations_linearize_and_audit_clean() {
    let seed = seed_from_env();
    let shards = shards_from_env();
    let (engine, _root, tenants) = setup();
    let shared = Arc::new(SharedEngine::with_shards(engine, shards));
    let log: Arc<Mutex<Vec<(u64, Op, String)>>> = Arc::new(Mutex::new(Vec::new()));
    let snapshot_audits = Arc::new(AtomicU64::new(0));

    let workers: Vec<_> = (0..THREADS)
        .map(|tid| {
            let shared = Arc::clone(&shared);
            let log = Arc::clone(&log);
            let snapshot_audits = Arc::clone(&snapshot_audits);
            let tenants = tenants.clone();
            std::thread::spawn(move || {
                let mut rng = Rng::new(seed ^ (tid as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                let (me, my_window) = tenants[tid];
                let (peer, _) = tenants[(tid + 1) % THREADS];
                for i in 0..OPS_PER_THREAD {
                    // Decide the op and its *concrete* arguments from a
                    // point-in-time snapshot; the shared state may move
                    // before the mutation commits, which is exactly the
                    // raciness the replay check has to absorb.
                    let snap = shared.snapshot();
                    let op = match rng.below(10) {
                        0 | 1 => Op::Create { mgr: me },
                        2 | 3 => {
                            // Share a random subrange of my window with a
                            // peer (or back to one of my own children).
                            let base = (tid as u64) * WINDOW;
                            let page = rng.below(WINDOW / 0x1000 - 1) * 0x1000;
                            let target = if rng.below(2) == 0 {
                                peer
                            } else {
                                pick_child(&snap, me, &mut rng).unwrap_or(peer)
                            };
                            Op::Share {
                                actor: me,
                                cap: my_window,
                                target,
                                sub: Some(MemRegion::new(base + page, base + page + 0x1000)),
                            }
                        }
                        4 => {
                            // Grant a previously shared child cap onward.
                            match pick_cap(&snap, me, &mut rng) {
                                Some(cap) => Op::Grant { actor: me, cap, target: peer },
                                None => Op::Create { mgr: me },
                            }
                        }
                        5 | 6 => {
                            // Revoke something I granted (I am the granter
                            // of every cap derived from my window).
                            match pick_granted(&snap, me, &mut rng) {
                                Some(cap) => Op::Revoke { actor: me, cap },
                                None => Op::Create { mgr: me },
                            }
                        }
                        7 => match pick_child(&snap, me, &mut rng) {
                            Some(d) => Op::SetEntry {
                                actor: me,
                                domain: d,
                                entry: (tid as u64) * WINDOW,
                            },
                            None => Op::Create { mgr: me },
                        },
                        8 => match pick_child(&snap, me, &mut rng) {
                            Some(d) => Op::Seal { actor: me, domain: d },
                            None => Op::Create { mgr: me },
                        },
                        _ => Op::MakeTransition { actor: me, target: me },
                    };
                    let domains = op.domains();
                    let (seq, result) = shared.mutate(&domains, |e| op.apply(e));
                    match log.lock() {
                        Ok(mut g) => g.push((seq, op, result)),
                        Err(p) => p.into_inner().push((seq, op, result)),
                    }
                    // Periodically audit a fresh snapshot: every committed
                    // prefix of the linearization must be invariant-clean.
                    if i % 16 == 0 {
                        let s = shared.snapshot();
                        assert!(
                            audit(&s).is_empty(),
                            "snapshot audit failed (seed {seed}, thread {tid}, iter {i})"
                        );
                        snapshot_audits.fetch_add(1, Ordering::Relaxed);
                    }
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }

    let shared = Arc::try_unwrap(shared).ok().expect("workers joined");
    assert_eq!(shared.mutations(), (THREADS * OPS_PER_THREAD) as u64);
    let final_engine = shared.into_inner();
    assert!(
        audit(&final_engine).is_empty(),
        "final audit failed (seed {seed}, shards {shards})"
    );
    assert!(snapshot_audits.load(Ordering::Relaxed) > 0);

    // Linearized replay: same setup, ops in sequence order, must agree
    // op-for-op and end in an identical engine.
    let mut log = match Arc::try_unwrap(log).map(Mutex::into_inner) {
        Ok(Ok(v)) => v,
        _ => panic!("log lock poisoned"),
    };
    log.sort_by_key(|(seq, _, _)| *seq);
    assert_eq!(log.len(), THREADS * OPS_PER_THREAD);
    let (mut replay, _root, _tenants) = setup();
    for (seq, op, recorded) in &log {
        let got = op.apply(&mut replay);
        assert_eq!(
            &got, recorded,
            "replay diverged at seq {seq} for {op:?} (seed {seed})"
        );
    }
    assert!(audit(&replay).is_empty());
    assert_eq!(
        replay, final_engine,
        "linearized replay does not reproduce the shared engine (seed {seed}, shards {shards})"
    );
}

/// A random unsealed child domain of `mgr` from the snapshot.
fn pick_child(snap: &CapEngine, mgr: DomainId, rng: &mut Rng) -> Option<DomainId> {
    let kids: Vec<DomainId> = snap
        .domains()
        .filter(|d| d.manager == Some(mgr) && d.is_alive())
        .map(|d| d.id)
        .collect();
    if kids.is_empty() {
        None
    } else {
        Some(kids[rng.below(kids.len() as u64) as usize])
    }
}

/// A random active memory capability owned by `who`.
fn pick_cap(snap: &CapEngine, who: DomainId, rng: &mut Rng) -> Option<CapId> {
    let caps: Vec<CapId> = snap
        .caps_of(who)
        .iter()
        .filter(|c| c.active && matches!(c.resource, Resource::Memory(_)))
        .map(|c| c.id)
        .collect();
    if caps.is_empty() {
        None
    } else {
        Some(caps[rng.below(caps.len() as u64) as usize])
    }
}

/// A random capability granted by `who` (so `who` may revoke it).
fn pick_granted(snap: &CapEngine, who: DomainId, rng: &mut Rng) -> Option<CapId> {
    let caps: Vec<CapId> = snap
        .caps()
        .filter(|c| c.granter == who && c.owner != who)
        .map(|c| c.id)
        .collect();
    if caps.is_empty() {
        None
    } else {
        Some(caps[rng.below(caps.len() as u64) as usize])
    }
}
