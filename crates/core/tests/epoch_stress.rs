//! Epoch read-side stress: readers pin snapshots across revocation
//! storms.
//!
//! Memory safety of a stale snapshot is unconditional here (`Arc` keeps
//! the clone alive), so what this test pins down is the *epoch
//! protocol* itself:
//!
//! - a pinned reader's view is never mutated or reclaimed out from
//!   under it, no matter how many publications displace it;
//! - while any reader is pinned at or before a displacement epoch, the
//!   displaced snapshot is retired (deferred), never reclaimed — and
//!   the moment the last pin drops, reclamation drains to zero;
//! - generations observed through `current_with_gen` are monotone per
//!   reader (the publish protocol's head store is the linearization
//!   point, so a reader can never see time move backwards);
//! - every snapshot a reader can observe mid-storm audits clean.
//!
//! The seed comes from `TYCHE_STRESS_SEED` (default 1) so CI can sweep
//! a fixed set of seeds. Run with `--features paranoid-checks` to keep
//! the index-vs-scan differential checks hot in release builds.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use tyche_core::audit::audit;
use tyche_core::prelude::*;
use tyche_core::shared::{SharedEngine, SNAP_SLOTS};

const WRITERS: usize = 3;
const READERS: usize = 3;
const STORM_OPS: usize = 100;
/// Each writer's private 1 MiB window inside the root endowment.
const WINDOW: u64 = 0x10_0000;

/// xorshift64* — tiny, seedable, good enough to diversify interleavings.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn seed_from_env() -> u64 {
    std::env::var("TYCHE_STRESS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

/// Root endows WRITERS private windows to tenant domains.
fn setup() -> (CapEngine, Vec<(DomainId, CapId)>) {
    let mut e = CapEngine::new();
    let root = e.create_root_domain();
    let ram = e
        .endow(root, Resource::mem(0, WRITERS as u64 * WINDOW), Rights::RWX)
        .unwrap();
    let tenants: Vec<(DomainId, CapId)> = (0..WRITERS as u64)
        .map(|i| {
            let (t, _gate) = e.create_domain(root).unwrap();
            let window = e
                .share(
                    root,
                    ram,
                    t,
                    Some(MemRegion::new(i * WINDOW, (i + 1) * WINDOW)),
                    Rights::RWX,
                    RevocationPolicy::NONE,
                )
                .unwrap();
            (t, window)
        })
        .collect();
    (e, tenants)
}

#[test]
fn readers_pin_stable_views_across_revoke_storm() {
    let seed = seed_from_env();
    let (engine, tenants) = setup();
    let shared = Arc::new(SharedEngine::new(engine));

    // The anchor pin: taken at epoch 0 and held across the whole storm,
    // so *every* displaced snapshot must be retired and *none* may be
    // reclaimed until it drops. This makes the reclamation accounting
    // below exact despite the racing readers pinning and unpinning.
    let anchor = shared.epochs().pin(0);
    let (g0, view0) = shared.epochs().current_with_gen();

    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..READERS)
        .map(|rid| {
            let shared = Arc::clone(&shared);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut last_gen = 0u64;
                let mut iters = 0u64;
                while !stop.load(Ordering::Acquire) {
                    // Reader slot 0 is the anchor; racing readers use 1+.
                    let _pin = shared.epochs().pin(1 + rid);
                    let (gen, snap) = shared.epochs().current_with_gen();
                    assert!(
                        gen >= last_gen,
                        "reader {rid} saw generation run backwards: {gen} < {last_gen} (seed {seed})"
                    );
                    last_gen = gen;
                    if iters.is_multiple_of(8) {
                        assert!(
                            audit(&snap).is_empty(),
                            "reader {rid} observed an unauditable snapshot at gen {gen} (seed {seed})"
                        );
                    }
                    iters += 1;
                }
                iters
            })
        })
        .collect();

    let writers: Vec<_> = (0..WRITERS)
        .map(|tid| {
            let shared = Arc::clone(&shared);
            let tenants = tenants.clone();
            std::thread::spawn(move || {
                let mut rng = Rng::new(seed ^ (tid as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                let (me, my_window) = tenants[tid];
                let (peer, _) = tenants[(tid + 1) % WRITERS];
                for _ in 0..STORM_OPS {
                    // One share...
                    let base = (tid as u64) * WINDOW
                        + rng.below(WINDOW / 0x1000 - 1) * 0x1000;
                    let (_, shared_cap) = shared.mutate(&[me, peer], |e| {
                        e.share(
                            me,
                            my_window,
                            peer,
                            Some(MemRegion::new(base, base + 0x1000)),
                            Rights::RW,
                            RevocationPolicy::NONE,
                        )
                        .expect("storm share")
                    });
                    // ...immediately revoked: the classic storm that used
                    // to hammer the snapshot-cache mutex.
                    shared.mutate(&[me, peer], |e| {
                        e.revoke(me, shared_cap).expect("storm revoke");
                    });
                }
            })
        })
        .collect();
    for w in writers {
        w.join().unwrap();
    }
    stop.store(true, Ordering::Release);
    for r in readers {
        assert!(r.join().unwrap() > 0, "reader made no progress");
    }

    // The anchor still pins epoch 0: exact accounting. Every mutation
    // published a snapshot, every publication displaced one, and none
    // were reclaimed.
    let published = shared.epochs().published();
    assert_eq!(published, (WRITERS * STORM_OPS * 2) as u64);
    assert_eq!(shared.mutations(), published);
    assert_eq!(shared.epochs().retired_len() as u64, published);
    assert_eq!(shared.epochs().deferred(), published);
    assert_eq!(shared.epochs().reclaimed(), 0);

    // The anchored view never moved.
    assert_eq!(view0.generation(), g0, "pinned view mutated under the reader");
    assert!(audit(&view0).is_empty());

    // Dropping the last pin opens the grace window: everything drains.
    drop(anchor);
    let freed = shared.epochs().reclaim();
    assert_eq!(freed as u64, published);
    assert_eq!(shared.epochs().retired_len(), 0);
    assert_eq!(shared.epochs().reclaimed(), published);

    let final_engine = Arc::try_unwrap(shared).ok().expect("threads joined").into_inner();
    assert!(audit(&final_engine).is_empty(), "final audit failed (seed {seed})");
}

#[test]
fn pinned_view_survives_slot_ring_wraparound() {
    let (engine, tenants) = setup();
    let shared = SharedEngine::new(engine);
    let (me, my_window) = tenants[0];
    let (peer, _) = tenants[1];

    // With no pins, every publication's predecessor reclaims at once.
    shared.mutate(&[me, peer], |e| {
        e.share(me, my_window, peer, None, Rights::RW, RevocationPolicy::NONE)
            .expect("warmup share")
    });
    assert_eq!(shared.epochs().retired_len(), 0);
    assert!(shared.epochs().reclaimed() > 0);
    let base_reclaimed = shared.epochs().reclaimed();

    // Pin, capture, then publish more generations than the slot ring
    // holds — the pinned snapshot's slot is overwritten, yet the view
    // must stay bit-identical.
    let pin = shared.epochs().pin(1);
    let (g0, view) = shared.epochs().current_with_gen();
    let baseline = (*view).clone();
    let wrap = (SNAP_SLOTS + 2) as u64;
    for i in 0..wrap {
        let page = (i % 16) * 0x1000;
        let cap = shared
            .mutate(&[me, peer], |e| {
                e.share(
                    me,
                    my_window,
                    peer,
                    Some(MemRegion::new(page, page + 0x1000)),
                    Rights::RW,
                    RevocationPolicy::NONE,
                )
                .expect("wrap share")
            })
            .1;
        shared.mutate(&[me, peer], |e| {
            e.revoke(me, cap).expect("wrap revoke");
        });
    }
    let (g1, _) = shared.epochs().current_with_gen();
    assert!(g1 > g0, "publications must advance the read head");
    assert_eq!(*view, baseline, "pinned view changed across slot reuse");
    assert!(audit(&view).is_empty());

    // Everything displaced *after* the pin was deferred, not reclaimed;
    // only the ring's never-displaced boot clones (displacement epoch 0,
    // strictly before the pin) may have drained mid-loop.
    let pending = shared.epochs().retired_len() as u64;
    assert!(pending >= 2 * wrap - SNAP_SLOTS as u64);
    assert_eq!(shared.epochs().deferred(), pending);
    assert!(shared.epochs().reclaimed() <= base_reclaimed + SNAP_SLOTS as u64);

    drop(pin);
    assert_eq!(shared.epochs().reclaim() as u64, pending);
    assert_eq!(shared.epochs().retired_len(), 0);
    assert!(audit(&shared.into_inner()).is_empty());
}
