//! Property-based tests: random operation sequences must preserve every
//! engine invariant, reference counts must agree with a naive model, and
//! cascading revocation must always terminate and restore baseline state.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use proptest::prelude::*;
use tyche_core::audit::audit;
use tyche_core::prelude::*;

const RAM_END: u64 = 0x100_0000;

/// An abstract operation the fuzzer can attempt. Indices are reduced
/// modulo the live object counts, so every generated op is attemptable
/// (though it may be validly refused).
#[derive(Clone, Debug)]
enum Op {
    CreateDomain {
        manager: usize,
    },
    Share {
        actor: usize,
        cap: usize,
        target: usize,
        sub: Option<(u64, u64)>,
        rights: u8,
    },
    Grant {
        actor: usize,
        cap: usize,
        target: usize,
        rights: u8,
    },
    Split {
        actor: usize,
        cap: usize,
        at: u64,
    },
    Revoke {
        actor: usize,
        cap: usize,
    },
    Seal {
        domain: usize,
        strict: bool,
    },
    Kill {
        domain: usize,
    },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..8).prop_map(|manager| Op::CreateDomain { manager }),
        (
            0usize..8,
            0usize..64,
            0usize..8,
            proptest::option::of((0u64..RAM_END, 1u64..0x10000)),
            0u8..8
        )
            .prop_map(|(actor, cap, target, sub, rights)| Op::Share {
                actor,
                cap,
                target,
                sub,
                rights
            }),
        (0usize..8, 0usize..64, 0usize..8, 0u8..8).prop_map(|(actor, cap, target, rights)| {
            Op::Grant {
                actor,
                cap,
                target,
                rights,
            }
        }),
        (0usize..8, 0usize..64, 0u64..RAM_END).prop_map(|(actor, cap, at)| Op::Split {
            actor,
            cap,
            at
        }),
        (0usize..8, 0usize..64).prop_map(|(actor, cap)| Op::Revoke { actor, cap }),
        (0usize..8, any::<bool>()).prop_map(|(domain, strict)| Op::Seal { domain, strict }),
        (1usize..8).prop_map(|domain| Op::Kill { domain }),
    ]
}

/// Applies an op, ignoring valid refusals (errors) — the property under
/// test is that *whatever the engine accepts* keeps the state sound.
fn apply(e: &mut CapEngine, op: &Op) {
    let domains: Vec<DomainId> = e.domains().filter(|d| d.is_alive()).map(|d| d.id).collect();
    if domains.is_empty() {
        return;
    }
    let dom = |i: usize| domains[i % domains.len()];
    let caps: Vec<CapId> = e.caps().map(|c| c.id).collect();
    let cap = |i: usize| caps.get(i % caps.len().max(1)).copied();

    match op {
        Op::CreateDomain { manager } => {
            let _ = e.create_domain(dom(*manager));
        }
        Op::Share {
            actor,
            cap: c,
            target,
            sub,
            rights,
        } => {
            if let Some(c) = cap(*c) {
                let sub = sub.map(|(s, l)| {
                    let start = s.min(RAM_END - 1);
                    let end = (start + l).min(RAM_END).max(start + 1);
                    MemRegion::new(start, end)
                });
                let _ = e.share(
                    dom(*actor),
                    c,
                    dom(*target),
                    sub,
                    Rights(*rights),
                    RevocationPolicy::ZERO,
                );
            }
        }
        Op::Grant {
            actor,
            cap: c,
            target,
            rights,
        } => {
            if let Some(c) = cap(*c) {
                let _ = e.grant(
                    dom(*actor),
                    c,
                    dom(*target),
                    None,
                    Rights(*rights),
                    RevocationPolicy::OBFUSCATE,
                );
            }
        }
        Op::Split { actor, cap: c, at } => {
            if let Some(c) = cap(*c) {
                let _ = e.split(dom(*actor), c, *at);
            }
        }
        Op::Revoke { actor, cap: c } => {
            if let Some(c) = cap(*c) {
                let _ = e.revoke(dom(*actor), c);
            }
        }
        Op::Seal { domain, strict } => {
            let d = dom(*domain);
            let manager = e.domain(d).and_then(|x| x.manager).unwrap_or(d);
            let _ = e.set_entry(manager, d, 0x1000);
            let policy = if *strict {
                SealPolicy::strict()
            } else {
                SealPolicy::nestable()
            };
            let _ = e.seal(manager, d, policy);
        }
        Op::Kill { domain } => {
            let d = dom(*domain);
            if Some(d) != e.root() {
                if let Some(m) = e.domain(d).and_then(|x| x.manager) {
                    let _ = e.kill(m, d);
                }
            }
        }
    }
}

fn booted() -> (CapEngine, DomainId) {
    let mut e = CapEngine::new();
    let os = e.create_root_domain();
    e.endow(os, Resource::mem(0, RAM_END), Rights::RWX).unwrap();
    for core in 0..4 {
        e.endow(os, Resource::CpuCore(core), Rights::USE).unwrap();
    }
    (e, os)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Invariants hold after every prefix of any operation sequence.
    #[test]
    fn invariants_hold_under_random_ops(ops in proptest::collection::vec(op_strategy(), 1..60)) {
        let (mut e, _os) = booted();
        for op in &ops {
            apply(&mut e, op);
            let violations = audit(&e);
            prop_assert!(violations.is_empty(), "after {:?}: {:?}", op, violations);
        }
    }

    /// Whatever happened, the root domain can always reclaim all memory:
    /// revoking every child of its root endowments restores refcount 1
    /// everywhere the root has coverage.
    #[test]
    fn root_can_always_reclaim(ops in proptest::collection::vec(op_strategy(), 1..40)) {
        let (mut e, os) = booted();
        for op in &ops {
            apply(&mut e, op);
        }
        // Revoke every capability derived from root endowments.
        let root_caps: Vec<CapId> = e
            .caps_of(os)
            .iter()
            .filter(|c| c.parent.is_none() && c.is_memory())
            .map(|c| c.id)
            .collect();
        for rc in root_caps {
            let children: Vec<CapId> = e
                .cap(rc)
                .map(|c| c.children.iter().copied().collect())
                .unwrap_or_default();
            for ch in children {
                if e.cap(ch).is_some() {
                    e.revoke(os, ch).unwrap();
                }
            }
        }
        // After reclaiming, no non-root domain retains any memory access.
        // (The root may have released endowments entirely, so coverage can
        // be less than full RAM — what matters is who holds what remains.)
        for (owner, region) in e.active_mem_coverage() {
            prop_assert_eq!(owner, os, "domain {} still covers {:?}", owner, region);
        }
        let rc = e.refcount_mem_full(MemRegion::new(0, RAM_END));
        prop_assert!(rc.max <= 1, "root reclaim left refcount {:?}", rc);
        prop_assert!(audit(&e).is_empty());
    }

    /// Reference counts computed by the engine match a naive per-byte
    /// model sampled at random addresses.
    #[test]
    fn refcount_matches_naive_model(
        ops in proptest::collection::vec(op_strategy(), 1..40),
        samples in proptest::collection::vec(0u64..RAM_END, 8)
    ) {
        let (mut e, _os) = booted();
        for op in &ops {
            apply(&mut e, op);
        }
        let coverage = e.active_mem_coverage();
        for addr in samples {
            let engine_count = e.refcount_mem(MemRegion::new(addr, addr + 1));
            let mut owners: Vec<DomainId> = coverage
                .iter()
                .filter(|(_, r)| r.contains_addr(addr))
                .map(|(d, _)| *d)
                .collect();
            owners.sort();
            owners.dedup();
            prop_assert_eq!(engine_count, owners.len(), "at {:#x}", addr);
        }
    }

    /// Splitting preserves coverage exactly.
    #[test]
    fn split_preserves_coverage(splits in proptest::collection::vec(1u64..RAM_END, 1..20)) {
        let (mut e, os) = booted();
        for at in splits {
            // Find an active cap containing `at` strictly inside.
            let candidate = e
                .caps_of(os)
                .iter()
                .find(|c| {
                    c.active
                        && c.resource
                            .as_mem()
                            .map(|r| r.start < at && at < r.end)
                            .unwrap_or(false)
                })
                .map(|c| c.id);
            if let Some(c) = candidate {
                e.split(os, c, at).unwrap();
            }
        }
        let rc = e.refcount_mem_full(MemRegion::new(0, RAM_END));
        prop_assert!(rc.is_exclusive(), "splits changed coverage: {rc:?}");
        prop_assert!(audit(&e).is_empty());
    }

    /// Rights never escalate along any lineage path.
    #[test]
    fn rights_monotone_along_lineage(ops in proptest::collection::vec(op_strategy(), 1..50)) {
        let (mut e, _os) = booted();
        for op in &ops {
            apply(&mut e, op);
        }
        for cap in e.caps() {
            let mut cur = cap.parent;
            while let Some(p) = cur {
                let parent = e.cap(p).unwrap();
                prop_assert!(cap.rights.subset_of(&parent.rights));
                cur = parent.parent;
            }
        }
    }
}
