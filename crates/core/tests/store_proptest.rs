//! Property tests for the arena-backed engine storage at scale.
//!
//! The slab [`Store`] and the interval-tree `mem_index` each keep a
//! naive differential twin in the engine (`caps_of_scan`,
//! `active_mem_coverage_scan`, `refcount_mem_full_scan`,
//! `enumerate_scan`): full scans over the same state that the indexed
//! paths answer from their structures. These properties drive
//! randomized create/share/revoke/kill interleavings to populations of
//! ten thousand domains — enough churn that the slab freelists recycle
//! thousands of slots — and require the indexed answers to match the
//! scans exactly, plus a slot-reuse/generation-tag regression so a
//! stale handle can never alias a recycled slot (ABA).
#![allow(clippy::unwrap_used, clippy::expect_used)]

use proptest::prelude::*;
use std::collections::BTreeMap;
use tyche_core::audit::audit;
use tyche_core::engine::EFFECTS_RETAIN;
use tyche_core::interval::IntervalTree;
use tyche_core::prelude::*;
use tyche_core::store::Store;

/// Domains per property case. Large enough that slot reuse, lineage
/// compaction, and the interval tree's rebalancing all happen in bulk;
/// small enough that a handful of cases stays in test-suite budget.
const POPULATION: usize = 10_000;
/// One 8 KiB lane per domain inside the root endowment.
const LANE: u64 = 0x2000;

/// xorshift64* — the same tiny generator the stress tests use, so the
/// interleavings are reproducible from the proptest-chosen seed.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed | 1)
    }
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Grows a population of `POPULATION` domains under seeded churn:
/// every domain may get a page of the root endowment shared into its
/// lane, and a sliding window of older domains is revoked or killed as
/// the population grows, so creation constantly reuses freed slots.
fn churned_population(seed: u64) -> (CapEngine, DomainId, Vec<DomainId>) {
    let mut e = CapEngine::new();
    let root = e.create_root_domain();
    let ram = e
        .endow(root, Resource::mem(0, POPULATION as u64 * LANE), Rights::RWX)
        .unwrap();
    let mut rng = Rng::new(seed);
    let mut live: Vec<DomainId> = Vec::new();
    let mut shared_caps: Vec<CapId> = Vec::new();
    for i in 0..POPULATION {
        let (d, _gate) = e.create_domain(root).unwrap();
        if rng.below(2) == 0 {
            let base = i as u64 * LANE;
            let cap = e
                .share(
                    root,
                    ram,
                    d,
                    Some(MemRegion::new(base, base + 0x1000)),
                    Rights::RW,
                    RevocationPolicy::NONE,
                )
                .unwrap();
            shared_caps.push(cap);
        }
        live.push(d);
        // Churn: revoke a random earlier share or kill a random earlier
        // domain, each about once per eight creations, so the slab
        // freelists and the interval tree see constant recycling.
        if rng.below(8) == 0 && !shared_caps.is_empty() {
            let idx = rng.below(shared_caps.len() as u64) as usize;
            let cap = shared_caps.swap_remove(idx);
            if e.cap(cap).is_some() {
                let _ = e.revoke(root, cap);
            }
        }
        if rng.below(8) == 0 && live.len() > 1 {
            let idx = rng.below(live.len() as u64 - 1) as usize;
            let victim = live.swap_remove(idx);
            let _ = e.kill(root, victim);
        }
        // Keep the drained-effects backlog bounded during the build.
        if i % 1024 == 0 {
            let _ = e.drain_effects();
        }
    }
    (e, root, live)
}

proptest! {
    // Each case builds a 10k-domain engine; a few seeds is plenty.
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// At 10k domains with heavy slot churn, every indexed query agrees
    /// with its naive scan twin, and the audit stays clean.
    #[test]
    fn indexed_queries_match_scan_twins_at_scale(seed in any::<u64>()) {
        let (e, root, live) = churned_population(seed);
        prop_assert!(audit(&e).is_empty());

        // Whole-engine twins: the interval tree's coverage view.
        prop_assert_eq!(e.active_mem_coverage(), e.active_mem_coverage_scan());

        // Per-domain twins on a sample (plus root, the busiest owner).
        let mut rng = Rng::new(seed ^ 0xDEAD_BEEF);
        let mut sample: Vec<DomainId> = (0..32)
            .filter_map(|_| {
                if live.is_empty() {
                    None
                } else {
                    Some(live[rng.below(live.len() as u64) as usize])
                }
            })
            .collect();
        sample.push(root);
        for d in sample {
            let indexed: Vec<CapId> = e.caps_of(d).iter().map(|c| c.id).collect();
            let scanned: Vec<CapId> = e.caps_of_scan(d).iter().map(|c| c.id).collect();
            prop_assert_eq!(indexed, scanned, "caps_of diverged for {:?}", d);
            prop_assert_eq!(
                e.enumerate(d).ok(),
                e.enumerate_scan(d).ok(),
                "enumerate diverged for {:?}",
                d
            );
        }

        // Refcount twins on random windows (interval overlap queries).
        for _ in 0..64 {
            let start = rng.below(POPULATION as u64) * LANE;
            let len = (1 + rng.below(64)) * 0x1000;
            let region = MemRegion::new(start, start + len);
            prop_assert_eq!(
                e.refcount_mem_full(region),
                e.refcount_mem_full_scan(region),
                "refcount diverged on {:?}",
                region
            );
        }
    }

    /// Raw slab semantics against a `BTreeMap` model under randomized
    /// insert/remove/reinsert interleavings: contents, id-ordered
    /// iteration, and freelist reuse all line up, and no handle taken
    /// before a removal ever resolves afterwards (ABA regression).
    #[test]
    fn store_agrees_with_map_model_and_defeats_aba(
        seed in any::<u64>(),
        steps in 2_000usize..4_000
    ) {
        let mut store: Store<u64> = Store::default();
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        let mut stale = Vec::new();
        let mut rng = Rng::new(seed);
        for step in 0..steps as u64 {
            let id = rng.below(512);
            match rng.below(3) {
                0 => {
                    prop_assert_eq!(store.insert(id, step), model.insert(id, step));
                }
                1 => {
                    // Capture the live handle, remove, and remember the
                    // handle as stale: it must never resolve again even
                    // after the slot is recycled by a later insert.
                    if let Some(h) = store.handle(id) {
                        stale.push(h);
                    }
                    prop_assert_eq!(store.remove(id), model.remove(&id));
                }
                _ => {
                    prop_assert_eq!(store.get(id), model.get(&id));
                }
            }
        }
        prop_assert_eq!(store.len(), model.len());
        prop_assert!(store.iter().eq(model.iter().map(|(&k, v)| (k, v))));
        // The arena never outgrows peak occupancy: every freed slot is
        // reusable, so slots ≤ live + free.
        prop_assert_eq!(store.slot_count(), store.len() + store.free_slots());
        for h in stale {
            prop_assert!(
                store.resolve(h).is_none(),
                "stale handle resolved after slot reuse"
            );
        }
    }

    /// The interval tree against a `BTreeMap` model: insert/remove/
    /// replace interleavings at 10k+ keys preserve in-order iteration
    /// and every overlap query.
    #[test]
    fn interval_tree_agrees_with_map_model(seed in any::<u64>()) {
        let mut tree = IntervalTree::default();
        let mut model: BTreeMap<(u64, u64), (u64, u64)> = BTreeMap::new();
        let mut rng = Rng::new(seed);
        for i in 0..12_000u64 {
            let start = rng.below(1 << 20) * 0x1000;
            let cap = CapId(rng.below(4096));
            match rng.below(4) {
                0 => {
                    tree.remove(start, cap);
                    model.remove(&(start, cap.0));
                }
                _ => {
                    let end = start + (1 + rng.below(256)) * 0x1000;
                    let owner = DomainId(i % 97);
                    tree.insert(start, cap, end, owner);
                    model.insert((start, cap.0), (end, owner.0));
                }
            }
        }
        prop_assert_eq!(tree.len(), model.len());
        prop_assert!(tree
            .iter()
            .map(|e| ((e.start, e.cap.0), (e.end, e.owner.0)))
            .eq(model.iter().map(|(&k, &v)| (k, v))));
        for _ in 0..64 {
            let qs = rng.below(1 << 20) * 0x1000;
            let qe = qs + (1 + rng.below(512)) * 0x1000;
            let got: Vec<_> = tree
                .overlapping(qs, qe)
                .into_iter()
                .map(|e| ((e.start, e.cap.0), (e.end, e.owner.0)))
                .collect();
            let want: Vec<_> = model
                .iter()
                .filter(|(&(s, _), &(e, _))| s < qe && e > qs)
                .map(|(&k, &v)| (k, v))
                .collect();
            prop_assert_eq!(got, want, "overlap diverged on [{qs:#x}, {qe:#x})");
        }
    }
}

/// `drain_effects` capacity accounting: a storm that queues far more
/// effects than the retain cap hands the whole backlog to the caller,
/// then shrinks the internal buffer back to at most [`EFFECTS_RETAIN`]
/// so one burst cannot pin its high-water allocation forever.
#[test]
fn drain_effects_returns_backlog_and_sheds_capacity() {
    let mut e = CapEngine::new();
    let root = e.create_root_domain();
    let ram = e
        .endow(root, Resource::mem(0, 8 * EFFECTS_RETAIN as u64 * 0x1000), Rights::RWX)
        .unwrap();
    let mut caps = Vec::new();
    for i in 0..2 * EFFECTS_RETAIN as u64 {
        let (d, _gate) = e.create_domain(root).unwrap();
        let base = i * 0x1000;
        let cap = e
            .share(
                root,
                ram,
                d,
                Some(MemRegion::new(base, base + 0x1000)),
                Rights::RW,
                RevocationPolicy::ZERO,
            )
            .unwrap();
        caps.push(cap);
    }
    for cap in caps {
        e.revoke(root, cap).unwrap();
    }
    let drained = e.drain_effects();
    assert!(
        drained.len() > EFFECTS_RETAIN,
        "storm should overrun the retain cap (got {})",
        drained.len()
    );
    assert!(
        e.effects_capacity() <= EFFECTS_RETAIN,
        "drain kept a {}-element buffer after a {}-effect storm",
        e.effects_capacity(),
        drained.len()
    );
    // Steady state: small drains size the buffer to what was drained.
    let (d, _gate) = e.create_domain(root).unwrap();
    e.kill(root, d).unwrap();
    let small = e.drain_effects();
    assert!(!small.is_empty());
    assert!(e.effects_capacity() <= EFFECTS_RETAIN);
    // The revoke storm left its lineage in the compacted side table.
    assert!(!e.revoked_log().is_empty() || e.revoked_log().dropped() > 0);
}
