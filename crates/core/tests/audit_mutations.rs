//! Mutation tests for the runtime auditor: corrupt a sound engine one
//! invariant at a time (via the `#[doc(hidden)]` corruption hooks) and
//! assert `audit()` reports exactly the targeted `Violation` variant.
//!
//! The engine's public operations refuse to create any of these states,
//! so each test is also evidence that the auditor is not vacuous: it
//! detects corruption the operational layer can no longer introduce.
//! Every variant in `audit.rs` has a test here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use tyche_core::audit::{audit, Violation};
use tyche_core::prelude::*;

const RAM: MemRegion = MemRegion {
    start: 0x1000,
    end: 0x9000,
};
const PAGE: MemRegion = MemRegion {
    start: 0x1000,
    end: 0x2000,
};

/// Boots root with a RAM endowment and one (unsealed) child domain.
fn booted() -> (CapEngine, DomainId, CapId, DomainId) {
    let mut e = CapEngine::new();
    let root = e.create_root_domain();
    let ram = e
        .endow(root, Resource::Memory(RAM), Rights::RWX)
        .expect("endow RAM");
    let (child, _transition) = e.create_domain(root).expect("create child");
    (e, root, ram, child)
}

fn share(
    e: &mut CapEngine,
    root: DomainId,
    ram: CapId,
    child: DomainId,
    sub: Option<MemRegion>,
    rights: Rights,
) -> CapId {
    e.share(root, ram, child, sub, rights, RevocationPolicy::NONE)
        .expect("share")
}

#[test]
fn dangling_parent_is_reported() {
    let (mut e, root, ram, child) = booted();
    let shared = share(&mut e, root, ram, child, Some(PAGE), Rights::RW);
    assert!(audit(&e).is_empty(), "sound before corruption");

    e.corrupt_cap(shared).unwrap().parent = Some(CapId(0xDEAD));
    assert_eq!(audit(&e), vec![Violation::DanglingParent(shared)]);
}

#[test]
fn broken_child_link_is_reported() {
    let (mut e, root, ram, child) = booted();
    let shared = share(&mut e, root, ram, child, Some(PAGE), Rights::RW);
    assert!(audit(&e).is_empty());

    e.corrupt_cap(ram).unwrap().children.clear();
    assert_eq!(
        audit(&e),
        vec![Violation::BrokenChildLink {
            parent: ram,
            child: shared,
        }]
    );
}

#[test]
fn lineage_cycle_is_reported() {
    let (mut e, root, ram, child) = booted();
    // Full-region, full-rights share so the forged back-edge cannot also
    // trip attenuation or containment — the cycle must stand alone.
    let shared = share(&mut e, root, ram, child, None, Rights::RWX);
    assert!(audit(&e).is_empty());

    e.corrupt_cap(ram).unwrap().parent = Some(shared);
    e.corrupt_cap(shared).unwrap().children.insert(ram);
    let violations = audit(&e);
    assert!(
        violations
            .iter()
            .all(|v| matches!(v, Violation::LineageCycle(_))),
        "only cycle reports expected, got {violations:?}"
    );
    assert!(violations.contains(&Violation::LineageCycle(ram)));
    assert!(violations.contains(&Violation::LineageCycle(shared)));
}

#[test]
fn rights_escalation_is_reported() {
    let (mut e, root, ram, child) = booted();
    let shared = share(&mut e, root, ram, child, Some(PAGE), Rights::RO);
    assert!(audit(&e).is_empty());

    // Attenuation is checked against the parent, so the escalation must
    // exceed the parent's RWX — add the USE bit the endowment never had.
    e.corrupt_cap(shared).unwrap().rights = Rights(Rights::RWX.0 | Rights::U);
    assert_eq!(audit(&e), vec![Violation::RightsEscalation(shared)]);
}

#[test]
fn region_escape_is_reported() {
    let (mut e, root, ram, child) = booted();
    let shared = share(&mut e, root, ram, child, Some(PAGE), Rights::RW);
    assert!(audit(&e).is_empty());

    // Grow the child one page past its parent's endowment.
    e.corrupt_cap(shared).unwrap().resource = Resource::mem(RAM.start, RAM.end + 0x1000);
    assert_eq!(audit(&e), vec![Violation::RegionEscape(shared)]);
}

#[test]
fn active_while_granted_is_reported() {
    let (mut e, root, ram, child) = booted();
    e.grant(root, ram, child, None, Rights::RWX, RevocationPolicy::NONE)
        .expect("grant");
    assert!(audit(&e).is_empty(), "grant suspends the parent: sound");

    // Reactivate the suspended parent while its grant is outstanding —
    // exclusivity is broken.
    e.corrupt_cap(ram).unwrap().active = true;
    assert_eq!(audit(&e), vec![Violation::ActiveWhileGranted(ram)]);
}

#[test]
fn owned_by_dead_is_reported() {
    let (mut e, root, ram, child) = booted();
    let shared = share(&mut e, root, ram, child, Some(PAGE), Rights::RW);
    assert!(audit(&e).is_empty());

    // `kill()` would revoke the child's capabilities first; flipping the
    // state directly models a lost revocation.
    e.corrupt_domain(child).unwrap().state = DomainState::Dead;
    assert_eq!(audit(&e), vec![Violation::OwnedByDead(shared)]);
}

#[test]
fn sealed_extended_is_reported() {
    let (mut e, root, ram, child) = booted();
    let shared = share(&mut e, root, ram, child, Some(PAGE), Rights::RW);
    e.set_entry(root, child, 0x1000).expect("set entry");
    e.seal(root, child, SealPolicy::nestable()).expect("seal");
    assert!(audit(&e).is_empty(), "share-then-seal is sound");

    // The engine refuses to share into a sealed domain, so the unsound
    // state needs a forged stamp: pretend the capability appeared after
    // the owner's seal.
    let sealed = e.domain_sealed_at(child).expect("sealed stamp");
    e.corrupt_created_at(shared, sealed + 1);
    assert_eq!(audit(&e), vec![Violation::SealedExtended(shared)]);
}

#[test]
fn strict_seal_shared_is_reported() {
    let (mut e, root, ram, child) = booted();
    let shared = share(&mut e, root, ram, child, Some(PAGE), Rights::RW);
    assert!(audit(&e).is_empty());

    // A strictly sealed granter cannot share outward after sealing — and
    // the engine enforces exactly that, so forge the granter's seal to a
    // stamp before the share instead.
    e.corrupt_domain(root).unwrap().seal_policy = SealPolicy::strict();
    e.corrupt_sealed_at(root, 0);
    assert_eq!(audit(&e), vec![Violation::StrictSealShared(shared)]);
}

#[test]
fn transition_into_quarantined_is_reported() {
    let (mut e, root, _ram, child) = booted();
    let tcap = e
        .make_transition(root, child, RevocationPolicy::NONE)
        .expect("transition");
    assert!(audit(&e).is_empty());

    // `quarantine()` deactivates every transition into the domain, so the
    // unsound state needs a forged reactivation afterwards.
    e.quarantine(child).expect("quarantine");
    assert!(audit(&e).is_empty(), "quarantine itself is sound");
    e.corrupt_cap(tcap).unwrap().active = true;
    assert_eq!(audit(&e), vec![Violation::TransitionIntoQuarantined(tcap)]);
}
