//! Exhaustive behavioural tests for the capability engine: every operation,
//! its success path, and each typed refusal.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use tyche_core::audit::assert_sound;
use tyche_core::prelude::*;

fn boot() -> (CapEngine, DomainId, CapId) {
    let mut e = CapEngine::new();
    let os = e.create_root_domain();
    let ram = e
        .endow(os, Resource::mem(0, 0x100_0000), Rights::RWX)
        .unwrap();
    for core in 0..4 {
        e.endow(os, Resource::CpuCore(core), Rights::USE).unwrap();
    }
    e.drain_effects();
    (e, os, ram)
}

/// Creates a sealed child with one granted page and a core, returning
/// (child, transition cap, granted page cap).
fn sealed_child(e: &mut CapEngine, os: DomainId, ram: CapId) -> (DomainId, CapId, CapId) {
    let (child, tcap) = e.create_domain(os).unwrap();
    let (page, _rest) = e.split(os, ram, 0x1000).unwrap();
    let granted = e
        .grant(os, page, child, None, Rights::RWX, RevocationPolicy::ZERO)
        .unwrap();
    let core0 = e
        .caps_of(os)
        .iter()
        .find(|c| matches!(c.resource, Resource::CpuCore(0)) && c.active)
        .map(|c| c.id)
        .unwrap();
    e.share(os, core0, child, None, Rights::USE, RevocationPolicy::NONE)
        .unwrap();
    e.set_entry(os, child, 0x0).unwrap();
    e.seal(os, child, SealPolicy::strict()).unwrap();
    (child, tcap, granted)
}

// ---------------------------------------------------------------------
// Domain lifecycle
// ---------------------------------------------------------------------

#[test]
fn root_domain_exists_once() {
    let (e, os, _) = boot();
    assert_eq!(e.root(), Some(os));
    assert!(e.domain(os).unwrap().manager.is_none());
}

#[test]
#[should_panic(expected = "root domain already exists")]
fn second_root_panics() {
    let (mut e, _, _) = boot();
    e.create_root_domain();
}

#[test]
fn endow_only_root() {
    let (mut e, os, _) = boot();
    let (child, _) = e.create_domain(os).unwrap();
    assert_eq!(
        e.endow(child, Resource::mem(0x200_0000, 0x300_0000), Rights::RW),
        Err(CapError::RootDomain)
    );
}

#[test]
fn create_domain_returns_transition_cap() {
    let (mut e, os, _) = boot();
    let (child, tcap) = e.create_domain(os).unwrap();
    let cap = e.cap(tcap).unwrap();
    assert_eq!(cap.owner, os);
    assert!(matches!(cap.resource, Resource::Transition(t) if t == child));
    assert_eq!(e.domain(child).unwrap().manager, Some(os));
}

#[test]
fn any_domain_can_create_domains() {
    // The democratization claim: an unprivileged child domain creates its
    // own children without the root's involvement.
    let (mut e, os, _) = boot();
    let (child, _) = e.create_domain(os).unwrap();
    let (grandchild, _) = e.create_domain(child).unwrap();
    assert_eq!(e.domain(grandchild).unwrap().manager, Some(child));
    assert_sound(&e);
}

#[test]
fn seal_requires_entry_point() {
    let (mut e, os, _) = boot();
    let (child, _) = e.create_domain(os).unwrap();
    assert_eq!(
        e.seal(os, child, SealPolicy::strict()),
        Err(CapError::NoEntryPoint(child))
    );
    e.set_entry(os, child, 0x1000).unwrap();
    assert!(e.seal(os, child, SealPolicy::strict()).is_ok());
}

#[test]
fn seal_is_idempotent_error() {
    let (mut e, os, _) = boot();
    let (child, _) = e.create_domain(os).unwrap();
    e.set_entry(os, child, 0).unwrap();
    e.seal(os, child, SealPolicy::strict()).unwrap();
    assert_eq!(
        e.seal(os, child, SealPolicy::strict()),
        Err(CapError::SealedImmutable(child))
    );
    assert_eq!(
        e.set_entry(os, child, 4),
        Err(CapError::SealedImmutable(child))
    );
}

#[test]
fn only_manager_configures() {
    let (mut e, os, _) = boot();
    let (a, _) = e.create_domain(os).unwrap();
    let (b, _) = e.create_domain(os).unwrap();
    assert_eq!(
        e.set_entry(b, a, 0),
        Err(CapError::NotManager {
            target: a,
            actor: b
        })
    );
    // A domain may configure itself pre-seal.
    assert!(e.set_entry(a, a, 0x10).is_ok());
}

#[test]
fn measurement_depends_on_config() {
    let (mut e1, os1, ram1) = boot();
    let (mut e2, os2, ram2) = boot();
    let (c1, _) = e1.create_domain(os1).unwrap();
    let (c2, _) = e2.create_domain(os2).unwrap();
    let (p1, _) = e1.split(os1, ram1, 0x1000).unwrap();
    let (p2, _) = e2.split(os2, ram2, 0x1000).unwrap();
    e1.grant(os1, p1, c1, None, Rights::RW, RevocationPolicy::NONE)
        .unwrap();
    e2.grant(os2, p2, c2, None, Rights::RW, RevocationPolicy::NONE)
        .unwrap();
    e1.set_entry(os1, c1, 0).unwrap();
    e2.set_entry(os2, c2, 0).unwrap();
    let m1 = e1.seal(os1, c1, SealPolicy::strict()).unwrap();
    let m2 = e2.seal(os2, c2, SealPolicy::strict()).unwrap();
    assert_eq!(m1, m2, "identical configs measure identically");

    // Different entry point -> different measurement.
    let (mut e3, os3, ram3) = boot();
    let (c3, _) = e3.create_domain(os3).unwrap();
    let (p3, _) = e3.split(os3, ram3, 0x1000).unwrap();
    e3.grant(os3, p3, c3, None, Rights::RW, RevocationPolicy::NONE)
        .unwrap();
    e3.set_entry(os3, c3, 0x40).unwrap();
    let m3 = e3.seal(os3, c3, SealPolicy::strict()).unwrap();
    assert_ne!(m1, m3);
}

#[test]
fn kill_revokes_everything_cascading() {
    let (mut e, os, ram) = boot();
    let (a, _) = e.create_domain(os).unwrap();
    let (b, _) = e.create_domain(os).unwrap();
    // os shares a window with a; a shares it onward to b.
    let w = e
        .share(
            os,
            ram,
            a,
            Some(MemRegion::new(0, 0x2000)),
            Rights::RW,
            RevocationPolicy::NONE,
        )
        .unwrap();
    e.share(a, w, b, None, Rights::RO, RevocationPolicy::NONE)
        .unwrap();
    assert_eq!(e.refcount_mem(MemRegion::new(0, 0x2000)), 3);
    e.kill(os, a).unwrap();
    assert_sound(&e);
    // b's derived share died with a's capability.
    assert_eq!(e.refcount_mem(MemRegion::new(0, 0x2000)), 1);
    assert!(!e.domain(a).unwrap().is_alive());
    // Dead domains refuse operations.
    assert!(matches!(e.create_domain(a), Err(CapError::NoSuchDomain(_))));
}

#[test]
fn kill_requires_manager() {
    let (mut e, os, _) = boot();
    let (a, _) = e.create_domain(os).unwrap();
    let (b, _) = e.create_domain(os).unwrap();
    assert_eq!(
        e.kill(b, a),
        Err(CapError::NotManager {
            target: a,
            actor: b
        })
    );
    assert_eq!(
        e.kill(a, os),
        Err(CapError::NotManager {
            target: os,
            actor: a
        })
    );
}

// ---------------------------------------------------------------------
// Share / grant / split
// ---------------------------------------------------------------------

#[test]
fn share_keeps_both_active() {
    let (mut e, os, ram) = boot();
    let (a, _) = e.create_domain(os).unwrap();
    let child = e
        .share(
            os,
            ram,
            a,
            Some(MemRegion::new(0, 0x1000)),
            Rights::RO,
            RevocationPolicy::NONE,
        )
        .unwrap();
    assert!(e.cap(ram).unwrap().active);
    assert!(e.cap(child).unwrap().active);
    assert_eq!(e.refcount_mem(MemRegion::new(0, 0x1000)), 2);
    let fx = e.drain_effects();
    assert!(
        fx.iter().any(|f| matches!(f,
        Effect::MapMem { domain, region, rights }
            if *domain == a && region.start == 0 && region.end == 0x1000 && *rights == Rights::RO))
    );
}

#[test]
fn grant_suspends_granter() {
    let (mut e, os, ram) = boot();
    let (a, _) = e.create_domain(os).unwrap();
    let (page, _rest) = e.split(os, ram, 0x1000).unwrap();
    e.drain_effects();
    let granted = e
        .grant(os, page, a, None, Rights::RW, RevocationPolicy::ZERO)
        .unwrap();
    assert!(!e.cap(page).unwrap().active, "granter suspended");
    assert!(e.cap(granted).unwrap().active);
    assert!(e
        .refcount_mem_full(MemRegion::new(0, 0x1000))
        .is_exclusive());
    let fx = e.drain_effects();
    assert!(fx
        .iter()
        .any(|f| matches!(f, Effect::UnmapMem { domain, .. } if *domain == os)));
    assert!(fx
        .iter()
        .any(|f| matches!(f, Effect::MapMem { domain, .. } if *domain == a)));
    // The suspended capability cannot be used for anything.
    assert_eq!(
        e.share(os, page, a, None, Rights::RO, RevocationPolicy::NONE),
        Err(CapError::Inactive(page))
    );
}

#[test]
fn grant_rejects_partial_region() {
    let (mut e, os, ram) = boot();
    let (a, _) = e.create_domain(os).unwrap();
    assert_eq!(
        e.grant(
            os,
            ram,
            a,
            Some(MemRegion::new(0, 0x1000)),
            Rights::RW,
            RevocationPolicy::NONE
        ),
        Err(CapError::OutOfRange),
        "grants are whole-capability; split first"
    );
}

#[test]
fn rights_attenuation_enforced() {
    let (mut e, os, ram) = boot();
    let (a, _) = e.create_domain(os).unwrap();
    let ro = e
        .share(
            os,
            ram,
            a,
            Some(MemRegion::new(0, 0x1000)),
            Rights::RO,
            RevocationPolicy::NONE,
        )
        .unwrap();
    let (b, _) = e.create_domain(os).unwrap();
    // a cannot escalate its read-only share to read-write for b.
    assert_eq!(
        e.share(a, ro, b, None, Rights::RW, RevocationPolicy::NONE),
        Err(CapError::RightsEscalation)
    );
    assert!(e
        .share(a, ro, b, None, Rights::RO, RevocationPolicy::NONE)
        .is_ok());
    assert_sound(&e);
}

#[test]
fn subrange_must_be_contained() {
    let (mut e, os, ram) = boot();
    let (a, _) = e.create_domain(os).unwrap();
    assert_eq!(
        e.share(
            os,
            ram,
            a,
            Some(MemRegion::new(0, 0x200_0000)),
            Rights::RO,
            RevocationPolicy::NONE
        ),
        Err(CapError::OutOfRange)
    );
}

#[test]
fn subrange_on_cpu_cap_rejected() {
    let (mut e, os, _) = boot();
    let (a, _) = e.create_domain(os).unwrap();
    let core = e
        .caps_of(os)
        .iter()
        .find(|c| matches!(c.resource, Resource::CpuCore(1)))
        .map(|c| c.id)
        .unwrap();
    assert_eq!(
        e.share(
            os,
            core,
            a,
            Some(MemRegion::new(0, 1)),
            Rights::USE,
            RevocationPolicy::NONE
        ),
        Err(CapError::SubrangeOnNonMemory)
    );
}

#[test]
fn share_requires_ownership() {
    let (mut e, os, ram) = boot();
    let (a, _) = e.create_domain(os).unwrap();
    let (b, _) = e.create_domain(os).unwrap();
    assert_eq!(
        e.share(a, ram, b, None, Rights::RO, RevocationPolicy::NONE),
        Err(CapError::NotOwner { cap: ram, actor: a })
    );
}

#[test]
fn split_and_reunify_via_revoke() {
    let (mut e, os, ram) = boot();
    e.drain_effects();
    let (lo, hi) = e.split(os, ram, 0x80_0000).unwrap();
    assert!(!e.cap(ram).unwrap().active);
    assert!(e.cap(lo).unwrap().active && e.cap(hi).unwrap().active);
    assert_eq!(e.pending_effects(), 0, "split changes no hardware state");
    // Coverage is preserved across the split.
    assert_eq!(e.refcount_mem(MemRegion::new(0, 0x100_0000)), 1);
    // Revoking both pieces reactivates the original.
    e.revoke(os, lo).unwrap();
    assert!(!e.cap(ram).unwrap().active, "one piece still out");
    e.revoke(os, hi).unwrap();
    assert!(e.cap(ram).unwrap().active, "parent reactivated");
    assert_sound(&e);
}

#[test]
fn split_validates() {
    let (mut e, os, ram) = boot();
    assert_eq!(e.split(os, ram, 0), Err(CapError::OutOfRange));
    assert_eq!(e.split(os, ram, 0x100_0000), Err(CapError::OutOfRange));
    let (a, _) = e.create_domain(os).unwrap();
    assert_eq!(
        e.split(a, ram, 0x1000),
        Err(CapError::NotOwner { cap: ram, actor: a })
    );
    let core = e
        .caps_of(os)
        .iter()
        .find(|c| matches!(c.resource, Resource::CpuCore(0)))
        .map(|c| c.id)
        .unwrap();
    assert_eq!(e.split(os, core, 1), Err(CapError::WrongResourceType));
}

// ---------------------------------------------------------------------
// Sealing semantics
// ---------------------------------------------------------------------

#[test]
fn sealed_domain_cannot_be_extended() {
    let (mut e, os, ram) = boot();
    let (child, _, _) = sealed_child(&mut e, os, ram);
    let leftover = e
        .caps_of(os)
        .iter()
        .find(|c| c.active && c.is_memory())
        .map(|c| c.id)
        .unwrap();
    assert_eq!(
        e.share(
            os,
            leftover,
            child,
            Some(MemRegion::new(0x2000, 0x3000)),
            Rights::RO,
            RevocationPolicy::NONE
        ),
        Err(CapError::TargetSealed(child))
    );
}

#[test]
fn strictly_sealed_domain_cannot_share_outward() {
    let (mut e, os, ram) = boot();
    let (child, _, granted) = sealed_child(&mut e, os, ram);
    let (other, _) = e.create_domain(os).unwrap();
    assert_eq!(
        e.share(
            child,
            granted,
            other,
            None,
            Rights::RO,
            RevocationPolicy::NONE
        ),
        Err(CapError::ActorSealed(child))
    );
    assert_eq!(
        e.create_domain(child),
        Err(CapError::SealedImmutable(child))
    );
}

#[test]
fn nestable_seal_allows_nested_enclaves() {
    // §4.2: "Our enclaves can map libtyche in their domains to spawn
    // nested enclaves, and share exclusively owned pages with them."
    let (mut e, os, ram) = boot();
    let (enc, _t) = e.create_domain(os).unwrap();
    let (page, _rest) = e.split(os, ram, 0x4000).unwrap();
    let granted = e
        .grant(os, page, enc, None, Rights::RWX, RevocationPolicy::ZERO)
        .unwrap();
    e.set_entry(os, enc, 0).unwrap();
    e.seal(os, enc, SealPolicy::nestable()).unwrap();

    // The sealed enclave spawns a nested enclave and endows it from its
    // own exclusively-owned memory.
    let (nested, _t2) = e.create_domain(enc).unwrap();
    let (inner, _keep) = e.split(enc, granted, 0x2000).unwrap();
    let moved = e
        .grant(enc, inner, nested, None, Rights::RW, RevocationPolicy::ZERO)
        .unwrap();
    e.set_entry(enc, nested, 0).unwrap();
    e.seal(enc, nested, SealPolicy::strict()).unwrap();
    assert_sound(&e);
    assert!(e
        .refcount_mem_full(MemRegion::new(0, 0x2000))
        .is_exclusive());
    assert_eq!(e.cap(moved).unwrap().owner, nested);
    // The OS can still reclaim the whole subtree from the top.
    e.revoke(os, granted).unwrap();
    assert_sound(&e);
    assert!(e.cap(moved).is_none(), "nested grant revoked transitively");
}

// ---------------------------------------------------------------------
// Revocation
// ---------------------------------------------------------------------

#[test]
fn revoke_emits_cleanup_per_policy() {
    let (mut e, os, ram) = boot();
    let (a, _) = e.create_domain(os).unwrap();
    let (page, _) = e.split(os, ram, 0x1000).unwrap();
    let granted = e
        .grant(os, page, a, None, Rights::RW, RevocationPolicy::OBFUSCATE)
        .unwrap();
    e.drain_effects();
    e.revoke(os, granted).unwrap();
    let fx = e.drain_effects();
    assert!(fx
        .iter()
        .any(|f| matches!(f, Effect::UnmapMem { domain, .. } if *domain == a)));
    assert!(fx
        .iter()
        .any(|f| matches!(f, Effect::ZeroMem { region } if region.start == 0)));
    assert!(fx
        .iter()
        .any(|f| matches!(f, Effect::FlushCache { domain } if *domain == a)));
    assert!(fx
        .iter()
        .any(|f| matches!(f, Effect::FlushTlb { domain } if *domain == a)));
    // Granter reactivated.
    assert!(fx
        .iter()
        .any(|f| matches!(f, Effect::MapMem { domain, .. } if *domain == os)));
    assert!(e.cap(page).unwrap().active);
}

#[test]
fn share_revocation_does_not_zero() {
    let (mut e, os, ram) = boot();
    let (a, _) = e.create_domain(os).unwrap();
    let s = e
        .share(
            os,
            ram,
            a,
            Some(MemRegion::new(0, 0x1000)),
            Rights::RW,
            RevocationPolicy::ZERO,
        )
        .unwrap();
    e.drain_effects();
    e.revoke(os, s).unwrap();
    let fx = e.drain_effects();
    assert!(
        !fx.iter().any(|f| matches!(f, Effect::ZeroMem { .. })),
        "zeroing a shared window would destroy the surviving owner's data"
    );
    assert!(fx
        .iter()
        .any(|f| matches!(f, Effect::UnmapMem { domain, .. } if *domain == a)));
}

#[test]
fn revoke_authorization() {
    let (mut e, os, ram) = boot();
    let (a, _) = e.create_domain(os).unwrap();
    let (b, _) = e.create_domain(os).unwrap();
    let s1 = e
        .share(
            os,
            ram,
            a,
            Some(MemRegion::new(0, 0x1000)),
            Rights::RW,
            RevocationPolicy::NONE,
        )
        .unwrap();
    let s2 = e
        .share(a, s1, b, None, Rights::RO, RevocationPolicy::NONE)
        .unwrap();
    // b (the holder) cannot revoke its own incoming share.
    assert_eq!(
        e.revoke(b, s2),
        Err(CapError::NotGranter { cap: s2, actor: b })
    );
    // A stranger cannot revoke.
    let (c, _) = e.create_domain(os).unwrap();
    assert_eq!(
        e.revoke(c, s2),
        Err(CapError::NotGranter { cap: s2, actor: c })
    );
    // The lineage ancestor (os) can revoke a's onward share.
    e.revoke(os, s2).unwrap();
    assert!(e.cap(s2).is_none());
    assert!(e.cap(s1).is_some());
}

#[test]
fn deep_chain_revocation_terminates_and_cleans() {
    let (mut e, os, ram) = boot();
    // Build a 100-domain share chain.
    let mut domains = vec![os];
    let mut cap = ram;
    for _ in 0..100 {
        let parent = *domains.last().unwrap();
        let (d, _) = e.create_domain(parent).unwrap();
        cap = e
            .share(parent, cap, d, None, Rights::RW, RevocationPolicy::NONE)
            .unwrap();
        domains.push(d);
    }
    assert_eq!(e.refcount_mem(MemRegion::new(0, 0x1000)), 101);
    // Revoke at the root: everything below goes.
    let top_child = e
        .caps_of(domains[1])
        .iter()
        .find(|c| c.is_memory())
        .map(|c| c.id)
        .unwrap();
    e.revoke(os, top_child).unwrap();
    assert_eq!(e.refcount_mem(MemRegion::new(0, 0x1000)), 1);
    assert_sound(&e);
}

// ---------------------------------------------------------------------
// Transitions
// ---------------------------------------------------------------------

#[test]
fn enter_happy_path() {
    let (mut e, os, ram) = boot();
    let (child, tcap, _) = sealed_child(&mut e, os, ram);
    let (target, entry, _policy) = e.can_enter(os, tcap, 0).unwrap();
    assert_eq!(target, child);
    assert_eq!(entry, 0x0);
}

#[test]
fn enter_rejections() {
    let (mut e, os, ram) = boot();
    let (child, tcap) = e.create_domain(os).unwrap();
    // Unsealed target.
    assert_eq!(e.can_enter(os, tcap, 0), Err(CapError::NotSealed(child)));
    let (page, _) = e.split(os, ram, 0x1000).unwrap();
    e.grant(os, page, child, None, Rights::RWX, RevocationPolicy::NONE)
        .unwrap();
    e.set_entry(os, child, 0).unwrap();
    e.seal(os, child, SealPolicy::strict()).unwrap();
    // Target owns no core.
    assert_eq!(
        e.can_enter(os, tcap, 0),
        Err(CapError::CoreNotOwned {
            domain: child,
            core: 0
        })
    );
    // Stranger without the transition capability.
    let (other, _) = e.create_domain(os).unwrap();
    assert_eq!(
        e.can_enter(other, tcap, 0),
        Err(CapError::NotOwner {
            cap: tcap,
            actor: other
        })
    );
}

#[test]
fn transition_cap_transferable() {
    // The OS hands the right to call an enclave to another domain —
    // transition rights are ordinary capabilities.
    let (mut e, os, ram) = boot();
    let (child, tcap, _) = sealed_child(&mut e, os, ram);
    let (caller, _) = e.create_domain(os).unwrap();
    let handed = e
        .share(os, tcap, caller, None, Rights::USE, RevocationPolicy::NONE)
        .unwrap();
    assert_eq!(e.can_enter(caller, handed, 0).unwrap().0, child);
    // And it is revocable like any capability.
    e.revoke(os, handed).unwrap();
    assert_eq!(
        e.can_enter(caller, handed, 0),
        Err(CapError::NoSuchCap(handed))
    );
}

#[test]
fn kill_cleans_dangling_transitions() {
    let (mut e, os, ram) = boot();
    let (child, tcap, _) = sealed_child(&mut e, os, ram);
    e.kill(os, child).unwrap();
    assert!(e.cap(tcap).is_none(), "transition into dead domain revoked");
    assert_sound(&e);
}

#[test]
fn core_ownership_via_grant_moves_access() {
    let (mut e, os, _) = boot();
    let (a, _) = e.create_domain(os).unwrap();
    let core2 = e
        .caps_of(os)
        .iter()
        .find(|c| matches!(c.resource, Resource::CpuCore(2)))
        .map(|c| c.id)
        .unwrap();
    e.drain_effects();
    assert!(e.owns_core(os, 2));
    e.grant(os, core2, a, None, Rights::USE, RevocationPolicy::NONE)
        .unwrap();
    assert!(!e.owns_core(os, 2), "granter lost the core");
    assert!(e.owns_core(a, 2));
    let fx = e.drain_effects();
    assert!(fx
        .iter()
        .any(|f| matches!(f, Effect::RemoveCore { domain, core: 2 } if *domain == os)));
    assert!(fx
        .iter()
        .any(|f| matches!(f, Effect::AddCore { domain, core: 2 } if *domain == a)));
}

#[test]
fn device_caps_attach_and_detach() {
    let (mut e, os, _) = boot();
    let dev = e.endow(os, Resource::Device(0x42), Rights::USE).unwrap();
    let (a, _) = e.create_domain(os).unwrap();
    e.drain_effects();
    let granted = e
        .grant(os, dev, a, None, Rights::USE, RevocationPolicy::NONE)
        .unwrap();
    assert!(e.owns_device(a, 0x42));
    assert!(!e.owns_device(os, 0x42));
    let fx = e.drain_effects();
    assert!(fx
        .iter()
        .any(|f| matches!(f, Effect::AttachDevice { device: 0x42, domain } if *domain == a)));
    e.revoke(os, granted).unwrap();
    assert!(e.owns_device(os, 0x42));
}

// ---------------------------------------------------------------------
// Enumeration / Figure 4
// ---------------------------------------------------------------------

#[test]
fn enumerate_reports_refcounts() {
    let (mut e, os, ram) = boot();
    let (a, _) = e.create_domain(os).unwrap();
    let (b, _) = e.create_domain(os).unwrap();
    // Shared window between a and b (plus os): build Figure 4.
    let w = e
        .share(
            os,
            ram,
            a,
            Some(MemRegion::new(0x2000, 0x3000)),
            Rights::RW,
            RevocationPolicy::NONE,
        )
        .unwrap();
    e.share(a, w, b, None, Rights::RW, RevocationPolicy::NONE)
        .unwrap();
    let resources = e.enumerate(a).unwrap();
    let window = resources
        .iter()
        .find(|r| matches!(r.resource, Resource::Memory(m) if m.start == 0x2000))
        .unwrap();
    assert_eq!(window.refcount.max, 3, "os + a + b");
    let eb = e.enumerate(b).unwrap();
    assert_eq!(eb.len(), 1);
}

// ---------------------------------------------------------------------
// Derivation-kind validation & poisoned-domain quarantine
// ---------------------------------------------------------------------

#[test]
fn derive_with_invalid_kind_is_refused_without_mutation() {
    // Regression: `derive` used to hit `unreachable!` on a Root/Carved
    // kind *after* inserting the child — a corrupted caller could panic
    // the TCB and leave a half-derived lineage behind.
    let (mut e, os, ram) = boot();
    let (child, _) = e.create_domain(os).unwrap();
    let before = e.caps().count();
    for kind in [CapKind::Root, CapKind::Carved] {
        assert_eq!(
            e.derive_raw(os, ram, child, None, Rights::RW, RevocationPolicy::NONE, kind),
            Err(CapError::InvalidDerivation)
        );
    }
    assert_eq!(e.caps().count(), before, "refusal must not mutate");
    assert!(e.cap(ram).unwrap().children.is_empty());
    assert_sound(&e);
}

#[test]
fn quarantined_domain_is_killable_and_enumerable_but_not_enterable() {
    let (mut e, os, ram) = boot();
    let (child, tcap, _) = sealed_child(&mut e, os, ram);
    assert!(e.can_enter(os, tcap, 0).is_ok());
    e.quarantine(child).unwrap();
    assert_sound(&e);
    // Not enterable: the transition capability was deactivated, and even
    // a forged-active one is refused on the target's quarantine flag.
    assert_eq!(e.can_enter(os, tcap, 0), Err(CapError::Inactive(tcap)));
    e.corrupt_cap(tcap).unwrap().active = true;
    assert_eq!(e.can_enter(os, tcap, 0), Err(CapError::Quarantined(child)));
    e.corrupt_cap(tcap).unwrap().active = false;
    // No new routes in: fresh transition capabilities are refused.
    assert_eq!(
        e.make_transition(os, child, RevocationPolicy::NONE),
        Err(CapError::Quarantined(child))
    );
    // Still enumerable (auditors can inspect) and killable (managers can
    // tear it down).
    assert!(e.enumerate(child).is_ok());
    assert!(e.domain(child).unwrap().is_quarantined());
    e.kill(os, child).unwrap();
    assert_sound(&e);
    assert_eq!(e.quarantine(child), Err(CapError::NoSuchDomain(child)));
}

#[test]
fn quarantine_is_sticky_across_revocation() {
    // A suspended transition capability into a quarantined domain must
    // not reactivate when the suspending grant is revoked.
    let (mut e, os, ram) = boot();
    let (child, tcap, _) = sealed_child(&mut e, os, ram);
    let (caller, _) = e.create_domain(os).unwrap();
    let handed = e
        .grant(os, tcap, caller, None, Rights::USE, RevocationPolicy::NONE)
        .unwrap();
    e.quarantine(child).unwrap();
    assert_sound(&e);
    assert!(!e.cap(handed).unwrap().active, "quarantine deactivates");
    e.revoke(os, handed).unwrap();
    assert!(
        !e.cap(tcap).unwrap().active,
        "granter's transition must stay suspended after quarantine"
    );
    assert_sound(&e);
    // Idempotent on an already-quarantined domain.
    e.quarantine(child).unwrap();
    assert_sound(&e);
}
