//! Regression tests for the checked revoke-authorization walk and the
//! poisoned-index fallback.
//!
//! The revoke lineage walk used to `.expect("lineage parents exist")`:
//! a dangling parent id — reachable only through memory corruption or an
//! engine bug, i.e. exactly the states `audit()` exists to catch — would
//! panic the TCB instead of returning a typed refusal. These tests pin
//! the new contract: corruption yields `CapError`, never a panic, and
//! every indexed query falls back to the linear-scan twin once a
//! corruption hook has fired.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use tyche_core::prelude::*;

const RAM: MemRegion = MemRegion {
    start: 0x0,
    end: 0x10_000,
};
const PAGE: MemRegion = MemRegion {
    start: 0x1000,
    end: 0x2000,
};

/// Boots root with a RAM endowment and a two-hop share chain:
/// `root --(ca: PAGE)--> a --(cb: PAGE)--> b`.
fn engine_with_chain() -> (CapEngine, DomainId, DomainId, DomainId, CapId, CapId) {
    let mut e = CapEngine::new();
    let root = e.create_root_domain();
    let ram = e
        .endow(root, Resource::Memory(RAM), Rights::RWX)
        .expect("endow RAM");
    let (a, _) = e.create_domain(root).expect("create a");
    let (b, _) = e.create_domain(root).expect("create b");
    let ca = e
        .share(root, ram, a, Some(PAGE), Rights::RW, RevocationPolicy::NONE)
        .expect("share root->a");
    let cb = e
        .share(a, ca, b, Some(PAGE), Rights::RW, RevocationPolicy::NONE)
        .expect("share a->b");
    (e, root, a, b, ca, cb)
}

#[test]
fn revoke_with_dangling_parent_errors_instead_of_panicking() {
    let (mut e, root, _a, _b, _ca, cb) = engine_with_chain();
    let bogus = CapId(0xDEAD);
    e.corrupt_cap(cb).unwrap().parent = Some(bogus);
    // Root is not the granter of cb, so authorization needs the lineage
    // walk — which must now report the dangling link, not unwrap it.
    assert_eq!(e.revoke(root, cb), Err(CapError::NoSuchCap(bogus)));
}

#[test]
fn revoke_with_parent_cycle_terminates_with_error() {
    let (mut e, root, _a, _b, _ca, cb) = engine_with_chain();
    // Self-cycle: the walk would previously spin forever looking for an
    // authorizing ancestor. The hop bound turns it into a refusal. Root
    // neither granted nor owns any link of the cycle, so the walk must
    // run until the bound trips.
    e.corrupt_cap(cb).unwrap().parent = Some(cb);
    assert!(matches!(e.revoke(root, cb), Err(CapError::NoSuchCap(_))));
}

#[test]
fn revoke_by_granter_survives_corrupt_lineage() {
    let (mut e, _root, a, _b, _ca, cb) = engine_with_chain();
    e.corrupt_cap(cb).unwrap().parent = Some(CapId(0xDEAD));
    // The granter check short-circuits before the lineage walk, so the
    // direct granter can still clean up a corrupted capability.
    assert_eq!(e.revoke(a, cb), Ok(()));
    assert!(matches!(e.revoke(a, cb), Err(CapError::NoSuchCap(_))));
}

#[test]
fn poisoned_indexes_fall_back_to_scan() {
    let (mut e, root, a, b, _ca, _cb) = engine_with_chain();
    // Redirect ownership behind the indexes' back: the by_owner/res/mem
    // indexes still reflect the old owner, the scan sees the new one.
    let moved = e
        .caps_of(b)
        .iter()
        .find(|c| c.is_memory())
        .map(|c| c.id)
        .unwrap();
    e.corrupt_cap(moved).unwrap().owner = a;
    // Every indexed query must now answer from the scan twin.
    let ids = |v: Vec<&Capability>| {
        let mut ids: Vec<CapId> = v.into_iter().map(|c| c.id).collect();
        ids.sort_unstable();
        ids
    };
    assert_eq!(ids(e.caps_of(a)), ids(e.caps_of_scan(a)));
    assert_eq!(ids(e.caps_of(b)), ids(e.caps_of_scan(b)));
    assert!(e.caps_of(a).iter().any(|c| c.id == moved));
    assert_eq!(e.refcount_mem_full(PAGE), e.refcount_mem_full_scan(PAGE));
    assert_eq!(e.enumerate(a), e.enumerate_scan(a));
    assert_eq!(e.enumerate(root), e.enumerate_scan(root));
}
