//! Domain attestation reports (§3.4 of the paper).
//!
//! "A domain's attestation, signed by the monitor, enumerates its physical
//! resources, their reference counts, and the measurement of selected
//! memory regions. Resource enumeration and reference counts make sharing
//! and communication paths between domains explicit."
//!
//! This module builds the *content* of that attestation from engine state
//! and defines its canonical byte encoding. Signing is the monitor's job
//! (`tyche-monitor::attest`) — the engine stays crypto-policy free.
// Approved panic paths: every `expect(` in this module is budgeted,
// with a reviewed reason, in crates/verify/allowlist.toml.
#![allow(clippy::expect_used)]

use crate::capability::CapKind;
use crate::engine::{CapEngine, EnumeratedResource};
use crate::error::CapError;
use crate::ids::DomainId;
use crate::resource::Resource;
use tyche_crypto::Digest;

/// The attestation view of one domain.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DomainReport {
    /// The attested domain.
    pub domain: DomainId,
    /// Seal-time measurement of configuration + recorded contents.
    pub measurement: Digest,
    /// Encoded seal policy (see [`crate::domain::SealPolicy::encode`]).
    pub seal_policy: u8,
    /// The domain's fixed entry point.
    pub entry: u64,
    /// Enumerated resources with rights and reference counts.
    pub resources: Vec<EnumeratedResource>,
    /// Content measurements of selected initial memory regions.
    pub content_measurements: Vec<(u64, u64, Digest)>,
}

impl DomainReport {
    /// Builds the report for a sealed domain.
    ///
    /// Unsealed domains cannot be attested — their configuration is still
    /// mutable, so a report would be meaningless.
    pub fn build(engine: &CapEngine, domain: DomainId) -> Result<DomainReport, CapError> {
        let dom = engine
            .domain(domain)
            .ok_or(CapError::NoSuchDomain(domain))?;
        if !dom.is_sealed() {
            return Err(CapError::NotSealed(domain));
        }
        Ok(DomainReport {
            domain,
            measurement: dom.measurement.expect("sealed domains are measured"),
            seal_policy: dom.seal_policy.encode(),
            entry: dom.entry.expect("sealed domains have entry points"),
            resources: engine.enumerate(domain)?,
            content_measurements: dom.content_measurements.clone(),
        })
    }

    /// Canonical byte encoding — what the monitor signs. Any change to the
    /// domain's resources, rights, or reference counts changes these bytes.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.resources.len() * 32);
        out.extend_from_slice(b"tyche-report-v1");
        out.extend_from_slice(&self.domain.0.to_le_bytes());
        out.extend_from_slice(self.measurement.as_bytes());
        out.push(self.seal_policy);
        out.extend_from_slice(&self.entry.to_le_bytes());
        out.extend_from_slice(&(self.resources.len() as u64).to_le_bytes());
        for r in &self.resources {
            out.push(r.resource.type_tag());
            let (a, b) = match r.resource {
                Resource::Memory(m) => (m.start, m.end),
                Resource::CpuCore(n) => (n as u64, 0),
                Resource::Device(d) => (d as u64, 0),
                Resource::Transition(t) => (t.0, 0),
                Resource::Interrupt(v) => (v as u64, 0),
            };
            out.extend_from_slice(&a.to_le_bytes());
            out.extend_from_slice(&b.to_le_bytes());
            out.push(r.rights.0);
            out.push(match r.kind {
                CapKind::Root => 0,
                CapKind::Shared => 1,
                CapKind::Granted => 2,
                CapKind::Carved => 3,
            });
            out.extend_from_slice(&(r.refcount.max as u64).to_le_bytes());
            out.extend_from_slice(&(r.refcount.min as u64).to_le_bytes());
        }
        out.extend_from_slice(&(self.content_measurements.len() as u64).to_le_bytes());
        for (s, e, d) in &self.content_measurements {
            out.extend_from_slice(&s.to_le_bytes());
            out.extend_from_slice(&e.to_le_bytes());
            out.extend_from_slice(d.as_bytes());
        }
        out
    }

    /// Digest of the canonical encoding.
    pub fn digest(&self) -> Digest {
        tyche_crypto::hash(&self.canonical_bytes())
    }

    /// Convenience for verifiers: true when every memory resource in the
    /// report is exclusively held (refcount 1) except those in
    /// `allowed_shared`, which must have exactly the stated count.
    ///
    /// This is the Figure 2 customer check: "resources are either shared
    /// among themselves (ref. count 2) or exclusively owned (ref. count 1)".
    pub fn check_sharing(&self, allowed_shared: &[(u64, u64, usize)]) -> bool {
        self.resources.iter().all(|r| match r.resource {
            Resource::Memory(m) => {
                if let Some(&(_, _, want)) = allowed_shared
                    .iter()
                    .find(|(s, e, _)| *s == m.start && *e == m.end)
                {
                    r.refcount.max == want && r.refcount.min == want
                } else {
                    r.refcount.is_exclusive()
                }
            }
            _ => true,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;

    fn engine_with_sealed_enclave() -> (CapEngine, DomainId, DomainId) {
        let mut e = CapEngine::new();
        let os = e.create_root_domain();
        let ram = e
            .endow(os, Resource::mem(0, 0x10_0000), Rights::RWX)
            .unwrap();
        let core0 = e.endow(os, Resource::CpuCore(0), Rights::USE).unwrap();
        let (enc, _t) = e.create_domain(os).unwrap();
        let (piece, _rest) = e.split(os, ram, 0x4000).unwrap();
        e.grant(os, piece, enc, None, Rights::RW, RevocationPolicy::ZERO)
            .unwrap();
        e.share(os, core0, enc, None, Rights::USE, RevocationPolicy::NONE)
            .unwrap();
        e.record_content(
            os,
            enc,
            MemRegion::new(0, 0x1000),
            tyche_crypto::hash(b"code"),
        )
        .unwrap();
        e.set_entry(os, enc, 0x0).unwrap();
        e.seal(os, enc, SealPolicy::strict()).unwrap();
        (e, os, enc)
    }

    #[test]
    fn report_requires_sealed() {
        let mut e = CapEngine::new();
        let os = e.create_root_domain();
        let (d, _) = e.create_domain(os).unwrap();
        assert_eq!(DomainReport::build(&e, d), Err(CapError::NotSealed(d)));
    }

    #[test]
    fn report_contents() {
        let (e, _os, enc) = engine_with_sealed_enclave();
        let report = DomainReport::build(&e, enc).unwrap();
        assert_eq!(report.domain, enc);
        assert_eq!(report.entry, 0);
        assert_eq!(report.content_measurements.len(), 1);
        // One memory resource (exclusive) + one shared CPU core.
        let mems: Vec<_> = report
            .resources
            .iter()
            .filter(|r| matches!(r.resource, Resource::Memory(_)))
            .collect();
        assert_eq!(mems.len(), 1);
        assert!(mems[0].refcount.is_exclusive());
    }

    #[test]
    fn canonical_bytes_change_with_state() {
        let (mut e, os, enc) = engine_with_sealed_enclave();
        let before = DomainReport::build(&e, enc).unwrap().digest();
        // OS shares another page with a third domain overlapping nothing of
        // the enclave: enclave report unchanged.
        let (d2, _) = e.create_domain(os).unwrap();
        let ram2 = e
            .endow(os, Resource::mem(0x20_0000, 0x21_0000), Rights::RW)
            .unwrap();
        e.share(os, ram2, d2, None, Rights::RO, RevocationPolicy::NONE)
            .unwrap();
        assert_eq!(DomainReport::build(&e, enc).unwrap().digest(), before);
    }

    #[test]
    fn sharing_check_detects_unexpected_share() {
        let (e, _os, enc) = engine_with_sealed_enclave();
        let report = DomainReport::build(&e, enc).unwrap();
        assert!(report.check_sharing(&[]), "enclave memory is exclusive");
    }

    #[test]
    fn report_digest_is_stable() {
        let (e, _os, enc) = engine_with_sealed_enclave();
        let a = DomainReport::build(&e, enc).unwrap();
        let b = DomainReport::build(&e, enc).unwrap();
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a.canonical_bytes(), b.canonical_bytes());
    }
}
