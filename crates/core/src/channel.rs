//! Cross-machine channel state — the TCB half of the fleet's MAC-keyed
//! links.
//!
//! Composing monitors across machines (the paper's "millions of users,
//! one monitor per machine" story) needs more than attestation: every
//! frame between two monitors must be bound to a *channel* whose key was
//! derived from a mutual attestation, and the receiver must be able to
//! prove, offline, that it never accepted a forged, replayed, reordered,
//! or stale frame. This module owns exactly that receiver-side state:
//! per-peer key epochs, strictly monotonic sequence numbers, the sticky
//! teardown-and-quarantine reaction to any violation, and the trace
//! events (`ChanEstablish`/`ChanSend`/`ChanRecv`/`ChanViolation`/
//! `ChanTeardown`) the offline `channel-seq` RV checker replays.
//!
//! Deliberately *not* here: cryptography. MAC computation and
//! verification live in the fleet layer on top of `tyche-crypto`; the
//! table is told the *outcome* (a parsed frame's sequence and epoch, or
//! an externally detected [`ViolationReason`]) and provides the single
//! authoritative accept/reject decision. Keeping key material out of the
//! engine-adjacent TCB state keeps this module trivially auditable.
//!
//! Concurrency: one mutex guards the whole table (lock class
//! `channel-table`, ranked between the engine-side classes and the
//! trace-sink leaves — see `tyche-verify`'s lock-order hierarchy), so
//! emitting trace events while holding the guard is legal.

use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard};

use crate::trace::{EventKind, TraceSink};

/// Why an inbound frame (or an establishment attempt) was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ViolationReason {
    /// The frame's HMAC did not verify under the channel key.
    BadMac,
    /// The frame's sequence number was already consumed (replay).
    Replay,
    /// The frame's sequence number jumped ahead of the next expected one
    /// (reordered or dropped-then-reordered delivery).
    Reorder,
    /// The frame was too short to carry the fixed header and tag.
    Truncated,
    /// The frame was MACed under a retired key epoch.
    StaleEpoch,
    /// No open channel exists for the peer (never established, or torn
    /// down by an earlier violation).
    NoChannel,
    /// The peer's attestation chain (TPM quote or monitor report) failed
    /// verification during channel establishment.
    BadAttestation,
}

impl ViolationReason {
    /// Stable numeric code carried by [`EventKind::ChanViolation`]
    /// (declaration order, 1-based).
    pub fn code(self) -> u8 {
        match self {
            ViolationReason::BadMac => 1,
            ViolationReason::Replay => 2,
            ViolationReason::Reorder => 3,
            ViolationReason::Truncated => 4,
            ViolationReason::StaleEpoch => 5,
            ViolationReason::NoChannel => 6,
            ViolationReason::BadAttestation => 7,
        }
    }

    /// Stable lower-case name, used in diagnostics and test pins.
    pub fn name(self) -> &'static str {
        match self {
            ViolationReason::BadMac => "bad-mac",
            ViolationReason::Replay => "replay",
            ViolationReason::Reorder => "reorder",
            ViolationReason::Truncated => "truncated",
            ViolationReason::StaleEpoch => "stale-epoch",
            ViolationReason::NoChannel => "no-channel",
            ViolationReason::BadAttestation => "bad-attestation",
        }
    }
}

impl core::fmt::Display for ViolationReason {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// A rejected frame: the reason plus the exact per-peer inbound frame
/// index (0-based count of frames presented for delivery) at which the
/// violation was detected — the number the adversarial tests pin.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Why the frame was refused.
    pub reason: ViolationReason,
    /// The inbound frame index at detection.
    pub frame_index: u64,
}

/// Per-peer channel state (private; all access is through the table).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
struct ChannelState {
    /// Current key epoch (bumped by each successful re-attestation).
    epoch: u64,
    /// Next outbound sequence number.
    send_seq: u64,
    /// Next expected inbound sequence number.
    recv_seq: u64,
    /// Inbound frames presented so far (accepted + rejected).
    delivered: u64,
    /// False once torn down (until a permitted re-establishment).
    open: bool,
    /// Sticky: set by any violation; blocks re-establishment forever.
    quarantined: bool,
}

/// The per-machine table of attested channels, keyed by peer machine id.
///
/// Violations are **sticky**: any rejected frame tears the channel down
/// (the fleet layer must discard its key material on the matching
/// [`EventKind::ChanTeardown`]) and quarantines the peer, so a byzantine
/// machine gets exactly one violation per channel before it is cut off.
#[derive(Debug, Default)]
pub struct ChannelTable {
    channels: Mutex<BTreeMap<u64, ChannelState>>,
    trace: TraceSink,
}

fn mutex_lock<T>(l: &Mutex<T>) -> MutexGuard<'_, T> {
    match l.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

impl ChannelTable {
    /// Creates an empty table emitting into `trace`.
    pub fn new(trace: TraceSink) -> Self {
        ChannelTable {
            channels: Mutex::new(BTreeMap::new()),
            trace,
        }
    }

    /// Opens (or re-keys) the channel to `peer` after a successful mutual
    /// attestation, at key epoch `epoch`.
    ///
    /// Refused when the peer is quarantined (a byzantine peer never gets
    /// a fresh channel without out-of-band intervention) or when `epoch`
    /// does not advance past the channel's current epoch (a stale
    /// re-attestation must not resurrect an old key).
    pub fn establish(&self, peer: u64, epoch: u64) -> Result<(), ViolationReason> {
        let mut channels = mutex_lock(&self.channels);
        let state = channels.entry(peer).or_default();
        if state.quarantined {
            return Err(ViolationReason::NoChannel);
        }
        if state.epoch != 0 && epoch <= state.epoch {
            return Err(ViolationReason::StaleEpoch);
        }
        state.epoch = epoch;
        state.send_seq = 0;
        state.recv_seq = 0;
        state.open = true;
        self.trace
            .emit_engine(EventKind::ChanEstablish { peer, epoch });
        Ok(())
    }

    /// Reserves the next outbound sequence number on the channel to
    /// `peer`, returning `(seq, epoch)` for the fleet layer to MAC into
    /// the frame. Fails with [`ViolationReason::NoChannel`] when no open
    /// channel exists.
    pub fn note_send(&self, peer: u64) -> Result<(u64, u64), ViolationReason> {
        let mut channels = mutex_lock(&self.channels);
        let Some(state) = channels.get_mut(&peer) else {
            return Err(ViolationReason::NoChannel);
        };
        if !state.open {
            return Err(ViolationReason::NoChannel);
        }
        let seq = state.send_seq;
        state.send_seq += 1;
        let epoch = state.epoch;
        self.trace
            .emit_engine(EventKind::ChanSend { peer, seq, epoch });
        Ok((seq, epoch))
    }

    /// Judges one inbound frame from `peer` whose MAC already verified:
    /// `seq` must be exactly the next expected sequence number and
    /// `epoch` the current key epoch. On acceptance the window advances
    /// and the accepted sequence number is returned; any mismatch is a
    /// violation that tears the channel down (see [`Self::reject`]).
    pub fn accept_recv(&self, peer: u64, seq: u64, epoch: u64) -> Result<u64, Violation> {
        let mut channels = mutex_lock(&self.channels);
        let Some(state) = channels.get_mut(&peer) else {
            drop(channels);
            return Err(self.reject(peer, ViolationReason::NoChannel));
        };
        if !state.open {
            drop(channels);
            return Err(self.reject(peer, ViolationReason::NoChannel));
        }
        state.delivered += 1;
        let reason = if epoch != state.epoch {
            Some(ViolationReason::StaleEpoch)
        } else if seq < state.recv_seq {
            Some(ViolationReason::Replay)
        } else if seq > state.recv_seq {
            Some(ViolationReason::Reorder)
        } else {
            None
        };
        if let Some(reason) = reason {
            let violation = Violation {
                reason,
                frame_index: state.delivered - 1,
            };
            Self::teardown_locked(&self.trace, peer, state, violation);
            return Err(violation);
        }
        state.recv_seq += 1;
        self.trace
            .emit_engine(EventKind::ChanRecv { peer, seq, epoch });
        Ok(seq)
    }

    /// Reports a violation detected *outside* the table (failed MAC,
    /// unparseable frame) on the channel to `peer`. Counts the frame,
    /// emits the violation, and tears the channel down. Returns the
    /// recorded violation with its exact frame index.
    pub fn reject(&self, peer: u64, reason: ViolationReason) -> Violation {
        let mut channels = mutex_lock(&self.channels);
        let state = channels.entry(peer).or_default();
        state.delivered += 1;
        let violation = Violation {
            reason,
            frame_index: state.delivered - 1,
        };
        Self::teardown_locked(&self.trace, peer, state, violation);
        violation
    }

    /// Shared teardown path; the caller holds the table lock. Emitting
    /// while holding is fine: trace-sink locks rank below `channel-table`
    /// in the hierarchy.
    fn teardown_locked(trace: &TraceSink, peer: u64, state: &mut ChannelState, v: Violation) {
        trace.emit_engine(EventKind::ChanViolation {
            peer,
            reason: v.reason.code(),
            seq: v.frame_index,
        });
        if state.open {
            state.open = false;
            trace.emit_engine(EventKind::ChanTeardown {
                peer,
                epoch: state.epoch,
            });
        }
        state.quarantined = true;
    }

    /// True when an open channel to `peer` exists.
    pub fn is_open(&self, peer: u64) -> bool {
        mutex_lock(&self.channels)
            .get(&peer)
            .is_some_and(|s| s.open)
    }

    /// True when `peer` has been quarantined by a violation.
    pub fn is_quarantined(&self, peer: u64) -> bool {
        mutex_lock(&self.channels)
            .get(&peer)
            .is_some_and(|s| s.quarantined)
    }

    /// The current key epoch for `peer` (0 when never established).
    pub fn epoch(&self, peer: u64) -> u64 {
        mutex_lock(&self.channels)
            .get(&peer)
            .map_or(0, |s| s.epoch)
    }

    /// Inbound frames presented so far by `peer` (accepted + rejected):
    /// the next frame's 0-based index.
    pub fn frames_delivered(&self, peer: u64) -> u64 {
        mutex_lock(&self.channels)
            .get(&peer)
            .map_or(0, |s| s.delivered)
    }

    /// Peers currently quarantined, in ascending id order.
    pub fn quarantined_peers(&self) -> Vec<u64> {
        mutex_lock(&self.channels)
            .iter()
            .filter(|(_, s)| s.quarantined)
            .map(|(&peer, _)| peer)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn establish_send_recv_round_trip() {
        let t = ChannelTable::new(TraceSink::new());
        t.establish(2, 1).unwrap();
        assert!(t.is_open(2));
        assert_eq!(t.note_send(2).unwrap(), (0, 1));
        assert_eq!(t.note_send(2).unwrap(), (1, 1));
        assert_eq!(t.accept_recv(2, 0, 1).unwrap(), 0);
        assert_eq!(t.accept_recv(2, 1, 1).unwrap(), 1);
        assert_eq!(t.frames_delivered(2), 2);
        assert!(!t.is_quarantined(2));
    }

    #[test]
    fn replay_is_rejected_at_exact_index_and_tears_down() {
        let t = ChannelTable::new(TraceSink::new());
        t.establish(5, 1).unwrap();
        t.accept_recv(5, 0, 1).unwrap();
        t.accept_recv(5, 1, 1).unwrap();
        let v = t.accept_recv(5, 1, 1).unwrap_err();
        assert_eq!(v.reason, ViolationReason::Replay);
        assert_eq!(v.frame_index, 2);
        assert!(!t.is_open(5));
        assert!(t.is_quarantined(5));
        // Quarantine is sticky: re-establishment is refused.
        assert_eq!(t.establish(5, 2), Err(ViolationReason::NoChannel));
    }

    #[test]
    fn reorder_and_stale_epoch_are_distinct_reasons() {
        let t = ChannelTable::new(TraceSink::new());
        t.establish(1, 1).unwrap();
        let v = t.accept_recv(1, 3, 1).unwrap_err();
        assert_eq!(v.reason, ViolationReason::Reorder);

        let t = ChannelTable::new(TraceSink::new());
        t.establish(1, 1).unwrap();
        t.establish(1, 2).unwrap(); // legitimate re-key
        let v = t.accept_recv(1, 0, 1).unwrap_err();
        assert_eq!(v.reason, ViolationReason::StaleEpoch);
        assert_eq!(v.frame_index, 0);
    }

    #[test]
    fn rekey_resets_sequences_but_not_the_frame_count() {
        let t = ChannelTable::new(TraceSink::new());
        t.establish(9, 1).unwrap();
        t.note_send(9).unwrap();
        t.accept_recv(9, 0, 1).unwrap();
        t.establish(9, 2).unwrap();
        assert_eq!(t.epoch(9), 2);
        assert_eq!(t.note_send(9).unwrap(), (0, 2));
        assert_eq!(t.accept_recv(9, 0, 2).unwrap(), 0);
        // A re-key must strictly advance the epoch.
        assert_eq!(t.establish(9, 2), Err(ViolationReason::StaleEpoch));
    }

    #[test]
    fn external_reject_counts_the_frame() {
        let t = ChannelTable::new(TraceSink::new());
        t.establish(4, 1).unwrap();
        t.accept_recv(4, 0, 1).unwrap();
        let v = t.reject(4, ViolationReason::BadMac);
        assert_eq!(v.frame_index, 1);
        assert!(!t.is_open(4));
        assert_eq!(t.quarantined_peers(), vec![4]);
        // Post-teardown sends are refused.
        assert_eq!(t.note_send(4), Err(ViolationReason::NoChannel));
    }

    #[test]
    fn unknown_peer_frames_are_violations() {
        let t = ChannelTable::new(TraceSink::new());
        let v = t.accept_recv(7, 0, 1).unwrap_err();
        assert_eq!(v.reason, ViolationReason::NoChannel);
        assert!(t.is_quarantined(7));
    }

    #[cfg(feature = "trace")]
    #[test]
    fn violations_emit_teardown_events() {
        let sink = TraceSink::new();
        sink.enable(1);
        let t = ChannelTable::new(sink.clone());
        t.establish(3, 1).unwrap();
        t.note_send(3).unwrap();
        t.accept_recv(3, 0, 1).unwrap();
        t.accept_recv(3, 0, 1).unwrap_err();
        let names: Vec<&str> = sink.drain().events().iter().map(|e| e.kind.name()).collect();
        assert_eq!(names, vec![
            "chan-establish",
            "chan-send",
            "chan-recv",
            "chan-violation",
            "chan-teardown"
        ]);
    }
}
