//! An `O(log n)` interval index over active memory capabilities.
//!
//! `mem_index` used to be a `BTreeMap<(start, CapId), (end, owner)>`:
//! overlap queries (`refcount_mem_full`, `active_mem_coverage`) had to
//! range-scan **every** key with `start < query.end` and filter by end
//! — linear in the population to the left of the query, however few
//! intervals actually overlap. [`IntervalTree`] replaces it with an
//! augmented treap:
//!
//! - keyed by `(start, cap)` exactly like the old map, so in-order
//!   iteration reproduces the old key order byte-for-byte (the
//!   differential scan twins depend on it);
//! - each node carries `max_end`, the maximum interval end in its
//!   subtree, so an overlap query prunes whole subtrees that end
//!   before the query starts — `O(log n + k)` for `k` hits;
//! - priorities are a content hash of the key (deterministic treap):
//!   the same key set always produces the same shape, with no RNG in
//!   the TCB and no dependence on insertion order;
//! - nodes live in a `u32`-indexed arena with a freelist, so a revoke
//!   storm recycles nodes instead of thrashing the allocator.
//!
//! Equality is logical (same `(key, value)` sequence); shape never
//! leaks into `PartialEq`, `Debug`, or iteration.

use crate::ids::{CapId, DomainId};

/// Arena sentinel for "no node".
const NIL: u32 = u32::MAX;

/// One interval entry as the engine sees it: the `(start, cap)` key and
/// the `(end, owner)` payload of the old `BTreeMap`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IntervalEntry {
    /// Region start (inclusive).
    pub start: u64,
    /// The active memory capability covering the region.
    pub cap: CapId,
    /// Region end (exclusive).
    pub end: u64,
    /// The domain holding the capability.
    pub owner: DomainId,
}

#[derive(Clone, Debug)]
struct Node {
    start: u64,
    cap: u64,
    end: u64,
    owner: u64,
    /// Max interval end in this node's subtree (the augmentation).
    max_end: u64,
    /// Deterministic heap priority (content hash of the key).
    prio: u64,
    left: u32,
    right: u32,
}

/// splitmix64 finalizer — the same mixer the test RNGs use; here it
/// content-addresses treap priorities so equal key sets get equal
/// shapes deterministically.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn prio_for(start: u64, cap: u64) -> u64 {
    mix(mix(start) ^ cap.rotate_left(32))
}

/// Augmented deterministic treap keyed `(start, cap)` with `max_end`
/// subtree summaries. See the module docs for why each piece exists.
#[derive(Clone)]
pub struct IntervalTree {
    nodes: Vec<Node>,
    free: Vec<u32>,
    root: u32,
    len: usize,
}

impl Default for IntervalTree {
    fn default() -> Self {
        IntervalTree { nodes: Vec::new(), free: Vec::new(), root: NIL, len: 0 }
    }
}

impl IntervalTree {
    /// Creates an empty tree.
    pub fn new() -> Self {
        Self::default()
    }

    /// Live intervals.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no intervals are indexed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn key(&self, i: u32) -> Option<(u64, u64)> {
        self.nodes.get(i as usize).map(|n| (n.start, n.cap))
    }

    fn child_max_end(&self, i: u32) -> u64 {
        self.nodes.get(i as usize).map_or(0, |n| n.max_end)
    }

    /// Recomputes `max_end` for node `i` from its payload and children.
    fn pull(&mut self, i: u32) {
        let l = self.nodes.get(i as usize).map_or(NIL, |n| n.left);
        let r = self.nodes.get(i as usize).map_or(NIL, |n| n.right);
        let le = self.child_max_end(l);
        let re = self.child_max_end(r);
        if let Some(n) = self.nodes.get_mut(i as usize) {
            n.max_end = n.end.max(le).max(re);
        }
    }

    fn alloc_node(&mut self, start: u64, cap: u64, end: u64, owner: u64) -> u32 {
        let node = Node {
            start,
            cap,
            end,
            owner,
            max_end: end,
            prio: prio_for(start, cap),
            left: NIL,
            right: NIL,
        };
        match self.free.pop() {
            Some(i) => {
                if let Some(cell) = self.nodes.get_mut(i as usize) {
                    *cell = node;
                }
                i
            }
            None => {
                let i = self.nodes.len() as u32;
                self.nodes.push(node);
                i
            }
        }
    }

    /// Treap-splits subtree `t` into `(keys < k, keys >= k)`.
    fn treap_split(&mut self, t: u32, k: (u64, u64)) -> (u32, u32) {
        if t == NIL {
            return (NIL, NIL);
        }
        let tk = match self.key(t) {
            Some(tk) => tk,
            None => return (NIL, NIL),
        };
        if tk < k {
            let right = self.nodes.get(t as usize).map_or(NIL, |n| n.right);
            let (a, b) = self.treap_split(right, k);
            if let Some(n) = self.nodes.get_mut(t as usize) {
                n.right = a;
            }
            self.pull(t);
            (t, b)
        } else {
            let left = self.nodes.get(t as usize).map_or(NIL, |n| n.left);
            let (a, b) = self.treap_split(left, k);
            if let Some(n) = self.nodes.get_mut(t as usize) {
                n.left = b;
            }
            self.pull(t);
            (a, t)
        }
    }

    /// Treap-joins subtrees `a` (all keys smaller) and `b` (all larger).
    fn treap_join(&mut self, a: u32, b: u32) -> u32 {
        if a == NIL {
            return b;
        }
        if b == NIL {
            return a;
        }
        let pa = self.nodes.get(a as usize).map_or(0, |n| n.prio);
        let pb = self.nodes.get(b as usize).map_or(0, |n| n.prio);
        if pa >= pb {
            let ar = self.nodes.get(a as usize).map_or(NIL, |n| n.right);
            let m = self.treap_join(ar, b);
            if let Some(n) = self.nodes.get_mut(a as usize) {
                n.right = m;
            }
            self.pull(a);
            a
        } else {
            let bl = self.nodes.get(b as usize).map_or(NIL, |n| n.left);
            let m = self.treap_join(a, bl);
            if let Some(n) = self.nodes.get_mut(b as usize) {
                n.left = m;
            }
            self.pull(b);
            b
        }
    }

    /// Inserts (or replaces) the interval keyed `(start, cap)`.
    pub fn insert(&mut self, start: u64, cap: CapId, end: u64, owner: DomainId) {
        self.remove(start, cap);
        let node = self.alloc_node(start, cap.0, end, owner.0);
        let (a, b) = self.treap_split(self.root, (start, cap.0));
        let left = self.treap_join(a, node);
        self.root = self.treap_join(left, b);
        self.len += 1;
    }

    /// Removes the interval keyed `(start, cap)`; true if it existed.
    pub fn remove(&mut self, start: u64, cap: CapId) -> bool {
        let k = (start, cap.0);
        let (a, rest) = self.treap_split(self.root, k);
        let (hit, b) = self.treap_split(rest, (start, cap.0.wrapping_add(1)));
        let found = hit != NIL;
        if found {
            // The middle split holds exactly the matching key (keys are
            // unique), so it is a single node: recycle it.
            self.free.push(hit);
            self.len -= 1;
        }
        self.root = self.treap_join(a, b);
        found
    }

    /// Looks up the payload stored under `(start, cap)`.
    pub fn get(&self, start: u64, cap: CapId) -> Option<(u64, DomainId)> {
        let mut i = self.root;
        let k = (start, cap.0);
        while i != NIL {
            let n = self.nodes.get(i as usize)?;
            let nk = (n.start, n.cap);
            if k < nk {
                i = n.left;
            } else if k > nk {
                i = n.right;
            } else {
                return Some((n.end, DomainId(n.owner)));
            }
        }
        None
    }

    /// In-order iteration in `(start, cap)` key order — the exact
    /// sequence the old `BTreeMap` produced, for the differential scan
    /// twins and coverage queries.
    pub fn iter(&self) -> IntervalIter<'_> {
        let mut stack = Vec::new();
        let mut i = self.root;
        while i != NIL {
            stack.push(i);
            i = self.nodes.get(i as usize).map_or(NIL, |n| n.left);
        }
        IntervalIter { tree: self, stack }
    }

    /// All intervals overlapping `[qstart, qend)`, in key order.
    /// Subtrees whose `max_end <= qstart` are pruned wholesale; right
    /// subtrees past `qend` are never visited — `O(log n + k)`.
    pub fn overlapping(&self, qstart: u64, qend: u64) -> Vec<IntervalEntry> {
        let mut out = Vec::new();
        self.collect_overlaps(self.root, qstart, qend, &mut out, 0);
        out
    }

    fn collect_overlaps(
        &self,
        i: u32,
        qstart: u64,
        qend: u64,
        out: &mut Vec<IntervalEntry>,
        depth: u32,
    ) {
        // Depth guard: expected depth is O(log n); 120 covers any
        // realistic population without risking the kernel stack.
        if i == NIL || depth > 120 {
            return;
        }
        let n = match self.nodes.get(i as usize) {
            Some(n) => n,
            None => return,
        };
        if n.max_end <= qstart {
            // Nothing in this whole subtree ends after the query start.
            return;
        }
        let (left, right) = (n.left, n.right);
        let (start, cap, end, owner) = (n.start, n.cap, n.end, n.owner);
        self.collect_overlaps(left, qstart, qend, out, depth + 1);
        if start < qend && end > qstart {
            out.push(IntervalEntry { start, cap: CapId(cap), end, owner: DomainId(owner) });
        }
        if start < qend {
            self.collect_overlaps(right, qstart, qend, out, depth + 1);
        }
        // else: every key in the right subtree has start >= this start
        // >= qend, so none can overlap — pruned.
    }

    /// Heap bytes held by the arena (capacity-based retained footprint).
    pub fn storage_bytes(&self) -> usize {
        self.nodes.capacity() * std::mem::size_of::<Node>()
            + self.free.capacity() * std::mem::size_of::<u32>()
    }

    /// Nodes currently on the freelist.
    pub fn free_nodes(&self) -> usize {
        self.free.len()
    }
}

/// In-order iterator over an [`IntervalTree`].
pub struct IntervalIter<'a> {
    tree: &'a IntervalTree,
    stack: Vec<u32>,
}

impl Iterator for IntervalIter<'_> {
    type Item = IntervalEntry;

    fn next(&mut self) -> Option<Self::Item> {
        let i = self.stack.pop()?;
        let n = self.tree.nodes.get(i as usize)?;
        let mut r = n.right;
        while r != NIL {
            self.stack.push(r);
            r = self.tree.nodes.get(r as usize).map_or(NIL, |n| n.left);
        }
        Some(IntervalEntry {
            start: n.start,
            cap: CapId(n.cap),
            end: n.end,
            owner: DomainId(n.owner),
        })
    }
}

impl PartialEq for IntervalTree {
    /// Logical equality: same key→value sequence, any treap shape (and
    /// the deterministic priorities make equal sets share shapes
    /// anyway — this keeps equality independent of that detail).
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.iter().eq(other.iter())
    }
}

impl Eq for IntervalTree {}

impl std::fmt::Debug for IntervalTree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_map()
            .entries(self.iter().map(|e| ((e.start, e.cap), (e.end, e.owner))))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry_keys(t: &IntervalTree) -> Vec<(u64, u64)> {
        t.iter().map(|e| (e.start, e.cap.0)).collect()
    }

    #[test]
    fn inorder_matches_btreemap_order() {
        let mut t = IntervalTree::new();
        let mut m = std::collections::BTreeMap::new();
        let ranges = [(0x3000u64, 9u64), (0x1000, 4), (0x3000, 2), (0x2000, 7), (0x0, 1)];
        for &(start, cap) in &ranges {
            t.insert(start, CapId(cap), start + 0x1000, DomainId(cap));
            m.insert((start, cap), (start + 0x1000, cap));
        }
        let want: Vec<(u64, u64)> = m.keys().copied().collect();
        assert_eq!(entry_keys(&t), want, "key order identical to BTreeMap");
    }

    #[test]
    fn overlap_query_matches_filter_scan() {
        let mut t = IntervalTree::new();
        // Deterministic LCG-ish spread of intervals.
        let mut x = 12345u64;
        let mut all = Vec::new();
        for cap in 0..500u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let start = (x >> 33) % 0x10_0000;
            let len = 1 + (x % 0x800);
            t.insert(start, CapId(cap), start + len, DomainId(cap));
            all.push((start, cap, start + len));
        }
        all.sort_unstable();
        for &(qs, qe) in &[(0u64, 0x10u64), (0x8000, 0x9000), (0, 0x20_0000), (0xF_FF00, 0x10_0000)]
        {
            let got: Vec<(u64, u64)> =
                t.overlapping(qs, qe).into_iter().map(|e| (e.start, e.cap.0)).collect();
            let want: Vec<(u64, u64)> = all
                .iter()
                .filter(|&&(s, _, e)| s < qe && e > qs)
                .map(|&(s, c, _)| (s, c))
                .collect();
            assert_eq!(got, want, "overlap [{qs:#x},{qe:#x}) matches the filter scan");
        }
    }

    #[test]
    fn remove_recycles_nodes() {
        let mut t = IntervalTree::new();
        for cap in 0..64u64 {
            t.insert(cap * 0x1000, CapId(cap), cap * 0x1000 + 0x800, DomainId(1));
        }
        assert_eq!(t.len(), 64);
        for cap in 0..64u64 {
            assert!(t.remove(cap * 0x1000, CapId(cap)));
        }
        assert!(t.is_empty());
        assert_eq!(t.free_nodes(), 64);
        for cap in 64..128u64 {
            t.insert(cap * 0x1000, CapId(cap), cap * 0x1000 + 0x800, DomainId(1));
        }
        assert_eq!(t.free_nodes(), 0, "freelist drained before arena grows");
        assert_eq!(t.nodes.len(), 64, "arena did not grow");
    }

    #[test]
    fn equality_is_logical() {
        let mut a = IntervalTree::new();
        let mut b = IntervalTree::new();
        for cap in 0..32u64 {
            a.insert(cap, CapId(cap), cap + 10, DomainId(0));
        }
        for cap in (0..32u64).rev() {
            b.insert(cap, CapId(cap), cap + 10, DomainId(0));
        }
        assert_eq!(a, b, "insertion order does not matter");
        b.remove(0, CapId(0));
        assert_ne!(a, b);
    }

    #[test]
    fn replace_same_key_updates_payload() {
        let mut t = IntervalTree::new();
        t.insert(0x1000, CapId(1), 0x2000, DomainId(5));
        t.insert(0x1000, CapId(1), 0x3000, DomainId(6));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(0x1000, CapId(1)), Some((0x3000, DomainId(6))));
    }
}
