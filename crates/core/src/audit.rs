//! The invariant auditor: a runtime stand-in for formal verification.
//!
//! The paper positions Tyche's capability model as "designed to be
//! formally verifiable". Until the proofs exist, this auditor checks the
//! global invariants such a proof would establish, over any engine state.
//! Tests and the monitor's debug builds run it after every operation
//! batch; property-based tests drive random operation sequences through it.

use crate::capability::CapKind;
use crate::domain::DomainState;
use crate::engine::CapEngine;
use crate::ids::CapId;
use crate::resource::Resource;

/// A violated invariant.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// A capability's parent is missing from the tree.
    DanglingParent(CapId),
    /// A parent does not list a child that points at it.
    BrokenChildLink {
        /// The parent capability.
        parent: CapId,
        /// The child missing from the parent's list.
        child: CapId,
    },
    /// A lineage walk exceeded the number of capabilities — a cycle.
    LineageCycle(CapId),
    /// A derived capability's rights exceed its parent's.
    RightsEscalation(CapId),
    /// A derived memory capability escapes its parent's region.
    RegionEscape(CapId),
    /// A capability with an outstanding grant is still active.
    ActiveWhileGranted(CapId),
    /// An active capability is owned by a dead domain.
    OwnedByDead(CapId),
    /// A capability was added to a domain after it was sealed, violating
    /// the incoming freeze (unless self-derived).
    SealedExtended(CapId),
    /// A strictly sealed domain shared/granted a capability after sealing.
    StrictSealShared(CapId),
    /// An active transition capability targets a quarantined domain —
    /// quarantined domains are killable and enumerable but never
    /// enterable.
    TransitionIntoQuarantined(CapId),
}

/// Audits every engine invariant; returns all violations found.
pub fn audit(engine: &CapEngine) -> Vec<Violation> {
    let mut out = Vec::new();
    let cap_count = engine.caps().count();

    for cap in engine.caps() {
        // I1: lineage soundness.
        if let Some(pid) = cap.parent {
            match engine.cap(pid) {
                None => out.push(Violation::DanglingParent(cap.id)),
                Some(parent) => {
                    if !parent.children.contains(&cap.id) {
                        out.push(Violation::BrokenChildLink {
                            parent: pid,
                            child: cap.id,
                        });
                    }
                    // I2: attenuation.
                    if !cap.rights.subset_of(&parent.rights) {
                        out.push(Violation::RightsEscalation(cap.id));
                    }
                    if let (Resource::Memory(c), Resource::Memory(p)) =
                        (cap.resource, parent.resource)
                    {
                        if !p.contains(&c) {
                            out.push(Violation::RegionEscape(cap.id));
                        }
                    }
                }
            }
            // I3: acyclicity — walk up at most `cap_count` steps.
            let mut cur = cap.parent;
            let mut steps = 0usize;
            while let Some(p) = cur {
                steps += 1;
                if steps > cap_count {
                    out.push(Violation::LineageCycle(cap.id));
                    break;
                }
                cur = engine.cap(p).and_then(|c| c.parent);
            }
        }

        // I4: grant exclusivity — a cap with a Granted child is suspended.
        let has_granted_child = cap
            .children
            .iter()
            .filter_map(|c| engine.cap(*c))
            .any(|c| c.kind == CapKind::Granted);
        if has_granted_child && cap.active {
            out.push(Violation::ActiveWhileGranted(cap.id));
        }

        // I5: live ownership.
        let owner_alive = engine
            .domain(cap.owner)
            .map(|d| d.state != DomainState::Dead)
            .unwrap_or(false);
        if cap.active && !owner_alive {
            out.push(Violation::OwnedByDead(cap.id));
        }

        // I6: seal freezes. A capability created after its owner sealed
        // must be self-derived (granter == owner); one *granted by* a
        // strictly sealed domain after sealing is a strict-seal breach.
        if let (Some(created), Some(owner_dom)) =
            (engine.cap_created_at(cap.id), engine.domain(cap.owner))
        {
            if let Some(sealed) = engine.domain_sealed_at(owner_dom.id) {
                if created > sealed && cap.granter != cap.owner {
                    out.push(Violation::SealedExtended(cap.id));
                }
            }
        }
        // I7: quarantine isolation — no active transition capability may
        // point into a quarantined domain.
        if cap.active {
            if let Resource::Transition(t) = cap.resource {
                if engine.domain(t).map(|d| d.is_quarantined()).unwrap_or(false) {
                    out.push(Violation::TransitionIntoQuarantined(cap.id));
                }
            }
        }

        if let Some(granter_dom) = engine.domain(cap.granter) {
            if cap.granter != cap.owner {
                if let (Some(created), Some(sealed)) = (
                    engine.cap_created_at(cap.id),
                    engine.domain_sealed_at(granter_dom.id),
                ) {
                    if created > sealed && !granter_dom.seal_policy.allow_outward_sharing {
                        out.push(Violation::StrictSealShared(cap.id));
                    }
                }
            }
        }
    }
    out
}

/// Panics with a readable message when any invariant is violated — used
/// by tests after each operation batch.
///
/// # Panics
///
/// Panics if the audit finds violations.
pub fn assert_sound(engine: &CapEngine) {
    let violations = audit(engine);
    assert!(
        violations.is_empty(),
        "capability invariants violated: {violations:?}"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;

    #[test]
    fn fresh_engine_is_sound() {
        let e = CapEngine::new();
        assert!(audit(&e).is_empty());
    }

    #[test]
    fn typical_session_is_sound() {
        let mut e = CapEngine::new();
        let os = e.create_root_domain();
        let ram = e
            .endow(os, Resource::mem(0, 0x100_0000), Rights::RWX)
            .unwrap();
        assert_sound(&e);
        let (a, _) = e.create_domain(os).unwrap();
        let (b, _) = e.create_domain(os).unwrap();
        let (lo, hi) = e.split(os, ram, 0x80_0000).unwrap();
        e.grant(os, lo, a, None, Rights::RW, RevocationPolicy::ZERO)
            .unwrap();
        let shared = e
            .share(
                os,
                hi,
                b,
                Some(MemRegion::new(0x80_0000, 0x81_0000)),
                Rights::RO,
                RevocationPolicy::NONE,
            )
            .unwrap();
        assert_sound(&e);
        e.revoke(os, shared).unwrap();
        assert_sound(&e);
        e.kill(os, a).unwrap();
        assert_sound(&e);
    }

    #[test]
    fn circular_sharing_is_sound_and_revocable() {
        let mut e = CapEngine::new();
        let os = e.create_root_domain();
        let ram = e.endow(os, Resource::mem(0, 0x1000), Rights::RW).unwrap();
        let (a, _) = e.create_domain(os).unwrap();
        let (b, _) = e.create_domain(os).unwrap();
        // os -> a -> b -> a -> b ... a circular domain-sharing chain.
        let c1 = e
            .share(os, ram, a, None, Rights::RW, RevocationPolicy::NONE)
            .unwrap();
        let c2 = e
            .share(a, c1, b, None, Rights::RW, RevocationPolicy::NONE)
            .unwrap();
        let c3 = e
            .share(b, c2, a, None, Rights::RO, RevocationPolicy::NONE)
            .unwrap();
        let _c4 = e
            .share(a, c3, b, None, Rights::RO, RevocationPolicy::NONE)
            .unwrap();
        assert_sound(&e);
        assert_eq!(e.refcount_mem(MemRegion::new(0, 0x1000)), 3, "os, a, b");
        // Revoking the first share takes the whole cycle down.
        e.revoke(os, c1).unwrap();
        assert_sound(&e);
        assert_eq!(
            e.refcount_mem(MemRegion::new(0, 0x1000)),
            1,
            "only os remains"
        );
    }
}
