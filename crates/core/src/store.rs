//! Slab/arena-backed id-keyed storage for million-domain populations.
//!
//! The engine's hot maps (`domains`, `caps`, stamp tables, the owner
//! index) used to be `BTreeMap`s: every lookup on every hypercall paid
//! `O(log n)` pointer chasing, and a create/revoke storm across 10⁵–10⁶
//! domains spent most of its time rebalancing. [`Store`] replaces them
//! with a classic slot-map layout:
//!
//! - a **dense slot arena** (`Vec<Slot<T>>`) holding the live values,
//!   recycled through a freelist so a revoke storm reuses slots instead
//!   of leaking them;
//! - a **generation tag** per slot, bumped on every free, so a stale
//!   [`SlotRef`] from before a reuse can never alias the new occupant
//!   (the ABA defense — see [`Store::resolve`]);
//! - a **sparse direct-mapped index** from the raw external id to the
//!   packed `(slot, generation)` ref, making insert/lookup/free `O(1)`.
//!
//! External ids are untouched: they come from the engine's shared
//! monotonic [`IdAllocator`](crate::ids::IdAllocator) and are never
//! reused, so the sparse index grows 8 bytes per id ever issued — the
//! deliberate trade for `O(1)` everything (the scale bench records the
//! resulting bytes-per-domain figure). Iteration walks the sparse index
//! in ascending id order, so every `*_scan` differential twin and every
//! auditor walk observes exactly the order the `BTreeMap`s used to give.
//!
//! Equality is **logical**: two stores are `==` when they hold the same
//! `(id, value)` pairs, whatever their slot layouts — replay checks
//! compare engines built by different interleavings of the same
//! linearized history, and slot layout is history-dependent.
//!
//! [`RevokedLog`] is the companion side table: revocation compacts each
//! revoked capability's lineage facts into a packed, bounded record
//! ring instead of leaving tombstones in the live table.

use crate::capability::CapKind;
use crate::ids::{CapId, DomainId};

/// Sentinel for "this id has no live slot" in the sparse index.
const EMPTY: u64 = u64::MAX;

/// One arena slot: the current occupant (if any) and the slot's
/// generation, bumped every time the slot is freed.
#[derive(Clone, Debug)]
struct Slot<T> {
    gen: u32,
    val: Option<T>,
}

/// A generation-tagged reference to a slot: resolving it after the slot
/// was freed (and possibly reused) yields `None` instead of the new
/// occupant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SlotRef {
    slot: u32,
    gen: u32,
}

/// An id-keyed slab store: `O(1)` insert/lookup/free, freelist slot
/// reuse, generation-tagged slots, id-ordered iteration. See the
/// module docs for the layout.
#[derive(Clone)]
pub struct Store<T> {
    /// Dense slot arena.
    slots: Vec<Slot<T>>,
    /// Freed slot indices awaiting reuse (LIFO).
    free: Vec<u32>,
    /// Raw id → packed `(gen << 32) | slot`, [`EMPTY`] when absent.
    index: Vec<u64>,
    /// Live entries.
    len: usize,
}

impl<T> Default for Store<T> {
    fn default() -> Self {
        Store {
            slots: Vec::new(),
            free: Vec::new(),
            index: Vec::new(),
            len: 0,
        }
    }
}

impl<T> Store<T> {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entries are live.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn pack(slot: u32, gen: u32) -> u64 {
        (u64::from(gen) << 32) | u64::from(slot)
    }

    fn unpack(packed: u64) -> (u32, u32) {
        (packed as u32, (packed >> 32) as u32)
    }

    /// The packed sparse-index entry for `id`, if live.
    fn entry(&self, id: u64) -> Option<(u32, u32)> {
        let packed = *self.index.get(usize::try_from(id).ok()?)?;
        if packed == EMPTY {
            None
        } else {
            Some(Self::unpack(packed))
        }
    }

    /// Inserts `val` under `id`, returning the previous value if the id
    /// was already live (BTreeMap `insert` semantics).
    pub fn insert(&mut self, id: u64, val: T) -> Option<T> {
        if let Some((slot, _gen)) = self.entry(id) {
            if let Some(s) = self.slots.get_mut(slot as usize) {
                return s.val.replace(val);
            }
        }
        let slot = match self.free.pop() {
            Some(s) => {
                if let Some(cell) = self.slots.get_mut(s as usize) {
                    cell.val = Some(val);
                }
                s
            }
            None => {
                let s = self.slots.len() as u32;
                self.slots.push(Slot { gen: 0, val: Some(val) });
                s
            }
        };
        let gen = self.slots.get(slot as usize).map_or(0, |s| s.gen);
        let idx = usize::try_from(id).unwrap_or(usize::MAX);
        if idx >= self.index.len() {
            self.index.resize(idx.saturating_add(1), EMPTY);
        }
        if let Some(cell) = self.index.get_mut(idx) {
            *cell = Self::pack(slot, gen);
        }
        self.len += 1;
        None
    }

    /// Removes `id`, returning its value. The slot's generation is
    /// bumped and the slot goes back on the freelist, so any
    /// outstanding [`SlotRef`] to it is invalidated before reuse.
    pub fn remove(&mut self, id: u64) -> Option<T> {
        let (slot, _gen) = self.entry(id)?;
        let val = self.slots.get_mut(slot as usize).and_then(|s| {
            s.gen = s.gen.wrapping_add(1);
            s.val.take()
        })?;
        if let Some(cell) = self.index.get_mut(usize::try_from(id).ok()?) {
            *cell = EMPTY;
        }
        self.free.push(slot);
        self.len -= 1;
        Some(val)
    }

    /// True when `id` is live.
    pub fn contains(&self, id: u64) -> bool {
        self.entry(id).is_some()
    }

    /// Looks up `id`.
    pub fn get(&self, id: u64) -> Option<&T> {
        let (slot, _gen) = self.entry(id)?;
        self.slots.get(slot as usize).and_then(|s| s.val.as_ref())
    }

    /// Mutable lookup of `id`.
    pub fn get_mut(&mut self, id: u64) -> Option<&mut T> {
        let (slot, _gen) = self.entry(id)?;
        self.slots.get_mut(slot as usize).and_then(|s| s.val.as_mut())
    }

    /// The generation-tagged slot reference currently backing `id`.
    pub fn handle(&self, id: u64) -> Option<SlotRef> {
        let (slot, gen) = self.entry(id)?;
        Some(SlotRef { slot, gen })
    }

    /// Resolves a [`SlotRef`] taken earlier by [`handle`](Self::handle).
    /// Returns `None` when the slot has since been freed — even if it
    /// was reused for a new id, because the generation no longer
    /// matches (the ABA defense).
    pub fn resolve(&self, h: SlotRef) -> Option<&T> {
        let s = self.slots.get(h.slot as usize)?;
        if s.gen == h.gen {
            s.val.as_ref()
        } else {
            None
        }
    }

    /// Iterates live `(id, value)` pairs in ascending id order — the
    /// exact order the engine's former `BTreeMap`s iterated in, so
    /// differential twins and audits see unchanged sequences. `O(max
    /// id ever inserted)` per full walk, `O(1)` per live entry once the
    /// id space is dense.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &T)> {
        // `zip` with an explicit id counter (not `.enumerate()`): the
        // static certifier's call-graph extractor resolves bare method
        // names workspace-wide, and `enumerate` is an engine hypercall.
        (0u64..).zip(self.index.iter()).filter_map(move |(id, &packed)| {
            if packed == EMPTY {
                return None;
            }
            let (slot, _gen) = Self::unpack(packed);
            self.slots
                .get(slot as usize)
                .and_then(|s| s.val.as_ref())
                .map(|v| (id, v))
        })
    }

    /// Iterates live values in ascending id order.
    pub fn values(&self) -> impl Iterator<Item = &T> {
        self.iter().map(|(_, v)| v)
    }

    /// Slots currently on the freelist (reused before the arena grows).
    pub fn free_slots(&self) -> usize {
        self.free.len()
    }

    /// Total arena slots ever allocated (live + free).
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Heap bytes held by the store's arrays (capacity-based, so this
    /// is retained footprint, not instantaneous live bytes). Counts the
    /// slot arena, the freelist, and the sparse id index; `T`'s own
    /// heap allocations (e.g. a `Vec` inside) are not visible here.
    pub fn storage_bytes(&self) -> usize {
        self.slots.capacity() * std::mem::size_of::<Slot<T>>()
            + self.free.capacity() * std::mem::size_of::<u32>()
            + self.index.capacity() * std::mem::size_of::<u64>()
    }
}

impl<T: PartialEq> PartialEq for Store<T> {
    /// Logical equality: same `(id, value)` pairs, any slot layout.
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.iter().eq(other.iter())
    }
}

impl<T: Eq> Eq for Store<T> {}

impl<T: std::fmt::Debug> std::fmt::Debug for Store<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

/// Maximum lineage records retained by a [`RevokedLog`]; older records
/// are dropped (and counted) so a 1M-domain revoke storm cannot turn
/// the side table into a second unbounded capability table.
pub const REVOKED_LOG_CAP: usize = 4096;

/// One compacted lineage record for a revoked capability: everything a
/// post-mortem needs (who held it, who granted it, where it hung in
/// the tree, when it died) in five words — no `Capability` tombstone
/// stays behind in the live table.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RevokedRecord {
    /// The revoked capability.
    pub cap: CapId,
    /// Its lineage parent at revocation time, if any.
    pub parent: Option<CapId>,
    /// The owner it was revoked from.
    pub owner: DomainId,
    /// The domain that had granted/shared it.
    pub granter: DomainId,
    /// How the capability had been derived.
    pub kind: CapKind,
    /// Engine operation counter at revocation.
    pub revoked_at: u64,
}

/// Bounded ring of [`RevokedRecord`]s — the packed side table revoked
/// lineage compacts into. Like the trace sink, the log **compares
/// vacuously equal**: replay and snapshot equality are about live
/// capability state, and two engines reaching the same state through
/// different histories are still the same engine.
#[derive(Clone, Debug, Default)]
pub struct RevokedLog {
    records: Vec<RevokedRecord>,
    /// Index of the logical start of the ring inside `records`.
    head: usize,
    /// Records dropped after the ring filled.
    dropped: u64,
}

impl RevokedLog {
    /// Appends a record, dropping the oldest once the ring is full.
    pub fn push(&mut self, rec: RevokedRecord) {
        if self.records.len() < REVOKED_LOG_CAP {
            self.records.push(rec);
        } else {
            if let Some(cell) = self.records.get_mut(self.head) {
                *cell = rec;
            }
            self.head = (self.head + 1) % REVOKED_LOG_CAP.max(1);
            self.dropped += 1;
        }
    }

    /// Retained records, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &RevokedRecord> {
        let (newer, older) = self.records.split_at(self.head.min(self.records.len()));
        older.iter().chain(newer.iter())
    }

    /// Retained record count (at most [`REVOKED_LOG_CAP`]).
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing has been revoked yet.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records dropped because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Heap bytes held by the ring (capacity-based).
    pub fn storage_bytes(&self) -> usize {
        self.records.capacity() * std::mem::size_of::<RevokedRecord>()
    }
}

impl PartialEq for RevokedLog {
    /// Vacuously equal — revocation history is observability, not live
    /// state (same contract as the trace sink field).
    fn eq(&self, _other: &Self) -> bool {
        true
    }
}

impl Eq for RevokedLog {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut s: Store<&'static str> = Store::new();
        assert!(s.is_empty());
        assert_eq!(s.insert(3, "three"), None);
        assert_eq!(s.insert(1, "one"), None);
        assert_eq!(s.get(3), Some(&"three"));
        assert_eq!(s.get(2), None);
        assert_eq!(s.len(), 2);
        assert_eq!(s.insert(3, "trois"), Some("three"), "replace returns old");
        assert_eq!(s.len(), 2, "replace does not grow");
        assert_eq!(s.remove(3), Some("trois"));
        assert_eq!(s.remove(3), None);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn iteration_is_id_ordered_regardless_of_slot_layout() {
        let mut s: Store<u64> = Store::new();
        for id in [5u64, 2, 9, 0, 7] {
            s.insert(id, id * 10);
        }
        // Free and reuse slots out of order.
        s.remove(2);
        s.remove(9);
        s.insert(4, 40);
        s.insert(8, 80);
        let ids: Vec<u64> = s.iter().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![0, 4, 5, 7, 8], "ascending id order survives reuse");
    }

    #[test]
    fn freelist_reuses_slots_instead_of_leaking() {
        let mut s: Store<u64> = Store::new();
        for id in 0..100u64 {
            s.insert(id, id);
        }
        assert_eq!(s.slot_count(), 100);
        for id in 0..100u64 {
            s.remove(id);
        }
        assert_eq!(s.free_slots(), 100);
        // A second storm with fresh (never-reused) ids fits in the same
        // arena: a revoke storm does not leak slots.
        for id in 100..200u64 {
            s.insert(id, id);
        }
        assert_eq!(s.slot_count(), 100, "slots recycled, arena unchanged");
        assert_eq!(s.free_slots(), 0);
    }

    #[test]
    fn generation_tag_defeats_aba() {
        let mut s: Store<&'static str> = Store::new();
        s.insert(1, "first");
        let h = s.handle(1).expect("live");
        assert_eq!(s.resolve(h), Some(&"first"));
        s.remove(1);
        assert_eq!(s.resolve(h), None, "freed slot does not resolve");
        // The freed slot is reused for a different id: the stale handle
        // must NOT alias the new occupant.
        s.insert(2, "second");
        assert_eq!(s.get(2), Some(&"second"));
        assert_eq!(s.resolve(h), None, "stale handle never sees the reuser");
        let h2 = s.handle(2).expect("live");
        assert_eq!(s.resolve(h2), Some(&"second"));
    }

    #[test]
    fn equality_is_logical_not_layout() {
        let mut a: Store<u64> = Store::new();
        let mut b: Store<u64> = Store::new();
        // Same final contents through different histories → different
        // slot layouts, equal stores.
        a.insert(1, 10);
        a.insert(2, 20);
        b.insert(2, 20);
        b.insert(7, 70);
        b.remove(7);
        b.insert(1, 10);
        assert_eq!(a, b);
        b.insert(3, 30);
        assert_ne!(a, b);
    }

    #[test]
    fn revoked_log_is_bounded_and_counts_drops() {
        let mut log = RevokedLog::default();
        let rec = |n: u64| RevokedRecord {
            cap: CapId(n),
            parent: None,
            owner: DomainId(0),
            granter: DomainId(0),
            kind: CapKind::Shared,
            revoked_at: n,
        };
        for n in 0..(REVOKED_LOG_CAP as u64 + 10) {
            log.push(rec(n));
        }
        assert_eq!(log.len(), REVOKED_LOG_CAP);
        assert_eq!(log.dropped(), 10);
        let first = log.iter().next().copied().expect("non-empty");
        assert_eq!(first.revoked_at, 10, "oldest surviving record");
        let last = log.iter().last().copied().expect("non-empty");
        assert_eq!(last.revoked_at, REVOKED_LOG_CAP as u64 + 9);
        // The log never participates in equality.
        assert_eq!(log, RevokedLog::default());
    }
}
