//! Capability nodes and the lineage tree.
//!
//! §4.1 of the paper: "grant, share, and revoke operations modify a tree
//! structure that represents a capability's lineage, maintains
//! per-resource reference counts, and facilitates cascading revocations,
//! even in the presence of circular sharing."
//!
//! Each capability is one node. Sharing or granting creates a *child*
//! node owned by the receiving domain; revocation removes a subtree.
//! Because lineage is a tree (every capability has exactly one parent),
//! cascading revocation terminates even when the *domain-level* sharing
//! graph is cyclic (A shares to B, B shares back to A, ...): the cycle
//! exists between domains, not between nodes.

use crate::ids::{CapId, DomainId};
use crate::resource::{Resource, Rights};
use crate::RevocationPolicy;
use std::collections::BTreeSet;

/// How a capability was derived from its parent.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CapKind {
    /// A root endowment installed at boot (no parent).
    Root,
    /// Shared: the parent capability remains active; both domains can use
    /// the resource.
    Shared,
    /// Granted: exclusive transfer; the parent capability is suspended
    /// while the grant is outstanding and reactivates on revocation.
    Granted,
    /// Carved: a piece produced by splitting a memory capability. Owner
    /// and access are unchanged; the parent is consumed while pieces
    /// exist and reactivates when all pieces are revoked.
    Carved,
}

/// One node of the capability tree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Capability {
    /// This capability's id.
    pub id: CapId,
    /// The domain holding (and exercising) this capability.
    pub owner: DomainId,
    /// The domain that created this capability by sharing/granting — the
    /// only domain (besides ancestors via cascade) that may revoke it.
    pub granter: DomainId,
    /// The resource this capability covers.
    pub resource: Resource,
    /// Access rights, always a subset of the parent's rights.
    pub rights: Rights,
    /// Derivation kind.
    pub kind: CapKind,
    /// Parent in the lineage tree (`None` for root endowments).
    pub parent: Option<CapId>,
    /// Children derived from this capability, in id (= creation) order.
    /// An ordered set, not a `Vec`: a revoke storm detaches thousands of
    /// children from one hot parent (a root endowment), and each detach
    /// must be O(log children), not a linear retain.
    pub children: BTreeSet<CapId>,
    /// Clean-up contract executed when this capability is revoked.
    pub policy: RevocationPolicy,
    /// Whether the capability currently conveys access. A capability is
    /// inactive while its resource is granted onward ([`CapKind::Granted`]
    /// child outstanding).
    pub active: bool,
}

impl Capability {
    /// True when this capability covers memory.
    pub fn is_memory(&self) -> bool {
        matches!(self.resource, Resource::Memory(_))
    }

    /// Number of outstanding `Granted` children (0 or 1 per region byte,
    /// but a memory capability can have several disjoint grants).
    pub fn granted_children(&self) -> usize {
        self.children.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resource::MemRegion;

    #[test]
    fn construction() {
        let c = Capability {
            id: CapId(1),
            owner: DomainId(0),
            granter: DomainId(0),
            resource: Resource::Memory(MemRegion::new(0, 0x1000)),
            rights: Rights::RW,
            kind: CapKind::Root,
            parent: None,
            children: BTreeSet::new(),
            policy: RevocationPolicy::NONE,
            active: true,
        };
        assert!(c.is_memory());
        assert_eq!(c.granted_children(), 0);
        assert!(c.active);
    }
}
