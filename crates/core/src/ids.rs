//! Identifiers for domains and capabilities.
//!
//! Both are opaque, never-reused 64-bit handles. Non-reuse matters: a
//! dangling capability id held by a domain after revocation must never
//! alias a later allocation.
// Approved panic paths: every `expect(` in this module is budgeted,
// with a reviewed reason, in crates/verify/allowlist.toml.
#![allow(clippy::expect_used)]

/// A trust domain identity (§3.1 of the paper).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DomainId(pub u64);

impl core::fmt::Debug for DomainId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "dom{}", self.0)
    }
}

impl core::fmt::Display for DomainId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "dom{}", self.0)
    }
}

/// A capability handle.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CapId(pub u64);

impl core::fmt::Debug for CapId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "cap{}", self.0)
    }
}

impl core::fmt::Display for CapId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "cap{}", self.0)
    }
}

/// Monotonic id allocator shared by domain and capability id spaces.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct IdAllocator {
    next: u64,
}

impl IdAllocator {
    /// Creates an allocator starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the next id, never repeating.
    ///
    /// # Panics
    ///
    /// Panics on 64-bit overflow (unreachable in practice).
    #[allow(clippy::should_implement_trait)] // not an Iterator: infallible id source
    pub fn next(&mut self) -> u64 {
        let id = self.next;
        self.next = self.next.checked_add(1).expect("id space exhausted");
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_never_repeat() {
        let mut a = IdAllocator::new();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            assert!(seen.insert(a.next()));
        }
    }

    #[test]
    fn display_formats() {
        assert_eq!(DomainId(3).to_string(), "dom3");
        assert_eq!(CapId(7).to_string(), "cap7");
        assert_eq!(format!("{:?}", DomainId(3)), "dom3");
    }
}
