//! Physical resources and access rights.
//!
//! §3.2 of the paper: monitor policies "operate on physical name spaces
//! (e.g., memory, CPU cores), which permit reasoning about sharing and
//! exclusive ownership without having to consider aliasing". The resource
//! types here are exactly those physical names: byte ranges of physical
//! memory, CPU core numbers, and PCI device ids — plus the *transition*
//! pseudo-resource, the call-gate right to enter another domain.

use crate::ids::DomainId;

/// A half-open physical memory region `[start, end)` in bytes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MemRegion {
    /// Inclusive start address.
    pub start: u64,
    /// Exclusive end address.
    pub end: u64,
}

impl MemRegion {
    /// Creates a region; `start` must be strictly below `end`.
    ///
    /// # Panics
    ///
    /// Panics on an empty or inverted region — capabilities over nothing
    /// are a policy bug the engine refuses to represent.
    pub fn new(start: u64, end: u64) -> Self {
        assert!(
            start < end,
            "empty or inverted region [{start:#x}, {end:#x})"
        );
        MemRegion { start, end }
    }

    /// Region length in bytes.
    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    /// Regions are never empty (enforced at construction); kept for
    /// API completeness.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// True when `other` lies fully inside `self`.
    pub fn contains(&self, other: &MemRegion) -> bool {
        self.start <= other.start && other.end <= self.end
    }

    /// True when `addr` lies inside the region.
    pub fn contains_addr(&self, addr: u64) -> bool {
        self.start <= addr && addr < self.end
    }

    /// True when the regions share at least one byte.
    pub fn overlaps(&self, other: &MemRegion) -> bool {
        self.start < other.end && other.start < self.end
    }

    /// The overlapping part of two regions, if any.
    pub fn intersection(&self, other: &MemRegion) -> Option<MemRegion> {
        let start = self.start.max(other.start);
        let end = self.end.min(other.end);
        (start < end).then_some(MemRegion { start, end })
    }
}

impl core::fmt::Debug for MemRegion {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "[{:#x}, {:#x})", self.start, self.end)
    }
}

/// Access rights attached to a capability.
///
/// Interpretation depends on the resource: for memory, read/write/execute;
/// for CPU cores and devices, only [`Rights::USE`] is meaningful; for
/// transitions, [`Rights::USE`] means "may enter".
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Rights(pub u8);

impl Rights {
    /// Read bit.
    pub const R: u8 = 1 << 0;
    /// Write bit.
    pub const W: u8 = 1 << 1;
    /// Execute bit.
    pub const X: u8 = 1 << 2;
    /// Use bit (CPU cores, devices, transitions).
    pub const U: u8 = 1 << 3;

    /// No rights.
    pub const NONE: Rights = Rights(0);
    /// Read-only memory.
    pub const RO: Rights = Rights(Self::R);
    /// Read-write memory.
    pub const RW: Rights = Rights(Self::R | Self::W);
    /// Read-execute memory.
    pub const RX: Rights = Rights(Self::R | Self::X);
    /// Read-write-execute memory.
    pub const RWX: Rights = Rights(Self::R | Self::W | Self::X);
    /// Usable (cores/devices/transitions).
    pub const USE: Rights = Rights(Self::U);

    /// True when `self` is a subset of `other` — the attenuation rule:
    /// derived capabilities may only narrow rights.
    pub fn subset_of(&self, other: &Rights) -> bool {
        self.0 & !other.0 == 0
    }

    /// Set intersection of rights.
    pub fn intersect(&self, other: &Rights) -> Rights {
        Rights(self.0 & other.0)
    }

    /// True when the read bit is set.
    pub fn can_read(&self) -> bool {
        self.0 & Self::R != 0
    }

    /// True when the write bit is set.
    pub fn can_write(&self) -> bool {
        self.0 & Self::W != 0
    }

    /// True when the execute bit is set.
    pub fn can_exec(&self) -> bool {
        self.0 & Self::X != 0
    }

    /// True when the use bit is set.
    pub fn can_use(&self) -> bool {
        self.0 & Self::U != 0
    }
}

impl core::fmt::Debug for Rights {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let r = if self.can_read() { "r" } else { "-" };
        let w = if self.can_write() { "w" } else { "-" };
        let x = if self.can_exec() { "x" } else { "-" };
        let u = if self.can_use() { "u" } else { "-" };
        write!(f, "{r}{w}{x}{u}")
    }
}

/// A physical resource a capability refers to.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Resource {
    /// A physical memory region.
    Memory(MemRegion),
    /// A CPU core, by hardware core number.
    CpuCore(usize),
    /// A PCI device, by flattened bus/device/function id.
    Device(u16),
    /// The right to transition into (call) a domain at its fixed entry
    /// point. Created by the target's manager; transferable like any other
    /// capability.
    Transition(DomainId),
    /// An interrupt vector: the holder receives this vector's deliveries
    /// (§4.1 "cross-domain interrupt routing via remapping").
    Interrupt(u32),
}

impl Resource {
    /// Convenience constructor for a memory resource.
    pub fn mem(start: u64, end: u64) -> Resource {
        Resource::Memory(MemRegion::new(start, end))
    }

    /// The memory region, when this is a memory resource.
    pub fn as_mem(&self) -> Option<MemRegion> {
        match self {
            Resource::Memory(r) => Some(*r),
            _ => None,
        }
    }

    /// A short stable type tag used in canonical serialization.
    pub fn type_tag(&self) -> u8 {
        match self {
            Resource::Memory(_) => 0,
            Resource::CpuCore(_) => 1,
            Resource::Device(_) => 2,
            Resource::Transition(_) => 3,
            Resource::Interrupt(_) => 4,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_relations() {
        let r = MemRegion::new(0x1000, 0x3000);
        assert_eq!(r.len(), 0x2000);
        assert!(r.contains(&MemRegion::new(0x1000, 0x3000)));
        assert!(r.contains(&MemRegion::new(0x1800, 0x2000)));
        assert!(!r.contains(&MemRegion::new(0x0, 0x1001)));
        assert!(r.overlaps(&MemRegion::new(0x2fff, 0x4000)));
        assert!(!r.overlaps(&MemRegion::new(0x3000, 0x4000)));
        assert_eq!(
            r.intersection(&MemRegion::new(0x2000, 0x4000)),
            Some(MemRegion::new(0x2000, 0x3000))
        );
        assert_eq!(r.intersection(&MemRegion::new(0x4000, 0x5000)), None);
        assert!(r.contains_addr(0x1000));
        assert!(!r.contains_addr(0x3000));
    }

    #[test]
    #[should_panic(expected = "empty or inverted")]
    fn empty_region_panics() {
        MemRegion::new(0x1000, 0x1000);
    }

    #[test]
    fn rights_attenuation() {
        assert!(Rights::RO.subset_of(&Rights::RW));
        assert!(Rights::RW.subset_of(&Rights::RWX));
        assert!(!Rights::RW.subset_of(&Rights::RO));
        assert!(!Rights::RX.subset_of(&Rights::RW));
        assert!(Rights::NONE.subset_of(&Rights::NONE));
        assert_eq!(Rights::RWX.intersect(&Rights::RW), Rights::RW);
    }

    #[test]
    fn rights_debug_format() {
        assert_eq!(format!("{:?}", Rights::RW), "rw--");
        assert_eq!(format!("{:?}", Rights::USE), "---u");
    }

    #[test]
    fn resource_tags_distinct() {
        let tags = [
            Resource::mem(0, 1).type_tag(),
            Resource::CpuCore(0).type_tag(),
            Resource::Device(0).type_tag(),
            Resource::Transition(DomainId(0)).type_tag(),
            Resource::Interrupt(32).type_tag(),
        ];
        let set: std::collections::HashSet<_> = tags.iter().collect();
        assert_eq!(set.len(), 5);
    }
}
