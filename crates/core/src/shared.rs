//! A thread-shareable front-end over [`CapEngine`].
//!
//! The engine itself stays a plain `&mut self` state machine — the BMC,
//! the corruption hooks, and every existing test keep driving it
//! directly. [`SharedEngine`] wraps one engine for SMP serving:
//!
//! - **Reads** go through an epoch/RCU-style read side
//!   ([`EpochReadSide`]): every committed mutation *publishes* a fresh
//!   `Arc<CapEngine>` clone into a small ring of snapshot slots and
//!   swaps the head pointer, so [`SharedEngine::snapshot`] is one
//!   atomic head load plus an uncontended slot read — readers never
//!   take a shard lock and never serialize on a shared cache mutex.
//!   Readers that need a stable reclamation horizon across several
//!   reads pin an epoch first ([`EpochReadSide::pin`]); displaced
//!   snapshots are retired and reclaimed only after every pinned
//!   reader has advanced past their displacement epoch
//!   (retire-after-grace).
//! - **Mutations** ([`SharedEngine::mutate`]) first pin the resizable
//!   *shard table* (its `RwLock` read side, lock class `shard-table`),
//!   then take the per-domain *shard* locks of every involved domain —
//!   in ascending shard order, the global ordering rule that makes
//!   cross-domain operations (grant/share/revoke lock both sides)
//!   deadlock-free — and then the engine write lock for the actual
//!   state change. The shard locks are what serialize
//!   logically-conflicting hypercalls; the inner write lock is held
//!   only for the (short) engine operation itself, and the concurrent
//!   monitor's cycle model charges contention accordingly. Shard count
//!   is a construction-time parameter (power-of-two mask routing) and
//!   can be changed at runtime: see the resize protocol on
//!   [`SharedEngine`].
//!
//! Each mutation is stamped with a monotonically increasing **sequence
//! number** assigned inside the exclusive section, so a concurrent
//! stress driver can record `(seq, op)` pairs and later *replay* the log
//! single-threadedly: because every mutation ran under the write lock,
//! the sequence order is a linearization, and the replayed engine must
//! be `==` to the shared one (`CapEngine` derives `PartialEq`).
//!
//! ## Epoch lifecycle
//!
//! Memory safety here is unconditional — snapshots are `Arc`s, so no
//! reader can ever observe a freed engine whatever the epochs say. The
//! epochs govern *slot reuse and retirement timing*, which is what the
//! RCU discipline is about:
//!
//! 1. A publisher (running under the engine write lock) bumps the
//!    global epoch, overwrites the oldest slot with the new snapshot,
//!    swaps the head pointer (Release), and records the epoch at which
//!    the displaced slot stopped being reachable.
//! 2. The displaced snapshot goes onto the retired list tagged with its
//!    displacement epoch.
//! 3. Retired snapshots are dropped only once every reader is idle or
//!    pinned at an epoch strictly newer than the displacement — the
//!    grace condition. A pinned reader therefore keeps every snapshot
//!    it could still be holding alive on the retired list.
//! 4. Overwriting a slot before its grace has elapsed (a straggling
//!    reader still inside the slot's read guard) is *counted*
//!    ([`EpochReadSide::deferred`]) and handled by the slot `RwLock`,
//!    which simply waits the reader out — a stall, never a
//!    use-after-free.
//!
//! Lock poisoning: a panicked writer (e.g. a paranoid-check assertion
//! firing in another thread's test) must not cascade into opaque
//! `PoisonError` panics here, so every acquisition recovers the guard
//! with `into_inner()`. The state seen afterwards is whatever the
//! panicking thread had committed — fine for the engine, whose public
//! operations keep it consistent at every return point.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

use crate::engine::CapEngine;
use crate::ids::DomainId;

/// Default number of domain shards. Domains route to shards by id AND
/// the power-of-two shard mask; more shards than plausible worker
/// threads keeps false conflicts rare while bounding the lock table.
pub const SHARDS: usize = 16;

/// Number of published snapshot slots in an [`EpochReadSide`]. Small on
/// purpose: one live head plus a short grace window of displaced slots.
pub const SNAP_SLOTS: usize = 4;

/// Reader-slot value meaning "not pinned".
pub const EPOCH_IDLE: u64 = u64::MAX;

fn read_lock<T>(l: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    match l.read() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

fn write_lock<T>(l: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    match l.write() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

fn mutex_lock<T>(l: &Mutex<T>) -> MutexGuard<'_, T> {
    match l.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

/// One published `(generation, snapshot)` slot in the epoch ring.
type SnapSlot = RwLock<(u64, Arc<CapEngine>)>;

/// The epoch-based read side shared by [`SharedEngine`] and the
/// concurrent monitor: a ring of published `(generation, snapshot)`
/// slots, per-reader epoch pins, and a retired list reclaimed after
/// grace. See the module docs for the lifecycle.
pub struct EpochReadSide {
    /// Published snapshot slots; `head` indexes the newest.
    snaps: Box<[SnapSlot]>,
    /// Epoch at which each slot was displaced from head (0 = never).
    displaced: Box<[AtomicU64]>,
    /// Index of the most recently published slot.
    head: AtomicUsize,
    /// Global publication epoch; bumped once per publish.
    epoch: AtomicU64,
    /// Per-reader pinned epoch, [`EPOCH_IDLE`] when unpinned.
    readers: Box<[AtomicU64]>,
    /// Displaced snapshots awaiting grace: (displacement epoch, clone).
    retired: Mutex<Vec<(u64, Arc<CapEngine>)>>,
    /// Publications so far.
    published: AtomicU64,
    /// Retired snapshots dropped after their grace elapsed.
    reclaimed: AtomicU64,
    /// Publications that overwrote a slot before its grace elapsed (the
    /// slot lock waited out a straggling reader).
    deferred: AtomicU64,
    /// Boot-time snapshot, kept as an infallible fallback so the read
    /// path never needs a panicking index.
    boot: (u64, Arc<CapEngine>),
}

/// An epoch pin: while alive, no snapshot displaced at or after the
/// pinned epoch is reclaimed. Dropping unpins.
pub struct EpochPin<'a> {
    reads: &'a EpochReadSide,
    reader: usize,
}

impl Drop for EpochPin<'_> {
    fn drop(&mut self) {
        if let Some(r) = self.reads.readers.get(self.reader) {
            r.store(EPOCH_IDLE, Ordering::SeqCst);
        }
    }
}

impl EpochReadSide {
    /// Creates a read side publishing `snap` (taken at `gen`) with
    /// `readers` pin slots (at least one).
    pub fn new(gen: u64, snap: Arc<CapEngine>, readers: usize) -> Self {
        let snaps: Box<[SnapSlot]> = (0..SNAP_SLOTS)
            .map(|_| RwLock::new((gen, Arc::clone(&snap))))
            .collect();
        EpochReadSide {
            snaps,
            displaced: (0..SNAP_SLOTS).map(|_| AtomicU64::new(0)).collect(),
            head: AtomicUsize::new(0),
            epoch: AtomicU64::new(0),
            readers: (0..readers.max(1)).map(|_| AtomicU64::new(EPOCH_IDLE)).collect(),
            retired: Mutex::new(Vec::new()),
            published: AtomicU64::new(0),
            reclaimed: AtomicU64::new(0),
            deferred: AtomicU64::new(0),
            boot: (gen, snap),
        }
    }

    /// Pins `reader` at the current epoch. Out-of-range readers get a
    /// no-op pin (safe either way: pins only tighten reclamation).
    pub fn pin(&self, reader: usize) -> EpochPin<'_> {
        let now = self.epoch.load(Ordering::SeqCst);
        if let Some(r) = self.readers.get(reader) {
            r.store(now, Ordering::SeqCst);
        }
        EpochPin { reads: self, reader }
    }

    /// The newest published `(generation, snapshot)`. One Acquire head
    /// load plus an uncontended slot read; never blocks on a mutex.
    pub fn current_with_gen(&self) -> (u64, Arc<CapEngine>) {
        let idx = self.head.load(Ordering::Acquire);
        match self.snaps.get(idx).or_else(|| self.snaps.first()) {
            Some(snap_cell) => {
                let published = read_lock(snap_cell);
                (published.0, Arc::clone(&published.1))
            }
            // Unreachable: `snaps` is non-empty by construction.
            None => (self.boot.0, Arc::clone(&self.boot.1)),
        }
    }

    /// The newest published snapshot.
    pub fn current(&self) -> Arc<CapEngine> {
        self.current_with_gen().1
    }

    /// Publishes a new snapshot. Must be called from the committing
    /// mutator (while it still holds the engine write lock) so
    /// publications are totally ordered; the caller stores `live_gen`
    /// with Release *after* this returns.
    pub fn publish(&self, gen: u64, snap: Arc<CapEngine>) {
        let epoch_now = self.epoch.fetch_add(1, Ordering::SeqCst) + 1;
        let old_head = self.head.load(Ordering::Acquire);
        let next = if old_head + 1 >= self.snaps.len() { 0 } else { old_head + 1 };
        let next_displaced = self
            .displaced
            .get(next)
            .map_or(0, |d| d.load(Ordering::SeqCst));
        if !self.grace_elapsed(next_displaced) {
            // A straggling reader may still sit inside this slot's read
            // guard; the write acquisition below waits it out. Counted,
            // never unsafe.
            self.deferred.fetch_add(1, Ordering::SeqCst);
        }
        let prev = match self.snaps.get(next) {
            Some(snap_cell) => {
                let mut published = write_lock(snap_cell);
                std::mem::replace(&mut *published, (gen, snap))
            }
            None => return,
        };
        self.head.store(next, Ordering::Release);
        if let Some(d) = self.displaced.get(old_head) {
            d.store(epoch_now, Ordering::SeqCst);
        }
        {
            let mut retired = mutex_lock(&self.retired);
            retired.push((next_displaced, prev.1));
        }
        self.published.fetch_add(1, Ordering::SeqCst);
        self.reclaim();
    }

    /// True when every reader is idle or pinned strictly after
    /// `displaced_at` — i.e. no pinned reader can still reference a
    /// snapshot displaced at that epoch.
    fn grace_elapsed(&self, displaced_at: u64) -> bool {
        self.readers.iter().all(|r| {
            let pinned = r.load(Ordering::SeqCst);
            pinned == EPOCH_IDLE || pinned > displaced_at
        })
    }

    /// Drops every retired snapshot whose grace has elapsed. Returns how
    /// many were reclaimed. Safe to call from any thread at any time.
    pub fn reclaim(&self) -> usize {
        let horizon = self
            .readers
            .iter()
            .map(|r| r.load(Ordering::SeqCst))
            .filter(|&p| p != EPOCH_IDLE)
            .min();
        let freed = {
            let mut retired = mutex_lock(&self.retired);
            let before = retired.len();
            match horizon {
                None => retired.clear(),
                Some(min_pinned) => retired.retain(|(displaced_at, _)| *displaced_at >= min_pinned),
            }
            before - retired.len()
        };
        self.reclaimed.fetch_add(freed as u64, Ordering::SeqCst);
        freed
    }

    /// Snapshots currently awaiting grace.
    pub fn retired_len(&self) -> usize {
        mutex_lock(&self.retired).len()
    }

    /// Total publications.
    pub fn published(&self) -> u64 {
        self.published.load(Ordering::SeqCst)
    }

    /// Total retired snapshots reclaimed after grace.
    pub fn reclaimed(&self) -> u64 {
        self.reclaimed.load(Ordering::SeqCst)
    }

    /// Publications that found their target slot's grace not yet
    /// elapsed.
    pub fn deferred(&self) -> u64 {
        self.deferred.load(Ordering::SeqCst)
    }

    /// The current global epoch.
    pub fn epoch_now(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }
}

/// The shard-lock table: the per-domain shard mutexes plus the
/// power-of-two routing mask (`locks.len() - 1`). Swapped wholesale by
/// [`SharedEngine::resize_shards`] under the table's write lock.
///
/// Shard mutexes are *stateless* — they serialize conflicting mutators
/// but guard no data of their own — so a resize has nothing to rehash:
/// it only needs a quiesce point where no mutator holds a shard, which
/// is exactly the table write lock.
struct ShardTable {
    locks: Vec<Mutex<()>>,
    mask: usize,
}

impl ShardTable {
    /// Builds a table of `nshards` mutexes, rounded up to the next
    /// power of two (min 1) so routing is a mask, not a division.
    fn with_shards(nshards: usize) -> Self {
        let n = nshards.max(1).next_power_of_two();
        ShardTable {
            locks: (0..n).map(|_| Mutex::new(())).collect(),
            mask: n - 1,
        }
    }
}

/// A [`CapEngine`] shared between worker threads. See the module docs
/// for the locking discipline.
///
/// ## Resize protocol
///
/// The shard count is a construction-time parameter
/// ([`with_shards`](Self::with_shards), power-of-two rounded) that can
/// be changed at runtime through [`resize_shards`](Self::resize_shards).
/// The table lives behind its own `RwLock` — lock class `shard-table`,
/// ranked immediately *above* per-core state and *below* the domain
/// shards, so the mutator order is: table read lock → shard mutexes
/// (ascending index) → engine write lock. Resizing takes the table
/// *write* lock: that is the quiesce point — it cannot be granted while
/// any mutator still holds a read guard (and therefore possibly a shard
/// mutex), and once granted the old mutexes are provably unheld and can
/// simply be dropped. Shard mutexes guard no data, so there is nothing
/// to rehash; new routing takes effect with the new mask.
pub struct SharedEngine {
    engine: RwLock<CapEngine>,
    /// Resizable shard-lock table. Mutators hold a read guard for the
    /// duration of their shard acquisitions; `resize_shards` takes the
    /// write side as its quiesce point.
    shard_table: RwLock<ShardTable>,
    /// Generation of the engine after the most recent committed
    /// mutation; read without the engine lock to validate snapshots.
    live_gen: AtomicU64,
    /// Epoch read side: published snapshots, reader pins, retired list.
    reads: EpochReadSide,
    /// Next mutation sequence number.
    seq: AtomicU64,
}

/// Reader pin slots a standalone [`SharedEngine`] offers. Callers that
/// know their core count (the concurrent monitor) size their own
/// [`EpochReadSide`] instead.
const DEFAULT_READERS: usize = 64;

impl SharedEngine {
    /// Wraps `engine` for shared use with the default shard count.
    pub fn new(engine: CapEngine) -> Self {
        Self::with_shards(engine, SHARDS)
    }

    /// Wraps `engine` with `nshards` domain shards, rounded up to the
    /// next power of two (at least one) so routing is `id & mask`.
    /// Shard-count is swept by the SMP benches: fewer shards means more
    /// false conflicts, more shards means a longer lock table.
    pub fn with_shards(engine: CapEngine, nshards: usize) -> Self {
        let gen = engine.generation();
        let snap = Arc::new(engine.clone());
        SharedEngine {
            engine: RwLock::new(engine),
            shard_table: RwLock::new(ShardTable::with_shards(nshards)),
            live_gen: AtomicU64::new(gen),
            reads: EpochReadSide::new(gen, snap, DEFAULT_READERS),
            seq: AtomicU64::new(0),
        }
    }

    /// Masks a raw domain id onto a table of `len` shards (`mask` =
    /// `len - 1`, `len` a power of two) with a totality check: every
    /// domain must land on an existing shard.
    fn route(domain: DomainId, mask: usize, len: usize) -> usize {
        let idx = (domain.0 & mask as u64) as usize;
        debug_assert!(
            idx < len,
            "shard routing must be total: idx {idx} vs {len} shards"
        );
        idx
    }

    /// The shard index a domain maps to under the default shard count.
    pub fn shard_of(domain: DomainId) -> usize {
        Self::shard_of_n(domain, SHARDS)
    }

    /// The shard index a domain maps to under an `nshards`-sized table
    /// (rounded up to a power of two like the table itself).
    pub fn shard_of_n(domain: DomainId, nshards: usize) -> usize {
        let n = nshards.max(1).next_power_of_two();
        Self::route(domain, n - 1, n)
    }

    /// This engine's current shard count.
    pub fn shard_count(&self) -> usize {
        read_lock(&self.shard_table).locks.len()
    }

    /// The shard index a domain maps to in *this* engine (under the
    /// current table; a concurrent resize can re-route it).
    pub fn shard_index(&self, domain: DomainId) -> usize {
        let shard_tbl = read_lock(&self.shard_table);
        Self::route(domain, shard_tbl.mask, shard_tbl.locks.len())
    }

    /// Swaps in a new shard table of `nshards` locks (power-of-two
    /// rounded; returns the actual count). The table write lock is the
    /// quiesce point: it is granted only when no mutator holds a read
    /// guard, hence no shard mutex is held and the old table can be
    /// dropped without rehashing (shard locks are stateless — see
    /// [`ShardTable`]). In-flight mutators that routed under the old
    /// mask have already committed; later ones route under the new one.
    pub fn resize_shards(&self, nshards: usize) -> usize {
        let mut shard_tbl = write_lock(&self.shard_table);
        *shard_tbl = ShardTable::with_shards(nshards);
        shard_tbl.locks.len()
    }

    /// The epoch read side (pinning, reclamation counters).
    pub fn epochs(&self) -> &EpochReadSide {
        &self.reads
    }

    /// Runs `f` with a read lock on the live engine. Prefer
    /// [`snapshot`](Self::snapshot) for read-mostly query paths — this
    /// blocks writers for the duration of `f`.
    pub fn with_read<R>(&self, f: impl FnOnce(&CapEngine) -> R) -> R {
        f(&read_lock(&self.engine))
    }

    /// Returns a point-in-time snapshot of the engine.
    ///
    /// Every committed mutation publishes a fresh clone into the epoch
    /// read side, so this is one Acquire head load plus an uncontended
    /// slot read — no snapshot-cache mutex, no shard lock, and queries
    /// on the returned `Arc` never contend with anything.
    pub fn snapshot(&self) -> Arc<CapEngine> {
        self.reads.current()
    }

    /// Runs the mutation `f` under the shard locks of `domains` (taken
    /// in ascending shard order — the global deadlock-freedom rule) and
    /// the engine write lock. Returns the mutation's sequence number —
    /// assigned *inside* the exclusive section, so ascending sequence
    /// numbers are a linearization of all mutations — and `f`'s result.
    /// Before releasing the write lock the mutation *publishes* the new
    /// state to the epoch read side, so readers observe it without ever
    /// locking.
    pub fn mutate<R>(
        &self,
        domains: &[DomainId],
        f: impl FnOnce(&mut CapEngine) -> R,
    ) -> (u64, R) {
        // Pin the shard table (read side) for the whole exclusive
        // section — a resize cannot swap the mask out from under the
        // held shard guards. Then sort + dedup the shard indexes so
        // each lock is taken once, in the global order, regardless of
        // the caller's domain order.
        let shard_tbl = read_lock(&self.shard_table);
        let mut idx: Vec<usize> = domains
            .iter()
            .map(|&d| Self::route(d, shard_tbl.mask, shard_tbl.locks.len()))
            .collect();
        idx.sort_unstable();
        idx.dedup();
        let _shard_guards: Vec<MutexGuard<'_, ()>> = idx
            .into_iter()
            .filter_map(|i| shard_tbl.locks.get(i))
            .map(mutex_lock)
            .collect();
        let mut eng = write_lock(&self.engine);
        // verify: relaxed-ok mutation counter ordered by the engine write lock; live_gen carries the Release publication
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let out = f(&mut eng);
        let gen = eng.generation();
        self.reads.publish(gen, Arc::new(eng.clone()));
        self.live_gen.store(gen, Ordering::Release);
        (seq, out)
    }

    /// Number of mutations committed so far.
    pub fn mutations(&self) -> u64 {
        // verify: relaxed-ok statistics read; snapshot validity is proven through live_gen, not this counter
        self.seq.load(Ordering::Relaxed)
    }

    /// Unwraps the shared engine back into a plain [`CapEngine`] (e.g.
    /// for a final single-threaded `audit()` pass).
    pub fn into_inner(self) -> CapEngine {
        match self.engine.into_inner() {
            Ok(e) => e,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;

    fn seeded() -> (SharedEngine, DomainId, crate::ids::CapId) {
        let mut e = CapEngine::new();
        let root = e.create_root_domain();
        let ram = e
            .endow(root, Resource::mem(0x0, 0x10_0000), Rights::RWX)
            .unwrap();
        (SharedEngine::new(e), root, ram)
    }

    #[test]
    fn snapshot_reused_until_mutation() {
        let (shared, root, _ram) = seeded();
        let a = shared.snapshot();
        let b = shared.snapshot();
        assert!(Arc::ptr_eq(&a, &b), "unchanged engine reuses the published slot");
        let (seq, child) = shared.mutate(&[root], |e| e.create_domain(root));
        assert_eq!(seq, 0);
        child.unwrap();
        let c = shared.snapshot();
        assert!(!Arc::ptr_eq(&a, &c), "mutation publishes a fresh snapshot");
        assert_eq!(c.domains().count(), 2);
        // The old snapshot still reads its point-in-time state.
        assert_eq!(a.domains().count(), 1);
    }

    #[test]
    fn mutation_seq_is_dense_and_ordered() {
        let (shared, root, ram) = seeded();
        let (s0, r0) = shared.mutate(&[root], |e| e.split(root, ram, 0x8000));
        let (lo, _hi) = r0.unwrap();
        let (s1, r1) = shared.mutate(&[root], |e| e.revoke(root, lo));
        r1.unwrap();
        assert_eq!((s0, s1), (0, 1));
        assert_eq!(shared.mutations(), 2);
    }

    #[test]
    fn cross_thread_mutations_all_commit() {
        let (shared, root, _ram) = seeded();
        let shared = Arc::new(shared);
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let s = Arc::clone(&shared);
                std::thread::spawn(move || {
                    for _ in 0..50 {
                        let (_, r) = s.mutate(&[root], |e| e.create_domain(root));
                        r.unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let shared = Arc::try_unwrap(shared).ok().expect("threads joined");
        assert_eq!(shared.mutations(), 200);
        let engine = shared.into_inner();
        assert_eq!(engine.domains().count(), 201);
        assert!(crate::audit::audit(&engine).is_empty());
    }

    #[test]
    fn shard_order_is_global() {
        // shard_of is a pure function of the id: two domains always map
        // to the same pair of shards in the same order, whichever side
        // initiates the cross-domain operation.
        let a = DomainId(3);
        let b = DomainId(7);
        assert_eq!(SharedEngine::shard_of(a), 3);
        assert_eq!(SharedEngine::shard_of(b), 7);
        assert_eq!(
            SharedEngine::shard_of(DomainId(3 + SHARDS as u64)),
            SharedEngine::shard_of(a)
        );
    }

    #[test]
    fn with_shards_folds_ids_onto_smaller_table() {
        let mut e = CapEngine::new();
        let root = e.create_root_domain();
        let shared = SharedEngine::with_shards(e, 4);
        assert_eq!(shared.shard_count(), 4);
        assert_eq!(shared.shard_index(DomainId(7)), 3);
        assert_eq!(shared.shard_index(DomainId(11)), 3);
        // Degenerate counts clamp to one shard instead of dividing by 0.
        assert_eq!(SharedEngine::shard_of_n(DomainId(9), 0), 0);
        let (_, r) = shared.mutate(&[root], |e| e.create_domain(root));
        r.unwrap();
        assert_eq!(shared.snapshot().domains().count(), 2);
    }

    #[test]
    fn shard_counts_round_up_to_powers_of_two() {
        let mut e = CapEngine::new();
        let root = e.create_root_domain();
        let shared = SharedEngine::with_shards(e, 7);
        assert_eq!(shared.shard_count(), 8, "7 rounds up to 8");
        // Mask routing agrees with the pure helper at the rounded count.
        for raw in [0u64, 1, 7, 8, 9, 1023] {
            assert_eq!(
                shared.shard_index(DomainId(raw)),
                SharedEngine::shard_of_n(DomainId(raw), 7)
            );
        }
        let (_, r) = shared.mutate(&[root], |e| e.create_domain(root));
        r.unwrap();
    }

    #[test]
    fn resize_rebuilds_table_and_keeps_mutations_linearized() {
        let (shared, root, _ram) = seeded();
        let shared = Arc::new(shared);
        assert_eq!(shared.shard_count(), SHARDS);
        // Concurrent mutators race a stream of resizes; every mutation
        // must still commit exactly once under a consistent table.
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let s = Arc::clone(&shared);
                std::thread::spawn(move || {
                    for i in 0..50 {
                        if t == 0 && i % 10 == 0 {
                            s.resize_shards([8, 16, 32, 64][(i / 10) % 4]);
                        }
                        let (_, r) = s.mutate(&[root], |e| e.create_domain(root));
                        r.unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(shared.resize_shards(64), 64);
        assert_eq!(shared.shard_count(), 64);
        let shared = Arc::try_unwrap(shared).ok().expect("threads joined");
        assert_eq!(shared.mutations(), 200);
        let engine = shared.into_inner();
        assert_eq!(engine.domains().count(), 201);
        assert!(crate::audit::audit(&engine).is_empty());
    }

    #[test]
    fn pinned_reader_defers_reclamation() {
        let (shared, root, _ram) = seeded();
        let pin = shared.epochs().pin(0);
        let pinned_view = shared.snapshot();
        // A storm of publications while the reader stays pinned: nothing
        // displaced during the pin may be reclaimed.
        for _ in 0..(3 * SNAP_SLOTS) {
            let (_, r) = shared.mutate(&[root], |e| e.create_domain(root));
            r.unwrap();
        }
        assert_eq!(shared.epochs().published(), 3 * SNAP_SLOTS as u64);
        assert_eq!(
            shared.epochs().reclaimed(),
            0,
            "grace cannot elapse under a pin taken before the storm"
        );
        assert!(shared.epochs().retired_len() > 0);
        // The pinned reader's view is still the pre-storm state.
        assert_eq!(pinned_view.domains().count(), 1);
        drop(pin);
        shared.epochs().reclaim();
        assert_eq!(shared.epochs().retired_len(), 0, "unpinning drains the retired list");
        assert!(shared.epochs().reclaimed() > 0);
    }

    #[test]
    fn unpinned_publications_reclaim_immediately() {
        let (shared, root, _ram) = seeded();
        for _ in 0..SNAP_SLOTS {
            let (_, r) = shared.mutate(&[root], |e| e.create_domain(root));
            r.unwrap();
        }
        // With no readers pinned, each publish reclaims its own retiree.
        assert_eq!(shared.epochs().retired_len(), 0);
        assert_eq!(shared.epochs().reclaimed(), SNAP_SLOTS as u64);
        assert_eq!(shared.epochs().deferred(), 0);
    }
}
