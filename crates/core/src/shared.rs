//! A thread-shareable front-end over [`CapEngine`].
//!
//! The engine itself stays a plain `&mut self` state machine — the BMC,
//! the corruption hooks, and every existing test keep driving it
//! directly. [`SharedEngine`] wraps one engine for SMP serving:
//!
//! - **Reads** go through a generation-validated snapshot
//!   ([`SharedEngine::snapshot`]): a cached `Arc<CapEngine>` clone that
//!   is refreshed only when the engine's [`CapEngine::generation`]
//!   counter has moved. Queries on the snapshot take no lock at all, and
//!   the seqlock-style validation (compare generation before reuse)
//!   guarantees a snapshot is an actual point-in-time state, never a
//!   torn one — the clone happens under the same lock as mutations.
//! - **Mutations** ([`SharedEngine::mutate`]) first take the per-domain
//!   *shard* locks of every involved domain — in ascending shard order,
//!   the global ordering rule that makes cross-domain operations
//!   (grant/share/revoke lock both sides) deadlock-free — and then the
//!   engine write lock for the actual state change. The shard locks are
//!   what serialize logically-conflicting hypercalls; the inner write
//!   lock is held only for the (short) engine operation itself, and the
//!   concurrent monitor's cycle model charges contention accordingly.
//!
//! Each mutation is stamped with a monotonically increasing **sequence
//! number** assigned inside the exclusive section, so a concurrent
//! stress driver can record `(seq, op)` pairs and later *replay* the log
//! single-threadedly: because every mutation ran under the write lock,
//! the sequence order is a linearization, and the replayed engine must
//! be `==` to the shared one (`CapEngine` derives `PartialEq`).
//!
//! Lock poisoning: a panicked writer (e.g. a paranoid-check assertion
//! firing in another thread's test) must not cascade into opaque
//! `PoisonError` panics here, so every acquisition recovers the guard
//! with `into_inner()`. The state seen afterwards is whatever the
//! panicking thread had committed — fine for the engine, whose public
//! operations keep it consistent at every return point.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

use crate::engine::CapEngine;
use crate::ids::DomainId;

/// Number of domain shards. Domains hash to shards by id modulo this;
/// more shards than plausible worker threads keeps false conflicts rare
/// while bounding the lock table.
pub const SHARDS: usize = 16;

fn read_lock<T>(l: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    match l.read() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

fn write_lock<T>(l: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    match l.write() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

fn mutex_lock<T>(l: &Mutex<T>) -> MutexGuard<'_, T> {
    match l.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

/// A [`CapEngine`] shared between worker threads. See the module docs
/// for the locking discipline.
pub struct SharedEngine {
    engine: RwLock<CapEngine>,
    shards: Vec<Mutex<()>>,
    /// Generation of the engine after the most recent committed
    /// mutation; read without the engine lock to validate snapshots.
    live_gen: AtomicU64,
    /// Cached snapshot: (generation it was taken at, the clone).
    snap: Mutex<(u64, Arc<CapEngine>)>,
    /// Next mutation sequence number.
    seq: AtomicU64,
}

impl SharedEngine {
    /// Wraps `engine` for shared use.
    pub fn new(engine: CapEngine) -> Self {
        let gen = engine.generation();
        let snap = Arc::new(engine.clone());
        SharedEngine {
            engine: RwLock::new(engine),
            shards: (0..SHARDS).map(|_| Mutex::new(())).collect(),
            live_gen: AtomicU64::new(gen),
            snap: Mutex::new((gen, snap)),
            seq: AtomicU64::new(0),
        }
    }

    /// The shard index a domain maps to.
    pub fn shard_of(domain: DomainId) -> usize {
        (domain.0 % SHARDS as u64) as usize
    }

    /// Runs `f` with a read lock on the live engine. Prefer
    /// [`snapshot`](Self::snapshot) for read-mostly query paths — this
    /// blocks writers for the duration of `f`.
    pub fn with_read<R>(&self, f: impl FnOnce(&CapEngine) -> R) -> R {
        f(&read_lock(&self.engine))
    }

    /// Returns a point-in-time snapshot of the engine, lock-free for the
    /// common case.
    ///
    /// The cached clone is reused while its generation still matches the
    /// live generation (seqlock-style validation); a stale cache is
    /// refreshed by cloning under the engine read lock. Queries on the
    /// returned `Arc` never contend with anything.
    pub fn snapshot(&self) -> Arc<CapEngine> {
        let live = self.live_gen.load(Ordering::Acquire);
        {
            let cached = mutex_lock(&self.snap);
            if cached.0 == live {
                return Arc::clone(&cached.1);
            }
        }
        // Stale: re-clone. Take the engine read lock first so the clone
        // is a consistent state, then publish it for other readers.
        let (gen, fresh) = {
            let eng = read_lock(&self.engine);
            (eng.generation(), Arc::new(eng.clone()))
        };
        let mut cached = mutex_lock(&self.snap);
        // Another reader may have refreshed to something even newer
        // while we cloned; keep the newest.
        if gen >= cached.0 {
            *cached = (gen, Arc::clone(&fresh));
        }
        fresh
    }

    /// Runs the mutation `f` under the shard locks of `domains` (taken
    /// in ascending shard order — the global deadlock-freedom rule) and
    /// the engine write lock. Returns the mutation's sequence number —
    /// assigned *inside* the exclusive section, so ascending sequence
    /// numbers are a linearization of all mutations — and `f`'s result.
    pub fn mutate<R>(
        &self,
        domains: &[DomainId],
        f: impl FnOnce(&mut CapEngine) -> R,
    ) -> (u64, R) {
        // Sort + dedup the shard indexes so each lock is taken once, in
        // the global order, regardless of the caller's domain order.
        let mut idx: Vec<usize> = domains.iter().map(|&d| Self::shard_of(d)).collect();
        idx.sort_unstable();
        idx.dedup();
        let _shard_guards: Vec<MutexGuard<'_, ()>> = idx
            .into_iter()
            .filter_map(|i| self.shards.get(i))
            .map(mutex_lock)
            .collect();
        let mut eng = write_lock(&self.engine);
        // verify: relaxed-ok mutation counter ordered by the engine write lock; live_gen carries the Release publication
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let out = f(&mut eng);
        self.live_gen.store(eng.generation(), Ordering::Release);
        (seq, out)
    }

    /// Number of mutations committed so far.
    pub fn mutations(&self) -> u64 {
        // verify: relaxed-ok statistics read; snapshot validity is proven through live_gen, not this counter
        self.seq.load(Ordering::Relaxed)
    }

    /// Unwraps the shared engine back into a plain [`CapEngine`] (e.g.
    /// for a final single-threaded `audit()` pass).
    pub fn into_inner(self) -> CapEngine {
        match self.engine.into_inner() {
            Ok(e) => e,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;

    fn seeded() -> (SharedEngine, DomainId, crate::ids::CapId) {
        let mut e = CapEngine::new();
        let root = e.create_root_domain();
        let ram = e
            .endow(root, Resource::mem(0x0, 0x10_0000), Rights::RWX)
            .unwrap();
        (SharedEngine::new(e), root, ram)
    }

    #[test]
    fn snapshot_reused_until_mutation() {
        let (shared, root, _ram) = seeded();
        let a = shared.snapshot();
        let b = shared.snapshot();
        assert!(Arc::ptr_eq(&a, &b), "unchanged engine reuses the cache");
        let (seq, child) = shared.mutate(&[root], |e| e.create_domain(root));
        assert_eq!(seq, 0);
        child.unwrap();
        let c = shared.snapshot();
        assert!(!Arc::ptr_eq(&a, &c), "mutation invalidates the cache");
        assert_eq!(c.domains().count(), 2);
        // The old snapshot still reads its point-in-time state.
        assert_eq!(a.domains().count(), 1);
    }

    #[test]
    fn mutation_seq_is_dense_and_ordered() {
        let (shared, root, ram) = seeded();
        let (s0, r0) = shared.mutate(&[root], |e| e.split(root, ram, 0x8000));
        let (lo, _hi) = r0.unwrap();
        let (s1, r1) = shared.mutate(&[root], |e| e.revoke(root, lo));
        r1.unwrap();
        assert_eq!((s0, s1), (0, 1));
        assert_eq!(shared.mutations(), 2);
    }

    #[test]
    fn cross_thread_mutations_all_commit() {
        let (shared, root, _ram) = seeded();
        let shared = Arc::new(shared);
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let s = Arc::clone(&shared);
                std::thread::spawn(move || {
                    for _ in 0..50 {
                        let (_, r) = s.mutate(&[root], |e| e.create_domain(root));
                        r.unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let shared = Arc::try_unwrap(shared).ok().expect("threads joined");
        assert_eq!(shared.mutations(), 200);
        let engine = shared.into_inner();
        assert_eq!(engine.domains().count(), 201);
        assert!(crate::audit::audit(&engine).is_empty());
    }

    #[test]
    fn shard_order_is_global() {
        // shard_of is a pure function of the id: two domains always map
        // to the same pair of shards in the same order, whichever side
        // initiates the cross-domain operation.
        let a = DomainId(3);
        let b = DomainId(7);
        assert_eq!(SharedEngine::shard_of(a), 3);
        assert_eq!(SharedEngine::shard_of(b), 7);
        assert_eq!(
            SharedEngine::shard_of(DomainId(3 + SHARDS as u64)),
            SharedEngine::shard_of(a)
        );
    }
}
