//! The monitor-stack metrics registry.
//!
//! Before this module, operational counters were ad-hoc `pub` fields
//! scattered across the interrupt controller and the monitor's `Stats`
//! struct — each with its own naming, reset, and sharing discipline. The
//! registry gives every counter a stable dotted name (the contract the
//! trace/observability tooling exports), one atomic representation, and
//! one cheaply-clonable handle threaded machine-wide exactly like the
//! fault injector: `Machine::new` creates the registry, and every unit
//! that counts (IRQ controller, monitor) holds a clone.
//!
//! Counters are monotone `u64`s with relaxed ordering — they are
//! operational telemetry, not synchronization.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Every registered counter. The discriminant doubles as the slot index.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// Hypercalls dispatched by the monitor.
    MonitorCalls = 0,
    /// Domain transitions served by the mediated (full vmexit) path.
    TransitionsMediated = 1,
    /// Domain transitions served by the VMFUNC-style fast path.
    TransitionsFast = 2,
    /// Failed effect applications healed by a synthetic resync.
    Compensations = 3,
    /// Domains quarantined after a failed compensation.
    Quarantines = 4,
    /// Interrupts raised with no route (dropped).
    IrqSpurious = 5,
    /// Total interrupts raised.
    IrqRaised = 6,
    /// Interrupts lost to injected faults.
    IrqInjectedDrops = 7,
    /// Interrupts duplicated by injected faults.
    IrqInjectedDups = 8,
}

/// Number of registered counters (slots in the registry).
pub const COUNTERS: usize = 9;

impl Counter {
    /// Every counter, in slot order.
    pub const ALL: [Counter; COUNTERS] = [
        Counter::MonitorCalls,
        Counter::TransitionsMediated,
        Counter::TransitionsFast,
        Counter::Compensations,
        Counter::Quarantines,
        Counter::IrqSpurious,
        Counter::IrqRaised,
        Counter::IrqInjectedDrops,
        Counter::IrqInjectedDups,
    ];

    /// The counter's stable dotted name. These are exported (by
    /// `repro trace --json` among others) and must not change meaning.
    pub fn name(self) -> &'static str {
        match self {
            Counter::MonitorCalls => "monitor.calls",
            Counter::TransitionsMediated => "monitor.transitions_mediated",
            Counter::TransitionsFast => "monitor.transitions_fast",
            Counter::Compensations => "monitor.compensations",
            Counter::Quarantines => "monitor.quarantines",
            Counter::IrqSpurious => "irq.spurious",
            Counter::IrqRaised => "irq.raised",
            Counter::IrqInjectedDrops => "irq.injected_drops",
            Counter::IrqInjectedDups => "irq.injected_dups",
        }
    }
}

/// Shared handle to a machine-wide counter registry.
///
/// Cloning shares the underlying slots (all units on one machine count
/// into the same registry). The default handle is a fresh registry of
/// zeros — units constructed standalone in tests still count correctly.
#[derive(Clone, Debug)]
pub struct Metrics {
    slots: Arc<[AtomicU64; COUNTERS]>,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics {
            slots: Arc::new(std::array::from_fn(|_| AtomicU64::new(0))),
        }
    }
}

impl Metrics {
    /// Creates a fresh registry of zeros.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments `counter` by one.
    pub fn bump(&self, counter: Counter) {
        self.add(counter, 1);
    }

    /// Increments `counter` by `n`.
    pub fn add(&self, counter: Counter, n: u64) {
        if let Some(slot) = self.slots.get(counter as usize) {
            // verify: relaxed-ok monotonic diagnostic counter; no data is published through it
            slot.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// The current value of `counter`.
    pub fn get(&self, counter: Counter) -> u64 {
        self.slots
            .get(counter as usize)
            // verify: relaxed-ok diagnostic read; staleness is acceptable and nothing is ordered after it
            .map(|slot| slot.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Every counter with its stable name, in slot order.
    pub fn snapshot(&self) -> Vec<(&'static str, u64)> {
        Counter::ALL
            .iter()
            .map(|&c| (c.name(), self.get(c)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_start_at_zero() {
        let m = Metrics::new();
        for c in Counter::ALL {
            assert_eq!(m.get(c), 0);
        }
    }

    #[test]
    fn bump_and_add_accumulate() {
        let m = Metrics::new();
        m.bump(Counter::MonitorCalls);
        m.add(Counter::MonitorCalls, 4);
        assert_eq!(m.get(Counter::MonitorCalls), 5);
        assert_eq!(m.get(Counter::Quarantines), 0, "slots are independent");
    }

    #[test]
    fn clones_share_slots() {
        let m = Metrics::new();
        let n = m.clone();
        n.bump(Counter::IrqSpurious);
        assert_eq!(m.get(Counter::IrqSpurious), 1);
    }

    #[test]
    fn names_are_stable_and_unique() {
        let mut names: Vec<&str> = Counter::ALL.iter().map(|c| c.name()).collect();
        assert!(names.contains(&"monitor.calls"));
        assert!(names.contains(&"irq.injected_dups"));
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), COUNTERS, "no duplicate names");
    }

    #[test]
    fn snapshot_is_slot_ordered() {
        let m = Metrics::new();
        m.add(Counter::IrqRaised, 3);
        let snap = m.snapshot();
        assert_eq!(snap.len(), COUNTERS);
        assert!(snap.contains(&("irq.raised", 3)));
    }
}
