//! The Tyche capability engine — the paper's primary contribution.
//!
//! *Creating Trust by Abolishing Hierarchies* (HotOS '23) proposes an
//! **isolation monitor**: a minimal security monitor that separates the
//! three powers of isolation so that any software, at any privilege level,
//! can define isolation policies (legislative), have them enforced by
//! hardware the monitor programs (executive), and prove the result to
//! remote parties (judiciary).
//!
//! This crate is the platform-independent half of that monitor (§4.1 of
//! the paper): a capability model over *physical names* — memory regions,
//! CPU cores, PCI devices — in which
//!
//! - every access right a domain holds is a [`capability::Capability`]
//!   node in a lineage tree,
//! - `share` / `grant` create child capabilities (grant suspends the
//!   parent's access, share keeps it),
//! - `revoke` cascades down the lineage and is guaranteed to terminate
//!   even when domains share in cycles,
//! - per-resource **reference counts** ([`refcount`]) expose exactly how
//!   many domains can reach each byte — the paper's Figure 4,
//! - domains can be **sealed**, freezing their resource configuration and
//!   producing a measurement for attestation ([`attest`]),
//! - every state change is also emitted as an [`effect::Effect`] so a
//!   platform backend (EPT on x86, PMP on RISC-V — see `tyche-monitor`)
//!   can mirror the model into hardware,
//! - a global invariant [`audit`] checks the properties a formal
//!   verification of the real Tyche would prove.
//!
//! The engine is written entirely in safe Rust with no platform
//! dependencies, mirroring the paper's claim that the capability model is
//! "written in safe Rust and meant to be formally verified".
//!
//! # Examples
//!
//! ```
//! use tyche_core::prelude::*;
//!
//! let mut engine = CapEngine::new();
//! let os = engine.create_root_domain();
//! let ram = engine.endow(os, Resource::mem(0x0, 0x100_0000), Rights::RWX).unwrap();
//!
//! // The OS carves out an enclave with an exclusive, zero-on-revoke page.
//! let (enclave, _mgmt) = engine.create_domain(os).unwrap();
//! let (_low, rest) = engine.split(os, ram, 0x4000).unwrap();
//! let (page_cap, _high) = engine.split(os, rest, 0x5000).unwrap();
//! let page = engine
//!     .grant(os, page_cap, enclave, None, Rights::RW, RevocationPolicy::ZERO)
//!     .unwrap();
//! engine.set_entry(os, enclave, 0x4000).unwrap();
//! engine.seal(os, enclave, SealPolicy::strict()).unwrap();
//!
//! // The page is exclusively reachable by the enclave: refcount 1.
//! assert_eq!(engine.refcount_mem(MemRegion::new(0x4000, 0x5000)), 1);
//! // Revocation cascades and schedules the zeroing clean-up.
//! engine.revoke(os, page).unwrap();
//! let effects = engine.drain_effects();
//! assert!(effects.iter().any(|e| matches!(e, Effect::ZeroMem { .. })));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Tests assert on engine state freely; the panic-path lints govern
// production code only (accounting: crates/verify/allowlist.toml).
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod attest;
pub mod audit;
pub mod capability;
pub mod channel;
pub mod domain;
pub mod effect;
pub mod engine;
pub mod error;
pub mod ids;
pub mod interval;
pub mod metrics;
pub mod refcount;
pub mod resource;
pub mod shared;
pub mod store;
pub mod trace;

/// Convenient glob-import surface for downstream crates.
pub mod prelude {
    pub use crate::capability::{CapKind, Capability};
    pub use crate::domain::{DomainState, SealPolicy};
    pub use crate::effect::Effect;
    pub use crate::engine::CapEngine;
    pub use crate::error::CapError;
    pub use crate::ids::{CapId, DomainId};
    pub use crate::resource::{MemRegion, Resource, Rights};
    pub use crate::RevocationPolicy;
}

pub use capability::{CapKind, Capability};
pub use channel::{ChannelTable, Violation, ViolationReason};
pub use domain::{DomainState, SealPolicy};
pub use effect::Effect;
pub use engine::CapEngine;
pub use error::CapError;
pub use ids::{CapId, DomainId};
pub use metrics::{Counter, Metrics};
pub use resource::{MemRegion, Resource, Rights};
pub use shared::SharedEngine;
pub use trace::{EventKind, TraceEvent, TraceLog, TraceSink};

/// The clean-up contract attached to a capability (§3.2 of the paper):
/// operations "guaranteed to execute upon revocation".
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Hash)]
pub struct RevocationPolicy {
    /// Zero the memory region when the capability is revoked.
    pub zero_memory: bool,
    /// Flush the data cache of the affected domain on revocation (and on
    /// transitions out of the domain while the capability is live).
    pub flush_cache: bool,
    /// Flush the affected domain's TLB entries on revocation.
    pub flush_tlb: bool,
}

impl RevocationPolicy {
    /// No clean-up.
    pub const NONE: RevocationPolicy = RevocationPolicy {
        zero_memory: false,
        flush_cache: false,
        flush_tlb: false,
    };
    /// Zero memory on revocation.
    pub const ZERO: RevocationPolicy = RevocationPolicy {
        zero_memory: true,
        flush_cache: false,
        flush_tlb: true,
    };
    /// The "obfuscating" policy from §3.4: zero memory and scrub
    /// micro-architectural state, giving confidentiality + integrity for
    /// exclusively-held resources.
    pub const OBFUSCATE: RevocationPolicy = RevocationPolicy {
        zero_memory: true,
        flush_cache: true,
        flush_tlb: true,
    };
}
