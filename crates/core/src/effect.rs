//! Effects: the engine's instructions to the platform backend.
//!
//! The capability engine is pure bookkeeping — it never touches hardware.
//! Every state change additionally appends an [`Effect`] describing what a
//! backend must do to make hardware agree with the model (program an EPT,
//! reprogram PMP, zero memory, flush a cache). `tyche-monitor` drains the
//! effect log after each API call and applies it. This mirrors the real
//! Tyche's split between the verified capability model and the
//! platform-specific backend (§4 of the paper), and it is what makes the
//! engine testable in isolation.

use crate::ids::DomainId;
use crate::resource::{MemRegion, Rights};

/// One backend instruction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Effect {
    /// Make `region` accessible to `domain` with `rights`.
    MapMem {
        /// The domain gaining access.
        domain: DomainId,
        /// The physical region.
        region: MemRegion,
        /// Access rights to program.
        rights: Rights,
    },
    /// Remove `domain`'s access to `region`.
    UnmapMem {
        /// The domain losing access.
        domain: DomainId,
        /// The physical region.
        region: MemRegion,
    },
    /// Zero the physical bytes of `region` (revocation clean-up).
    ZeroMem {
        /// The region to scrub.
        region: MemRegion,
    },
    /// Flush cache lines attributed to `domain` (obfuscating revocation).
    FlushCache {
        /// The domain whose lines must go.
        domain: DomainId,
    },
    /// Flush `domain`'s TLB entries (required after permission downgrades
    /// and unmaps, like INVEPT).
    FlushTlb {
        /// The domain whose translations must go.
        domain: DomainId,
    },
    /// Allow `domain` to run on CPU `core`.
    AddCore {
        /// The domain.
        domain: DomainId,
        /// The core number.
        core: usize,
    },
    /// Forbid `domain` from running on CPU `core`.
    RemoveCore {
        /// The domain.
        domain: DomainId,
        /// The core number.
        core: usize,
    },
    /// Point `device`'s I/O-MMU context at `domain`'s address space.
    AttachDevice {
        /// The device id.
        device: u16,
        /// The owning domain.
        domain: DomainId,
    },
    /// Clear `device`'s I/O-MMU context (blocks all its DMA).
    DetachDevice {
        /// The device id.
        device: u16,
    },
    /// A new domain exists; the backend should build its (empty) address
    /// space.
    DomainCreated {
        /// The new domain.
        domain: DomainId,
    },
    /// The domain was killed; the backend should tear down its state.
    DomainKilled {
        /// The dead domain.
        domain: DomainId,
    },
    /// Route interrupt `vector` to `domain` (remapping-table update).
    RouteIrq {
        /// The vector.
        vector: u32,
        /// The receiving domain.
        domain: DomainId,
    },
    /// Remove `vector`'s route (deliveries drop until re-routed).
    UnrouteIrq {
        /// The vector.
        vector: u32,
    },
}

impl Effect {
    /// The domain this effect concerns, if it is domain-scoped.
    pub fn domain(&self) -> Option<DomainId> {
        match self {
            Effect::MapMem { domain, .. }
            | Effect::UnmapMem { domain, .. }
            | Effect::FlushCache { domain }
            | Effect::FlushTlb { domain }
            | Effect::AddCore { domain, .. }
            | Effect::RemoveCore { domain, .. }
            | Effect::AttachDevice { domain, .. }
            | Effect::DomainCreated { domain }
            | Effect::DomainKilled { domain }
            | Effect::RouteIrq { domain, .. } => Some(*domain),
            Effect::ZeroMem { .. } | Effect::DetachDevice { .. } | Effect::UnrouteIrq { .. } => {
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domain_extraction() {
        let d = DomainId(3);
        assert_eq!(Effect::FlushCache { domain: d }.domain(), Some(d));
        assert_eq!(
            Effect::ZeroMem {
                region: MemRegion::new(0, 1)
            }
            .domain(),
            None
        );
        assert_eq!(Effect::DetachDevice { device: 1 }.domain(), None);
    }
}
