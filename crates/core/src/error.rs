//! Engine error type.

use crate::ids::{CapId, DomainId};

/// Why a capability operation was refused.
///
/// §3.4: "The monitor should not accept invalid policies". Every refusal
/// is explicit and typed so callers (and tests) can assert on the precise
/// reason.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CapError {
    /// The named domain does not exist (or was killed).
    NoSuchDomain(DomainId),
    /// The named capability does not exist (or was revoked).
    NoSuchCap(CapId),
    /// The capability exists but is not owned by the acting domain.
    NotOwner {
        /// The capability in question.
        cap: CapId,
        /// The domain that attempted the operation.
        actor: DomainId,
    },
    /// The capability is currently inactive (its resource was granted
    /// onward, or an ancestor was revoked mid-operation).
    Inactive(CapId),
    /// The requested subrange is not contained in the capability's region.
    OutOfRange,
    /// The requested rights exceed the parent capability's rights.
    RightsEscalation,
    /// The operation would extend a sealed domain's resources.
    TargetSealed(DomainId),
    /// A strictly-sealed domain attempted to share/grant its resources.
    ActorSealed(DomainId),
    /// The operation requires a sealed target (e.g. entering a domain).
    NotSealed(DomainId),
    /// The domain has no entry point configured.
    NoEntryPoint(DomainId),
    /// The acting domain may not manage the target domain.
    NotManager {
        /// The domain being managed.
        target: DomainId,
        /// The domain that attempted the operation.
        actor: DomainId,
    },
    /// Attempted transition onto a CPU core the target does not own.
    CoreNotOwned {
        /// The target domain.
        domain: DomainId,
        /// The core it tried to run on.
        core: usize,
    },
    /// Subranges are only meaningful for memory capabilities.
    SubrangeOnNonMemory,
    /// This operation cannot be applied to this resource type.
    WrongResourceType,
    /// A sealed domain cannot be reconfigured (entry point, cores...).
    SealedImmutable(DomainId),
    /// The root domain cannot be the target of this operation.
    RootDomain,
    /// Cannot revoke: the actor is not on the capability's granting side.
    NotGranter {
        /// The capability being revoked.
        cap: CapId,
        /// The domain that attempted the revocation.
        actor: DomainId,
    },
    /// The domain is quarantined: its backing hardware faulted, so it is
    /// killable and enumerable but not enterable.
    Quarantined(DomainId),
    /// A derivation was requested with a kind that cannot be derived
    /// (only `Shared` and `Granted` children exist; `Root`/`Carved` would
    /// corrupt the lineage bookkeeping).
    InvalidDerivation,
}

impl core::fmt::Display for CapError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CapError::NoSuchDomain(d) => write!(f, "no such domain {d}"),
            CapError::NoSuchCap(c) => write!(f, "no such capability {c}"),
            CapError::NotOwner { cap, actor } => write!(f, "{actor} does not own {cap}"),
            CapError::Inactive(c) => write!(f, "capability {c} is inactive"),
            CapError::OutOfRange => f.write_str("subrange outside capability region"),
            CapError::RightsEscalation => f.write_str("derived rights exceed parent rights"),
            CapError::TargetSealed(d) => write!(f, "domain {d} is sealed; cannot extend"),
            CapError::ActorSealed(d) => write!(f, "domain {d} is strictly sealed; cannot share"),
            CapError::NotSealed(d) => write!(f, "domain {d} is not sealed"),
            CapError::NoEntryPoint(d) => write!(f, "domain {d} has no entry point"),
            CapError::NotManager { target, actor } => {
                write!(f, "{actor} does not manage {target}")
            }
            CapError::CoreNotOwned { domain, core } => {
                write!(f, "{domain} does not own CPU core {core}")
            }
            CapError::SubrangeOnNonMemory => {
                f.write_str("subranges apply only to memory capabilities")
            }
            CapError::WrongResourceType => f.write_str("wrong resource type for operation"),
            CapError::SealedImmutable(d) => write!(f, "domain {d} is sealed and immutable"),
            CapError::RootDomain => f.write_str("operation not applicable to the root domain"),
            CapError::NotGranter { cap, actor } => {
                write!(f, "{actor} is not the granter of {cap}")
            }
            CapError::Quarantined(d) => {
                write!(f, "domain {d} is quarantined after a hardware fault")
            }
            CapError::InvalidDerivation => {
                f.write_str("capability derivation must be a share or a grant")
            }
        }
    }
}

impl std::error::Error for CapError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CapError::NotOwner {
            cap: CapId(4),
            actor: DomainId(2),
        };
        assert_eq!(e.to_string(), "dom2 does not own cap4");
        assert!(CapError::OutOfRange.to_string().contains("subrange"));
    }
}
