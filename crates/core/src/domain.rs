//! Trust domains: state, sealing, and seal policies.

use crate::ids::DomainId;
use tyche_crypto::Digest;

/// How strictly a domain is sealed.
///
/// §3.1 of the paper: "Domains can be sealed, so that their resources
/// cannot be extended or further shared with others." §4.2 simultaneously
/// requires sealed enclaves to "spawn nested enclaves and share exclusively
/// owned pages with them". The reproduction reconciles the two by making
/// the outward half of sealing part of the *attested* policy: every seal
/// freezes incoming resources; a *strict* seal additionally freezes
/// outgoing sharing, so a verifier who sees `strict` in the attestation
/// knows the domain's reference counts can never grow. A `nestable` seal
/// permits the domain to derive children and share onward — visible to
/// verifiers, who then judge the domain by its measured code instead.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct SealPolicy {
    /// The domain may share/grant its resources onward after sealing
    /// (required for nested enclaves, §4.2).
    pub allow_outward_sharing: bool,
    /// The domain may create child domains after sealing.
    pub allow_child_domains: bool,
}

impl SealPolicy {
    /// Fully frozen: no new resources in, nothing shared out, no children.
    /// Reference counts of this domain's exclusive resources can never
    /// increase — the configuration Figure 2's crypto engine needs.
    pub fn strict() -> SealPolicy {
        SealPolicy {
            allow_outward_sharing: false,
            allow_child_domains: false,
        }
    }

    /// Frozen incoming resources, but the domain may spawn nested domains
    /// and share its own resources with them (§4.2 nested enclaves).
    pub fn nestable() -> SealPolicy {
        SealPolicy {
            allow_outward_sharing: true,
            allow_child_domains: true,
        }
    }

    /// Stable one-byte encoding used in measurements.
    pub fn encode(&self) -> u8 {
        (self.allow_outward_sharing as u8) | ((self.allow_child_domains as u8) << 1)
    }
}

/// Lifecycle state of a domain.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DomainState {
    /// Under construction: the manager is still adding resources.
    Configuring,
    /// Sealed: resource configuration frozen per the [`SealPolicy`],
    /// measurement taken, domain runnable.
    Sealed,
    /// Killed: all capabilities revoked; the id is retired.
    Dead,
}

/// Per-domain bookkeeping held by the engine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Domain {
    /// This domain's id.
    pub id: DomainId,
    /// The domain that created (and manages) this one; `None` for the
    /// root domain installed at boot.
    pub manager: Option<DomainId>,
    /// Lifecycle state.
    pub state: DomainState,
    /// Seal policy; meaningful once `state == Sealed`.
    pub seal_policy: SealPolicy,
    /// Fixed entry point (§3.1: "domains have a fixed entry point").
    pub entry: Option<u64>,
    /// Measurement captured at seal time (config + recorded contents).
    pub measurement: Option<Digest>,
    /// Content measurements recorded before sealing: `(region-start,
    /// region-end, digest)`, supplied by the monitor when it loads the
    /// domain's initial memory.
    pub content_measurements: Vec<(u64, u64, Digest)>,
    /// Poisoned-domain quarantine: the hardware backing this domain
    /// faulted mid-reprogramming, so its translation state can no longer
    /// be trusted to match the capability view. A quarantined domain
    /// stays alive — killable and enumerable, so its manager can tear it
    /// down and auditors can inspect it — but is never enterable again.
    pub quarantined: bool,
}

impl Domain {
    /// True when the domain is sealed.
    pub fn is_sealed(&self) -> bool {
        self.state == DomainState::Sealed
    }

    /// True when the domain is alive (configuring or sealed).
    pub fn is_alive(&self) -> bool {
        self.state != DomainState::Dead
    }

    /// True when the domain is quarantined (alive but not enterable;
    /// see [`Domain::quarantined`]).
    pub fn is_quarantined(&self) -> bool {
        self.quarantined
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seal_policy_encoding_distinct() {
        let mut seen = std::collections::HashSet::new();
        for (o, c) in [(false, false), (false, true), (true, false), (true, true)] {
            let p = SealPolicy {
                allow_outward_sharing: o,
                allow_child_domains: c,
            };
            assert!(seen.insert(p.encode()));
        }
    }

    #[test]
    fn presets() {
        assert!(!SealPolicy::strict().allow_outward_sharing);
        assert!(!SealPolicy::strict().allow_child_domains);
        assert!(SealPolicy::nestable().allow_outward_sharing);
        assert!(SealPolicy::nestable().allow_child_domains);
    }

    #[test]
    fn lifecycle_predicates() {
        let mut d = Domain {
            id: DomainId(1),
            manager: Some(DomainId(0)),
            state: DomainState::Configuring,
            seal_policy: SealPolicy::strict(),
            entry: None,
            measurement: None,
            content_measurements: vec![],
            quarantined: false,
        };
        assert!(d.is_alive());
        assert!(!d.is_sealed());
        assert!(!d.is_quarantined());
        d.state = DomainState::Sealed;
        assert!(d.is_sealed());
        d.quarantined = true;
        assert!(d.is_quarantined());
        assert!(d.is_alive(), "quarantined domains stay alive (killable)");
        d.state = DomainState::Dead;
        assert!(!d.is_alive());
    }
}
