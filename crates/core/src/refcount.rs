//! Reference counts over physical resources — the paper's Figure 4.
//!
//! "The monitor maintains ... a system-wide reference count ... to reflect
//! the number of domains with access to the resource. It ensures
//! attestable controlled sharing of resources." (§3.1)
//!
//! A reference count here is the number of *distinct domains* that hold an
//! active capability reaching a resource. For memory the question is asked
//! per byte range; because capabilities can cover arbitrary overlapping
//! ranges, the count over a queried range is computed by a boundary sweep:
//! the result reports both the maximum and minimum per-byte count so
//! callers can distinguish "uniformly exclusive" from "partially shared".

use crate::ids::DomainId;
use crate::resource::MemRegion;
use std::collections::BTreeSet;

/// Result of a reference-count query over a memory range.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RefCount {
    /// The largest per-byte domain count anywhere in the range.
    pub max: usize,
    /// The smallest per-byte domain count anywhere in the range.
    pub min: usize,
}

impl RefCount {
    /// True when every byte of the range is reachable by exactly one
    /// domain — the paper's condition for confidentiality+integrity of an
    /// exclusively owned resource.
    pub fn is_exclusive(&self) -> bool {
        self.max == 1 && self.min == 1
    }
}

/// Computes the per-byte distinct-domain counts over `query`, given the
/// active `(domain, region)` pairs in the system.
///
/// Duplicate coverage by the same domain (e.g. a domain holding two
/// overlapping capabilities) counts once — the refcount is about *domains*,
/// not capabilities.
pub fn mem_refcount(active: &[(DomainId, MemRegion)], query: MemRegion) -> RefCount {
    // Collect the sweep boundaries inside the query range.
    let mut bounds: BTreeSet<u64> = BTreeSet::new();
    bounds.insert(query.start);
    bounds.insert(query.end);
    for (_, r) in active {
        if r.overlaps(&query) {
            bounds.insert(r.start.max(query.start));
            bounds.insert(r.end.min(query.end));
        }
    }
    let bounds: Vec<u64> = bounds.into_iter().collect();
    let mut max = 0usize;
    let mut min = usize::MAX;
    for w in bounds.windows(2) {
        let (s, e) = (w[0], w[1]);
        if s >= e {
            continue;
        }
        let seg = MemRegion::new(s, e);
        let mut domains: Vec<DomainId> = active
            .iter()
            .filter(|(_, r)| r.contains(&seg))
            .map(|(d, _)| *d)
            .collect();
        domains.sort();
        domains.dedup();
        let n = domains.len();
        max = max.max(n);
        min = min.min(n);
    }
    if min == usize::MAX {
        min = 0;
    }
    RefCount { max, min }
}

/// Counts distinct domains holding an active capability on a non-memory
/// resource (CPU core, device, transition), given the owning domains.
pub fn unit_refcount(mut owners: Vec<DomainId>) -> usize {
    owners.sort();
    owners.dedup();
    owners.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(n: u64) -> DomainId {
        DomainId(n)
    }

    #[test]
    fn empty_system_counts_zero() {
        let rc = mem_refcount(&[], MemRegion::new(0, 0x1000));
        assert_eq!(rc, RefCount { max: 0, min: 0 });
        assert!(!rc.is_exclusive());
    }

    #[test]
    fn exclusive_region() {
        let active = [(d(1), MemRegion::new(0, 0x1000))];
        let rc = mem_refcount(&active, MemRegion::new(0, 0x1000));
        assert_eq!(rc, RefCount { max: 1, min: 1 });
        assert!(rc.is_exclusive());
    }

    #[test]
    fn figure4_shared_region_counts_two() {
        // Fig. 4: the shared region between the crypto engine and the SaaS
        // app has reference count 2; the confidential regions count 1.
        let crypto = d(1);
        let saas = d(2);
        let active = [
            (crypto, MemRegion::new(0x0000, 0x2000)), // crypto confidential
            (crypto, MemRegion::new(0x2000, 0x3000)), // shared window
            (saas, MemRegion::new(0x2000, 0x3000)),   // shared window
            (saas, MemRegion::new(0x3000, 0x6000)),   // saas confidential
        ];
        assert!(mem_refcount(&active, MemRegion::new(0x0000, 0x2000)).is_exclusive());
        assert_eq!(
            mem_refcount(&active, MemRegion::new(0x2000, 0x3000)),
            RefCount { max: 2, min: 2 }
        );
        assert!(mem_refcount(&active, MemRegion::new(0x3000, 0x6000)).is_exclusive());
    }

    #[test]
    fn same_domain_twice_counts_once() {
        let active = [
            (d(1), MemRegion::new(0, 0x1000)),
            (d(1), MemRegion::new(0x500, 0x800)),
        ];
        assert!(mem_refcount(&active, MemRegion::new(0, 0x1000)).is_exclusive());
    }

    #[test]
    fn partial_coverage_has_min_zero() {
        let active = [(d(1), MemRegion::new(0, 0x800))];
        let rc = mem_refcount(&active, MemRegion::new(0, 0x1000));
        assert_eq!(rc, RefCount { max: 1, min: 0 });
        assert!(!rc.is_exclusive());
    }

    #[test]
    fn overlap_stairs() {
        // Three domains with staggered overlapping windows.
        let active = [
            (d(1), MemRegion::new(0x0, 0x3000)),
            (d(2), MemRegion::new(0x1000, 0x4000)),
            (d(3), MemRegion::new(0x2000, 0x5000)),
        ];
        assert_eq!(
            mem_refcount(&active, MemRegion::new(0x0, 0x1000)),
            RefCount { max: 1, min: 1 }
        );
        assert_eq!(
            mem_refcount(&active, MemRegion::new(0x1000, 0x2000)),
            RefCount { max: 2, min: 2 }
        );
        assert_eq!(
            mem_refcount(&active, MemRegion::new(0x2000, 0x3000)),
            RefCount { max: 3, min: 3 }
        );
        assert_eq!(
            mem_refcount(&active, MemRegion::new(0x0, 0x5000)),
            RefCount { max: 3, min: 1 }
        );
    }

    #[test]
    fn query_boundaries_clamped() {
        let active = [(d(1), MemRegion::new(0, u64::MAX))];
        let rc = mem_refcount(&active, MemRegion::new(0x1000, 0x2000));
        assert!(rc.is_exclusive());
    }

    #[test]
    fn unit_refcount_dedups() {
        assert_eq!(unit_refcount(vec![]), 0);
        assert_eq!(unit_refcount(vec![d(1), d(1), d(2)]), 2);
    }
}
