//! Structured execution tracing for the monitor stack.
//!
//! The paper's judiciary power is *verifiable oversight*: any party must be
//! able to audit what the monitor did, not just trust that it did it. This
//! module is the recording half of that story — a typed event layer the
//! engine, the monitor, the simulated hardware, and the SMP front-end all
//! emit into, producing a single totally-ordered log that the offline
//! runtime-verification checkers in `tyche-verify::rv` replay against
//! temporal invariants the per-state `audit()` cannot see.
//!
//! Design constraints, in order:
//!
//! 1. **Zero perturbation.** Tracing consumes no randomness and charges no
//!    simulated cycles, so a traced run and an untraced run produce
//!    bit-identical engine state and fuzz digests. When the sink is
//!    disabled (the default) an emission is a single relaxed atomic load;
//!    with the `trace` cargo feature off the sink compiles to nothing.
//! 2. **Zero allocation on the hot path.** Events buffer into fixed-capacity
//!    per-core lanes (ring-buffer discipline: pre-reserved `Vec`s that are
//!    drained, not reallocated) and spill to an append-only log only when a
//!    lane fills.
//! 3. **Attestable.** [`TraceLog::chain`] hash-chains the encoded events
//!    with the same SHA-256 fold the fuzzer uses for its replay digest, so
//!    a drained trace can be attested alongside a TPM quote.
//!
//! Event ordering comes from a global sequence counter stamped at emission
//! time; [`TraceSink::drain`] merges the lanes and sorts by it, giving a
//! total order consistent with each thread's program order.

use tyche_crypto::{hash_parts, Digest};

/// Sentinel `core` id for events emitted by the engine itself, which has
/// no notion of which core is driving it.
pub const CORE_NONE: u32 = u32::MAX;

/// Domain separator folded into the head of every trace chain.
const CHAIN_DOMAIN: &[u8] = b"tyche-trace/v1";

/// Capability-table mutation kinds carried by [`EventKind::CapOp`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum CapOpKind {
    /// Root-domain endowment of a fresh resource capability.
    Endow = 1,
    /// A new (unsealed) domain was created.
    CreateDomain = 2,
    /// A domain's entry point was set.
    SetEntry = 3,
    /// Content was recorded into a domain's measurement.
    RecordContent = 4,
    /// A domain was sealed.
    Seal = 5,
    /// A domain was killed.
    Kill = 6,
    /// A capability was shared (aliasing derivation).
    Share = 7,
    /// A capability was granted (move derivation).
    Grant = 8,
    /// A capability was split at an offset.
    Split = 9,
    /// A capability subtree was revoked.
    Revoke = 10,
    /// A transition capability was exercised.
    Transition = 11,
}

impl CapOpKind {
    /// Stable lower-case name, used by the trace replay tooling.
    pub fn name(self) -> &'static str {
        match self {
            CapOpKind::Endow => "endow",
            CapOpKind::CreateDomain => "create-domain",
            CapOpKind::SetEntry => "set-entry",
            CapOpKind::RecordContent => "record-content",
            CapOpKind::Seal => "seal",
            CapOpKind::Kill => "kill",
            CapOpKind::Share => "share",
            CapOpKind::Grant => "grant",
            CapOpKind::Split => "split",
            CapOpKind::Revoke => "revoke",
            CapOpKind::Transition => "transition",
        }
    }
}

/// One typed trace event. Ids are carried as raw `u64`s (the `.0` of
/// `DomainId`/`CapId`) so the encoding is layout-free and the offline
/// checkers need no engine state to interpret a log.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A successful capability-table mutation: `actor` performed `op` on
    /// `subject` (a cap or domain id, op-dependent); `aux` is the second
    /// operand (target domain, new cap, split offset, ...).
    CapOp {
        /// Which mutation.
        op: CapOpKind,
        /// The acting domain.
        actor: u64,
        /// Primary operand (cap or domain id, op-dependent).
        subject: u64,
        /// Secondary operand (op-dependent; 0 when unused).
        aux: u64,
    },
    /// The engine's mutation generation advanced (or was corrupted) to
    /// `gen`. Every capability mutation bumps it exactly once.
    GenBump {
        /// The new generation value.
        gen: u64,
    },
    /// `domain` entered the sticky quarantine state.
    Quarantine {
        /// The quarantined domain.
        domain: u64,
    },
    /// A hypercall entered the monitor on this core.
    HyperEnter {
        /// The ABI leaf number.
        leaf: u64,
        /// The calling domain.
        actor: u64,
    },
    /// The matching hypercall left the monitor.
    HyperExit {
        /// The ABI leaf number.
        leaf: u64,
        /// The `Status` discriminant returned to the caller.
        code: u64,
        /// Simulated cycles charged between enter and exit.
        cycles: u64,
    },
    /// A domain transition `from` → `to` succeeded.
    Enter {
        /// The domain that initiated the transition.
        from: u64,
        /// The domain now running.
        to: u64,
        /// True when the VMFUNC-style fast path served it.
        fast: bool,
    },
    /// A domain returned `from` → `to` (popping the transition frame).
    Return {
        /// The domain that was running.
        from: u64,
        /// The caller now running again.
        to: u64,
        /// True when the fast path served it.
        fast: bool,
    },
    /// The fast-path transition cache was (re)filled for (`actor`,
    /// `cap`) while the engine was at generation `gen`.
    CacheFill {
        /// The acting domain.
        actor: u64,
        /// The transition capability.
        cap: u64,
        /// Engine generation the entry was validated against.
        gen: u64,
    },
    /// The fast-path transition cache served (`actor`, `cap`) believing
    /// the engine is at generation `gen`.
    CacheHit {
        /// The acting domain.
        actor: u64,
        /// The transition capability.
        cap: u64,
        /// Generation the monitor believed current.
        gen: u64,
    },
    /// Flush effects were applied for `domain`.
    Flush {
        /// The domain whose translations/lines were flushed.
        domain: u64,
        /// A TLB flush was performed.
        tlb: bool,
        /// A cache flush was performed.
        cache: bool,
    },
    /// A shootdown IPI was charged from this event's core to core `to`.
    Ipi {
        /// The target core.
        to: u64,
    },
    /// An armed hardware fault plan fired (site code from
    /// `tyche-hw`'s `FaultSite`, in declaration order).
    FaultFired {
        /// Numeric fault-site code.
        site: u8,
    },
    /// A mutating hypercall waited for shard `shard`'s lock (discrete-event
    /// clock handoff).
    ShardWait {
        /// The shard index waited on.
        shard: u64,
    },
    /// `domain` was added to this core's pending invalidation set (per-CPU
    /// TLB-gather discipline).
    ShootQueue {
        /// The domain whose translations shrank.
        domain: u64,
    },
    /// This core's pending invalidation set was delivered: `drained`
    /// domains collapsed into one shootdown charging `ipis` IPIs.
    ShootBatch {
        /// Number of distinct domains drained from the set.
        drained: u64,
        /// Remote cores actually charged an IPI.
        ipis: u64,
    },
    /// A seqlock-style snapshot was taken at engine generation `gen`.
    SnapRead {
        /// Generation the snapshot observed.
        gen: u64,
    },
    /// A driver-defined phase boundary (the fuzzer emits one per campaign
    /// phase; the RV checkers require queues drained here).
    PhaseEnd {
        /// Driver-assigned phase number.
        phase: u64,
    },
    /// A MAC-keyed channel to machine `peer` was established (or re-keyed)
    /// at key epoch `epoch` after mutual attestation succeeded.
    ChanEstablish {
        /// The remote machine id.
        peer: u64,
        /// The key epoch now current for this peer.
        epoch: u64,
    },
    /// A frame was MACed and handed to the NIC for `peer` carrying channel
    /// sequence number `seq` under key epoch `epoch`.
    ChanSend {
        /// The remote machine id.
        peer: u64,
        /// The monotonically increasing per-channel sequence number.
        seq: u64,
        /// The key epoch the frame was MACed under.
        epoch: u64,
    },
    /// A frame from `peer` passed MAC + sequence verification and was
    /// accepted at channel sequence `seq`, key epoch `epoch`.
    ChanRecv {
        /// The remote machine id.
        peer: u64,
        /// The verified per-channel sequence number.
        seq: u64,
        /// The key epoch the frame verified under.
        epoch: u64,
    },
    /// A frame from `peer` failed verification (reason code from
    /// `tyche-fleet`'s `ViolationReason`); `seq` is the per-channel frame
    /// index at which the violation was detected.
    ChanViolation {
        /// The remote machine id.
        peer: u64,
        /// Numeric violation-reason code.
        reason: u8,
        /// The frame index (delivery count) at detection.
        seq: u64,
    },
    /// The channel to `peer` was torn down; its epoch-`epoch` key is dead
    /// and no further frames will be accepted until re-attestation.
    ChanTeardown {
        /// The remote machine id.
        peer: u64,
        /// The key epoch that was retired.
        epoch: u64,
    },
    /// The NIC accepted one outbound frame of `bytes` payload bytes for
    /// machine `to` (cycles charged to this event's core).
    NicSend {
        /// The destination machine id.
        to: u64,
        /// Payload length in bytes.
        bytes: u64,
    },
    /// The NIC delivered one inbound frame of `bytes` payload bytes from
    /// machine `from` to this event's core.
    NicRecv {
        /// The source machine id.
        from: u64,
        /// Payload length in bytes.
        bytes: u64,
    },
}

impl EventKind {
    /// Stable lower-case name, used by `repro trace` and test diagnostics.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::CapOp { .. } => "cap-op",
            EventKind::GenBump { .. } => "gen-bump",
            EventKind::Quarantine { .. } => "quarantine",
            EventKind::HyperEnter { .. } => "hyper-enter",
            EventKind::HyperExit { .. } => "hyper-exit",
            EventKind::Enter { .. } => "enter",
            EventKind::Return { .. } => "return",
            EventKind::CacheFill { .. } => "cache-fill",
            EventKind::CacheHit { .. } => "cache-hit",
            EventKind::Flush { .. } => "flush",
            EventKind::Ipi { .. } => "ipi",
            EventKind::FaultFired { .. } => "fault-fired",
            EventKind::ShardWait { .. } => "shard-wait",
            EventKind::ShootQueue { .. } => "shoot-queue",
            EventKind::ShootBatch { .. } => "shoot-batch",
            EventKind::SnapRead { .. } => "snap-read",
            EventKind::PhaseEnd { .. } => "phase-end",
            EventKind::ChanEstablish { .. } => "chan-establish",
            EventKind::ChanSend { .. } => "chan-send",
            EventKind::ChanRecv { .. } => "chan-recv",
            EventKind::ChanViolation { .. } => "chan-violation",
            EventKind::ChanTeardown { .. } => "chan-teardown",
            EventKind::NicSend { .. } => "nic-send",
            EventKind::NicRecv { .. } => "nic-recv",
        }
    }

    /// (discriminant, flag byte, payload a, payload b, payload c) — the
    /// canonical wire decomposition used by [`TraceEvent::encode`].
    fn parts(&self) -> (u8, u8, u64, u64, u64) {
        match *self {
            EventKind::CapOp {
                op,
                actor,
                subject,
                aux,
            } => (1, op as u8, actor, subject, aux),
            EventKind::GenBump { gen } => (2, 0, gen, 0, 0),
            EventKind::Quarantine { domain } => (3, 0, domain, 0, 0),
            EventKind::HyperEnter { leaf, actor } => (4, 0, leaf, actor, 0),
            EventKind::HyperExit { leaf, code, cycles } => (5, 0, leaf, code, cycles),
            EventKind::Enter { from, to, fast } => (6, u8::from(fast), from, to, 0),
            EventKind::Return { from, to, fast } => (7, u8::from(fast), from, to, 0),
            EventKind::CacheFill { actor, cap, gen } => (8, 0, actor, cap, gen),
            EventKind::CacheHit { actor, cap, gen } => (9, 0, actor, cap, gen),
            EventKind::Flush { domain, tlb, cache } => {
                (10, u8::from(tlb) | (u8::from(cache) << 1), domain, 0, 0)
            }
            EventKind::Ipi { to } => (11, 0, to, 0, 0),
            EventKind::FaultFired { site } => (12, site, 0, 0, 0),
            EventKind::ShardWait { shard } => (13, 0, shard, 0, 0),
            EventKind::ShootQueue { domain } => (14, 0, domain, 0, 0),
            EventKind::ShootBatch { drained, ipis } => (15, 0, drained, ipis, 0),
            EventKind::SnapRead { gen } => (16, 0, gen, 0, 0),
            EventKind::PhaseEnd { phase } => (17, 0, phase, 0, 0),
            EventKind::ChanEstablish { peer, epoch } => (18, 0, peer, epoch, 0),
            EventKind::ChanSend { peer, seq, epoch } => (19, 0, peer, seq, epoch),
            EventKind::ChanRecv { peer, seq, epoch } => (20, 0, peer, seq, epoch),
            EventKind::ChanViolation { peer, reason, seq } => (21, reason, peer, seq, 0),
            EventKind::ChanTeardown { peer, epoch } => (22, 0, peer, epoch, 0),
            EventKind::NicSend { to, bytes } => (23, 0, to, bytes, 0),
            EventKind::NicRecv { from, bytes } => (24, 0, from, bytes, 0),
        }
    }
}

/// One recorded event: a global sequence number, the emitting core (or
/// [`CORE_NONE`]), and the typed payload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Global emission order (total across cores).
    pub seq: u64,
    /// Emitting core, or [`CORE_NONE`] for engine-internal events.
    pub core: u32,
    /// The typed payload.
    pub kind: EventKind,
}

impl TraceEvent {
    /// Canonical 48-byte wire encoding: six little-endian `u64` words
    /// `[seq, meta, a, b, c, 0]` where `meta = core << 32 | disc << 8 |
    /// flag`. This is what the trace chain hashes, so it must stay stable.
    pub fn encode(&self) -> [u8; 48] {
        let (disc, flag, a, b, c) = self.kind.parts();
        let meta = (u64::from(self.core) << 32) | (u64::from(disc) << 8) | u64::from(flag);
        let words = [self.seq, meta, a, b, c, 0u64];
        let mut out = [0u8; 48];
        for (chunk, word) in out.chunks_mut(8).zip(words.iter()) {
            chunk.copy_from_slice(&word.to_le_bytes());
        }
        out
    }
}

/// A drained, seq-ordered trace with its attestable chain digest.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceLog {
    events: Vec<TraceEvent>,
}

impl TraceLog {
    /// Builds a log from already-ordered events (test fixtures).
    pub fn from_events(events: Vec<TraceEvent>) -> Self {
        TraceLog { events }
    }

    /// The events in global sequence order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The hash chain over the encoded events: the same
    /// `digest = H(prev || event)` fold the fuzzer uses for its replay
    /// digest, seeded with a domain separator. Two logs chain equal iff
    /// they recorded the same events in the same order.
    pub fn chain(&self) -> Digest {
        let mut digest = hash_parts(&[CHAIN_DOMAIN]);
        for event in &self.events {
            digest = hash_parts(&[digest.as_bytes(), &event.encode()]);
        }
        digest
    }
}

#[cfg(feature = "trace")]
mod sink {
    use super::{EventKind, TraceEvent, TraceLog};
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::{Arc, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

    /// Fixed per-core lane capacity. A lane that fills spills to the
    /// append-only log in one batch; steady state allocates nothing.
    const LANE_CAPACITY: usize = 256;

    #[derive(Debug, Default)]
    struct Shared {
        /// Fast-path gate; emissions are one relaxed load when false.
        enabled: AtomicBool,
        /// Global sequence counter (total event order).
        seq: AtomicU64,
        /// Per-core lanes plus one trailing lane for engine-internal
        /// events. Sized by `enable`.
        lanes: RwLock<Vec<Mutex<Vec<TraceEvent>>>>,
        /// The append-only spill log.
        log: Mutex<Vec<TraceEvent>>,
    }

    fn lock_mutex<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
        // Trace state is only touched by these non-panicking methods; a
        // poisoned lock (panicking test thread) must not wedge the sink.
        match m.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn read_lanes<T>(l: &RwLock<T>) -> RwLockReadGuard<'_, T> {
        match l.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn write_lanes<T>(l: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
        match l.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Shared handle to a machine-wide trace sink.
    ///
    /// Cloning shares the underlying buffers (every layer on one machine
    /// records into the same log). The default handle is disabled; all
    /// emissions are dropped until [`TraceSink::enable`].
    #[derive(Clone, Debug, Default)]
    pub struct TraceSink {
        shared: Arc<Shared>,
    }

    /// Equality is intentionally vacuous: the sink is observability-only
    /// state, and engine/monitor equality (replay checks, the
    /// zero-perturbation gate) must not depend on what was recorded.
    impl PartialEq for TraceSink {
        fn eq(&self, _other: &Self) -> bool {
            true
        }
    }

    impl Eq for TraceSink {}

    impl TraceSink {
        /// Creates a disabled sink.
        pub fn new() -> Self {
            Self::default()
        }

        /// Starts recording, with one lane per core (plus the engine
        /// lane). Clears anything previously recorded and restarts the
        /// sequence counter.
        pub fn enable(&self, cores: usize) {
            let mut lanes = write_lanes(&self.shared.lanes);
            lanes.clear();
            for _ in 0..cores.saturating_add(1) {
                lanes.push(Mutex::new(Vec::with_capacity(LANE_CAPACITY)));
            }
            drop(lanes);
            lock_mutex(&self.shared.log).clear();
            // verify: relaxed-ok reset is published by the Release store to enabled on the next line
            self.shared.seq.store(0, Ordering::Relaxed);
            self.shared.enabled.store(true, Ordering::Release);
        }

        /// Stops recording. Buffered events stay drainable.
        pub fn disable(&self) {
            self.shared.enabled.store(false, Ordering::Release);
        }

        /// True while the sink is recording.
        pub fn is_enabled(&self) -> bool {
            self.shared.enabled.load(Ordering::Acquire)
        }

        /// Records `kind` as emitted by `core` (use [`super::CORE_NONE`]
        /// for engine-internal events). A no-op unless enabled.
        pub fn emit(&self, core: u32, kind: EventKind) {
            if !self.shared.enabled.load(Ordering::Acquire) {
                return;
            }
            // verify: relaxed-ok ticket draw only needs atomicity; per-event ordering is the RV replayer's job
            let seq = self.shared.seq.fetch_add(1, Ordering::Relaxed);
            let event = TraceEvent { seq, core, kind };
            let lanes = read_lanes(&self.shared.lanes);
            let idx = (core as usize).min(lanes.len().saturating_sub(1));
            let Some(lane) = lanes.get(idx) else { return };
            let mut buf = lock_mutex(lane);
            buf.push(event);
            if buf.len() >= LANE_CAPACITY {
                lock_mutex(&self.shared.log).append(&mut buf);
            }
        }

        /// Shorthand for engine-internal emission.
        pub fn emit_engine(&self, kind: EventKind) {
            self.emit(super::CORE_NONE, kind);
        }

        /// Takes everything recorded so far — spill log plus lane
        /// residues — merged into global sequence order. Recording state
        /// (enabled, lanes) is preserved; the buffers restart empty.
        pub fn drain(&self) -> TraceLog {
            let mut events = std::mem::take(&mut *lock_mutex(&self.shared.log));
            for lane in read_lanes(&self.shared.lanes).iter() {
                events.append(&mut lock_mutex(lane));
            }
            events.sort_by_key(|e| e.seq);
            TraceLog::from_events(events)
        }
    }
}

#[cfg(not(feature = "trace"))]
mod sink {
    use super::{EventKind, TraceLog};

    /// Compiled-out trace sink: the same API surface as the `trace`
    /// feature's sink, with every method a no-op. Keeps call sites
    /// unconditional while guaranteeing zero cost and zero state.
    #[derive(Clone, Debug, Default)]
    pub struct TraceSink;

    /// Vacuous, matching the real sink.
    impl PartialEq for TraceSink {
        fn eq(&self, _other: &Self) -> bool {
            true
        }
    }

    impl Eq for TraceSink {}

    impl TraceSink {
        /// Creates the inert sink.
        pub fn new() -> Self {
            TraceSink
        }

        /// No-op.
        pub fn enable(&self, _cores: usize) {}

        /// No-op.
        pub fn disable(&self) {}

        /// Always false.
        pub fn is_enabled(&self) -> bool {
            false
        }

        /// Dropped.
        pub fn emit(&self, _core: u32, _kind: EventKind) {}

        /// Dropped.
        pub fn emit_engine(&self, _kind: EventKind) {}

        /// Always empty.
        pub fn drain(&self) -> TraceLog {
            TraceLog::default()
        }
    }
}

pub use sink::TraceSink;

#[cfg(all(test, feature = "trace"))]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_records_nothing() {
        let sink = TraceSink::new();
        sink.emit(0, EventKind::GenBump { gen: 1 });
        assert!(sink.drain().is_empty());
        assert!(!sink.is_enabled());
    }

    #[test]
    fn events_merge_in_sequence_order() {
        let sink = TraceSink::new();
        sink.enable(2);
        sink.emit(0, EventKind::GenBump { gen: 1 });
        sink.emit(1, EventKind::Ipi { to: 0 });
        sink.emit_engine(EventKind::GenBump { gen: 2 });
        let log = sink.drain();
        let seqs: Vec<u64> = log.events().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
        assert_eq!(log.events().iter().map(|e| e.core).collect::<Vec<_>>(), vec![
            0,
            1,
            CORE_NONE
        ]);
    }

    #[test]
    fn lanes_spill_without_losing_events() {
        let sink = TraceSink::new();
        sink.enable(1);
        for gen in 0..1000 {
            sink.emit(0, EventKind::GenBump { gen });
        }
        let log = sink.drain();
        assert_eq!(log.len(), 1000);
        assert!(log.events().windows(2).all(|w| {
            match w {
                [a, b] => a.seq < b.seq,
                _ => false,
            }
        }));
    }

    #[test]
    fn drain_resets_but_keeps_recording() {
        let sink = TraceSink::new();
        sink.enable(1);
        sink.emit(0, EventKind::PhaseEnd { phase: 1 });
        assert_eq!(sink.drain().len(), 1);
        sink.emit(0, EventKind::PhaseEnd { phase: 2 });
        assert_eq!(sink.drain().len(), 1, "drain does not stop the sink");
    }

    #[test]
    fn chain_is_order_sensitive() {
        let a = TraceEvent {
            seq: 0,
            core: 0,
            kind: EventKind::GenBump { gen: 1 },
        };
        let b = TraceEvent {
            seq: 1,
            core: 0,
            kind: EventKind::GenBump { gen: 2 },
        };
        let ab = TraceLog::from_events(vec![a, b]).chain();
        let ba = TraceLog::from_events(vec![b, a]).chain();
        assert_ne!(ab, ba);
        assert_ne!(TraceLog::default().chain(), ab);
    }

    #[test]
    fn clones_share_buffers_and_compare_equal() {
        let sink = TraceSink::new();
        let other = sink.clone();
        sink.enable(1);
        other.emit(0, EventKind::SnapRead { gen: 3 });
        assert_eq!(sink.drain().len(), 1, "emitted via the other handle");
        assert_eq!(sink, TraceSink::new(), "equality is vacuous by design");
    }

    #[test]
    fn encoding_is_stable() {
        let e = TraceEvent {
            seq: 7,
            core: 2,
            kind: EventKind::Enter {
                from: 1,
                to: 4,
                fast: true,
            },
        };
        let bytes = e.encode();
        let words: Vec<u64> = bytes
            .chunks(8)
            .map(|c| {
                let mut w = [0u8; 8];
                w.copy_from_slice(c);
                u64::from_le_bytes(w)
            })
            .collect();
        // meta = core 2 << 32 | disc 6 << 8 | flag 1 (fast).
        assert_eq!(words, vec![7, (2u64 << 32) | (6 << 8) | 1, 1, 4, 0, 0]);
    }

    #[test]
    fn channel_encoding_is_stable() {
        // The channel events ride the same 48-byte layout; pin one with a
        // flag byte (the violation reason) and one payload-heavy variant.
        let v = TraceEvent {
            seq: 9,
            core: 1,
            kind: EventKind::ChanViolation {
                peer: 3,
                reason: 2,
                seq: 11,
            },
        };
        let words: Vec<u64> = v
            .encode()
            .chunks(8)
            .map(|c| {
                let mut w = [0u8; 8];
                w.copy_from_slice(c);
                u64::from_le_bytes(w)
            })
            .collect();
        // meta = core 1 << 32 | disc 21 << 8 | flag 2 (reason).
        assert_eq!(words, vec![9, (1u64 << 32) | (21 << 8) | 2, 3, 11, 0, 0]);
        let s = TraceEvent {
            seq: 0,
            core: 0,
            kind: EventKind::ChanSend {
                peer: 5,
                seq: 42,
                epoch: 2,
            },
        };
        let words: Vec<u64> = s
            .encode()
            .chunks(8)
            .map(|c| {
                let mut w = [0u8; 8];
                w.copy_from_slice(c);
                u64::from_le_bytes(w)
            })
            .collect();
        assert_eq!(words, vec![0, 19 << 8, 5, 42, 2, 0]);
        assert_eq!(v.kind.name(), "chan-violation");
        assert_eq!(s.kind.name(), "chan-send");
    }
}
