//! The capability engine: Tyche's isolation API (§3.2, §4.1).
//!
//! All monitor API calls funnel into [`CapEngine`] methods. The engine
//! validates every operation against the acting domain's capabilities
//! (the monitor "does not choose resources to allocate to a domain, but
//! rather validates allocation" — §3.5), updates the lineage tree and
//! reference counts, and appends [`Effect`]s for the platform backend.
//!
//! ## Operation summary
//!
//! | op | who may call | result |
//! |----|--------------|--------|
//! | [`create_domain`](CapEngine::create_domain) | any unsealed domain (sealed: needs `allow_child_domains`) | new child domain + transition capability |
//! | [`share`](CapEngine::share) | capability owner | child capability; both domains have access |
//! | [`grant`](CapEngine::grant) | capability owner | child capability; granter's access suspended |
//! | [`split`](CapEngine::split) | capability owner | two carved capabilities over the halves |
//! | [`revoke`](CapEngine::revoke) | granter or lineage ancestor owner | cascading revocation + clean-up effects |
//! | [`seal`](CapEngine::seal) | manager or self | freezes config, takes measurement |
//! | [`kill`](CapEngine::kill) | manager | revokes everything, retires the domain |
//! | [`can_enter`](CapEngine::can_enter) | transition-cap owner | validated entry point for the monitor to switch to |
// Approved panic paths: every `expect(` in this module is budgeted,
// with a reviewed reason, in crates/verify/allowlist.toml.
#![allow(clippy::expect_used)]

use crate::capability::{CapKind, Capability};
use crate::domain::{Domain, DomainState, SealPolicy};
use crate::effect::Effect;
use crate::error::CapError;
use crate::ids::{CapId, DomainId, IdAllocator};
use crate::refcount::{mem_refcount, RefCount};
use crate::resource::{MemRegion, Resource, Rights};
use crate::RevocationPolicy;
use std::collections::BTreeMap;

/// A resource entry as enumerated for attestation (§3.4): resource,
/// rights, sharing kind, and the current reference count.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EnumeratedResource {
    /// The capability id backing this entry.
    pub cap: CapId,
    /// The resource.
    pub resource: Resource,
    /// Rights held.
    pub rights: Rights,
    /// How the capability was derived.
    pub kind: CapKind,
    /// Reference count over the resource (max/min per byte for memory).
    pub refcount: RefCount,
}

/// The capability engine.
#[derive(Clone, Debug, Default)]
pub struct CapEngine {
    domains: BTreeMap<DomainId, Domain>,
    caps: BTreeMap<CapId, Capability>,
    ids: IdAllocator,
    effects: Vec<Effect>,
    root: Option<DomainId>,
    /// Monotonic operation counter; stamps capability creation and seal
    /// times so the auditor can check seal-freeze invariants.
    op_counter: u64,
    /// Capability id → creation stamp.
    created_at: BTreeMap<CapId, u64>,
    /// Domain id → seal stamp.
    sealed_at: BTreeMap<DomainId, u64>,
}

impl CapEngine {
    /// Creates an empty engine (no domains yet).
    pub fn new() -> Self {
        Self::default()
    }

    fn tick(&mut self) -> u64 {
        self.op_counter += 1;
        self.op_counter
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The root (initial) domain, if created.
    pub fn root(&self) -> Option<DomainId> {
        self.root
    }

    /// Looks up a domain.
    pub fn domain(&self, id: DomainId) -> Option<&Domain> {
        self.domains.get(&id)
    }

    /// Looks up a capability.
    pub fn cap(&self, id: CapId) -> Option<&Capability> {
        self.caps.get(&id)
    }

    /// Iterates all live domains.
    pub fn domains(&self) -> impl Iterator<Item = &Domain> {
        self.domains.values()
    }

    /// Iterates all capabilities (active and suspended).
    pub fn caps(&self) -> impl Iterator<Item = &Capability> {
        self.caps.values()
    }

    /// All capabilities owned by `domain`.
    pub fn caps_of(&self, domain: DomainId) -> Vec<&Capability> {
        self.caps.values().filter(|c| c.owner == domain).collect()
    }

    /// Creation stamp of a capability (for the auditor).
    pub fn cap_created_at(&self, cap: CapId) -> Option<u64> {
        self.created_at.get(&cap).copied()
    }

    /// Seal stamp of a domain (for the auditor).
    pub fn domain_sealed_at(&self, domain: DomainId) -> Option<u64> {
        self.sealed_at.get(&domain).copied()
    }

    // ------------------------------------------------------------------
    // Corruption hooks (mutation tests only)
    //
    // The engine's public operations refuse to create unsound states, so
    // the auditor's negative tests need a way to corrupt internals
    // directly. Hidden from docs; never call these outside tests.
    // ------------------------------------------------------------------

    /// Test-only mutable access to a capability record.
    #[doc(hidden)]
    pub fn corrupt_cap(&mut self, cap: CapId) -> Option<&mut Capability> {
        self.caps.get_mut(&cap)
    }

    /// Test-only mutable access to a domain record.
    #[doc(hidden)]
    pub fn corrupt_domain(&mut self, domain: DomainId) -> Option<&mut Domain> {
        self.domains.get_mut(&domain)
    }

    /// Test-only override of a capability's creation stamp.
    #[doc(hidden)]
    pub fn corrupt_created_at(&mut self, cap: CapId, stamp: u64) {
        self.created_at.insert(cap, stamp);
    }

    /// Test-only override of a domain's seal stamp.
    #[doc(hidden)]
    pub fn corrupt_sealed_at(&mut self, domain: DomainId, stamp: u64) {
        self.sealed_at.insert(domain, stamp);
    }

    /// Drains the pending backend effects in emission order.
    pub fn drain_effects(&mut self) -> Vec<Effect> {
        std::mem::take(&mut self.effects)
    }

    /// Number of pending effects (without draining).
    pub fn pending_effects(&self) -> usize {
        self.effects.len()
    }

    // ------------------------------------------------------------------
    // Domain lifecycle
    // ------------------------------------------------------------------

    /// Creates the root (initial) domain — the unmodified OS the monitor
    /// boots into (§4). Callable once.
    ///
    /// # Panics
    ///
    /// Panics when called twice; the boot path runs once by construction.
    pub fn create_root_domain(&mut self) -> DomainId {
        assert!(self.root.is_none(), "root domain already exists");
        let id = DomainId(self.ids.next());
        self.domains.insert(
            id,
            Domain {
                id,
                manager: None,
                state: DomainState::Configuring,
                seal_policy: SealPolicy::nestable(),
                entry: None,
                measurement: None,
                content_measurements: Vec::new(),
            },
        );
        self.root = Some(id);
        self.effects.push(Effect::DomainCreated { domain: id });
        self.tick();
        id
    }

    /// Endows the root domain with a boot-time resource (all RAM, each CPU
    /// core, each device). Only the root domain can be endowed; everything
    /// else must obtain resources through `share`/`grant`.
    pub fn endow(
        &mut self,
        domain: DomainId,
        resource: Resource,
        rights: Rights,
    ) -> Result<CapId, CapError> {
        if Some(domain) != self.root {
            return Err(CapError::RootDomain);
        }
        let dom = self
            .domains
            .get(&domain)
            .ok_or(CapError::NoSuchDomain(domain))?;
        if !dom.is_alive() {
            return Err(CapError::NoSuchDomain(domain));
        }
        let id = CapId(self.ids.next());
        let cap = Capability {
            id,
            owner: domain,
            granter: domain,
            resource,
            rights,
            kind: CapKind::Root,
            parent: None,
            children: Vec::new(),
            policy: RevocationPolicy::NONE,
            active: true,
        };
        self.emit_gain(&cap);
        self.caps.insert(id, cap);
        let t = self.tick();
        self.created_at.insert(id, t);
        Ok(id)
    }

    /// Creates a new (empty) trust domain managed by `manager`, returning
    /// the new domain id and a transition capability into it.
    ///
    /// Any domain may create domains — this is the paper's core
    /// democratization claim; a sealed domain needs
    /// [`SealPolicy::allow_child_domains`].
    pub fn create_domain(&mut self, manager: DomainId) -> Result<(DomainId, CapId), CapError> {
        let m = self
            .domains
            .get(&manager)
            .ok_or(CapError::NoSuchDomain(manager))?;
        if !m.is_alive() {
            return Err(CapError::NoSuchDomain(manager));
        }
        if m.is_sealed() && !m.seal_policy.allow_child_domains {
            return Err(CapError::SealedImmutable(manager));
        }
        let id = DomainId(self.ids.next());
        self.domains.insert(
            id,
            Domain {
                id,
                manager: Some(manager),
                state: DomainState::Configuring,
                seal_policy: SealPolicy::nestable(),
                entry: None,
                measurement: None,
                content_measurements: Vec::new(),
            },
        );
        self.effects.push(Effect::DomainCreated { domain: id });
        self.tick();
        let tcap = self.make_transition(manager, id, RevocationPolicy::NONE)?;
        Ok((id, tcap))
    }

    /// Sets the fixed entry point of an unsealed domain. The manager (or
    /// the domain itself, pre-seal) may call this.
    pub fn set_entry(
        &mut self,
        actor: DomainId,
        domain: DomainId,
        entry: u64,
    ) -> Result<(), CapError> {
        self.check_manager(actor, domain)?;
        let dom = self
            .domains
            .get_mut(&domain)
            .ok_or(CapError::NoSuchDomain(domain))?;
        if dom.is_sealed() {
            return Err(CapError::SealedImmutable(domain));
        }
        dom.entry = Some(entry);
        self.tick();
        Ok(())
    }

    /// Records a content measurement for part of the domain's initial
    /// memory. The monitor calls this while loading the domain image;
    /// the digests become part of the seal-time measurement (§3.2:
    /// "a hash of domain configurations and selected initial resources").
    pub fn record_content(
        &mut self,
        actor: DomainId,
        domain: DomainId,
        region: MemRegion,
        digest: tyche_crypto::Digest,
    ) -> Result<(), CapError> {
        self.check_manager(actor, domain)?;
        let dom = self
            .domains
            .get_mut(&domain)
            .ok_or(CapError::NoSuchDomain(domain))?;
        if dom.is_sealed() {
            return Err(CapError::SealedImmutable(domain));
        }
        dom.content_measurements
            .push((region.start, region.end, digest));
        self.tick();
        Ok(())
    }

    /// Seals `domain`: freezes its resource configuration per `policy`,
    /// computes its measurement, and makes it enterable.
    ///
    /// Requires an entry point (domains have fixed entry points, §3.1).
    pub fn seal(
        &mut self,
        actor: DomainId,
        domain: DomainId,
        policy: SealPolicy,
    ) -> Result<tyche_crypto::Digest, CapError> {
        self.check_manager(actor, domain)?;
        {
            let dom = self
                .domains
                .get(&domain)
                .ok_or(CapError::NoSuchDomain(domain))?;
            if dom.is_sealed() {
                return Err(CapError::SealedImmutable(domain));
            }
            if dom.entry.is_none() {
                return Err(CapError::NoEntryPoint(domain));
            }
        }
        let measurement = self.measure_config(domain, policy);
        let t = self.tick();
        let dom = self.domains.get_mut(&domain).expect("checked above");
        dom.state = DomainState::Sealed;
        dom.seal_policy = policy;
        dom.measurement = Some(measurement);
        self.sealed_at.insert(domain, t);
        Ok(measurement)
    }

    /// Kills `domain`: cascading-revokes every capability it owns (and
    /// therefore everything it shared onward), emits clean-up effects, and
    /// retires the id. Only the manager may kill a domain.
    pub fn kill(&mut self, actor: DomainId, domain: DomainId) -> Result<(), CapError> {
        let dom = self
            .domains
            .get(&domain)
            .ok_or(CapError::NoSuchDomain(domain))?;
        if !dom.is_alive() {
            return Err(CapError::NoSuchDomain(domain));
        }
        if dom.manager != Some(actor) {
            return Err(CapError::NotManager {
                target: domain,
                actor,
            });
        }
        // Revoke every capability owned by the dying domain. Collect ids
        // first; each revocation may cascade into caps owned by others.
        let owned: Vec<CapId> = self
            .caps
            .values()
            .filter(|c| c.owner == domain)
            .map(|c| c.id)
            .collect();
        for cap in owned {
            if self.caps.contains_key(&cap) {
                self.revoke_subtree(cap);
            }
        }
        // Also revoke transition capabilities *into* the dead domain held
        // by others — they dangle otherwise.
        let dangling: Vec<CapId> = self
            .caps
            .values()
            .filter(|c| matches!(c.resource, Resource::Transition(t) if t == domain))
            .map(|c| c.id)
            .collect();
        for cap in dangling {
            if self.caps.contains_key(&cap) {
                self.revoke_subtree(cap);
            }
        }
        let dom = self.domains.get_mut(&domain).expect("checked above");
        dom.state = DomainState::Dead;
        self.effects.push(Effect::DomainKilled { domain });
        self.tick();
        Ok(())
    }

    // ------------------------------------------------------------------
    // Capability operations
    // ------------------------------------------------------------------

    /// Shares (a subrange of) a capability with `target`: both domains end
    /// up with access. Returns the child capability owned by `target`.
    pub fn share(
        &mut self,
        actor: DomainId,
        cap: CapId,
        target: DomainId,
        sub: Option<MemRegion>,
        rights: Rights,
        policy: RevocationPolicy,
    ) -> Result<CapId, CapError> {
        self.derive(actor, cap, target, sub, rights, policy, CapKind::Shared)
    }

    /// Grants a whole capability to `target`: exclusive, revocable
    /// transfer. The granter's capability is suspended until revocation.
    /// To grant part of a memory region, [`split`](CapEngine::split)
    /// first.
    pub fn grant(
        &mut self,
        actor: DomainId,
        cap: CapId,
        target: DomainId,
        sub: Option<MemRegion>,
        rights: Rights,
        policy: RevocationPolicy,
    ) -> Result<CapId, CapError> {
        // A partial grant would leave the granter with fragmented access;
        // the engine keeps grant whole-capability and offers split().
        if let Some(s) = sub {
            let c = self.caps.get(&cap).ok_or(CapError::NoSuchCap(cap))?;
            match c.resource.as_mem() {
                Some(region) if region == s => {}
                Some(_) => return Err(CapError::OutOfRange),
                None => return Err(CapError::SubrangeOnNonMemory),
            }
        }
        self.derive(actor, cap, target, None, rights, policy, CapKind::Granted)
    }

    /// Splits an active memory capability at address `at`, producing two
    /// carved capabilities over `[start, at)` and `[at, end)`. The original
    /// capability is consumed (suspended with two carved children).
    pub fn split(
        &mut self,
        actor: DomainId,
        cap: CapId,
        at: u64,
    ) -> Result<(CapId, CapId), CapError> {
        let c = self.caps.get(&cap).ok_or(CapError::NoSuchCap(cap))?;
        if c.owner != actor {
            return Err(CapError::NotOwner { cap, actor });
        }
        if !c.active {
            return Err(CapError::Inactive(cap));
        }
        let region = c.resource.as_mem().ok_or(CapError::WrongResourceType)?;
        if at <= region.start || at >= region.end {
            return Err(CapError::OutOfRange);
        }
        let (rights, policy) = (c.rights, c.policy);
        let lo = self.insert_child(
            cap,
            actor,
            actor,
            Resource::Memory(MemRegion::new(region.start, at)),
            rights,
            CapKind::Carved,
            policy,
        );
        let hi = self.insert_child(
            cap,
            actor,
            actor,
            Resource::Memory(MemRegion::new(at, region.end)),
            rights,
            CapKind::Carved,
            policy,
        );
        // The parent is consumed: its coverage is now represented by the
        // carved pieces. No hardware effect — the owner's access is
        // unchanged.
        self.caps.get_mut(&cap).expect("exists").active = false;
        self.tick();
        Ok((lo, hi))
    }

    /// Revokes `cap` and, cascading, every capability derived from it.
    ///
    /// The caller must be the capability's granter or the owner of an
    /// ancestor in its lineage (ancestors can always reclaim). Clean-up
    /// effects follow each revoked capability's policy. Termination is
    /// guaranteed even under circular domain-level sharing because lineage
    /// is a tree.
    pub fn revoke(&mut self, actor: DomainId, cap: CapId) -> Result<(), CapError> {
        let c = self.caps.get(&cap).ok_or(CapError::NoSuchCap(cap))?;
        // The granter may always take a capability back; this also covers
        // owners revoking their own carved pieces.
        let mut authorized = c.granter == actor;
        if !authorized {
            // Walk up the lineage: any ancestor owner may revoke.
            let mut cur = c.parent;
            while let Some(p) = cur {
                let pc = self.caps.get(&p).expect("lineage parents exist");
                if pc.owner == actor {
                    authorized = true;
                    break;
                }
                cur = pc.parent;
            }
        }
        if !authorized {
            return Err(CapError::NotGranter { cap, actor });
        }
        self.revoke_subtree(cap);
        self.tick();
        Ok(())
    }

    // ------------------------------------------------------------------
    // Transitions
    // ------------------------------------------------------------------

    /// Creates a transition capability into `target`, owned by `actor`.
    /// `actor` must manage `target` (or be `target`). The policy's flush
    /// flags are applied by the monitor on every transition through this
    /// capability (§4.1 side-channel mitigation).
    pub fn make_transition(
        &mut self,
        actor: DomainId,
        target: DomainId,
        policy: RevocationPolicy,
    ) -> Result<CapId, CapError> {
        if actor != target {
            self.check_manager(actor, target)?;
        }
        let a = self
            .domains
            .get(&actor)
            .ok_or(CapError::NoSuchDomain(actor))?;
        if a.is_sealed() && !a.seal_policy.allow_child_domains {
            return Err(CapError::SealedImmutable(actor));
        }
        let id = CapId(self.ids.next());
        let capability = Capability {
            id,
            owner: actor,
            granter: actor,
            resource: Resource::Transition(target),
            rights: Rights::USE,
            kind: CapKind::Root,
            parent: None,
            children: Vec::new(),
            policy,
            active: true,
        };
        self.caps.insert(id, capability);
        let t = self.tick();
        self.created_at.insert(id, t);
        Ok(id)
    }

    /// Validates a domain transition: `actor`, running on CPU `core`,
    /// invokes transition capability `cap`. On success returns the target
    /// domain, its fixed entry point, and the flush policy the monitor
    /// must apply.
    ///
    /// Checks (§3.1): the monitor mediates all control transfers; domains
    /// have fixed entry points; domains only run on cores in their
    /// resource configuration.
    pub fn can_enter(
        &self,
        actor: DomainId,
        cap: CapId,
        core: usize,
    ) -> Result<(DomainId, u64, RevocationPolicy), CapError> {
        let c = self.caps.get(&cap).ok_or(CapError::NoSuchCap(cap))?;
        if c.owner != actor {
            return Err(CapError::NotOwner { cap, actor });
        }
        if !c.active {
            return Err(CapError::Inactive(cap));
        }
        let target = match c.resource {
            Resource::Transition(t) => t,
            _ => return Err(CapError::WrongResourceType),
        };
        if !c.rights.can_use() {
            return Err(CapError::RightsEscalation);
        }
        let dom = self
            .domains
            .get(&target)
            .ok_or(CapError::NoSuchDomain(target))?;
        if !dom.is_alive() {
            return Err(CapError::NoSuchDomain(target));
        }
        if !dom.is_sealed() {
            return Err(CapError::NotSealed(target));
        }
        let entry = dom.entry.ok_or(CapError::NoEntryPoint(target))?;
        if !self.owns_core(target, core) {
            return Err(CapError::CoreNotOwned {
                domain: target,
                core,
            });
        }
        Ok((target, entry, c.policy))
    }

    /// True when `domain` holds an active capability for CPU `core`.
    pub fn owns_core(&self, domain: DomainId, core: usize) -> bool {
        self.caps.values().any(|c| {
            c.owner == domain
                && c.active
                && c.rights.can_use()
                && matches!(c.resource, Resource::CpuCore(n) if n == core)
        })
    }

    /// True when `domain` holds an active capability for `device`.
    pub fn owns_device(&self, domain: DomainId, device: u16) -> bool {
        self.caps.values().any(|c| {
            c.owner == domain
                && c.active
                && c.rights.can_use()
                && matches!(c.resource, Resource::Device(d) if d == device)
        })
    }

    // ------------------------------------------------------------------
    // Reference counts & enumeration
    // ------------------------------------------------------------------

    /// All active `(domain, region)` memory coverage pairs.
    pub fn active_mem_coverage(&self) -> Vec<(DomainId, MemRegion)> {
        self.caps
            .values()
            .filter(|c| c.active)
            .filter_map(|c| c.resource.as_mem().map(|r| (c.owner, r)))
            .collect()
    }

    /// Full reference-count query over a memory range (Figure 4).
    pub fn refcount_mem_full(&self, region: MemRegion) -> RefCount {
        mem_refcount(&self.active_mem_coverage(), region)
    }

    /// Maximum per-byte reference count over a memory range.
    pub fn refcount_mem(&self, region: MemRegion) -> usize {
        self.refcount_mem_full(region).max
    }

    /// Enumerates `domain`'s active resources with rights and reference
    /// counts — the attestation view (§3.4).
    pub fn enumerate(&self, domain: DomainId) -> Result<Vec<EnumeratedResource>, CapError> {
        let dom = self
            .domains
            .get(&domain)
            .ok_or(CapError::NoSuchDomain(domain))?;
        if !dom.is_alive() {
            return Err(CapError::NoSuchDomain(domain));
        }
        let coverage = self.active_mem_coverage();
        let mut out: Vec<EnumeratedResource> = self
            .caps
            .values()
            .filter(|c| c.owner == domain && c.active)
            .map(|c| {
                let refcount = match c.resource {
                    Resource::Memory(r) => mem_refcount(&coverage, r),
                    Resource::CpuCore(n) => {
                        let owners: Vec<DomainId> = self
                            .caps
                            .values()
                            .filter(|k| {
                                k.active && matches!(k.resource, Resource::CpuCore(m) if m == n)
                            })
                            .map(|k| k.owner)
                            .collect();
                        let n = crate::refcount::unit_refcount(owners);
                        RefCount { max: n, min: n }
                    }
                    Resource::Device(d) => {
                        let owners: Vec<DomainId> = self
                            .caps
                            .values()
                            .filter(|k| {
                                k.active && matches!(k.resource, Resource::Device(e) if e == d)
                            })
                            .map(|k| k.owner)
                            .collect();
                        let n = crate::refcount::unit_refcount(owners);
                        RefCount { max: n, min: n }
                    }
                    Resource::Transition(_) => RefCount { max: 1, min: 1 },
                    Resource::Interrupt(v) => {
                        let owners: Vec<DomainId> = self
                            .caps
                            .values()
                            .filter(|k| {
                                k.active && matches!(k.resource, Resource::Interrupt(w) if w == v)
                            })
                            .map(|k| k.owner)
                            .collect();
                        let n = crate::refcount::unit_refcount(owners);
                        RefCount { max: n, min: n }
                    }
                };
                EnumeratedResource {
                    cap: c.id,
                    resource: c.resource,
                    rights: c.rights,
                    kind: c.kind,
                    refcount,
                }
            })
            .collect();
        out.sort_by_key(|e| e.cap);
        Ok(out)
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    /// Manager check: `actor` manages `domain` (directly) or is the
    /// domain itself while unsealed.
    fn check_manager(&self, actor: DomainId, domain: DomainId) -> Result<(), CapError> {
        let dom = self
            .domains
            .get(&domain)
            .ok_or(CapError::NoSuchDomain(domain))?;
        if !dom.is_alive() {
            return Err(CapError::NoSuchDomain(domain));
        }
        if dom.manager == Some(actor) || (actor == domain && !dom.is_sealed()) {
            Ok(())
        } else {
            Err(CapError::NotManager {
                target: domain,
                actor,
            })
        }
    }

    /// Shared validation + node creation for share/grant.
    #[allow(clippy::too_many_arguments)]
    fn derive(
        &mut self,
        actor: DomainId,
        cap: CapId,
        target: DomainId,
        sub: Option<MemRegion>,
        rights: Rights,
        policy: RevocationPolicy,
        kind: CapKind,
    ) -> Result<CapId, CapError> {
        let c = self.caps.get(&cap).ok_or(CapError::NoSuchCap(cap))?;
        if c.owner != actor {
            return Err(CapError::NotOwner { cap, actor });
        }
        if !c.active {
            return Err(CapError::Inactive(cap));
        }
        if !rights.subset_of(&c.rights) {
            return Err(CapError::RightsEscalation);
        }
        let actor_dom = self
            .domains
            .get(&actor)
            .ok_or(CapError::NoSuchDomain(actor))?;
        if actor_dom.is_sealed() && !actor_dom.seal_policy.allow_outward_sharing {
            return Err(CapError::ActorSealed(actor));
        }
        let target_dom = self
            .domains
            .get(&target)
            .ok_or(CapError::NoSuchDomain(target))?;
        if !target_dom.is_alive() {
            return Err(CapError::NoSuchDomain(target));
        }
        // Sealing freezes *incoming* resources unconditionally (§3.1).
        if target_dom.is_sealed() && target != actor {
            return Err(CapError::TargetSealed(target));
        }
        let resource = match (c.resource, sub) {
            (Resource::Memory(region), Some(s)) => {
                if !region.contains(&s) {
                    return Err(CapError::OutOfRange);
                }
                Resource::Memory(s)
            }
            (r, None) => r,
            (_, Some(_)) => return Err(CapError::SubrangeOnNonMemory),
        };
        let child = self.insert_child(cap, target, actor, resource, rights, kind, policy);
        let child_cap = self.caps.get(&child).expect("just inserted").clone();
        match kind {
            CapKind::Shared => {
                self.emit_gain(&child_cap);
            }
            CapKind::Granted => {
                // Suspend the granter's capability and its hardware access.
                let parent = self.caps.get_mut(&cap).expect("exists");
                parent.active = false;
                let (owner, res) = (parent.owner, parent.resource);
                self.emit_loss(owner, res);
                if matches!(res, Resource::Memory(_)) {
                    self.effects.push(Effect::FlushTlb { domain: owner });
                }
                self.emit_gain(&child_cap);
            }
            CapKind::Root | CapKind::Carved => unreachable!("derive only shares or grants"),
        }
        self.tick();
        Ok(child)
    }

    /// Inserts a child capability node under `parent`.
    #[allow(clippy::too_many_arguments)]
    fn insert_child(
        &mut self,
        parent: CapId,
        owner: DomainId,
        granter: DomainId,
        resource: Resource,
        rights: Rights,
        kind: CapKind,
        policy: RevocationPolicy,
    ) -> CapId {
        let id = CapId(self.ids.next());
        self.caps.insert(
            id,
            Capability {
                id,
                owner,
                granter,
                resource,
                rights,
                kind,
                parent: Some(parent),
                children: Vec::new(),
                policy,
                active: true,
            },
        );
        self.caps
            .get_mut(&parent)
            .expect("parent exists")
            .children
            .push(id);
        let t = self.tick();
        self.created_at.insert(id, t);
        id
    }

    /// Emits the effects that give `cap.owner` access to `cap.resource`.
    fn emit_gain(&mut self, cap: &Capability) {
        match cap.resource {
            Resource::Memory(region) => {
                self.effects.push(Effect::MapMem {
                    domain: cap.owner,
                    region,
                    rights: cap.rights,
                });
            }
            Resource::CpuCore(core) => {
                self.effects.push(Effect::AddCore {
                    domain: cap.owner,
                    core,
                });
            }
            Resource::Device(device) => {
                self.effects.push(Effect::AttachDevice {
                    device,
                    domain: cap.owner,
                });
            }
            Resource::Transition(_) => {}
            Resource::Interrupt(vector) => {
                self.effects.push(Effect::RouteIrq {
                    vector,
                    domain: cap.owner,
                });
            }
        }
    }

    /// Emits the effects that remove `owner`'s access to `resource`.
    fn emit_loss(&mut self, owner: DomainId, resource: Resource) {
        match resource {
            Resource::Memory(region) => {
                self.effects.push(Effect::UnmapMem {
                    domain: owner,
                    region,
                });
            }
            Resource::CpuCore(core) => {
                self.effects.push(Effect::RemoveCore {
                    domain: owner,
                    core,
                });
            }
            Resource::Device(device) => {
                self.effects.push(Effect::DetachDevice { device });
            }
            Resource::Transition(_) => {}
            Resource::Interrupt(vector) => {
                self.effects.push(Effect::UnrouteIrq { vector });
            }
        }
    }

    /// Revokes the subtree rooted at `cap` (inclusive), post-order, with
    /// clean-up effects. Iterative with an explicit stack; each node is
    /// visited exactly once, so this terminates regardless of domain-level
    /// sharing cycles.
    fn revoke_subtree(&mut self, cap: CapId) {
        // Collect the subtree in DFS order.
        let mut order = Vec::new();
        let mut stack = vec![cap];
        while let Some(id) = stack.pop() {
            if let Some(c) = self.caps.get(&id) {
                order.push(id);
                stack.extend(c.children.iter().copied());
            }
        }
        // Revoke leaves-first so parents reactivate only after their
        // granted children are gone.
        for id in order.into_iter().rev() {
            self.revoke_single(id);
        }
    }

    /// Revokes one capability node (its children are already gone).
    fn revoke_single(&mut self, id: CapId) {
        let Some(c) = self.caps.remove(&id) else {
            return;
        };
        self.created_at.remove(&id);
        let owner_alive = self
            .domains
            .get(&c.owner)
            .map(|d| d.is_alive())
            .unwrap_or(false);
        if c.active && owner_alive {
            self.emit_loss(c.owner, c.resource);
        }
        // Clean-up contract.
        if let Resource::Memory(region) = c.resource {
            // Zero only when the revoked holder had exclusive data in the
            // region (granted or carved-from-grant); zeroing a shared
            // window would destroy the surviving holder's bytes.
            if c.policy.zero_memory && c.kind == CapKind::Granted {
                self.effects.push(Effect::ZeroMem { region });
            }
            if c.policy.flush_tlb && owner_alive {
                self.effects.push(Effect::FlushTlb { domain: c.owner });
            }
        }
        if c.policy.flush_cache && owner_alive {
            self.effects.push(Effect::FlushCache { domain: c.owner });
        }
        // Detach parent linkage and reactivate a granter suspended by a
        // grant, or a split parent whose pieces are all gone.
        if let Some(pid) = c.parent {
            if let Some(parent) = self.caps.get_mut(&pid) {
                parent.children.retain(|&k| k != id);
                let should_reactivate = match c.kind {
                    CapKind::Granted => true,
                    CapKind::Carved => parent.children.is_empty(),
                    _ => false,
                };
                if should_reactivate && !parent.active {
                    parent.active = true;
                    let owner = parent.owner;
                    let resource = parent.resource;
                    let rights = parent.rights;
                    let palive = self
                        .domains
                        .get(&owner)
                        .map(|d| d.is_alive())
                        .unwrap_or(false);
                    if palive {
                        match resource {
                            Resource::Memory(region) => {
                                self.effects.push(Effect::MapMem {
                                    domain: owner,
                                    region,
                                    rights,
                                });
                            }
                            Resource::CpuCore(core) => {
                                self.effects.push(Effect::AddCore {
                                    domain: owner,
                                    core,
                                });
                            }
                            Resource::Device(device) => {
                                self.effects.push(Effect::AttachDevice {
                                    device,
                                    domain: owner,
                                });
                            }
                            Resource::Transition(_) => {}
                            Resource::Interrupt(vector) => {
                                self.effects.push(Effect::RouteIrq {
                                    vector,
                                    domain: owner,
                                });
                            }
                        }
                    }
                }
            }
        }
    }

    /// Computes the seal-time measurement: a hash over the canonical
    /// encoding of the domain's configuration and recorded contents.
    fn measure_config(&self, domain: DomainId, policy: SealPolicy) -> tyche_crypto::Digest {
        let dom = self.domains.get(&domain).expect("caller checked");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(b"tyche-domain-v1");
        bytes.extend_from_slice(&dom.entry.unwrap_or(0).to_le_bytes());
        bytes.push(policy.encode());
        let mut entries: Vec<(u8, u64, u64, u8, u8)> = self
            .caps
            .values()
            .filter(|c| c.owner == domain && c.active)
            .map(|c| {
                let (a, b) = match c.resource {
                    Resource::Memory(r) => (r.start, r.end),
                    Resource::CpuCore(n) => (n as u64, 0),
                    Resource::Device(d) => (d as u64, 0),
                    Resource::Transition(t) => (t.0, 0),
                    Resource::Interrupt(v) => (v as u64, 0),
                };
                let kind = match c.kind {
                    CapKind::Root => 0u8,
                    CapKind::Shared => 1,
                    CapKind::Granted => 2,
                    CapKind::Carved => 3,
                };
                (c.resource.type_tag(), a, b, c.rights.0, kind)
            })
            .collect();
        entries.sort();
        bytes.extend_from_slice(&(entries.len() as u64).to_le_bytes());
        for (tag, a, b, rights, kind) in entries {
            bytes.push(tag);
            bytes.extend_from_slice(&a.to_le_bytes());
            bytes.extend_from_slice(&b.to_le_bytes());
            bytes.push(rights);
            bytes.push(kind);
        }
        let mut contents = dom.content_measurements.clone();
        contents.sort();
        bytes.extend_from_slice(&(contents.len() as u64).to_le_bytes());
        for (s, e, d) in contents {
            bytes.extend_from_slice(&s.to_le_bytes());
            bytes.extend_from_slice(&e.to_le_bytes());
            bytes.extend_from_slice(d.as_bytes());
        }
        tyche_crypto::hash(&bytes)
    }
}
